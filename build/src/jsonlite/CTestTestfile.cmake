# CMake generated Testfile for 
# Source directory: /root/repo/src/jsonlite
# Build directory: /root/repo/build/src/jsonlite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
