file(REMOVE_RECURSE
  "CMakeFiles/chpo_jsonlite.dir/json.cpp.o"
  "CMakeFiles/chpo_jsonlite.dir/json.cpp.o.d"
  "libchpo_jsonlite.a"
  "libchpo_jsonlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chpo_jsonlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
