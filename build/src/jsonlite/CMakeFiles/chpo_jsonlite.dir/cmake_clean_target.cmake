file(REMOVE_RECURSE
  "libchpo_jsonlite.a"
)
