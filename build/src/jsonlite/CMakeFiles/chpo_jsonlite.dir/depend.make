# Empty dependencies file for chpo_jsonlite.
# This may be replaced when dependencies are built.
