# Empty dependencies file for chpo_runtime.
# This may be replaced when dependencies are built.
