
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/data_registry.cpp" "src/runtime/CMakeFiles/chpo_runtime.dir/data_registry.cpp.o" "gcc" "src/runtime/CMakeFiles/chpo_runtime.dir/data_registry.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/runtime/CMakeFiles/chpo_runtime.dir/engine.cpp.o" "gcc" "src/runtime/CMakeFiles/chpo_runtime.dir/engine.cpp.o.d"
  "/root/repo/src/runtime/fault.cpp" "src/runtime/CMakeFiles/chpo_runtime.dir/fault.cpp.o" "gcc" "src/runtime/CMakeFiles/chpo_runtime.dir/fault.cpp.o.d"
  "/root/repo/src/runtime/graph.cpp" "src/runtime/CMakeFiles/chpo_runtime.dir/graph.cpp.o" "gcc" "src/runtime/CMakeFiles/chpo_runtime.dir/graph.cpp.o.d"
  "/root/repo/src/runtime/resources.cpp" "src/runtime/CMakeFiles/chpo_runtime.dir/resources.cpp.o" "gcc" "src/runtime/CMakeFiles/chpo_runtime.dir/resources.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/chpo_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/chpo_runtime.dir/runtime.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/runtime/CMakeFiles/chpo_runtime.dir/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/chpo_runtime.dir/scheduler.cpp.o.d"
  "/root/repo/src/runtime/sim_backend.cpp" "src/runtime/CMakeFiles/chpo_runtime.dir/sim_backend.cpp.o" "gcc" "src/runtime/CMakeFiles/chpo_runtime.dir/sim_backend.cpp.o.d"
  "/root/repo/src/runtime/thread_backend.cpp" "src/runtime/CMakeFiles/chpo_runtime.dir/thread_backend.cpp.o" "gcc" "src/runtime/CMakeFiles/chpo_runtime.dir/thread_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/chpo_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/chpo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chpo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/jsonlite/CMakeFiles/chpo_jsonlite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
