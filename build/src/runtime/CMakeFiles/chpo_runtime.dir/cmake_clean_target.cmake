file(REMOVE_RECURSE
  "libchpo_runtime.a"
)
