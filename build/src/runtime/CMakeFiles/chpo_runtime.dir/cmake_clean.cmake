file(REMOVE_RECURSE
  "CMakeFiles/chpo_runtime.dir/data_registry.cpp.o"
  "CMakeFiles/chpo_runtime.dir/data_registry.cpp.o.d"
  "CMakeFiles/chpo_runtime.dir/engine.cpp.o"
  "CMakeFiles/chpo_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/chpo_runtime.dir/fault.cpp.o"
  "CMakeFiles/chpo_runtime.dir/fault.cpp.o.d"
  "CMakeFiles/chpo_runtime.dir/graph.cpp.o"
  "CMakeFiles/chpo_runtime.dir/graph.cpp.o.d"
  "CMakeFiles/chpo_runtime.dir/resources.cpp.o"
  "CMakeFiles/chpo_runtime.dir/resources.cpp.o.d"
  "CMakeFiles/chpo_runtime.dir/runtime.cpp.o"
  "CMakeFiles/chpo_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/chpo_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/chpo_runtime.dir/scheduler.cpp.o.d"
  "CMakeFiles/chpo_runtime.dir/sim_backend.cpp.o"
  "CMakeFiles/chpo_runtime.dir/sim_backend.cpp.o.d"
  "CMakeFiles/chpo_runtime.dir/thread_backend.cpp.o"
  "CMakeFiles/chpo_runtime.dir/thread_backend.cpp.o.d"
  "libchpo_runtime.a"
  "libchpo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chpo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
