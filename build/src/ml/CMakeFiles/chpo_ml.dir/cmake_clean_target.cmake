file(REMOVE_RECURSE
  "libchpo_ml.a"
)
