# Empty dependencies file for chpo_ml.
# This may be replaced when dependencies are built.
