
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cost_model.cpp" "src/ml/CMakeFiles/chpo_ml.dir/cost_model.cpp.o" "gcc" "src/ml/CMakeFiles/chpo_ml.dir/cost_model.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/chpo_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/chpo_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/distributed.cpp" "src/ml/CMakeFiles/chpo_ml.dir/distributed.cpp.o" "gcc" "src/ml/CMakeFiles/chpo_ml.dir/distributed.cpp.o.d"
  "/root/repo/src/ml/layers.cpp" "src/ml/CMakeFiles/chpo_ml.dir/layers.cpp.o" "gcc" "src/ml/CMakeFiles/chpo_ml.dir/layers.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/chpo_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/chpo_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/model.cpp" "src/ml/CMakeFiles/chpo_ml.dir/model.cpp.o" "gcc" "src/ml/CMakeFiles/chpo_ml.dir/model.cpp.o.d"
  "/root/repo/src/ml/optimizer.cpp" "src/ml/CMakeFiles/chpo_ml.dir/optimizer.cpp.o" "gcc" "src/ml/CMakeFiles/chpo_ml.dir/optimizer.cpp.o.d"
  "/root/repo/src/ml/schedule.cpp" "src/ml/CMakeFiles/chpo_ml.dir/schedule.cpp.o" "gcc" "src/ml/CMakeFiles/chpo_ml.dir/schedule.cpp.o.d"
  "/root/repo/src/ml/tensor.cpp" "src/ml/CMakeFiles/chpo_ml.dir/tensor.cpp.o" "gcc" "src/ml/CMakeFiles/chpo_ml.dir/tensor.cpp.o.d"
  "/root/repo/src/ml/trainer.cpp" "src/ml/CMakeFiles/chpo_ml.dir/trainer.cpp.o" "gcc" "src/ml/CMakeFiles/chpo_ml.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/chpo_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/chpo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/chpo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chpo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/jsonlite/CMakeFiles/chpo_jsonlite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
