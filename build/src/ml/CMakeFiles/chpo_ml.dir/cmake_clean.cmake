file(REMOVE_RECURSE
  "CMakeFiles/chpo_ml.dir/cost_model.cpp.o"
  "CMakeFiles/chpo_ml.dir/cost_model.cpp.o.d"
  "CMakeFiles/chpo_ml.dir/dataset.cpp.o"
  "CMakeFiles/chpo_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/chpo_ml.dir/distributed.cpp.o"
  "CMakeFiles/chpo_ml.dir/distributed.cpp.o.d"
  "CMakeFiles/chpo_ml.dir/layers.cpp.o"
  "CMakeFiles/chpo_ml.dir/layers.cpp.o.d"
  "CMakeFiles/chpo_ml.dir/metrics.cpp.o"
  "CMakeFiles/chpo_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/chpo_ml.dir/model.cpp.o"
  "CMakeFiles/chpo_ml.dir/model.cpp.o.d"
  "CMakeFiles/chpo_ml.dir/optimizer.cpp.o"
  "CMakeFiles/chpo_ml.dir/optimizer.cpp.o.d"
  "CMakeFiles/chpo_ml.dir/schedule.cpp.o"
  "CMakeFiles/chpo_ml.dir/schedule.cpp.o.d"
  "CMakeFiles/chpo_ml.dir/tensor.cpp.o"
  "CMakeFiles/chpo_ml.dir/tensor.cpp.o.d"
  "CMakeFiles/chpo_ml.dir/trainer.cpp.o"
  "CMakeFiles/chpo_ml.dir/trainer.cpp.o.d"
  "libchpo_ml.a"
  "libchpo_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chpo_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
