file(REMOVE_RECURSE
  "libchpo_cluster.a"
)
