# Empty compiler generated dependencies file for chpo_cluster.
# This may be replaced when dependencies are built.
