file(REMOVE_RECURSE
  "CMakeFiles/chpo_cluster.dir/cluster.cpp.o"
  "CMakeFiles/chpo_cluster.dir/cluster.cpp.o.d"
  "libchpo_cluster.a"
  "libchpo_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chpo_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
