# Empty compiler generated dependencies file for chpo_support.
# This may be replaced when dependencies are built.
