file(REMOVE_RECURSE
  "CMakeFiles/chpo_support.dir/args.cpp.o"
  "CMakeFiles/chpo_support.dir/args.cpp.o.d"
  "CMakeFiles/chpo_support.dir/log.cpp.o"
  "CMakeFiles/chpo_support.dir/log.cpp.o.d"
  "CMakeFiles/chpo_support.dir/parallel_for.cpp.o"
  "CMakeFiles/chpo_support.dir/parallel_for.cpp.o.d"
  "CMakeFiles/chpo_support.dir/rng.cpp.o"
  "CMakeFiles/chpo_support.dir/rng.cpp.o.d"
  "CMakeFiles/chpo_support.dir/strings.cpp.o"
  "CMakeFiles/chpo_support.dir/strings.cpp.o.d"
  "CMakeFiles/chpo_support.dir/thread_pool.cpp.o"
  "CMakeFiles/chpo_support.dir/thread_pool.cpp.o.d"
  "libchpo_support.a"
  "libchpo_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chpo_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
