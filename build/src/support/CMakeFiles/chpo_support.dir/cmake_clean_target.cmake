file(REMOVE_RECURSE
  "libchpo_support.a"
)
