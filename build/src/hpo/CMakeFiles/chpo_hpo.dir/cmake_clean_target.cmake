file(REMOVE_RECURSE
  "libchpo_hpo.a"
)
