
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpo/algorithms.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/algorithms.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/algorithms.cpp.o.d"
  "/root/repo/src/hpo/baseline.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/baseline.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/baseline.cpp.o.d"
  "/root/repo/src/hpo/checkpoint.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/checkpoint.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/checkpoint.cpp.o.d"
  "/root/repo/src/hpo/driver.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/driver.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/driver.cpp.o.d"
  "/root/repo/src/hpo/gp.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/gp.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/gp.cpp.o.d"
  "/root/repo/src/hpo/hyperband.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/hyperband.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/hyperband.cpp.o.d"
  "/root/repo/src/hpo/importance.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/importance.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/importance.cpp.o.d"
  "/root/repo/src/hpo/optimize.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/optimize.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/optimize.cpp.o.d"
  "/root/repo/src/hpo/report.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/report.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/report.cpp.o.d"
  "/root/repo/src/hpo/search_space.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/search_space.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/search_space.cpp.o.d"
  "/root/repo/src/hpo/tpe.cpp" "src/hpo/CMakeFiles/chpo_hpo.dir/tpe.cpp.o" "gcc" "src/hpo/CMakeFiles/chpo_hpo.dir/tpe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/chpo_support.dir/DependInfo.cmake"
  "/root/repo/build/src/jsonlite/CMakeFiles/chpo_jsonlite.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/chpo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/chpo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chpo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/chpo_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
