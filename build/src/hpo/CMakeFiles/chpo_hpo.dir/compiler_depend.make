# Empty compiler generated dependencies file for chpo_hpo.
# This may be replaced when dependencies are built.
