file(REMOVE_RECURSE
  "CMakeFiles/chpo_hpo.dir/algorithms.cpp.o"
  "CMakeFiles/chpo_hpo.dir/algorithms.cpp.o.d"
  "CMakeFiles/chpo_hpo.dir/baseline.cpp.o"
  "CMakeFiles/chpo_hpo.dir/baseline.cpp.o.d"
  "CMakeFiles/chpo_hpo.dir/checkpoint.cpp.o"
  "CMakeFiles/chpo_hpo.dir/checkpoint.cpp.o.d"
  "CMakeFiles/chpo_hpo.dir/driver.cpp.o"
  "CMakeFiles/chpo_hpo.dir/driver.cpp.o.d"
  "CMakeFiles/chpo_hpo.dir/gp.cpp.o"
  "CMakeFiles/chpo_hpo.dir/gp.cpp.o.d"
  "CMakeFiles/chpo_hpo.dir/hyperband.cpp.o"
  "CMakeFiles/chpo_hpo.dir/hyperband.cpp.o.d"
  "CMakeFiles/chpo_hpo.dir/importance.cpp.o"
  "CMakeFiles/chpo_hpo.dir/importance.cpp.o.d"
  "CMakeFiles/chpo_hpo.dir/optimize.cpp.o"
  "CMakeFiles/chpo_hpo.dir/optimize.cpp.o.d"
  "CMakeFiles/chpo_hpo.dir/report.cpp.o"
  "CMakeFiles/chpo_hpo.dir/report.cpp.o.d"
  "CMakeFiles/chpo_hpo.dir/search_space.cpp.o"
  "CMakeFiles/chpo_hpo.dir/search_space.cpp.o.d"
  "CMakeFiles/chpo_hpo.dir/tpe.cpp.o"
  "CMakeFiles/chpo_hpo.dir/tpe.cpp.o.d"
  "libchpo_hpo.a"
  "libchpo_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chpo_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
