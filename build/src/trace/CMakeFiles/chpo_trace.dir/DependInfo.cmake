
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/chpo_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/chpo_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/chrome_writer.cpp" "src/trace/CMakeFiles/chpo_trace.dir/chrome_writer.cpp.o" "gcc" "src/trace/CMakeFiles/chpo_trace.dir/chrome_writer.cpp.o.d"
  "/root/repo/src/trace/gantt.cpp" "src/trace/CMakeFiles/chpo_trace.dir/gantt.cpp.o" "gcc" "src/trace/CMakeFiles/chpo_trace.dir/gantt.cpp.o.d"
  "/root/repo/src/trace/prv_writer.cpp" "src/trace/CMakeFiles/chpo_trace.dir/prv_writer.cpp.o" "gcc" "src/trace/CMakeFiles/chpo_trace.dir/prv_writer.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/chpo_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/chpo_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/chpo_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/chpo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/jsonlite/CMakeFiles/chpo_jsonlite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
