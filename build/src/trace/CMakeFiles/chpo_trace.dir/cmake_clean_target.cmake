file(REMOVE_RECURSE
  "libchpo_trace.a"
)
