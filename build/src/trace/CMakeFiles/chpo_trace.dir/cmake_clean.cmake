file(REMOVE_RECURSE
  "CMakeFiles/chpo_trace.dir/analysis.cpp.o"
  "CMakeFiles/chpo_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/chpo_trace.dir/chrome_writer.cpp.o"
  "CMakeFiles/chpo_trace.dir/chrome_writer.cpp.o.d"
  "CMakeFiles/chpo_trace.dir/gantt.cpp.o"
  "CMakeFiles/chpo_trace.dir/gantt.cpp.o.d"
  "CMakeFiles/chpo_trace.dir/prv_writer.cpp.o"
  "CMakeFiles/chpo_trace.dir/prv_writer.cpp.o.d"
  "CMakeFiles/chpo_trace.dir/trace.cpp.o"
  "CMakeFiles/chpo_trace.dir/trace.cpp.o.d"
  "libchpo_trace.a"
  "libchpo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chpo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
