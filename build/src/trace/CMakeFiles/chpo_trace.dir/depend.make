# Empty dependencies file for chpo_trace.
# This may be replaced when dependencies are built.
