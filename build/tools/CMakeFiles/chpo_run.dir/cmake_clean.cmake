file(REMOVE_RECURSE
  "CMakeFiles/chpo_run.dir/chpo_run.cpp.o"
  "CMakeFiles/chpo_run.dir/chpo_run.cpp.o.d"
  "chpo_run"
  "chpo_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chpo_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
