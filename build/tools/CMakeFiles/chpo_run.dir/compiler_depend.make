# Empty compiler generated dependencies file for chpo_run.
# This may be replaced when dependencies are built.
