file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_features.dir/test_runtime_features.cpp.o"
  "CMakeFiles/test_runtime_features.dir/test_runtime_features.cpp.o.d"
  "test_runtime_features"
  "test_runtime_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
