# Empty compiler generated dependencies file for test_runtime_features.
# This may be replaced when dependencies are built.
