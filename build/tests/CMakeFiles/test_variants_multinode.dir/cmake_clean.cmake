file(REMOVE_RECURSE
  "CMakeFiles/test_variants_multinode.dir/test_variants_multinode.cpp.o"
  "CMakeFiles/test_variants_multinode.dir/test_variants_multinode.cpp.o.d"
  "test_variants_multinode"
  "test_variants_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variants_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
