# Empty compiler generated dependencies file for test_variants_multinode.
# This may be replaced when dependencies are built.
