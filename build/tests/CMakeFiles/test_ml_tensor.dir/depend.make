# Empty dependencies file for test_ml_tensor.
# This may be replaced when dependencies are built.
