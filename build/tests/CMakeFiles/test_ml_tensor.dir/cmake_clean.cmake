file(REMOVE_RECURSE
  "CMakeFiles/test_ml_tensor.dir/test_ml_tensor.cpp.o"
  "CMakeFiles/test_ml_tensor.dir/test_ml_tensor.cpp.o.d"
  "test_ml_tensor"
  "test_ml_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
