file(REMOVE_RECURSE
  "CMakeFiles/test_hpo_gp.dir/test_hpo_gp.cpp.o"
  "CMakeFiles/test_hpo_gp.dir/test_hpo_gp.cpp.o.d"
  "test_hpo_gp"
  "test_hpo_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpo_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
