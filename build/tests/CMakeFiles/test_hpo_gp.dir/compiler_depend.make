# Empty compiler generated dependencies file for test_hpo_gp.
# This may be replaced when dependencies are built.
