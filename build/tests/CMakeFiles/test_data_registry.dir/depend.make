# Empty dependencies file for test_data_registry.
# This may be replaced when dependencies are built.
