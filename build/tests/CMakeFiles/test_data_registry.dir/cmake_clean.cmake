file(REMOVE_RECURSE
  "CMakeFiles/test_data_registry.dir/test_data_registry.cpp.o"
  "CMakeFiles/test_data_registry.dir/test_data_registry.cpp.o.d"
  "test_data_registry"
  "test_data_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
