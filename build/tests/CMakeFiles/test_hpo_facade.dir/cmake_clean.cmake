file(REMOVE_RECURSE
  "CMakeFiles/test_hpo_facade.dir/test_hpo_facade.cpp.o"
  "CMakeFiles/test_hpo_facade.dir/test_hpo_facade.cpp.o.d"
  "test_hpo_facade"
  "test_hpo_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpo_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
