# Empty compiler generated dependencies file for test_hpo_facade.
# This may be replaced when dependencies are built.
