file(REMOVE_RECURSE
  "CMakeFiles/test_ml_extensions.dir/test_ml_extensions.cpp.o"
  "CMakeFiles/test_ml_extensions.dir/test_ml_extensions.cpp.o.d"
  "test_ml_extensions"
  "test_ml_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
