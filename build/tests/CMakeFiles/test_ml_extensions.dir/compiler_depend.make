# Empty compiler generated dependencies file for test_ml_extensions.
# This may be replaced when dependencies are built.
