file(REMOVE_RECURSE
  "CMakeFiles/test_hpo_tpe.dir/test_hpo_tpe.cpp.o"
  "CMakeFiles/test_hpo_tpe.dir/test_hpo_tpe.cpp.o.d"
  "test_hpo_tpe"
  "test_hpo_tpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpo_tpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
