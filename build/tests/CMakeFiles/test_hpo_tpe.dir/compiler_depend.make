# Empty compiler generated dependencies file for test_hpo_tpe.
# This may be replaced when dependencies are built.
