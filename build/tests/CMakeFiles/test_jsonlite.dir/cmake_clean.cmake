file(REMOVE_RECURSE
  "CMakeFiles/test_jsonlite.dir/test_jsonlite.cpp.o"
  "CMakeFiles/test_jsonlite.dir/test_jsonlite.cpp.o.d"
  "test_jsonlite"
  "test_jsonlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jsonlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
