# Empty compiler generated dependencies file for test_jsonlite.
# This may be replaced when dependencies are built.
