file(REMOVE_RECURSE
  "CMakeFiles/test_hpo_importance.dir/test_hpo_importance.cpp.o"
  "CMakeFiles/test_hpo_importance.dir/test_hpo_importance.cpp.o.d"
  "test_hpo_importance"
  "test_hpo_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpo_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
