# Empty dependencies file for test_hpo_importance.
# This may be replaced when dependencies are built.
