file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_sim.dir/test_runtime_sim.cpp.o"
  "CMakeFiles/test_runtime_sim.dir/test_runtime_sim.cpp.o.d"
  "test_runtime_sim"
  "test_runtime_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
