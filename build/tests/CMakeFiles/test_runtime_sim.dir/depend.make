# Empty dependencies file for test_runtime_sim.
# This may be replaced when dependencies are built.
