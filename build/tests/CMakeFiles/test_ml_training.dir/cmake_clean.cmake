file(REMOVE_RECURSE
  "CMakeFiles/test_ml_training.dir/test_ml_training.cpp.o"
  "CMakeFiles/test_ml_training.dir/test_ml_training.cpp.o.d"
  "test_ml_training"
  "test_ml_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
