# Empty dependencies file for test_ml_training.
# This may be replaced when dependencies are built.
