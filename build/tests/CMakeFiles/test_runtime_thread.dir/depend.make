# Empty dependencies file for test_runtime_thread.
# This may be replaced when dependencies are built.
