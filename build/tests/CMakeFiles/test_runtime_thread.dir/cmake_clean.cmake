file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_thread.dir/test_runtime_thread.cpp.o"
  "CMakeFiles/test_runtime_thread.dir/test_runtime_thread.cpp.o.d"
  "test_runtime_thread"
  "test_runtime_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
