# Empty dependencies file for test_ml_optim.
# This may be replaced when dependencies are built.
