file(REMOVE_RECURSE
  "CMakeFiles/test_ml_optim.dir/test_ml_optim.cpp.o"
  "CMakeFiles/test_ml_optim.dir/test_ml_optim.cpp.o.d"
  "test_ml_optim"
  "test_ml_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
