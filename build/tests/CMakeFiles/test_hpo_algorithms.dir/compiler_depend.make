# Empty compiler generated dependencies file for test_hpo_algorithms.
# This may be replaced when dependencies are built.
