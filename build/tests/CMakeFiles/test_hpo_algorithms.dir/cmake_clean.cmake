file(REMOVE_RECURSE
  "CMakeFiles/test_hpo_algorithms.dir/test_hpo_algorithms.cpp.o"
  "CMakeFiles/test_hpo_algorithms.dir/test_hpo_algorithms.cpp.o.d"
  "test_hpo_algorithms"
  "test_hpo_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpo_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
