file(REMOVE_RECURSE
  "CMakeFiles/test_hpo_driver.dir/test_hpo_driver.cpp.o"
  "CMakeFiles/test_hpo_driver.dir/test_hpo_driver.cpp.o.d"
  "test_hpo_driver"
  "test_hpo_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpo_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
