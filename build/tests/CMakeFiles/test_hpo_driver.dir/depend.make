# Empty dependencies file for test_hpo_driver.
# This may be replaced when dependencies are built.
