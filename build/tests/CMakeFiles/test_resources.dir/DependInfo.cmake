
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_resources.cpp" "tests/CMakeFiles/test_resources.dir/test_resources.cpp.o" "gcc" "tests/CMakeFiles/test_resources.dir/test_resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpo/CMakeFiles/chpo_hpo.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/chpo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/chpo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chpo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/jsonlite/CMakeFiles/chpo_jsonlite.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/chpo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/chpo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
