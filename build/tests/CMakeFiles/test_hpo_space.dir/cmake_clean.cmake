file(REMOVE_RECURSE
  "CMakeFiles/test_hpo_space.dir/test_hpo_space.cpp.o"
  "CMakeFiles/test_hpo_space.dir/test_hpo_space.cpp.o.d"
  "test_hpo_space"
  "test_hpo_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpo_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
