# Empty compiler generated dependencies file for test_hpo_space.
# This may be replaced when dependencies are built.
