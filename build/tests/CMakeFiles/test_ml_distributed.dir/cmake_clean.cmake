file(REMOVE_RECURSE
  "CMakeFiles/test_ml_distributed.dir/test_ml_distributed.cpp.o"
  "CMakeFiles/test_ml_distributed.dir/test_ml_distributed.cpp.o.d"
  "test_ml_distributed"
  "test_ml_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
