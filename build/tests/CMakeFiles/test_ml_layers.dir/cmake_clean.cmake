file(REMOVE_RECURSE
  "CMakeFiles/test_ml_layers.dir/test_ml_layers.cpp.o"
  "CMakeFiles/test_ml_layers.dir/test_ml_layers.cpp.o.d"
  "test_ml_layers"
  "test_ml_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
