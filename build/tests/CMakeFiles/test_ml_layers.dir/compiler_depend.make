# Empty compiler generated dependencies file for test_ml_layers.
# This may be replaced when dependencies are built.
