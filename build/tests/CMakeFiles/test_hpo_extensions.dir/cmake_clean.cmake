file(REMOVE_RECURSE
  "CMakeFiles/test_hpo_extensions.dir/test_hpo_extensions.cpp.o"
  "CMakeFiles/test_hpo_extensions.dir/test_hpo_extensions.cpp.o.d"
  "test_hpo_extensions"
  "test_hpo_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpo_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
