# Empty dependencies file for test_hpo_extensions.
# This may be replaced when dependencies are built.
