file(REMOVE_RECURSE
  "CMakeFiles/test_fault_tolerance.dir/test_fault_tolerance.cpp.o"
  "CMakeFiles/test_fault_tolerance.dir/test_fault_tolerance.cpp.o.d"
  "test_fault_tolerance"
  "test_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
