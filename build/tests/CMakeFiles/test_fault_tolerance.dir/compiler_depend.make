# Empty compiler generated dependencies file for test_fault_tolerance.
# This may be replaced when dependencies are built.
