file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduler_ablation.dir/bench_scheduler_ablation.cpp.o"
  "CMakeFiles/bench_scheduler_ablation.dir/bench_scheduler_ablation.cpp.o.d"
  "bench_scheduler_ablation"
  "bench_scheduler_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
