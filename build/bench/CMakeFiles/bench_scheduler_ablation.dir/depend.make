# Empty dependencies file for bench_scheduler_ablation.
# This may be replaced when dependencies are built.
