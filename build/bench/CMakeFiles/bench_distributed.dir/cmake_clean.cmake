file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed.dir/bench_distributed.cpp.o"
  "CMakeFiles/bench_distributed.dir/bench_distributed.cpp.o.d"
  "bench_distributed"
  "bench_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
