# Empty compiler generated dependencies file for bench_distributed.
# This may be replaced when dependencies are built.
