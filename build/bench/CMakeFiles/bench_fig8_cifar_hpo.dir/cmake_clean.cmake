file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cifar_hpo.dir/bench_fig8_cifar_hpo.cpp.o"
  "CMakeFiles/bench_fig8_cifar_hpo.dir/bench_fig8_cifar_hpo.cpp.o.d"
  "bench_fig8_cifar_hpo"
  "bench_fig8_cifar_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cifar_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
