# Empty dependencies file for bench_fig8_cifar_hpo.
# This may be replaced when dependencies are built.
