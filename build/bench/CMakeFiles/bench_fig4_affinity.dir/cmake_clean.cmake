file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_affinity.dir/bench_fig4_affinity.cpp.o"
  "CMakeFiles/bench_fig4_affinity.dir/bench_fig4_affinity.cpp.o.d"
  "bench_fig4_affinity"
  "bench_fig4_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
