# Empty compiler generated dependencies file for bench_fig4_affinity.
# This may be replaced when dependencies are built.
