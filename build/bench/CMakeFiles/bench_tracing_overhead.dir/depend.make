# Empty dependencies file for bench_tracing_overhead.
# This may be replaced when dependencies are built.
