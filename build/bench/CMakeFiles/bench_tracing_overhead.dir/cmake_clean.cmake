file(REMOVE_RECURSE
  "CMakeFiles/bench_tracing_overhead.dir/bench_tracing_overhead.cpp.o"
  "CMakeFiles/bench_tracing_overhead.dir/bench_tracing_overhead.cpp.o.d"
  "bench_tracing_overhead"
  "bench_tracing_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tracing_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
