# Empty dependencies file for bench_fig7_mnist_hpo.
# This may be replaced when dependencies are built.
