# Empty dependencies file for bench_fault_tolerance.
# This may be replaced when dependencies are built.
