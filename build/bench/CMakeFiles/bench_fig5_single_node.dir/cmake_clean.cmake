file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_single_node.dir/bench_fig5_single_node.cpp.o"
  "CMakeFiles/bench_fig5_single_node.dir/bench_fig5_single_node.cpp.o.d"
  "bench_fig5_single_node"
  "bench_fig5_single_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_single_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
