# Empty dependencies file for bench_fig5_single_node.
# This may be replaced when dependencies are built.
