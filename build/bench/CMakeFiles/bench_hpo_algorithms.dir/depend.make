# Empty dependencies file for bench_hpo_algorithms.
# This may be replaced when dependencies are built.
