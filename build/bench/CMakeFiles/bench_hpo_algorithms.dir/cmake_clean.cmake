file(REMOVE_RECURSE
  "CMakeFiles/bench_hpo_algorithms.dir/bench_hpo_algorithms.cpp.o"
  "CMakeFiles/bench_hpo_algorithms.dir/bench_hpo_algorithms.cpp.o.d"
  "bench_hpo_algorithms"
  "bench_hpo_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hpo_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
