# Empty dependencies file for bench_fig3_taskgraph.
# This may be replaced when dependencies are built.
