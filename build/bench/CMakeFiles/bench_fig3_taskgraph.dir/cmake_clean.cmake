file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_taskgraph.dir/bench_fig3_taskgraph.cpp.o"
  "CMakeFiles/bench_fig3_taskgraph.dir/bench_fig3_taskgraph.cpp.o.d"
  "bench_fig3_taskgraph"
  "bench_fig3_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
