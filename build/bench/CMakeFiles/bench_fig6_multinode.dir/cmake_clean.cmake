file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_multinode.dir/bench_fig6_multinode.cpp.o"
  "CMakeFiles/bench_fig6_multinode.dir/bench_fig6_multinode.cpp.o.d"
  "bench_fig6_multinode"
  "bench_fig6_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
