file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_time_vs_cores.dir/bench_fig9_time_vs_cores.cpp.o"
  "CMakeFiles/bench_fig9_time_vs_cores.dir/bench_fig9_time_vs_cores.cpp.o.d"
  "bench_fig9_time_vs_cores"
  "bench_fig9_time_vs_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_time_vs_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
