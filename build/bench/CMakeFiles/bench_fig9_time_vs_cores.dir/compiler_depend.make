# Empty compiler generated dependencies file for bench_fig9_time_vs_cores.
# This may be replaced when dependencies are built.
