file(REMOVE_RECURSE
  "CMakeFiles/bench_variants.dir/bench_variants.cpp.o"
  "CMakeFiles/bench_variants.dir/bench_variants.cpp.o.d"
  "bench_variants"
  "bench_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
