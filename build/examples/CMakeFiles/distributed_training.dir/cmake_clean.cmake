file(REMOVE_RECURSE
  "CMakeFiles/distributed_training.dir/distributed_training.cpp.o"
  "CMakeFiles/distributed_training.dir/distributed_training.cpp.o.d"
  "distributed_training"
  "distributed_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
