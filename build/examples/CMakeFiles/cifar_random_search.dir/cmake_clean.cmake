file(REMOVE_RECURSE
  "CMakeFiles/cifar_random_search.dir/cifar_random_search.cpp.o"
  "CMakeFiles/cifar_random_search.dir/cifar_random_search.cpp.o.d"
  "cifar_random_search"
  "cifar_random_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar_random_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
