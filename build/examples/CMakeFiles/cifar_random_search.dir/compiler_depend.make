# Empty compiler generated dependencies file for cifar_random_search.
# This may be replaced when dependencies are built.
