file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerance_demo.dir/fault_tolerance_demo.cpp.o"
  "CMakeFiles/fault_tolerance_demo.dir/fault_tolerance_demo.cpp.o.d"
  "fault_tolerance_demo"
  "fault_tolerance_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerance_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
