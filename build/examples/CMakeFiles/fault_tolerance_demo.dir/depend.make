# Empty dependencies file for fault_tolerance_demo.
# This may be replaced when dependencies are built.
