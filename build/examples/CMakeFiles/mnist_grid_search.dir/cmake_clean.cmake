file(REMOVE_RECURSE
  "CMakeFiles/mnist_grid_search.dir/mnist_grid_search.cpp.o"
  "CMakeFiles/mnist_grid_search.dir/mnist_grid_search.cpp.o.d"
  "mnist_grid_search"
  "mnist_grid_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_grid_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
