# Empty compiler generated dependencies file for mnist_grid_search.
# This may be replaced when dependencies are built.
