file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_cluster.dir/heterogeneous_cluster.cpp.o"
  "CMakeFiles/heterogeneous_cluster.dir/heterogeneous_cluster.cpp.o.d"
  "heterogeneous_cluster"
  "heterogeneous_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
