# Empty compiler generated dependencies file for heterogeneous_cluster.
# This may be replaced when dependencies are built.
