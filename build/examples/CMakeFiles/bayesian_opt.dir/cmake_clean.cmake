file(REMOVE_RECURSE
  "CMakeFiles/bayesian_opt.dir/bayesian_opt.cpp.o"
  "CMakeFiles/bayesian_opt.dir/bayesian_opt.cpp.o.d"
  "bayesian_opt"
  "bayesian_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayesian_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
