# Empty dependencies file for bayesian_opt.
# This may be replaced when dependencies are built.
