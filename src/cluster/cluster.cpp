#include "cluster/cluster.hpp"

#include <algorithm>

namespace chpo::cluster {

unsigned ClusterSpec::usable_cpus(std::size_t node) const {
  if (node >= nodes.size() || !node_usable(node)) return 0;
  const unsigned cpus = nodes[node].cpus;
  if (worker_placement == WorkerPlacement::SharedCores)
    return cpus > worker_cores ? cpus - worker_cores : 0;
  return cpus;
}

unsigned ClusterSpec::usable_gpus(std::size_t node) const {
  if (node >= nodes.size() || !node_usable(node)) return 0;
  return nodes[node].gpus;
}

bool ClusterSpec::node_usable(std::size_t node) const {
  if (node >= nodes.size()) return false;
  if (worker_placement == WorkerPlacement::DedicatedNode && node == 0) return false;
  return true;
}

unsigned ClusterSpec::total_usable_cpus() const {
  unsigned total = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) total += usable_cpus(i);
  return total;
}

unsigned ClusterSpec::total_usable_gpus() const {
  unsigned total = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) total += usable_gpus(i);
  return total;
}

NodeSpec marenostrum4_node() {
  return NodeSpec{.name = "mn4", .cpus = 48, .gpus = 0, .core_rate = 1.0, .gpu_rate = 0.0, .memory_gb = 96.0};
}

NodeSpec minotauro_node() {
  // K80s are older parts: model them at a modest multiple of an MN4 core.
  return NodeSpec{.name = "minotauro", .cpus = 16, .gpus = 2, .core_rate = 0.85, .gpu_rate = 18.0, .memory_gb = 128.0};
}

NodeSpec power9_node() {
  // 160 hardware threads; each is weaker than an MN4 core, but 4 V100s are fast.
  return NodeSpec{.name = "power9", .cpus = 160, .gpus = 4, .core_rate = 0.55, .gpu_rate = 45.0, .memory_gb = 512.0};
}

ClusterSpec homogeneous(std::size_t n, NodeSpec node) {
  ClusterSpec spec;
  spec.nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeSpec copy = node;
    copy.name += "-" + std::to_string(i);
    spec.nodes.push_back(std::move(copy));
  }
  return spec;
}

ClusterSpec marenostrum4(std::size_t n_nodes) { return homogeneous(n_nodes, marenostrum4_node()); }

ClusterSpec minotauro(std::size_t n_nodes) { return homogeneous(n_nodes, minotauro_node()); }

ClusterSpec power9(std::size_t n_nodes) { return homogeneous(n_nodes, power9_node()); }

}  // namespace chpo::cluster
