// Cluster and resource model.
//
// Describes the machines the paper evaluates on — MareNostrum 4 CPU nodes,
// MinoTauro K80 nodes and CTE-POWER9 V100 nodes — as data the scheduler and
// the discrete-event backend consume. Nothing here executes work; it only
// answers "what resources exist, how fast are they, and what does moving
// data between them cost".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chpo::cluster {

/// One machine in the cluster.
struct NodeSpec {
  std::string name;
  unsigned cpus = 1;          ///< usable cores (before worker reservation)
  unsigned gpus = 0;
  double core_rate = 1.0;     ///< relative per-core compute rate (MN4 core = 1.0)
  double gpu_rate = 30.0;     ///< relative per-GPU compute rate vs one MN4 core
  double memory_gb = 96.0;
};

/// Interconnect + filesystem cost model used when tasks need remote data.
struct TransferModel {
  double latency_s = 5e-6;          ///< per-message latency
  double bandwidth_gbps = 12.5;     ///< GB/s (≈100 Gb/s EDR InfiniBand)

  /// Seconds to move `bytes` from one node to another.
  double transfer_seconds(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / (bandwidth_gbps * 1e9);
  }
};

/// Where the COMPSs worker process lives. The paper's single-node runs lose
/// half the node's cores to the worker; its multi-node runs dedicate a full
/// extra node to it ("the first node seems empty as it is used by the
/// worker", §6.1).
enum class WorkerPlacement {
  None,           ///< all cores of all nodes are usable by tasks
  SharedCores,    ///< every node reserves `worker_cores` cores for the worker
  DedicatedNode,  ///< node 0 is entirely reserved for the worker
};

struct ClusterSpec {
  std::vector<NodeSpec> nodes;
  bool has_parallel_fs = true;  ///< GPFS-style PFS: no per-task input staging
  TransferModel network;
  WorkerPlacement worker_placement = WorkerPlacement::None;
  unsigned worker_cores = 0;  ///< used when placement == SharedCores

  /// Cores of `node` that tasks may occupy after worker reservation.
  unsigned usable_cpus(std::size_t node) const;
  unsigned usable_gpus(std::size_t node) const;
  /// True if tasks may run on this node at all.
  bool node_usable(std::size_t node) const;

  unsigned total_usable_cpus() const;
  unsigned total_usable_gpus() const;
  std::size_t node_count() const { return nodes.size(); }
};

/// MareNostrum 4 compute node: 2x Intel Xeon Platinum 8160, 24 cores each.
NodeSpec marenostrum4_node();

/// MinoTauro node: 2x Xeon E5-2630 v3 8-core + 2x NVIDIA K80.
NodeSpec minotauro_node();

/// CTE-POWER9 node: 2x POWER9 (160 hardware threads) + 4x NVIDIA V100.
NodeSpec power9_node();

/// Homogeneous cluster of `n` copies of `node`.
ClusterSpec homogeneous(std::size_t n, NodeSpec node);

/// Paper presets.
ClusterSpec marenostrum4(std::size_t n_nodes);
ClusterSpec minotauro(std::size_t n_nodes);
ClusterSpec power9(std::size_t n_nodes);

}  // namespace chpo::cluster
