#include "hpo/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "reuse/snapshot_io.hpp"
#include "support/log.hpp"

namespace chpo::hpo {

json::Value trial_to_json(const Trial& trial) {
  json::Value out;
  out.set("index", json::Value(static_cast<std::int64_t>(trial.index)));
  out.set("config", trial.config);
  out.set("failed", json::Value(trial.failed));
  if (trial.failed) {
    out.set("failure_reason", json::Value(trial.failure_reason));
    return out;
  }
  // The result fields share their representation with the reuse cache's
  // TrainResult entries; inline them at the trial's top level.
  json::Value result = reuse::train_result_to_json(trial.result);
  for (auto& [key, field] : result.as_object()) out.set(key, std::move(field));
  return out;
}

Trial trial_from_json(const json::Value& value) {
  Trial trial;
  trial.index = static_cast<int>(value.at("index").as_int());
  trial.config = value.at("config");
  trial.failed = value.at("failed").as_bool();
  if (trial.failed) {
    if (value.contains("failure_reason"))
      trial.failure_reason = value.at("failure_reason").as_string();
    return trial;
  }
  trial.result = reuse::train_result_from_json(value);
  return trial;
}

json::Value trials_to_json(const std::vector<Trial>& trials) {
  json::Array array;
  array.reserve(trials.size());
  for (const Trial& t : trials) array.push_back(trial_to_json(t));
  json::Value out;
  out.set("format", json::Value("chpo-checkpoint-v1"));
  out.set("trials", json::Value(std::move(array)));
  return out;
}

std::vector<Trial> trials_from_json(const json::Value& value) {
  if (!value.contains("format") || value.at("format").as_string() != "chpo-checkpoint-v1")
    throw json::JsonError("checkpoint: unknown format");
  std::vector<Trial> out;
  for (const auto& t : value.at("trials").as_array()) out.push_back(trial_from_json(t));
  return out;
}

void save_checkpoint(const std::string& path, const std::vector<Trial>& trials) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot write " + tmp);
    out << json::serialize_pretty(trials_to_json(trials)) << "\n";
  }
  std::filesystem::rename(tmp, path);
}

std::vector<Trial> load_checkpoint(const std::string& path) {
  if (!std::filesystem::exists(path)) return {};
  // A checkpoint exists to survive crashes — including a crash mid-write of
  // the checkpoint itself (or disk corruption). A file we cannot parse is a
  // warned fresh start, never a fatal error; a file that parses but holds
  // some damaged trial entries is salvaged entry by entry (the ResultCache
  // policy): every intact trial is kept, the rest retrain.
  try {
    const json::Value value = json::parse_file(path);
    if (!value.contains("format") || value.at("format").as_string() != "chpo-checkpoint-v1")
      throw json::JsonError("checkpoint: unknown format");
    std::vector<Trial> out;
    std::size_t skipped = 0;
    for (const auto& t : value.at("trials").as_array()) {
      try {
        out.push_back(trial_from_json(t));
      } catch (const std::exception& e) {
        ++skipped;
        log_warn("hpo", "checkpoint {}: skipping corrupt trial entry ({})", path, e.what());
      }
    }
    if (skipped > 0)
      log_warn("hpo", "checkpoint {}: salvaged {} of {} trials", path, out.size(),
               out.size() + skipped);
    return out;
  } catch (const std::exception& e) {
    log_warn("hpo", "checkpoint {} unreadable ({}); starting fresh", path, e.what());
    return {};
  }
}

const Trial* find_completed(const std::vector<Trial>& previous, const Config& config) {
  const std::string key = json::serialize(config);
  for (const Trial& t : previous)
    if (!t.failed && json::serialize(t.config) == key) return &t;
  return nullptr;
}

}  // namespace chpo::hpo
