#include "hpo/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace chpo::hpo {

json::Value trial_to_json(const Trial& trial) {
  json::Value out;
  out.set("index", json::Value(static_cast<std::int64_t>(trial.index)));
  out.set("config", trial.config);
  out.set("failed", json::Value(trial.failed));
  if (trial.failed) {
    out.set("failure_reason", json::Value(trial.failure_reason));
    return out;
  }
  json::Array history;
  for (const auto& epoch : trial.result.history) {
    json::Value e;
    e.set("epoch", json::Value(static_cast<std::int64_t>(epoch.epoch)));
    e.set("train_loss", json::Value(epoch.train_loss));
    e.set("train_accuracy", json::Value(epoch.train_accuracy));
    e.set("val_accuracy", json::Value(epoch.val_accuracy));
    history.push_back(std::move(e));
  }
  out.set("history", json::Value(std::move(history)));
  out.set("final_val_accuracy", json::Value(trial.result.final_val_accuracy));
  out.set("best_val_accuracy", json::Value(trial.result.best_val_accuracy));
  out.set("epochs_run", json::Value(static_cast<std::int64_t>(trial.result.epochs_run)));
  out.set("stopped_early", json::Value(trial.result.stopped_early));
  return out;
}

Trial trial_from_json(const json::Value& value) {
  Trial trial;
  trial.index = static_cast<int>(value.at("index").as_int());
  trial.config = value.at("config");
  trial.failed = value.at("failed").as_bool();
  if (trial.failed) {
    if (value.contains("failure_reason"))
      trial.failure_reason = value.at("failure_reason").as_string();
    return trial;
  }
  for (const auto& e : value.at("history").as_array()) {
    ml::EpochStats stats;
    stats.epoch = static_cast<int>(e.at("epoch").as_int());
    stats.train_loss = e.at("train_loss").as_double();
    stats.train_accuracy = e.at("train_accuracy").as_double();
    stats.val_accuracy = e.at("val_accuracy").as_double();
    trial.result.history.push_back(stats);
  }
  trial.result.final_val_accuracy = value.at("final_val_accuracy").as_double();
  trial.result.best_val_accuracy = value.at("best_val_accuracy").as_double();
  trial.result.epochs_run = static_cast<int>(value.at("epochs_run").as_int());
  trial.result.stopped_early = value.at("stopped_early").as_bool();
  return trial;
}

json::Value trials_to_json(const std::vector<Trial>& trials) {
  json::Array array;
  array.reserve(trials.size());
  for (const Trial& t : trials) array.push_back(trial_to_json(t));
  json::Value out;
  out.set("format", json::Value("chpo-checkpoint-v1"));
  out.set("trials", json::Value(std::move(array)));
  return out;
}

std::vector<Trial> trials_from_json(const json::Value& value) {
  if (!value.contains("format") || value.at("format").as_string() != "chpo-checkpoint-v1")
    throw json::JsonError("checkpoint: unknown format");
  std::vector<Trial> out;
  for (const auto& t : value.at("trials").as_array()) out.push_back(trial_from_json(t));
  return out;
}

void save_checkpoint(const std::string& path, const std::vector<Trial>& trials) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot write " + tmp);
    out << json::serialize_pretty(trials_to_json(trials)) << "\n";
  }
  std::filesystem::rename(tmp, path);
}

std::vector<Trial> load_checkpoint(const std::string& path) {
  if (!std::filesystem::exists(path)) return {};
  return trials_from_json(json::parse_file(path));
}

const Trial* find_completed(const std::vector<Trial>& previous, const Config& config) {
  const std::string key = json::serialize(config);
  for (const Trial& t : previous)
    if (!t.failed && json::serialize(t.config) == key) return &t;
  return nullptr;
}

}  // namespace chpo::hpo
