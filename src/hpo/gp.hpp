// Minimal Gaussian-process regression for Bayesian optimisation.
//
// RBF kernel, zero prior mean, observation noise on the diagonal, exact
// inference via Cholesky factorisation. Dimensions are expected to be
// normalised to [0,1] (SearchSpace::encode does this), so a single
// lengthscale is adequate.
#pragma once

#include <cstddef>
#include <vector>

namespace chpo::hpo {

class GaussianProcess {
 public:
  GaussianProcess(double lengthscale, double signal_variance, double noise);

  /// Fit on rows `xs` with targets `ys`. Throws std::invalid_argument on
  /// shape mismatch or a non-positive-definite kernel matrix.
  void fit(const std::vector<std::vector<double>>& xs, const std::vector<double>& ys);

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };
  Prediction predict(const std::vector<double>& x) const;

  bool fitted() const { return !xs_.empty(); }
  std::size_t training_size() const { return xs_.size(); }

  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;

 private:
  double lengthscale_, signal_variance_, noise_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> mean_shifted_ys_;  ///< ys - mean(ys)
  double y_mean_ = 0.0;
  std::vector<double> chol_;   ///< lower-triangular Cholesky factor, row-major
  std::vector<double> alpha_;  ///< K^{-1} (y - mean)
};

/// Expected improvement of predicted (mean, variance) over `best` (higher
/// scores are better). xi is the exploration bonus.
double expected_improvement(double mean, double variance, double best, double xi = 0.01);

}  // namespace chpo::hpo
