#include "hpo/study_run.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "hpo/checkpoint.hpp"
#include "support/log.hpp"

namespace chpo::hpo {

namespace {

/// The paper's `visualisation` task: condenses one experiment's result to
/// a report line (accuracy trajectory), running as a task of its own.
rt::TaskDef make_visualisation_task(const Config& config) {
  rt::TaskDef def;
  def.name = "visualisation";
  const std::string brief = config_brief(config);
  def.body = [brief](rt::TaskContext& ctx) -> std::any {
    const auto& result = ctx.read<ml::TrainResult>(0);
    std::string line = brief + " ->";
    for (const auto& epoch : result.history) {
      char buf[16];
      std::snprintf(buf, sizeof buf, " %.3f", epoch.val_accuracy);
      line += buf;
    }
    return line;
  };
  return def;
}

/// The final `plot` task (compss_wait_on target in Figure 2): merges all
/// visualisation lines into one report.
rt::TaskDef make_plot_task() {
  rt::TaskDef def;
  def.name = "plot";
  def.body = [](rt::TaskContext& ctx) -> std::any {
    std::string report = "validation accuracy per epoch, one line per experiment\n";
    for (std::size_t i = 0; i < ctx.param_count() - 1; ++i)
      report += ctx.read<std::string>(i) + "\n";
    return report;
  };
  return def;
}

/// Trials were consumed in completion order; report them in submission
/// order so callers and reports stay deterministic.
void finalise_outcome(HpoOutcome& outcome, double t0, double now) {
  outcome.elapsed_seconds = now - t0;
  std::sort(outcome.trials.begin(), outcome.trials.end(),
            [](const Trial& a, const Trial& b) { return a.index < b.index; });
  double best = -1.0;
  for (std::size_t i = 0; i < outcome.trials.size(); ++i) {
    const Trial& t = outcome.trials[i];
    if (t.failed) continue;
    if (t.result.final_val_accuracy > best) {
      best = t.result.final_val_accuracy;
      outcome.best_index = static_cast<int>(i);
    }
  }
}

}  // namespace

bool TrialPump::owns(const rt::Future& finished) const {
  for (const rt::Future& f : inflight())
    if (f.producer == finished.producer) return true;
  return false;
}

// ---------------------------------------------------------------------------
// StudyRun
// ---------------------------------------------------------------------------

StudyRun::StudyRun(rt::StudySession session, const ml::Dataset& dataset, DriverOptions options,
                   SearchAlgorithm& algorithm)
    : session_(session), dataset_(dataset), options_(std::move(options)), algorithm_(algorithm) {}

bool StudyRun::stop_hit(const Trial& trial) const {
  return options_.stop_on_accuracy > 0 && !trial.failed &&
         trial.result.final_val_accuracy >= options_.stop_on_accuracy;
}

void StudyRun::record_replayed(const Config& config, const ml::TrainResult& result) {
  Trial trial;
  trial.index = next_index_++;
  trial.config = config;
  trial.result = result;
  algorithm_.tell(trial.config, trial.result.final_val_accuracy);
  ++replayed_;
  outcome_.trials.push_back(std::move(trial));
  if (stop_hit(outcome_.trials.back())) {
    stopped_ = true;
    cancel_outstanding();
  }
}

void StudyRun::rebuild_futures() {
  inflight_futures_.clear();
  inflight_futures_.reserve(inflight_.size());
  for (const InFlight& f : inflight_) inflight_futures_.push_back(f.future);
}

void StudyRun::start() {
  t0_ = session_.now();
  started_ = true;
  restored_ = options_.checkpoint_path.empty() ? std::vector<Trial>{}
                                               : load_checkpoint(options_.checkpoint_path);

  // Cross-trial reuse: trials become stage chains through a shared
  // executor + cache instead of monolithic experiment tasks. CV trials
  // keep the classic path (fold training has no stage decomposition).
  const bool use_reuse = options_.reuse.enabled && options_.cv_folds <= 1;
  if (use_reuse)
    executor_.emplace(session_, dataset_, options_.reuse, options_.trial_constraint,
                      options_.workload, std::make_shared<reuse::ResultCache>(options_.reuse));

  // Batch algorithms are drained up front (the paper's embarrassingly
  // parallel loop); sequential ones keep a window of suggestions in flight.
  window_ = algorithm_.sequential()
                ? static_cast<std::size_t>(std::max(1, options_.parallel_suggestions))
                : std::numeric_limits<std::size_t>::max();

  if (executor_ && !algorithm_.sequential())
    start_batch_reuse();
  else
    top_up();
  rebuild_futures();
  log_info("hpo", "{} [study {}]: {} trials in flight, window {} ({} replayed from checkpoint)",
           algorithm_.name(), session_.id(), inflight_.size(),
           window_ == std::numeric_limits<std::size_t>::max() ? std::string("all")
                                                              : std::to_string(window_),
           replayed_);
}

void StudyRun::top_up() {
  if (refill_paused_) return;
  while (!stopped_ && !exhausted_ && inflight_.size() < window_) {
    const std::optional<Config> config = algorithm_.next();
    if (!config) {
      exhausted_ = true;
      break;
    }
    if (const Trial* previous = find_completed(restored_, *config)) {
      record_replayed(*config, previous->result);
      continue;
    }
    InFlight f;
    f.index = next_index_++;
    f.config = *config;
    if (executor_) {
      reuse::TrialRequest req;
      req.index = f.index;
      req.config = experiment_train_config(*config, options_, f.index);
      std::vector<reuse::SubmittedTrial> submitted = executor_->submit({req});
      if (!submitted.empty() && submitted.front().replayed) {
        // Served entirely by the result cache; next_index_ already moved on.
        Trial trial;
        trial.index = f.index;
        trial.config = *config;
        trial.result = *submitted.front().replayed;
        algorithm_.tell(trial.config, trial.result.final_val_accuracy);
        ++replayed_;
        outcome_.trials.push_back(std::move(trial));
        if (stop_hit(outcome_.trials.back())) {
          stopped_ = true;
          cancel_outstanding();
        }
        continue;
      }
      f.future = submitted.front().future;
    } else {
      const rt::TaskDef def = make_experiment_task(dataset_, *config, options_, f.index);
      f.future = session_.submit(def);
    }
    if (options_.visualise)
      f.vis =
          session_.submit(make_visualisation_task(*config), {{f.future.data, rt::Direction::In}});
    inflight_.push_back(std::move(f));
  }
}

void StudyRun::start_batch_reuse() {
  // Batch + reuse: drain the whole batch up front so the planner sees
  // every trial at once and can merge shared prefixes into one stage
  // tree (a trial-by-trial top_up would plan each chain in isolation).
  std::vector<reuse::TrialRequest> requests;
  std::vector<Config> request_configs;
  while (true) {
    const std::optional<Config> config = algorithm_.next();
    if (!config) break;
    if (const Trial* previous = find_completed(restored_, *config)) {
      record_replayed(*config, previous->result);
      continue;
    }
    reuse::TrialRequest req;
    req.index = next_index_++;
    req.config = experiment_train_config(*config, options_, req.index);
    requests.push_back(std::move(req));
    request_configs.push_back(*config);
  }
  exhausted_ = true;
  if (stopped_) return;
  const std::vector<reuse::SubmittedTrial> submitted = executor_->submit(requests);
  for (std::size_t i = 0; i < submitted.size(); ++i) {
    const reuse::SubmittedTrial& s = submitted[i];
    if (s.replayed) {
      Trial trial;
      trial.index = s.index;
      trial.config = request_configs[i];
      trial.result = *s.replayed;
      algorithm_.tell(trial.config, trial.result.final_val_accuracy);
      outcome_.trials.push_back(std::move(trial));
      if (stop_hit(outcome_.trials.back())) {
        stopped_ = true;
        cancel_outstanding();
        return;
      }
      continue;
    }
    InFlight f;
    f.index = s.index;
    f.config = request_configs[i];
    f.future = s.future;
    if (options_.visualise)
      f.vis =
          session_.submit(make_visualisation_task(f.config), {{f.future.data, rt::Direction::In}});
    inflight_.push_back(std::move(f));
  }
}

bool StudyRun::active() const {
  if (!started_ || stopped_) return false;
  return !inflight_.empty() || !exhausted_;
}

void StudyRun::on_trial_complete(const rt::Future& finished) {
  const auto it =
      std::find_if(inflight_.begin(), inflight_.end(),
                   [&](const InFlight& f) { return f.future.producer == finished.producer; });
  if (it == inflight_.end())
    throw std::invalid_argument("StudyRun: completion does not belong to this study");

  Trial trial;
  trial.index = it->index;
  trial.config = it->config;
  trial.task = it->future.producer;
  trial.attempts = session_.graph().task(trial.task).attempts_made;
  const rt::Future vis = it->vis;
  inflight_.erase(it);
  try {
    trial.result = session_.wait_on_as<ml::TrainResult>(finished);
    algorithm_.tell(trial.config, trial.result.final_val_accuracy);
    if (vis.producer != rt::kNoTask) vis_done_.push_back(vis);
  } catch (const rt::TaskFailedError& e) {
    trial.failed = true;
    trial.failure_reason = e.what();
  }
  outcome_.trials.push_back(std::move(trial));
  if (!options_.checkpoint_path.empty())
    save_checkpoint(options_.checkpoint_path, outcome_.trials);
  if (stop_hit(outcome_.trials.back())) {
    stopped_ = true;
    cancel_outstanding();
  } else {
    top_up();
  }
  rebuild_futures();
}

void StudyRun::cancel_outstanding() {
  outcome_.stopped_early = true;
  // As-completed early stop: cancel what is still outstanding instead of
  // draining it in the runtime's destructor. Visualisation tasks are
  // dependents of their experiments, so they are cancelled transitively.
  for (const InFlight& f : inflight_) session_.cancel(f.future);
  // Reuse mode: also cancel the underlying stage chains (finalize tasks
  // are their dependents, so whole trees unwind together).
  if (executor_)
    for (const rt::Future& stage : executor_->stage_futures()) session_.cancel(stage);
  inflight_.clear();
  rebuild_futures();
}

void StudyRun::set_refill_paused(bool paused) {
  refill_paused_ = paused;
  if (!paused && started_ && !stopped_) {
    top_up();
    rebuild_futures();
  }
}

void StudyRun::abandon() {
  if (stopped_) return;
  stopped_ = true;
  cancel_outstanding();
}

HpoOutcome StudyRun::finish() {
  // "When all tasks are completed, we plot the graphs" (§4): one plot task
  // over every visualisation output that produced a value.
  if (options_.visualise && !outcome_.stopped_early && !vis_done_.empty()) {
    std::vector<rt::Param> params;
    params.reserve(vis_done_.size());
    for (const rt::Future& v : vis_done_) params.push_back({v.data, rt::Direction::In});
    const rt::Future plot = session_.submit(make_plot_task(), params);
    try {
      outcome_.report = session_.wait_on_as<std::string>(plot);
    } catch (const rt::TaskFailedError& e) {
      outcome_.report = std::string("plot task failed: ") + e.what();
    }
  }
  if (executor_) outcome_.reuse = executor_->report();
  finalise_outcome(outcome_, t0_, session_.now());
  return outcome_;
}

// ---------------------------------------------------------------------------
// HalvingRun
// ---------------------------------------------------------------------------

HalvingRun::HalvingRun(rt::StudySession session, const ml::Dataset& dataset, SearchSpace space,
                       HalvingOptions options, std::shared_ptr<reuse::ResultCache> cache)
    : session_(session),
      dataset_(dataset),
      space_(std::move(space)),
      options_(std::move(options)),
      rng_(options_.driver.seed ^ 0x4a17f1e5ULL),
      cache_(std::move(cache)) {}

void HalvingRun::start() {
  if (options_.initial_configs == 0)
    throw std::invalid_argument("successive_halving: need at least one config");
  if (options_.eta <= 1.0) throw std::invalid_argument("successive_halving: eta must exceed 1");
  if (options_.initial_epochs <= 0)
    throw std::invalid_argument("successive_halving: initial epochs must be positive");

  t0_ = session_.now();
  // Reuse mode: each rung is a batch through the stage executor, and all
  // rungs share one cache — a promoted config's next rung resumes from the
  // epoch checkpoint the previous rung left behind (deterministic seeds
  // make the trajectories identical across rungs).
  if (options_.driver.reuse.enabled && options_.driver.cv_folds <= 1) {
    if (!cache_) cache_ = std::make_shared<reuse::ResultCache>(options_.driver.reuse);
    executor_.emplace(session_, dataset_, options_.driver.reuse, options_.driver.trial_constraint,
                      options_.driver.workload, cache_);
  }

  survivors_.reserve(options_.initial_configs);
  for (std::size_t i = 0; i < options_.initial_configs; ++i)
    survivors_.push_back(space_.sample(rng_));
  epochs_ = options_.initial_epochs;
  rung_index_ = 0;
  submit_rung();
}

void HalvingRun::rebuild_futures() {
  inflight_futures_.clear();
  inflight_futures_.reserve(outstanding_.size());
  for (const auto& [_, f] : outstanding_) inflight_futures_.push_back(f);
}

void HalvingRun::submit_rung() {
  rung_ = RungResult{};
  rung_.rung = rung_index_;
  rung_.epochs = epochs_;
  submitted_.clear();
  outstanding_.clear();

  if (executor_) {
    std::vector<reuse::TrialRequest> requests;
    requests.reserve(survivors_.size());
    for (std::size_t i = 0; i < survivors_.size(); ++i) {
      Config budgeted = survivors_[i];
      budgeted.set("num_epochs", json::Value(static_cast<std::int64_t>(epochs_)));
      const int trial_index = rung_index_ * 1000 + static_cast<int>(i);
      requests.push_back(
          {trial_index, experiment_train_config(budgeted, options_.driver, trial_index)});
      submitted_.emplace_back(std::move(budgeted), rt::Future{});
    }
    const std::vector<reuse::SubmittedTrial> subs = executor_->submit(requests);
    for (std::size_t i = 0; i < subs.size(); ++i) {
      if (subs[i].replayed) {
        Trial trial;
        trial.index = static_cast<int>(i);
        trial.config = submitted_[i].first;
        trial.result = *subs[i].replayed;
        rung_.trials.push_back(std::move(trial));
      } else {
        submitted_[i].second = subs[i].future;
        outstanding_.emplace_back(i, subs[i].future);
      }
    }
  } else {
    for (std::size_t i = 0; i < survivors_.size(); ++i) {
      Config budgeted = survivors_[i];
      budgeted.set("num_epochs", json::Value(static_cast<std::int64_t>(epochs_)));
      const rt::TaskDef def = make_experiment_task(dataset_, budgeted, options_.driver,
                                                   rung_index_ * 1000 + static_cast<int>(i));
      submitted_.emplace_back(std::move(budgeted), session_.submit(def));
    }
    for (std::size_t i = 0; i < submitted_.size(); ++i)
      outstanding_.emplace_back(i, submitted_[i].second);
  }
  rebuild_futures();
  // A fully replayed rung (every trial served from the cache) closes
  // immediately — and may cascade through further rungs.
  if (outstanding_.empty()) close_rung();
}

bool HalvingRun::active() const { return !stopped_ && !done_ && epochs_ > 0; }

void HalvingRun::on_trial_complete(const rt::Future& finished) {
  const auto it = std::find_if(outstanding_.begin(), outstanding_.end(), [&](const auto& entry) {
    return entry.second.producer == finished.producer;
  });
  if (it == outstanding_.end())
    throw std::invalid_argument("HalvingRun: completion does not belong to this study");
  Trial trial;
  trial.index = static_cast<int>(it->first);
  trial.config = submitted_[it->first].first;
  trial.task = finished.producer;
  trial.attempts = session_.graph().task(trial.task).attempts_made;
  try {
    trial.result = session_.wait_on_as<ml::TrainResult>(finished);
  } catch (const rt::TaskFailedError& e) {
    trial.failed = true;
    trial.failure_reason = e.what();
  }
  outstanding_.erase(it);
  rung_.trials.push_back(std::move(trial));
  if (outstanding_.empty()) close_rung();
  rebuild_futures();
}

void HalvingRun::close_rung() {
  std::sort(rung_.trials.begin(), rung_.trials.end(),
            [](const Trial& a, const Trial& b) { return a.index < b.index; });

  // Rank survivors by accuracy, keep the top 1/eta.
  std::vector<const Trial*> ranked;
  for (const Trial& t : rung_.trials)
    if (!t.failed) ranked.push_back(&t);
  std::sort(ranked.begin(), ranked.end(), [](const Trial* a, const Trial* b) {
    return a->result.final_val_accuracy > b->result.final_val_accuracy;
  });

  if (!ranked.empty() && ranked.front()->result.final_val_accuracy > outcome_.best_accuracy) {
    outcome_.best_accuracy = ranked.front()->result.final_val_accuracy;
    outcome_.best_config = ranked.front()->config;
  }
  log_info("halving", "rung {} [study {}]: {} trials at {} epochs, best {:.3f}", rung_index_,
           session_.id(), rung_.trials.size(), epochs_,
           ranked.empty() ? 0.0 : ranked.front()->result.final_val_accuracy);
  outcome_.rungs.push_back(std::move(rung_));
  rung_ = RungResult{};

  const std::size_t keep =
      static_cast<std::size_t>(std::floor(static_cast<double>(ranked.size()) / options_.eta));
  if (keep == 0 || epochs_ >= options_.max_epochs) {
    done_ = true;
    return;
  }
  survivors_.clear();
  for (std::size_t i = 0; i < keep; ++i) survivors_.push_back(ranked[i]->config);
  epochs_ = std::min(options_.max_epochs,
                     static_cast<int>(std::lround(static_cast<double>(epochs_) * options_.eta)));
  ++rung_index_;
  if (refill_paused_)
    rung_pending_ = true;  // resume submits the promoted rung
  else
    submit_rung();
}

std::size_t HalvingRun::trials_done() const {
  std::size_t n = rung_.trials.size();
  for (const RungResult& rung : outcome_.rungs) n += rung.trials.size();
  return n;
}

const Trial* HalvingRun::last_trial() const {
  if (!rung_.trials.empty()) return &rung_.trials.back();
  for (auto it = outcome_.rungs.rbegin(); it != outcome_.rungs.rend(); ++it)
    if (!it->trials.empty()) return &it->trials.back();
  return nullptr;
}

void HalvingRun::set_refill_paused(bool paused) {
  refill_paused_ = paused;
  if (!paused && rung_pending_ && !stopped_ && !done_) {
    rung_pending_ = false;
    submit_rung();
  }
}

void HalvingRun::abandon() {
  if (stopped_) return;
  stopped_ = true;
  for (const auto& [_, f] : outstanding_) session_.cancel(f);
  if (executor_)
    for (const rt::Future& stage : executor_->stage_futures()) session_.cancel(stage);
  outstanding_.clear();
  rebuild_futures();
}

HpoOutcome HalvingRun::finish() {
  if (executor_) outcome_.reuse = executor_->report();
  outcome_.elapsed_seconds = session_.now() - t0_;

  // Flatten rungs into the manager's uniform HpoOutcome view: trials in
  // rung order with fresh sequential indices.
  HpoOutcome flat;
  flat.stopped_early = stopped_;
  flat.elapsed_seconds = outcome_.elapsed_seconds;
  flat.reuse = outcome_.reuse;
  int index = 0;
  for (const RungResult& rung : outcome_.rungs)
    for (const Trial& t : rung.trials) {
      Trial copy = t;
      copy.index = index++;
      flat.trials.push_back(std::move(copy));
    }
  double best = -1.0;
  for (std::size_t i = 0; i < flat.trials.size(); ++i) {
    const Trial& t = flat.trials[i];
    if (t.failed) continue;
    if (t.result.final_val_accuracy > best) {
      best = t.result.final_val_accuracy;
      flat.best_index = static_cast<int>(i);
    }
  }
  return flat;
}

// ---------------------------------------------------------------------------
// HyperbandRun
// ---------------------------------------------------------------------------

HyperbandRun::HyperbandRun(rt::StudySession session, const ml::Dataset& dataset, SearchSpace space,
                           HyperbandOptions options)
    : session_(session),
      dataset_(dataset),
      space_(std::move(space)),
      options_(std::move(options)) {}

void HyperbandRun::start() {
  if (options_.max_epochs <= 0)
    throw std::invalid_argument("hyperband: max_epochs must be positive");
  if (options_.eta <= 1.0) throw std::invalid_argument("hyperband: eta must exceed 1");

  t0_ = session_.now();
  const double r_max = static_cast<double>(options_.max_epochs);
  s_max_ = static_cast<int>(std::floor(std::log(r_max) / std::log(options_.eta)));
  s_ = s_max_;
  // One cache for all brackets: a config budget reached in an exploratory
  // bracket seeds the checkpoints later brackets resume from.
  if (options_.driver.reuse.enabled && options_.driver.cv_folds <= 1)
    cache_ = std::make_shared<reuse::ResultCache>(options_.driver.reuse);
  start_bracket();
}

void HyperbandRun::start_bracket() {
  while (s_ >= 0) {
    // Bracket s: n = ceil((s_max+1)/(s+1) * eta^s) configs at
    // r = R / eta^s initial epochs.
    const double r_max = static_cast<double>(options_.max_epochs);
    const double eta_s = std::pow(options_.eta, s_);
    HalvingOptions bracket;
    bracket.initial_configs = static_cast<std::size_t>(
        std::ceil(static_cast<double>(s_max_ + 1) / static_cast<double>(s_ + 1) * eta_s));
    bracket.initial_epochs = std::max(1, static_cast<int>(std::floor(r_max / eta_s)));
    bracket.eta = options_.eta;
    bracket.max_epochs = options_.max_epochs;
    bracket.driver = options_.driver;
    bracket.driver.seed = options_.driver.seed + static_cast<std::uint64_t>(s_) * 7907ULL;

    bracket_ = std::make_unique<HalvingRun>(session_, dataset_, space_, bracket, cache_);
    bracket_->start();
    if (bracket_->active()) return;  // trials in flight; wait for them
    harvest_bracket();               // fully replayed bracket: move on
    if (refill_paused_) return;      // paused between brackets
  }
}

void HyperbandRun::harvest_bracket() {
  bracket_->finish();  // settles reuse/elapsed on the HalvingOutcome
  HalvingOutcome result = bracket_->outcome();
  bracket_.reset();
  for (const RungResult& rung : result.rungs) outcome_.total_trials += rung.trials.size();
  if (result.best_accuracy > outcome_.best_accuracy) {
    outcome_.best_accuracy = result.best_accuracy;
    outcome_.best_config = result.best_config;
  }
  if (result.reuse) {
    if (!outcome_.reuse) outcome_.reuse.emplace();
    outcome_.reuse->cache = result.reuse->cache;  // shared cache -> cumulative stats
    outcome_.reuse->trials += result.reuse->trials;
    outcome_.reuse->replayed_trials += result.reuse->replayed_trials;
    outcome_.reuse->chains += result.reuse->chains;
    outcome_.reuse->stages += result.reuse->stages;
    outcome_.reuse->shared_stages += result.reuse->shared_stages;
    outcome_.reuse->naive_epochs += result.reuse->naive_epochs;
    outcome_.reuse->planned_epochs += result.reuse->planned_epochs;
  }
  outcome_.brackets.push_back(std::move(result));
  --s_;
}

bool HyperbandRun::active() const {
  if (stopped_) return false;
  return bracket_ != nullptr || s_ >= 0;
}

const std::vector<rt::Future>& HyperbandRun::inflight() const {
  return bracket_ ? bracket_->inflight() : empty_;
}

void HyperbandRun::on_trial_complete(const rt::Future& finished) {
  if (!bracket_) throw std::invalid_argument("HyperbandRun: no bracket in flight");
  bracket_->on_trial_complete(finished);
  if (!bracket_->active()) {
    harvest_bracket();
    if (!refill_paused_) start_bracket();
  }
}

std::size_t HyperbandRun::trials_done() const {
  return outcome_.total_trials + (bracket_ ? bracket_->trials_done() : 0);
}

const Trial* HyperbandRun::last_trial() const {
  return bracket_ ? bracket_->last_trial() : nullptr;
}

void HyperbandRun::set_refill_paused(bool paused) {
  refill_paused_ = paused;
  if (bracket_) bracket_->set_refill_paused(paused);
  if (!paused && !stopped_ && !bracket_ && s_ >= 0) start_bracket();
}

void HyperbandRun::abandon() {
  if (stopped_) return;
  stopped_ = true;
  if (bracket_) {
    bracket_->abandon();
    harvest_bracket();
  }
}

HpoOutcome HyperbandRun::finish() {
  outcome_.elapsed_seconds = session_.now() - t0_;
  HpoOutcome flat;
  flat.stopped_early = stopped_;
  flat.elapsed_seconds = outcome_.elapsed_seconds;
  flat.reuse = outcome_.reuse;
  int index = 0;
  for (const HalvingOutcome& bracket : outcome_.brackets)
    for (const RungResult& rung : bracket.rungs)
      for (const Trial& t : rung.trials) {
        Trial copy = t;
        copy.index = index++;
        flat.trials.push_back(std::move(copy));
      }
  double best = -1.0;
  for (std::size_t i = 0; i < flat.trials.size(); ++i) {
    const Trial& t = flat.trials[i];
    if (t.failed) continue;
    if (t.result.final_val_accuracy > best) {
      best = t.result.final_val_accuracy;
      flat.best_index = static_cast<int>(i);
    }
  }
  return flat;
}

}  // namespace chpo::hpo
