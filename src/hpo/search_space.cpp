#include "hpo/search_space.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace chpo::hpo {

std::optional<std::size_t> Dimension::cardinality() const {
  if (const auto* cat = std::get_if<CategoricalDomain>(&domain)) return cat->values.size();
  if (const auto* iv = std::get_if<IntDomain>(&domain))
    return static_cast<std::size_t>(iv->max - iv->min + 1);
  return std::nullopt;
}

SearchSpace SearchSpace::from_json(const json::Value& spec) {
  SearchSpace space;
  for (const auto& [name, domain_spec] : spec.as_object()) {
    if (domain_spec.is_array()) {
      if (domain_spec.as_array().empty())
        throw json::JsonError("search space: dimension '" + name + "' has no values");
      space.add_categorical(name, domain_spec.as_array());
    } else if (domain_spec.is_object()) {
      const std::string type = domain_spec.at("type").as_string();
      if (type == "int") {
        space.add_int(name, domain_spec.at("min").as_int(), domain_spec.at("max").as_int());
      } else if (type == "float") {
        const bool log_scale =
            domain_spec.contains("log") && domain_spec.at("log").as_bool();
        space.add_float(name, domain_spec.at("min").as_double(), domain_spec.at("max").as_double(),
                        log_scale);
      } else if (type == "categorical") {
        if (domain_spec.at("values").as_array().empty())
          throw json::JsonError("search space: dimension '" + name + "' has no values");
        space.add_categorical(name, domain_spec.at("values").as_array());
      } else {
        throw json::JsonError("search space: unknown domain type '" + type + "'");
      }
      if (domain_spec.contains("condition")) {
        const json::Value& cond = domain_spec.at("condition");
        space.make_conditional(cond.at("parent").as_string(), cond.at("equals"));
      }
    } else {
      throw json::JsonError("search space: dimension '" + name +
                            "' must be an array or a range object");
    }
  }
  if (space.size() == 0) throw json::JsonError("search space: no dimensions");
  return space;
}

SearchSpace SearchSpace::from_json_text(std::string_view text) {
  return from_json(json::parse(text));
}

SearchSpace SearchSpace::from_file(const std::string& path) {
  return from_json(json::parse_file(path));
}

void SearchSpace::add_categorical(std::string name, std::vector<json::Value> values) {
  dims_.push_back(Dimension{std::move(name), CategoricalDomain{std::move(values)}});
}

void SearchSpace::add_int(std::string name, std::int64_t min, std::int64_t max) {
  if (min > max) throw std::invalid_argument("SearchSpace: int domain min > max");
  dims_.push_back(Dimension{std::move(name), IntDomain{min, max}});
}

void SearchSpace::add_float(std::string name, double min, double max, bool log_scale) {
  if (!(min < max)) throw std::invalid_argument("SearchSpace: float domain min >= max");
  if (log_scale && min <= 0)
    throw std::invalid_argument("SearchSpace: log-scale domain requires min > 0");
  dims_.push_back(Dimension{std::move(name), FloatDomain{min, max, log_scale}});
}

void SearchSpace::make_conditional(const std::string& parent, json::Value value) {
  if (dims_.empty()) throw std::logic_error("make_conditional: no dimension to condition");
  Dimension& target = dims_.back();
  if (target.name == parent)
    throw std::invalid_argument("make_conditional: dimension cannot condition on itself");
  const Dimension* parent_dim = find(parent);
  if (!parent_dim)
    throw std::invalid_argument("make_conditional: unknown parent '" + parent + "'");
  const auto* cat = std::get_if<CategoricalDomain>(&parent_dim->domain);
  if (!cat) throw std::invalid_argument("make_conditional: parent must be categorical");
  if (std::find(cat->values.begin(), cat->values.end(), value) == cat->values.end())
    throw std::invalid_argument("make_conditional: value not in parent's domain");
  target.condition = Condition{.parent = parent, .equals = std::move(value)};
}

bool SearchSpace::is_active(const Dimension& dim, const Config& config) const {
  if (!dim.condition) return true;
  const json::Value* parent_value = config.find(dim.condition->parent);
  return parent_value && *parent_value == dim.condition->equals;
}

const Dimension* SearchSpace::find(std::string_view name) const {
  for (const Dimension& d : dims_)
    if (d.name == name) return &d;
  return nullptr;
}

std::optional<std::size_t> SearchSpace::grid_size() const {
  std::size_t total = 1;
  bool conditional = false;
  for (const Dimension& d : dims_) {
    const auto n = d.cardinality();
    if (!n) return std::nullopt;
    total *= *n;
    conditional = conditional || d.condition.has_value();
  }
  // Conditional dimensions collapse combinations: count the deduplicated
  // enumeration (spaces here are small by construction).
  if (conditional) return enumerate_grid().size();
  return total;
}

std::vector<Config> SearchSpace::enumerate_grid() const {
  std::size_t total = 1;
  for (const Dimension& d : dims_) {
    const auto n = d.cardinality();
    if (!n) throw std::logic_error("SearchSpace: grid enumeration requires finite dimensions only");
    total *= *n;
  }
  std::vector<Config> out;
  std::vector<std::string> seen;
  out.reserve(total);
  std::vector<std::size_t> index(dims_.size(), 0);
  for (std::size_t count = 0; count < total; ++count) {
    json::Object obj;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      const Dimension& dim = dims_[d];
      if (const auto* cat = std::get_if<CategoricalDomain>(&dim.domain)) {
        obj.emplace_back(dim.name, cat->values[index[d]]);
      } else {
        const auto& iv = std::get<IntDomain>(dim.domain);
        obj.emplace_back(dim.name, json::Value(iv.min + static_cast<std::int64_t>(index[d])));
      }
    }
    // Strip dimensions whose condition does not hold, then deduplicate
    // (several raw combinations collapse to one effective config).
    Config candidate(std::move(obj));
    json::Object filtered;
    for (const Dimension& dim : dims_) {
      if (!is_active(dim, candidate)) continue;
      filtered.emplace_back(dim.name, candidate.at(dim.name));
    }
    Config final_config(std::move(filtered));
    const std::string key = json::serialize(final_config);
    if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
      seen.push_back(key);
      out.push_back(std::move(final_config));
    }
    // Odometer increment, last dimension fastest.
    for (std::size_t d = dims_.size(); d-- > 0;) {
      if (++index[d] < *dims_[d].cardinality()) break;
      index[d] = 0;
    }
  }
  return out;
}

Config SearchSpace::sample(Rng& rng) const {
  json::Object obj;
  for (const Dimension& dim : dims_) {
    if (dim.condition) {
      const Config partial(obj);
      if (!is_active(dim, partial)) continue;
    }
    if (const auto* cat = std::get_if<CategoricalDomain>(&dim.domain)) {
      obj.emplace_back(dim.name, cat->values[rng.next_index(cat->values.size())]);
    } else if (const auto* iv = std::get_if<IntDomain>(&dim.domain)) {
      obj.emplace_back(dim.name, json::Value(rng.next_int(iv->min, iv->max)));
    } else {
      const auto& fv = std::get<FloatDomain>(dim.domain);
      double v;
      if (fv.log_scale) {
        v = std::exp(rng.next_uniform(std::log(fv.min), std::log(fv.max)));
      } else {
        v = rng.next_uniform(fv.min, fv.max);
      }
      obj.emplace_back(dim.name, json::Value(v));
    }
  }
  return Config(std::move(obj));
}

std::size_t SearchSpace::encoded_width() const {
  std::size_t width = 0;
  for (const Dimension& d : dims_) {
    if (const auto* cat = std::get_if<CategoricalDomain>(&d.domain))
      width += cat->values.size();
    else
      width += 1;
  }
  return width;
}

std::vector<double> SearchSpace::encode(const Config& config) const {
  std::vector<double> x;
  x.reserve(encoded_width());
  for (const Dimension& dim : dims_) {
    const json::Value* value = config.find(dim.name);
    if (!value) {
      // Inactive conditional dimension: zero block.
      if (const auto* cat = std::get_if<CategoricalDomain>(&dim.domain))
        x.insert(x.end(), cat->values.size(), 0.0);
      else
        x.push_back(0.0);
      continue;
    }
    const json::Value& v = *value;
    if (const auto* cat = std::get_if<CategoricalDomain>(&dim.domain)) {
      for (const json::Value& candidate : cat->values) x.push_back(candidate == v ? 1.0 : 0.0);
    } else if (const auto* iv = std::get_if<IntDomain>(&dim.domain)) {
      const double span = static_cast<double>(iv->max - iv->min);
      x.push_back(span > 0 ? (v.as_double() - static_cast<double>(iv->min)) / span : 0.0);
    } else {
      const auto& fv = std::get<FloatDomain>(dim.domain);
      double t;
      if (fv.log_scale)
        t = (std::log(v.as_double()) - std::log(fv.min)) / (std::log(fv.max) - std::log(fv.min));
      else
        t = (v.as_double() - fv.min) / (fv.max - fv.min);
      x.push_back(t);
    }
  }
  return x;
}

std::string config_string(const Config& config, std::string_view key) {
  return config.at(key).as_string();
}

std::int64_t config_int(const Config& config, std::string_view key) {
  return config.at(key).as_int();
}

double config_double(const Config& config, std::string_view key) {
  return config.at(key).as_double();
}

std::string config_brief(const Config& config) {
  std::ostringstream out;
  bool first = true;
  for (const auto& [k, v] : config.as_object()) {
    if (!first) out << " ";
    first = false;
    out << k << "=" << json::serialize(v);
  }
  return out.str();
}

}  // namespace chpo::hpo
