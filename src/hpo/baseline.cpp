#include "hpo/baseline.hpp"

#include <algorithm>

#include "support/stopwatch.hpp"

namespace chpo::hpo {

namespace {

ml::TrainConfig baseline_train_config(const Config& config, const DriverOptions& options,
                                      int index) {
  ml::TrainConfig tc;
  if (config.contains("optimizer")) tc.optimizer = config_string(config, "optimizer");
  int epochs = config.contains("num_epochs")
                   ? static_cast<int>(config_int(config, "num_epochs"))
                   : tc.num_epochs;
  epochs = std::max(1, epochs / std::max(1, options.epoch_divisor));
  if (options.epoch_cap > 0) epochs = std::min(epochs, options.epoch_cap);
  tc.num_epochs = epochs;
  if (config.contains("batch_size"))
    tc.batch_size = static_cast<int>(config_int(config, "batch_size"));
  if (config.contains("learning_rate"))
    tc.learning_rate = static_cast<float>(config_double(config, "learning_rate"));
  if (config.contains("lr_schedule")) tc.lr_schedule = config_string(config, "lr_schedule");
  if (config.contains("weight_decay"))
    tc.weight_decay = static_cast<float>(config_double(config, "weight_decay"));
  if (config.contains("batch_norm")) tc.batch_norm = config.at("batch_norm").as_bool();
  if (config.contains("hidden_layers"))
    tc.hidden_layers = static_cast<int>(config_int(config, "hidden_layers"));
  if (config.contains("hidden_units"))
    tc.hidden_units = static_cast<int>(config_int(config, "hidden_units"));
  if (config.contains("dropout"))
    tc.dropout = static_cast<float>(config_double(config, "dropout"));
  tc.seed = options.seed + static_cast<std::uint64_t>(index) * 7919ULL;
  tc.target_accuracy = options.trial_target_accuracy;
  tc.patience = options.trial_patience;
  return tc;
}

double config_cost_seconds(const Config& config, const ml::WorkloadModel& workload, unsigned cpus,
                           const cluster::NodeSpec& node) {
  const std::string optimizer =
      config.contains("optimizer") ? config_string(config, "optimizer") : "Adam";
  const int epochs =
      config.contains("num_epochs") ? static_cast<int>(config_int(config, "num_epochs")) : 10;
  const int batch =
      config.contains("batch_size") ? static_cast<int>(config_int(config, "batch_size")) : 32;
  return ml::experiment_seconds(workload, optimizer, epochs, batch, cpus, 0, node);
}

}  // namespace

HpoOutcome sequential_hpo(const ml::Dataset& dataset, const std::vector<Config>& configs,
                          const DriverOptions& options) {
  Stopwatch clock;
  HpoOutcome outcome;
  double best = -1.0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    Trial trial;
    trial.index = static_cast<int>(i);
    trial.config = configs[i];
    trial.result =
        ml::run_experiment(dataset, baseline_train_config(configs[i], options, trial.index));
    if (trial.result.final_val_accuracy > best) {
      best = trial.result.final_val_accuracy;
      outcome.best_index = trial.index;
    }
    outcome.trials.push_back(std::move(trial));
    if (options.stop_on_accuracy > 0 && best >= options.stop_on_accuracy) {
      outcome.stopped_early = true;
      break;
    }
  }
  outcome.elapsed_seconds = clock.elapsed_seconds();
  return outcome;
}

double sequential_makespan_seconds(const std::vector<Config>& configs,
                                   const ml::WorkloadModel& workload, unsigned cpus,
                                   const cluster::NodeSpec& node) {
  double total = 0.0;
  for (const Config& c : configs) total += config_cost_seconds(c, workload, cpus, node);
  return total;
}

double static_partition_seconds(const std::vector<Config>& configs,
                                const ml::WorkloadModel& workload, std::size_t nodes,
                                unsigned cpus_per_task, const cluster::NodeSpec& node) {
  if (nodes == 0) return 0.0;
  std::vector<double> per_node(nodes, 0.0);
  for (std::size_t i = 0; i < configs.size(); ++i)
    per_node[i % nodes] += config_cost_seconds(configs[i], workload, cpus_per_task, node);
  return *std::max_element(per_node.begin(), per_node.end());
}

double static_partition_contiguous_seconds(const std::vector<Config>& configs,
                                           const ml::WorkloadModel& workload, std::size_t nodes,
                                           unsigned cpus_per_task,
                                           const cluster::NodeSpec& node) {
  if (nodes == 0) return 0.0;
  const std::size_t block = (configs.size() + nodes - 1) / nodes;
  std::vector<double> per_node(nodes, 0.0);
  for (std::size_t i = 0; i < configs.size(); ++i)
    per_node[std::min(i / block, nodes - 1)] +=
        config_cost_seconds(configs[i], workload, cpus_per_task, node);
  return *std::max_element(per_node.begin(), per_node.end());
}

}  // namespace chpo::hpo
