#include "hpo/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/strings.hpp"

namespace chpo::hpo {

std::string trials_table(const std::vector<Trial>& trials) {
  std::ostringstream out;
  out << pad_right("trial", 6) << pad_right("config", 48) << pad_left("epochs", 7)
      << pad_left("val_acc", 9) << pad_left("best", 9) << "  note\n";
  for (const Trial& t : trials) {
    out << pad_right(std::to_string(t.index), 6) << pad_right(config_brief(t.config), 48);
    if (t.failed) {
      out << pad_left("-", 7) << pad_left("-", 9) << pad_left("-", 9) << "  FAILED: "
          << t.failure_reason << "\n";
      continue;
    }
    char acc[16], best[16];
    std::snprintf(acc, sizeof acc, "%.3f", t.result.final_val_accuracy);
    std::snprintf(best, sizeof best, "%.3f", t.result.best_val_accuracy);
    out << pad_left(std::to_string(t.result.epochs_run), 7) << pad_left(acc, 9)
        << pad_left(best, 9) << (t.result.stopped_early ? "  early-stop" : "") << "\n";
  }
  return out.str();
}

std::string accuracy_chart(const std::vector<Trial>& trials, std::size_t width,
                           std::size_t height) {
  std::size_t max_epochs = 0;
  for (const Trial& t : trials)
    if (!t.failed) max_epochs = std::max(max_epochs, t.result.history.size());
  if (max_epochs == 0 || height < 2) return "(no histories)\n";

  std::vector<std::string> rows(height, std::string(width, ' '));
  static constexpr char kGlyphs[] = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  for (std::size_t ti = 0; ti < trials.size(); ++ti) {
    const Trial& t = trials[ti];
    if (t.failed) continue;
    const char glyph = kGlyphs[ti % (sizeof(kGlyphs) - 1)];
    for (const auto& stats : t.result.history) {
      const double x = max_epochs > 1
                           ? static_cast<double>(stats.epoch - 1) / static_cast<double>(max_epochs - 1)
                           : 0.0;
      const std::size_t col = std::min(width - 1, static_cast<std::size_t>(x * static_cast<double>(width - 1)));
      const double acc = std::clamp(stats.val_accuracy, 0.0, 1.0);
      const std::size_t row =
          height - 1 - std::min(height - 1, static_cast<std::size_t>(acc * static_cast<double>(height - 1)));
      rows[row][col] = glyph;
    }
  }

  std::ostringstream out;
  out << "validation accuracy vs epoch (one glyph per trial, 1.0 at top)\n";
  for (std::size_t r = 0; r < height; ++r) {
    const double level = 1.0 - static_cast<double>(r) / static_cast<double>(height - 1);
    char label[8];
    std::snprintf(label, sizeof label, "%4.2f", level);
    out << label << " |" << rows[r] << "|\n";
  }
  out << "      epochs 1.." << max_epochs << "\n";
  return out.str();
}

std::string history_csv(const std::vector<Trial>& trials) {
  std::ostringstream out;
  out << "trial,epoch,train_loss,train_acc,val_acc\n";
  for (const Trial& t : trials) {
    if (t.failed) continue;
    for (const auto& stats : t.result.history)
      out << t.index << "," << stats.epoch << "," << stats.train_loss << ","
          << stats.train_accuracy << "," << stats.val_accuracy << "\n";
  }
  return out.str();
}

std::string outcome_summary(const HpoOutcome& outcome) {
  std::ostringstream out;
  out << outcome.trials.size() << " trials in " << format_duration(outcome.elapsed_seconds);
  if (outcome.stopped_early) out << " (stopped early)";
  if (const Trial* best = outcome.best()) {
    char acc[16];
    std::snprintf(acc, sizeof acc, "%.3f", best->result.final_val_accuracy);
    out << "; best: " << config_brief(best->config) << " -> val_acc " << acc;
  }
  out << "\n";
  return out.str();
}

}  // namespace chpo::hpo
