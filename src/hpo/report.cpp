#include "hpo/report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "support/strings.hpp"

namespace chpo::hpo {

std::string trials_table(const std::vector<Trial>& trials) {
  std::ostringstream out;
  out << pad_right("trial", 6) << pad_right("config", 48) << pad_left("epochs", 7)
      << pad_left("val_acc", 9) << pad_left("best", 9) << pad_left("att", 5) << "  note\n";
  for (const Trial& t : trials) {
    // attempts == 0: replayed from a checkpoint, no task ran this session.
    const std::string attempts = t.attempts > 0 ? std::to_string(t.attempts) : "-";
    out << pad_right(std::to_string(t.index), 6) << pad_right(config_brief(t.config), 48);
    if (t.failed) {
      out << pad_left("-", 7) << pad_left("-", 9) << pad_left("-", 9) << pad_left(attempts, 5)
          << "  FAILED: " << t.failure_reason << "\n";
      continue;
    }
    char acc[16], best[16];
    std::snprintf(acc, sizeof acc, "%.3f", t.result.final_val_accuracy);
    std::snprintf(best, sizeof best, "%.3f", t.result.best_val_accuracy);
    out << pad_left(std::to_string(t.result.epochs_run), 7) << pad_left(acc, 9)
        << pad_left(best, 9) << pad_left(attempts, 5)
        << (t.result.stopped_early ? "  early-stop" : "") << "\n";
  }
  return out.str();
}

std::string attempt_stats(const std::vector<trace::Event>& events) {
  struct Stats {
    int runs = 0;
    int failures = 0;
    int retries = 0;
    int stragglers = 0;
    int spec_launches = 0;
    int spec_wins = 0;
    int backoffs = 0;
    double busy_seconds = 0.0;
  };
  std::map<std::string, Stats> by_name;
  for (const trace::Event& e : events) {
    if (e.task_name.empty()) continue;
    Stats& s = by_name[e.task_name];
    switch (e.kind) {
      case trace::EventKind::TaskRun:
        ++s.runs;
        s.busy_seconds += e.t_end - e.t_start;
        break;
      case trace::EventKind::TaskFailure: ++s.failures; break;
      case trace::EventKind::TaskRetry: ++s.retries; break;
      case trace::EventKind::StragglerDetected: ++s.stragglers; break;
      case trace::EventKind::SpeculativeLaunch: ++s.spec_launches; break;
      case trace::EventKind::SpeculativeWin: ++s.spec_wins; break;
      case trace::EventKind::Backoff: ++s.backoffs; break;
      default: break;
    }
  }
  std::ostringstream out;
  out << pad_right("task", 16) << pad_left("runs", 6) << pad_left("fail", 6)
      << pad_left("retry", 7) << pad_left("strag", 7) << pad_left("spec", 6)
      << pad_left("won", 5) << pad_left("backoff", 9) << pad_left("busy_s", 10) << "\n";
  for (const auto& [name, s] : by_name) {
    char busy[24];
    std::snprintf(busy, sizeof busy, "%.3f", s.busy_seconds);
    out << pad_right(name, 16) << pad_left(std::to_string(s.runs), 6)
        << pad_left(std::to_string(s.failures), 6) << pad_left(std::to_string(s.retries), 7)
        << pad_left(std::to_string(s.stragglers), 7)
        << pad_left(std::to_string(s.spec_launches), 6) << pad_left(std::to_string(s.spec_wins), 5)
        << pad_left(std::to_string(s.backoffs), 9) << pad_left(busy, 10) << "\n";
  }
  return out.str();
}

std::string accuracy_chart(const std::vector<Trial>& trials, std::size_t width,
                           std::size_t height) {
  std::size_t max_epochs = 0;
  for (const Trial& t : trials)
    if (!t.failed) max_epochs = std::max(max_epochs, t.result.history.size());
  if (max_epochs == 0 || height < 2) return "(no histories)\n";

  std::vector<std::string> rows(height, std::string(width, ' '));
  static constexpr char kGlyphs[] = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  for (std::size_t ti = 0; ti < trials.size(); ++ti) {
    const Trial& t = trials[ti];
    if (t.failed) continue;
    const char glyph = kGlyphs[ti % (sizeof(kGlyphs) - 1)];
    for (const auto& stats : t.result.history) {
      const double x = max_epochs > 1
                           ? static_cast<double>(stats.epoch - 1) / static_cast<double>(max_epochs - 1)
                           : 0.0;
      const std::size_t col = std::min(width - 1, static_cast<std::size_t>(x * static_cast<double>(width - 1)));
      const double acc = std::clamp(stats.val_accuracy, 0.0, 1.0);
      const std::size_t row =
          height - 1 - std::min(height - 1, static_cast<std::size_t>(acc * static_cast<double>(height - 1)));
      rows[row][col] = glyph;
    }
  }

  std::ostringstream out;
  out << "validation accuracy vs epoch (one glyph per trial, 1.0 at top)\n";
  for (std::size_t r = 0; r < height; ++r) {
    const double level = 1.0 - static_cast<double>(r) / static_cast<double>(height - 1);
    char label[8];
    std::snprintf(label, sizeof label, "%4.2f", level);
    out << label << " |" << rows[r] << "|\n";
  }
  out << "      epochs 1.." << max_epochs << "\n";
  return out.str();
}

std::string history_csv(const std::vector<Trial>& trials) {
  std::ostringstream out;
  out << "trial,epoch,train_loss,train_acc,val_acc\n";
  for (const Trial& t : trials) {
    if (t.failed) continue;
    for (const auto& stats : t.result.history)
      out << t.index << "," << stats.epoch << "," << stats.train_loss << ","
          << stats.train_accuracy << "," << stats.val_accuracy << "\n";
  }
  return out.str();
}

std::string outcome_summary(const HpoOutcome& outcome) {
  std::ostringstream out;
  out << outcome.trials.size() << " trials in " << format_duration(outcome.elapsed_seconds);
  if (outcome.stopped_early) out << " (stopped early)";
  if (const Trial* best = outcome.best()) {
    char acc[16];
    std::snprintf(acc, sizeof acc, "%.3f", best->result.final_val_accuracy);
    out << "; best: " << config_brief(best->config) << " -> val_acc " << acc;
  }
  out << "\n";
  return out.str();
}

std::string reuse_summary(const reuse::ReuseReport& report) {
  std::ostringstream out;
  out << "reuse: " << report.trials << " trials, " << report.replayed_trials
      << " replayed from cache, " << report.chains << " chains, " << report.stages
      << " stage tasks (" << report.shared_stages << " shared)\n";
  out << "  epochs: " << report.planned_epochs << " planned vs " << report.naive_epochs
      << " naive";
  if (report.planned_epochs > 0 && report.naive_epochs > report.planned_epochs) {
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.2f",
                  static_cast<double>(report.naive_epochs) /
                      static_cast<double>(report.planned_epochs));
    out << " (" << ratio << "x compute collapse)";
  }
  out << "\n";
  const reuse::CacheStats& c = report.cache;
  out << "  cache hits: " << c.hits << ", misses: " << c.misses << ", disk hits: " << c.disk_hits
      << ", puts: " << c.puts << ", duplicate puts: " << c.duplicate_puts
      << ", evictions: " << c.evictions << ", corrupt: " << c.corrupt << "\n";
  out << "  cache bytes: " << c.memory_bytes << " in memory, " << c.disk_bytes << " on disk, "
      << c.bytes_written << " written\n";
  return out.str();
}

std::string fault_summary(const std::vector<trace::Event>& events, std::size_t recoveries,
                          std::size_t unrecoverable, const rt::NodeHealth& health) {
  std::size_t node_down = 0, node_up = 0, data_lost = 0, quarantines = 0;
  for (const trace::Event& e : events) {
    switch (e.kind) {
      case trace::EventKind::NodeDown: ++node_down; break;
      case trace::EventKind::NodeUp: ++node_up; break;
      case trace::EventKind::DataLost: ++data_lost; break;
      case trace::EventKind::Quarantine: ++quarantines; break;
      default: break;
    }
  }
  std::ostringstream out;
  out << "fault tolerance: " << node_down << " node-down, " << node_up << " node-up, "
      << data_lost << " data-lost, " << quarantines << " quarantines\n";
  out << "  recoveries: " << recoveries << " lineage recomputations, " << unrecoverable
      << " unrecoverable\n";
  out << "  " << pad_right("node", 6) << pad_right("health", 13) << pad_left("score", 7)
      << pad_left("obs", 5) << "\n";
  for (std::size_t node = 0; node < health.node_count(); ++node) {
    const char* state = "healthy";
    switch (health.state(node)) {
      case rt::HealthState::Healthy: state = "healthy"; break;
      case rt::HealthState::Quarantined: state = "quarantined"; break;
      case rt::HealthState::Probation: state = "probation"; break;
    }
    char score[16];
    std::snprintf(score, sizeof score, "%.3f", health.score(node));
    out << "  " << pad_right(std::to_string(node), 6) << pad_right(state, 13)
        << pad_left(score, 7) << pad_left(std::to_string(health.observations(node)), 5) << "\n";
  }
  return out.str();
}

std::string multi_study_summary(const std::vector<StudySummaryRow>& rows) {
  std::ostringstream out;
  out << "concurrent studies:\n";
  out << "  " << pad_right("study", 24) << pad_right("algorithm", 11) << pad_right("state", 10)
      << pad_left("trials", 7) << pad_left("best", 8) << pad_left("elapsed", 13) << "\n";
  for (const StudySummaryRow& row : rows) {
    char best[16];
    if (row.best_accuracy >= 0.0)
      std::snprintf(best, sizeof best, "%.3f", row.best_accuracy);
    else
      std::snprintf(best, sizeof best, "-");
    out << "  " << pad_right(row.name, 24) << pad_right(row.algorithm, 11)
        << pad_right(row.state, 10) << pad_left(std::to_string(row.trials), 7)
        << pad_left(best, 8) << pad_left(format_duration(row.elapsed_seconds), 13) << "\n";
  }
  return out.str();
}

}  // namespace chpo::hpo
