// One-call HPO — the paper's future work, delivered:
//
//   "This library will enable the user to perform HPO over any search
//    space by simply calling a function and specifying the algorithm."
//
//   auto outcome = hpo::optimize(dataset, space_json, "tpe",
//                                {.budget = 24, .cluster_nodes = 2});
//
// Builds the search space, the runtime, the driver and the algorithm from
// plain options, runs to completion, and returns the outcome. Use the
// lower-level HpoDriver when you need custom clusters, fault injection or
// task definitions.
#pragma once

#include <string>

#include "hpo/driver.hpp"
#include "hpo/search_space.hpp"
#include "ml/dataset.hpp"

namespace chpo::hpo {

struct OptimizeOptions {
  /// Evaluation budget for random / gp / tpe (grid ignores it).
  std::size_t budget = 16;
  /// Local cluster shape the runtime is built on.
  std::size_t cluster_nodes = 1;
  unsigned cpus_per_node = 4;
  unsigned trial_cpus = 1;
  /// Stop the whole HPO once any trial reaches this accuracy (<=0: off).
  double stop_on_accuracy = -1.0;
  /// Scale-down knobs (see DriverOptions).
  int epoch_divisor = 1;
  int epoch_cap = 0;
  std::uint64_t seed = 42;
};

/// `algorithm` is one of "grid" | "random" | "gp" | "tpe".
/// Throws std::invalid_argument for unknown algorithms and json::JsonError
/// for malformed space definitions.
HpoOutcome optimize(const ml::Dataset& dataset, const SearchSpace& space,
                    const std::string& algorithm, const OptimizeOptions& options = {});

/// Convenience overload parsing the Listing-1 JSON text.
HpoOutcome optimize(const ml::Dataset& dataset, const std::string& space_json,
                    const std::string& algorithm, const OptimizeOptions& options = {});

}  // namespace chpo::hpo
