// HPO driver — the paper's application structure (Figure 2 / Listing 2),
// run as a completion-driven pipeline.
//
// Turns each configuration produced by a SearchAlgorithm into an
// `experiment` task (with the requested @constraint) and keeps a window of
// trials in flight: batch algorithms (grid/random) have every trial
// submitted up front — embarrassingly parallel, exactly the paper's loop —
// while sequential algorithms (GP-EI, TPE) keep `parallel_suggestions`
// trials outstanding. Results are consumed with wait_any in *completion*
// order, so a fast trial that was submitted late is observed the moment it
// finishes (no head-of-line blocking) and its score reaches the algorithm
// immediately, which then suggests the next config while the rest of the
// cluster stays busy.
//
// Supports the paper's two flavours of early stopping:
//  * per-trial: TrainConfig target_accuracy/patience inside the task body;
//  * whole-HPO: stop once *any* trial reaches `stop_on_accuracy` ("the
//    process can be stopped as soon as one task achieves a specified
//    accuracy", §6.1) — regardless of submission index; outstanding trials
//    are cancelled rather than drained.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hpo/algorithms.hpp"
#include "hpo/search_space.hpp"
#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"
#include "ml/trainer.hpp"
#include "reuse/planner.hpp"
#include "reuse/policy.hpp"
#include "runtime/study_session.hpp"

namespace chpo::hpo {

struct Trial {
  int index = -1;
  Config config;
  ml::TrainResult result;
  bool failed = false;
  std::string failure_reason;
  rt::TaskId task = rt::kNoTask;
  /// Runtime attempts the experiment task consumed (1 = clean run; more =
  /// retries after failures/timeouts or a lost speculative race). 0 for
  /// trials replayed from a checkpoint (no task ran).
  int attempts = 0;
};

struct HpoOutcome {
  std::vector<Trial> trials;
  int best_index = -1;  ///< position in `trials` of the best (highest accuracy) trial
  double elapsed_seconds = 0.0;
  bool stopped_early = false;
  /// Output of the final `plot` task when DriverOptions::visualise is set
  /// (the paper's Figure 2 pipeline: experiment -> visualisation -> plot).
  std::string report;
  /// Reuse accounting (stage sharing, cache hits/misses) when
  /// DriverOptions::reuse is enabled.
  std::optional<reuse::ReuseReport> reuse;

  const Trial* best() const {
    return best_index >= 0 ? &trials[static_cast<std::size_t>(best_index)] : nullptr;
  }
};

struct DriverOptions {
  /// @constraint of each experiment task.
  rt::Constraint trial_constraint{.cpus = 1, .gpus = 0, .node_exclusive = false};
  /// Whole-HPO early stop threshold on validation accuracy (<=0 disables).
  /// Fires on the first trial (by completion order) to cross it;
  /// outstanding trials are cancelled.
  double stop_on_accuracy = -1.0;
  /// In-flight window for sequential algorithms (GP-EI, TPE): how many
  /// trials run concurrently between observations. 1 reproduces the strict
  /// suggest→observe loop; larger windows trade model freshness for
  /// cluster utilisation. Batch algorithms ignore this (all trials are
  /// submitted up front).
  int parallel_suggestions = 1;
  /// Per-trial early stopping passed into TrainConfig.
  double trial_target_accuracy = -1.0;
  int trial_patience = -1;
  /// Attach a virtual cost model so the DES backend can time experiments.
  std::optional<ml::WorkloadModel> workload;
  /// Scale-down knobs for the real training done inside task bodies:
  /// cap on epochs actually run (0 = honour the config) and an epoch
  /// divisor applied first (e.g. 10 turns "100 epochs" into 10).
  int epoch_cap = 0;
  int epoch_divisor = 1;
  /// k-fold cross-validation inside each experiment task (scikit-learn's
  /// evaluation mode, §2.2). <=1 trains once on the train/test split;
  /// otherwise the trial's accuracy is the mean across folds and its
  /// "history" holds one entry per fold.
  int cv_folds = 1;
  /// Mirror the paper's application structure (Figure 2): submit a
  /// `visualisation` task per experiment and one final `plot` task that
  /// synchronises them all; its output lands in HpoOutcome::report.
  bool visualise = false;
  /// When set, completed trials are persisted here (JSON) after every
  /// result and replayed on restart instead of retraining — application-
  /// level fault tolerance on top of the runtime's task retries.
  std::string checkpoint_path;
  /// Cross-trial reuse (stage trees + result cache; see reuse/policy.hpp).
  /// Opt-in; ignored for cross-validated trials (cv_folds > 1). Batch
  /// algorithms plan the whole batch as one stage tree; sequential ones
  /// still get caching but no cross-trial merging within a window.
  reuse::ReusePolicy reuse;
  std::uint64_t seed = 7;
};

/// Builds the experiment TaskDef for one config (exposed for tests and
/// custom drivers). The body trains the reference model for the dataset;
/// the cost closure prices the task for the simulator.
rt::TaskDef make_experiment_task(const ml::Dataset& dataset, const Config& config,
                                 const DriverOptions& options, int trial_index);

/// Resolve the exact TrainConfig a trial runs with: config fields + driver
/// scale-down knobs + the seed policy (per-trial-index by default;
/// content-derived under ReusePolicy::deterministic_seeds so epoch-budget
/// variants share a training prefix). Exposed for the reuse planner,
/// hyperband and tests.
ml::TrainConfig experiment_train_config(const Config& config, const DriverOptions& options,
                                        int trial_index, unsigned threads = 1);

class HpoDriver {
 public:
  /// The driver speaks to the cluster through a StudySession — a tagged,
  /// non-exclusive view of a shared Runtime — so any number of drivers can
  /// multiplex one engine concurrently (see service::StudyManager). Tasks
  /// it submits carry the session's study id; its early stop cancels only
  /// its own study's work.
  ///
  /// LIFETIME: `dataset` is captured by reference into the experiment task
  /// bodies. It must outlive the session's Runtime — with whole-HPO early
  /// stopping, unfinished trials keep training on it until the runtime's
  /// destructor drains them. Declare the dataset before the runtime.
  HpoDriver(rt::StudySession session, const ml::Dataset& dataset, DriverOptions options);

  /// Run the algorithm to exhaustion (or early stop); returns all trials
  /// (sorted by submission index; consumption happens in completion order).
  /// Blocking convenience over the resumable StudyRun state machine
  /// (study_run.hpp) — use that directly to interleave several studies.
  HpoOutcome run(SearchAlgorithm& algorithm);

  const DriverOptions& options() const { return options_; }
  rt::StudySession session() const { return session_; }

 private:
  rt::StudySession session_;
  const ml::Dataset& dataset_;
  DriverOptions options_;
};

}  // namespace chpo::hpo
