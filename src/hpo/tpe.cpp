#include "hpo/tpe.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chpo::hpo {

namespace {

/// Normalised numeric position of a config value in its dimension; for
/// categoricals, the category index (not normalised — densities compare
/// category identity, not distance).
double dim_scalar(const Dimension& dim, const json::Value& v) {
  if (const auto* cat = std::get_if<CategoricalDomain>(&dim.domain)) {
    for (std::size_t i = 0; i < cat->values.size(); ++i)
      if (cat->values[i] == v) return static_cast<double>(i);
    throw std::invalid_argument("TPE: config value not in categorical domain of " + dim.name);
  }
  if (const auto* iv = std::get_if<IntDomain>(&dim.domain)) {
    const double span = static_cast<double>(iv->max - iv->min);
    return span > 0 ? (v.as_double() - static_cast<double>(iv->min)) / span : 0.0;
  }
  const auto& fv = std::get<FloatDomain>(dim.domain);
  if (fv.log_scale)
    return (std::log(v.as_double()) - std::log(fv.min)) / (std::log(fv.max) - std::log(fv.min));
  return (v.as_double() - fv.min) / (fv.max - fv.min);
}

double gaussian_kernel(double x, double mu, double bandwidth) {
  const double z = (x - mu) / bandwidth;
  return std::exp(-0.5 * z * z) / (bandwidth * std::sqrt(2.0 * 3.14159265358979323846));
}

}  // namespace

TpeSearch::TpeSearch(const SearchSpace& space, Options options)
    : space_(space), options_(options), rng_(options.seed) {
  if (options_.max_evals == 0) throw std::invalid_argument("TpeSearch: max_evals must be positive");
  if (options_.gamma <= 0.0 || options_.gamma >= 1.0)
    throw std::invalid_argument("TpeSearch: gamma must be in (0,1)");
  if (options_.n_init == 0) options_.n_init = 1;
}

std::vector<double> TpeSearch::dim_values(const Config& config) const {
  std::vector<double> out;
  out.reserve(space_.size());
  for (const Dimension& dim : space_.dimensions()) {
    // Inactive conditional dimensions get a sentinel outside every domain;
    // it matches other inactive observations and repels active ones.
    const json::Value* value = config.find(dim.name);
    out.push_back(value ? dim_scalar(dim, *value) : -1.0);
  }
  return out;
}

double TpeSearch::density(const std::vector<double>& values,
                          const std::vector<const Observation*>& set) const {
  if (set.empty()) return 1e-12;
  double total = 0.0;
  for (const Observation* obs : set) {
    double product = 1.0;
    for (std::size_t d = 0; d < values.size(); ++d) {
      const Dimension& dim = space_.dimensions()[d];
      if (dim.is_categorical()) {
        // Aitchison-Aitken-style kernel: high mass on the matching category.
        const std::size_t k = *dim.cardinality();
        const double match = 0.8;
        product *= (values[d] == obs->values[d])
                       ? match
                       : (1.0 - match) / std::max<double>(1.0, static_cast<double>(k - 1));
      } else {
        product *= gaussian_kernel(values[d], obs->values[d], options_.bandwidth);
      }
    }
    total += product;
  }
  return std::max(total / static_cast<double>(set.size()), 1e-12);
}

Config TpeSearch::sample_from_good(const std::vector<const Observation*>& good) {
  json::Object obj;
  for (std::size_t d = 0; d < space_.size(); ++d) {
    const Dimension& dim = space_.dimensions()[d];
    if (dim.condition && !space_.is_active(dim, Config(obj))) continue;
    const Observation* anchor = good[rng_.next_index(good.size())];
    if (anchor->values[d] < 0.0) {
      // Anchor had this dimension inactive: fall back to a uniform draw so
      // the candidate stays inside the (now active) domain.
      Config single = space_.sample(rng_);
      if (const json::Value* v = single.find(dim.name)) obj.emplace_back(dim.name, *v);
      continue;
    }
    if (const auto* cat = std::get_if<CategoricalDomain>(&dim.domain)) {
      // With probability ~0.8 reuse the anchor's category, else explore.
      if (rng_.next_bool(0.8)) {
        obj.emplace_back(dim.name,
                         cat->values[static_cast<std::size_t>(anchor->values[d])]);
      } else {
        obj.emplace_back(dim.name, cat->values[rng_.next_index(cat->values.size())]);
      }
    } else if (const auto* iv = std::get_if<IntDomain>(&dim.domain)) {
      const double t =
          std::clamp(rng_.next_gaussian(anchor->values[d], options_.bandwidth), 0.0, 1.0);
      const auto value = iv->min + static_cast<std::int64_t>(std::llround(
                                       t * static_cast<double>(iv->max - iv->min)));
      obj.emplace_back(dim.name, json::Value(std::clamp(value, iv->min, iv->max)));
    } else {
      const auto& fv = std::get<FloatDomain>(dim.domain);
      const double t =
          std::clamp(rng_.next_gaussian(anchor->values[d], options_.bandwidth), 0.0, 1.0);
      double value;
      if (fv.log_scale)
        value = std::exp(std::log(fv.min) + t * (std::log(fv.max) - std::log(fv.min)));
      else
        value = fv.min + t * (fv.max - fv.min);
      // exp(log(max)) can land one ulp above max; keep the domain closed.
      obj.emplace_back(dim.name, json::Value(std::clamp(value, fv.min, fv.max)));
    }
  }
  return Config(std::move(obj));
}

std::optional<Config> TpeSearch::next() {
  if (issued_ >= options_.max_evals) return std::nullopt;
  ++issued_;

  if (observations_.size() < options_.n_init) return space_.sample(rng_);

  // Split at the gamma quantile (higher scores are better).
  std::vector<const Observation*> ranked;
  ranked.reserve(observations_.size());
  for (const Observation& o : observations_) ranked.push_back(&o);
  std::sort(ranked.begin(), ranked.end(),
            [](const Observation* a, const Observation* b) { return a->score > b->score; });
  const std::size_t n_good = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(options_.gamma * static_cast<double>(ranked.size()))));
  const std::vector<const Observation*> good(ranked.begin(),
                                             ranked.begin() + static_cast<std::ptrdiff_t>(n_good));
  const std::vector<const Observation*> bad(ranked.begin() + static_cast<std::ptrdiff_t>(n_good),
                                            ranked.end());

  Config best_candidate = sample_from_good(good);
  double best_ratio = -1.0;
  for (std::size_t i = 0; i < options_.n_candidates; ++i) {
    Config candidate = sample_from_good(good);
    const std::vector<double> values = dim_values(candidate);
    const double ratio = density(values, good) / density(values, bad);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_candidate = std::move(candidate);
    }
  }
  return best_candidate;
}

void TpeSearch::tell(const Config& config, double score) {
  Observation obs;
  obs.config = config;
  obs.values = dim_values(config);
  obs.score = score;
  observations_.push_back(std::move(obs));
}

}  // namespace chpo::hpo
