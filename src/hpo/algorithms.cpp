#include "hpo/algorithms.hpp"

#include <algorithm>
#include <stdexcept>

#include "hpo/tpe.hpp"

namespace chpo::hpo {

GridSearch::GridSearch(const SearchSpace& space) : configs_(space.enumerate_grid()) {}

std::optional<Config> GridSearch::next() {
  if (cursor_ >= configs_.size()) return std::nullopt;
  return configs_[cursor_++];
}

RandomSearch::RandomSearch(const SearchSpace& space, std::size_t n, std::uint64_t seed)
    : space_(space), remaining_(n), rng_(seed) {
  if (n == 0) throw std::invalid_argument("RandomSearch: n must be positive");
}

std::optional<Config> RandomSearch::next() {
  if (remaining_ == 0) return std::nullopt;
  --remaining_;
  return space_.sample(rng_);
}

GpBayesOpt::GpBayesOpt(const SearchSpace& space, Options options)
    : space_(space), options_(options), rng_(options.seed) {
  if (options_.max_evals == 0) throw std::invalid_argument("GpBayesOpt: max_evals must be positive");
  if (options_.n_init == 0) options_.n_init = 1;
}

std::optional<Config> GpBayesOpt::next() {
  if (issued_ >= options_.max_evals) return std::nullopt;
  ++issued_;

  if (ys_.size() < options_.n_init) return space_.sample(rng_);

  GaussianProcess gp(options_.lengthscale, 1.0, options_.noise);
  gp.fit(xs_, ys_);
  const double best = *std::max_element(ys_.begin(), ys_.end());

  Config best_candidate = space_.sample(rng_);
  double best_ei = -1.0;
  for (std::size_t i = 0; i < options_.n_candidates; ++i) {
    Config candidate = space_.sample(rng_);
    const auto prediction = gp.predict(space_.encode(candidate));
    const double ei = expected_improvement(prediction.mean, prediction.variance, best);
    if (ei > best_ei) {
      best_ei = ei;
      best_candidate = std::move(candidate);
    }
  }
  return best_candidate;
}

void GpBayesOpt::tell(const Config& config, double score) {
  xs_.push_back(space_.encode(config));
  ys_.push_back(score);
}

std::unique_ptr<SearchAlgorithm> make_search_algorithm(const std::string& name,
                                                       const SearchSpace& space,
                                                       std::size_t budget, std::uint64_t seed) {
  if (name == "grid") return std::make_unique<GridSearch>(space);
  if (name == "random") return std::make_unique<RandomSearch>(space, budget, seed);
  if (name == "gp")
    return std::make_unique<GpBayesOpt>(space,
                                        GpBayesOpt::Options{.max_evals = budget, .seed = seed});
  if (name == "tpe")
    return std::make_unique<TpeSearch>(space, TpeSearch::Options{.max_evals = budget, .seed = seed});
  throw std::invalid_argument("optimize: unknown algorithm '" + name +
                              "' (grid | random | gp | tpe)");
}

}  // namespace chpo::hpo
