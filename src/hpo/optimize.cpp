#include "hpo/optimize.hpp"

#include <stdexcept>

#include "hpo/algorithms.hpp"
#include "hpo/tpe.hpp"
#include "runtime/runtime.hpp"

namespace chpo::hpo {

HpoOutcome optimize(const ml::Dataset& dataset, const SearchSpace& space,
                    const std::string& algorithm, const OptimizeOptions& options) {
  rt::RuntimeOptions runtime_options;
  cluster::NodeSpec node;
  node.name = "optimize";
  node.cpus = options.cpus_per_node;
  runtime_options.cluster = cluster::homogeneous(options.cluster_nodes, node);
  runtime_options.seed = options.seed;
  rt::Runtime runtime(std::move(runtime_options));

  DriverOptions driver_options;
  driver_options.trial_constraint = {.cpus = options.trial_cpus};
  driver_options.stop_on_accuracy = options.stop_on_accuracy;
  driver_options.epoch_divisor = options.epoch_divisor;
  driver_options.epoch_cap = options.epoch_cap;
  driver_options.seed = options.seed;
  HpoDriver driver(runtime.main_study(), dataset, driver_options);

  const std::unique_ptr<SearchAlgorithm> search =
      make_search_algorithm(algorithm, space, options.budget, options.seed);
  return driver.run(*search);
}

HpoOutcome optimize(const ml::Dataset& dataset, const std::string& space_json,
                    const std::string& algorithm, const OptimizeOptions& options) {
  const SearchSpace space = SearchSpace::from_json_text(space_json);
  return optimize(dataset, space, algorithm, options);
}

}  // namespace chpo::hpo
