#include "hpo/gp.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace chpo::hpo {

GaussianProcess::GaussianProcess(double lengthscale, double signal_variance, double noise)
    : lengthscale_(lengthscale), signal_variance_(signal_variance), noise_(noise) {
  if (lengthscale_ <= 0 || signal_variance_ <= 0 || noise_ < 0)
    throw std::invalid_argument("GaussianProcess: invalid hyperparameters");
}

double GaussianProcess::kernel(const std::vector<double>& a, const std::vector<double>& b) const {
  if (a.size() != b.size()) throw std::invalid_argument("GaussianProcess: dimension mismatch");
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return signal_variance_ * std::exp(-0.5 * d2 / (lengthscale_ * lengthscale_));
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty())
    throw std::invalid_argument("GaussianProcess: xs/ys size mismatch or empty");
  const std::size_t n = xs.size();
  xs_ = xs;
  y_mean_ = std::accumulate(ys.begin(), ys.end(), 0.0) / static_cast<double>(n);
  mean_shifted_ys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) mean_shifted_ys_[i] = ys[i] - y_mean_;

  // K + noise*I, then in-place Cholesky (lower triangular).
  std::vector<double> k(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel(xs_[i], xs_[j]) + (i == j ? noise_ + 1e-10 : 0.0);
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }
  chol_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = k[i * n + j];
      for (std::size_t p = 0; p < j; ++p) sum -= chol_[i * n + p] * chol_[j * n + p];
      if (i == j) {
        if (sum <= 0.0)
          throw std::invalid_argument("GaussianProcess: kernel matrix not positive definite");
        chol_[i * n + i] = std::sqrt(sum);
      } else {
        chol_[i * n + j] = sum / chol_[j * n + j];
      }
    }
  }
  // alpha = K^{-1} y via two triangular solves.
  alpha_ = mean_shifted_ys_;
  for (std::size_t i = 0; i < n; ++i) {  // L z = y
    double sum = alpha_[i];
    for (std::size_t p = 0; p < i; ++p) sum -= chol_[i * n + p] * alpha_[p];
    alpha_[i] = sum / chol_[i * n + i];
  }
  for (std::size_t i = n; i-- > 0;) {  // L^T alpha = z
    double sum = alpha_[i];
    for (std::size_t p = i + 1; p < n; ++p) sum -= chol_[p * n + i] * alpha_[p];
    alpha_[i] = sum / chol_[i * n + i];
  }
}

GaussianProcess::Prediction GaussianProcess::predict(const std::vector<double>& x) const {
  if (!fitted()) return Prediction{.mean = y_mean_, .variance = signal_variance_};
  const std::size_t n = xs_.size();
  std::vector<double> kx(n);
  for (std::size_t i = 0; i < n; ++i) kx[i] = kernel(xs_[i], x);

  Prediction out;
  out.mean = y_mean_;
  for (std::size_t i = 0; i < n; ++i) out.mean += kx[i] * alpha_[i];

  // v = L^{-1} kx ; var = k(x,x) - v.v
  std::vector<double> v = kx;
  for (std::size_t i = 0; i < n; ++i) {
    double sum = v[i];
    for (std::size_t p = 0; p < i; ++p) sum -= chol_[i * n + p] * v[p];
    v[i] = sum / chol_[i * n + i];
  }
  double vv = 0.0;
  for (double vi : v) vv += vi * vi;
  out.variance = std::max(kernel(x, x) - vv, 1e-12);
  return out;
}

double expected_improvement(double mean, double variance, double best, double xi) {
  const double sigma = std::sqrt(std::max(variance, 1e-12));
  const double improvement = mean - best - xi;
  const double z = improvement / sigma;
  // Standard normal pdf / cdf.
  const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
  const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
  return improvement * cdf + sigma * pdf;
}

}  // namespace chpo::hpo
