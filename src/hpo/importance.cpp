#include "hpo/importance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "support/strings.hpp"

namespace chpo::hpo {

namespace {

/// Group key for one trial's value of a hyperparameter.
std::string value_key(const json::Value* value, const std::vector<double>& bin_edges) {
  if (!value) return "<inactive>";
  if (value->is_double() && !bin_edges.empty()) {
    const double v = value->as_double();
    std::size_t bin = 0;
    while (bin < bin_edges.size() && v > bin_edges[bin]) ++bin;
    return "bin" + std::to_string(bin);
  }
  return json::serialize(*value);
}

}  // namespace

std::vector<DimensionImportance> hyperparameter_importance(const std::vector<Trial>& trials,
                                                           const ImportanceOptions& options) {
  std::vector<const Trial*> usable;
  for (const Trial& t : trials)
    if (!t.failed) usable.push_back(&t);
  if (usable.size() < 2) return {};

  double mean = 0;
  for (const Trial* t : usable) mean += t->result.final_val_accuracy;
  mean /= static_cast<double>(usable.size());
  double total_variance = 0;
  for (const Trial* t : usable) {
    const double d = t->result.final_val_accuracy - mean;
    total_variance += d * d;
  }
  total_variance /= static_cast<double>(usable.size());
  if (total_variance <= 0) return {};

  // Collect the union of hyperparameter names.
  std::set<std::string> names;
  for (const Trial* t : usable)
    for (const auto& [key, value] : t->config.as_object()) names.insert(key);

  std::vector<DimensionImportance> out;
  for (const std::string& name : names) {
    // Quantile bin edges for continuous dimensions.
    std::vector<double> continuous_values;
    for (const Trial* t : usable) {
      const json::Value* v = t->config.find(name);
      if (v && v->is_double()) continuous_values.push_back(v->as_double());
    }
    std::vector<double> bin_edges;
    if (!continuous_values.empty() && options.continuous_bins > 1) {
      std::sort(continuous_values.begin(), continuous_values.end());
      for (std::size_t b = 1; b < options.continuous_bins; ++b) {
        const std::size_t index = continuous_values.size() * b / options.continuous_bins;
        bin_edges.push_back(continuous_values[std::min(index, continuous_values.size() - 1)]);
      }
    }

    // Group by value; between-group variance of group means.
    std::map<std::string, std::pair<double, std::size_t>> groups;  // sum, count
    for (const Trial* t : usable) {
      const std::string key = value_key(t->config.find(name), bin_edges);
      auto& [sum, count] = groups[key];
      sum += t->result.final_val_accuracy;
      ++count;
    }
    double between = 0;
    for (const auto& [key, group] : groups) {
      const double group_mean = group.first / static_cast<double>(group.second);
      between += static_cast<double>(group.second) * (group_mean - mean) * (group_mean - mean);
    }
    between /= static_cast<double>(usable.size());

    out.push_back(DimensionImportance{.name = name,
                                      .variance_share = between / total_variance,
                                      .distinct_values = groups.size()});
  }
  std::sort(out.begin(), out.end(), [](const DimensionImportance& a, const DimensionImportance& b) {
    return a.variance_share > b.variance_share;
  });
  return out;
}

std::string importance_table(const std::vector<DimensionImportance>& importance) {
  std::ostringstream out;
  out << pad_right("hyperparameter", 20) << pad_left("importance", 12)
      << pad_left("values", 8) << "\n";
  for (const auto& dim : importance) {
    char share[16];
    std::snprintf(share, sizeof share, "%.1f%%", 100.0 * dim.variance_share);
    out << pad_right(dim.name, 20) << pad_left(share, 12)
        << pad_left(std::to_string(dim.distinct_values), 8) << "\n";
  }
  return out.str();
}

}  // namespace chpo::hpo
