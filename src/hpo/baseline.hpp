// Baselines the paper's introduction motivates against.
//
// * sequential_hpo: "traditionally, one would just launch one training
//   after the other" — no runtime, one config at a time on the calling
//   thread. The comparator for every speedup claim.
// * static_partition_seconds: the slurm-style alternative (§2.2): split the
//   config list into fixed per-node blocks up front, no work stealing. Uses
//   the same analytic cost model as the simulator, so its makespan is
//   directly comparable with the runtime's dynamic scheduling — this is
//   what quantifies "reuse of freed resources" (Figure 6b's point).
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "hpo/driver.hpp"
#include "hpo/search_space.hpp"
#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"

namespace chpo::hpo {

/// Train every config serially; returns trials in order.
HpoOutcome sequential_hpo(const ml::Dataset& dataset, const std::vector<Config>& configs,
                          const DriverOptions& options);

/// Virtual makespan of the config list under the analytic cost model when
/// all experiments run one-after-another on `cpus` cores of `node`.
double sequential_makespan_seconds(const std::vector<Config>& configs,
                                   const ml::WorkloadModel& workload, unsigned cpus,
                                   const cluster::NodeSpec& node);

/// Virtual makespan when configs are dealt round-robin across nodes, each
/// node running its share serially (`cpus_per_task` cores per experiment,
/// no rebalancing). Round-robin interleaves the duration spectrum, so it
/// is the *strong* static baseline.
double static_partition_seconds(const std::vector<Config>& configs,
                                const ml::WorkloadModel& workload, std::size_t nodes,
                                unsigned cpus_per_task, const cluster::NodeSpec& node);

/// Same, but with contiguous blocks (configs [i*k, (i+1)*k) to node i) —
/// what a naive per-node slurm script does. Groups the heavy 100-epoch
/// configs onto one node and pays for it.
double static_partition_contiguous_seconds(const std::vector<Config>& configs,
                                           const ml::WorkloadModel& workload, std::size_t nodes,
                                           unsigned cpus_per_task,
                                           const cluster::NodeSpec& node);

}  // namespace chpo::hpo
