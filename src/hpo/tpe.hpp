// Tree-structured Parzen Estimator (Bergstra et al., NIPS 2011) — the
// algorithm behind Hyperopt, which the paper's §2 discusses at length.
//
// Observations are split at the gamma-quantile into "good" and "bad" sets;
// per-dimension Parzen densities l(x) (good) and g(x) (bad) are built, and
// the next configuration maximises l(x)/g(x) over candidates sampled from
// l. Categorical dimensions use smoothed category counts; numeric
// dimensions use Gaussian kernels in the normalised [0,1] domain.
#pragma once

#include "hpo/algorithms.hpp"
#include "hpo/search_space.hpp"

namespace chpo::hpo {

class TpeSearch : public SearchAlgorithm {
 public:
  struct Options {
    std::size_t max_evals = 30;
    std::size_t n_init = 5;       ///< random warm-up evaluations
    double gamma = 0.25;          ///< top fraction considered "good"
    std::size_t n_candidates = 64;
    double bandwidth = 0.12;      ///< Gaussian kernel width in [0,1] space
    std::uint64_t seed = 7;
  };

  TpeSearch(const SearchSpace& space, Options options);
  std::string name() const override { return "tpe"; }
  std::optional<Config> next() override;
  void tell(const Config& config, double score) override;
  bool sequential() const override { return true; }
  std::size_t observations() const { return observations_.size(); }

 private:
  struct Observation {
    Config config;
    std::vector<double> values;  ///< per-dimension normalised scalars
    double score = 0.0;
  };

  /// Per-dimension scalar in [0,1]: categorical -> index/(k-1) identity is
  /// wrong for densities, so categoricals keep their raw index instead.
  std::vector<double> dim_values(const Config& config) const;

  /// Parzen density of candidate `values` under a set of observations.
  double density(const std::vector<double>& values,
                 const std::vector<const Observation*>& set) const;

  Config sample_from_good(const std::vector<const Observation*>& good);

  const SearchSpace& space_;
  Options options_;
  Rng rng_;
  std::size_t issued_ = 0;
  std::vector<Observation> observations_;
};

}  // namespace chpo::hpo
