// Hyperparameter importance — which dimension moved the needle?
//
// A marginal-variance decomposition (fANOVA's first-order terms, computed
// directly on the trial table): for each hyperparameter, group trials by
// its value, and score the dimension by the between-group variance of the
// mean accuracy as a fraction of the total accuracy variance. Scores do
// not sum to 1 (interactions are unattributed); they rank dimensions.
//
// Continuous hyperparameters are bucketed into quantile bins first so
// "learning_rate = 0.0123" and "0.0124" land in the same group.
#pragma once

#include <string>
#include <vector>

#include "hpo/driver.hpp"

namespace chpo::hpo {

struct DimensionImportance {
  std::string name;
  double variance_share = 0.0;  ///< between-group variance / total variance
  std::size_t distinct_values = 0;
};

struct ImportanceOptions {
  /// Quantile bins for continuous (double-valued) hyperparameters.
  std::size_t continuous_bins = 4;
};

/// Rank every hyperparameter that appears in at least one non-failed trial,
/// most important first. Trials missing a key (inactive conditionals) form
/// their own group. Returns empty if fewer than 2 usable trials or zero
/// accuracy variance.
std::vector<DimensionImportance> hyperparameter_importance(
    const std::vector<Trial>& trials, const ImportanceOptions& options = {});

/// Fixed-width rendering for reports.
std::string importance_table(const std::vector<DimensionImportance>& importance);

}  // namespace chpo::hpo
