// Hyperparameter search spaces.
//
// The paper drives HPO from a JSON file (Listing 1):
//
//   { "optimizer":  ["Adam", "SGD", "RMSprop"],
//     "num_epochs": [20, 50, 100],
//     "batch_size": [32, 64, 128] }
//
// An array maps to a categorical domain — that is the paper's entire
// format. As the "future work" extension we also accept range domains:
//
//   { "learning_rate": {"type": "float", "min": 1e-4, "max": 1e-1, "log": true},
//     "hidden":        {"type": "int",   "min": 16,   "max": 256} }
//
// A Config (one point in the space) is a JSON object mapping each
// hyperparameter name to a concrete value, so it serializes naturally.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "jsonlite/json.hpp"
#include "support/rng.hpp"

namespace chpo::hpo {

using Config = json::Value;  ///< always an Object

struct CategoricalDomain {
  std::vector<json::Value> values;
};

struct IntDomain {
  std::int64_t min = 0;
  std::int64_t max = 0;
};

struct FloatDomain {
  double min = 0.0;
  double max = 0.0;
  bool log_scale = false;
};

using Domain = std::variant<CategoricalDomain, IntDomain, FloatDomain>;

/// Conditional activation: the dimension only exists when another
/// (categorical) dimension holds a specific value — e.g. "momentum" only
/// when optimizer == "SGD". Inactive dimensions are omitted from configs.
struct Condition {
  std::string parent;   ///< name of the controlling dimension
  json::Value equals;   ///< required parent value
};

struct Dimension {
  std::string name;
  Domain domain;
  std::optional<Condition> condition;

  bool is_categorical() const { return std::holds_alternative<CategoricalDomain>(domain); }
  /// Number of discrete choices; nullopt for continuous (float) domains.
  std::optional<std::size_t> cardinality() const;
};

class SearchSpace {
 public:
  SearchSpace() = default;

  /// Parse the paper's JSON format (plus range extensions). Throws
  /// json::JsonError on malformed input.
  static SearchSpace from_json(const json::Value& spec);
  static SearchSpace from_json_text(std::string_view text);
  static SearchSpace from_file(const std::string& path);

  void add_categorical(std::string name, std::vector<json::Value> values);
  void add_int(std::string name, std::int64_t min, std::int64_t max);
  void add_float(std::string name, double min, double max, bool log_scale = false);

  /// Make the most recently added dimension conditional on
  /// `parent == value`. The parent must be an earlier categorical
  /// dimension containing `value`.
  void make_conditional(const std::string& parent, json::Value value);

  /// True when `dim` is active within `config` (its condition, if any,
  /// holds on the values present in the config).
  bool is_active(const Dimension& dim, const Config& config) const;

  const std::vector<Dimension>& dimensions() const { return dims_; }
  std::size_t size() const { return dims_.size(); }
  const Dimension* find(std::string_view name) const;

  /// Total grid points; nullopt if any dimension is continuous.
  std::optional<std::size_t> grid_size() const;

  /// Full cross product in row-major order (first dimension slowest).
  /// Throws std::logic_error when the space has a continuous dimension.
  std::vector<Config> enumerate_grid() const;

  /// One uniform random point.
  Config sample(Rng& rng) const;

  /// Encode a config as a flat numeric vector in [0,1]^d (one-hot for
  /// categoricals) — the GP surrogate's input representation.
  std::vector<double> encode(const Config& config) const;
  std::size_t encoded_width() const;

 private:
  std::vector<Dimension> dims_;
};

/// Typed getters with clear errors for the standard keys.
std::string config_string(const Config& config, std::string_view key);
std::int64_t config_int(const Config& config, std::string_view key);
double config_double(const Config& config, std::string_view key);
/// "optimizer=Adam epochs=20 batch=32"-style display string.
std::string config_brief(const Config& config);

}  // namespace chpo::hpo
