// Resumable study state machines.
//
// HpoDriver::run / successive_halving / hyperband used to be blocking
// loops that drove the runtime to completion — fine for one study, fatal
// for N: the engine is single-thread confined, so concurrent studies must
// be *cooperatively multiplexed* from one coordinator, not run on N
// threads. This file splits each driving loop into an explicit state
// machine (a TrialPump): construction captures the plan, start() submits
// the initial window, and on_trial_complete() consumes exactly one
// finished trial and refills. A coordinator (service::StudyManager) can
// then interleave any number of pumps over one engine with a single
// wait_any across all their in-flight futures, routing each completion to
// the pump whose study tag it carries.
//
// The classic blocking entry points still exist — HpoDriver::run and the
// hyperband free functions are now thin wrappers that drive their own pump
// to exhaustion — so single-study code keeps its one-call shape.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "hpo/algorithms.hpp"
#include "hpo/driver.hpp"
#include "hpo/hyperband.hpp"
#include "reuse/planner.hpp"
#include "runtime/study_session.hpp"

namespace chpo::hpo {

/// The driving surface a study coordinator needs: submit work, expose
/// in-flight futures, consume completions one at a time, tear down.
class TrialPump {
 public:
  virtual ~TrialPump() = default;

  /// Submit the initial trial window (replaying any checkpoint first).
  virtual void start() = 0;

  /// True while the pump still has in-flight or submittable work. Drive
  /// on_trial_complete() with a member of inflight() until this is false,
  /// then call finish().
  virtual bool active() const = 0;

  /// Futures of every trial currently in flight. Empty while refills are
  /// paused and the window has drained — skip the pump until resumed.
  virtual const std::vector<rt::Future>& inflight() const = 0;

  /// True iff `finished` is one of this pump's in-flight trials — the
  /// demultiplex predicate a coordinator routes wait_any winners with.
  bool owns(const rt::Future& finished) const;

  /// Consume one finished trial (must satisfy owns()): record it, feed the
  /// algorithm, checkpoint, refill the window. Unknown futures throw —
  /// a completion leaking in from another study is a routing bug.
  virtual void on_trial_complete(const rt::Future& finished) = 0;

  /// Hold / release window refills (the driver half of a study pause; the
  /// engine half holds the study's ready queue). In-flight trials keep
  /// running either way. Resuming refills the window immediately.
  virtual void set_refill_paused(bool paused) = 0;

  /// Trials recorded so far, including checkpoint replays — live progress
  /// for service status while the pump still owns its outcome (the
  /// flattened HpoOutcome only exists after finish()).
  virtual std::size_t trials_done() const = 0;

  /// Most recently recorded trial, or nullptr before the first completion.
  /// Invalidated by the next on_trial_complete()/finish() call — consume
  /// it immediately (event taps do), never store it.
  virtual const Trial* last_trial() const = 0;

  /// Kill: cancel every in-flight trial of this study and stop refilling.
  /// active() turns false; finish() still returns the partial outcome.
  virtual void abandon() = 0;

  /// Finalise and return the outcome (plot task, reuse report, best-trial
  /// scan). Call once, after active() turned false or abandon().
  virtual HpoOutcome finish() = 0;
};

/// State machine behind HpoDriver::run: one SearchAlgorithm driven through
/// a window of experiment tasks on one StudySession.
class StudyRun : public TrialPump {
 public:
  /// `dataset` and `algorithm` must outlive the run (same contract as
  /// HpoDriver). The session's Runtime must outlive everything.
  StudyRun(rt::StudySession session, const ml::Dataset& dataset, DriverOptions options,
           SearchAlgorithm& algorithm);

  void start() override;
  bool active() const override;
  const std::vector<rt::Future>& inflight() const override { return inflight_futures_; }
  void on_trial_complete(const rt::Future& finished) override;
  std::size_t trials_done() const override { return outcome_.trials.size(); }
  const Trial* last_trial() const override {
    return outcome_.trials.empty() ? nullptr : &outcome_.trials.back();
  }
  void set_refill_paused(bool paused) override;
  void abandon() override;
  HpoOutcome finish() override;

 private:
  struct InFlight {
    int index = -1;
    Config config;
    rt::Future future;
    rt::Future vis;  ///< producer == kNoTask unless visualise is on
  };

  /// Pull configs until the window is full or the algorithm runs dry;
  /// replays checkpointed configs inline. Sets stopped_ when a replayed
  /// trial crosses the stop threshold.
  void top_up();
  /// Batch + reuse: drain the whole batch through the stage planner at
  /// once so shared prefixes merge into one tree.
  void start_batch_reuse();
  bool stop_hit(const Trial& trial) const;
  void record_replayed(const Config& config, const ml::TrainResult& result);
  void cancel_outstanding();
  void rebuild_futures();

  rt::StudySession session_;
  const ml::Dataset& dataset_;
  DriverOptions options_;
  SearchAlgorithm& algorithm_;
  double t0_ = 0.0;
  HpoOutcome outcome_;
  std::vector<Trial> restored_;
  std::optional<reuse::StageExecutor> executor_;
  std::size_t window_ = 1;
  std::vector<InFlight> inflight_;
  std::vector<rt::Future> inflight_futures_;
  std::vector<rt::Future> vis_done_;
  int next_index_ = 0;
  bool exhausted_ = false;
  std::size_t replayed_ = 0;
  bool stopped_ = false;
  bool refill_paused_ = false;
  bool started_ = false;
};

/// State machine behind successive_halving: rungs of budgeted experiment
/// tasks, consumed as-completed, promoted top-1/eta between rungs.
class HalvingRun : public TrialPump {
 public:
  HalvingRun(rt::StudySession session, const ml::Dataset& dataset, SearchSpace space,
             HalvingOptions options, std::shared_ptr<reuse::ResultCache> cache = nullptr);

  void start() override;
  bool active() const override;
  const std::vector<rt::Future>& inflight() const override { return inflight_futures_; }
  void on_trial_complete(const rt::Future& finished) override;
  std::size_t trials_done() const override;
  const Trial* last_trial() const override;
  void set_refill_paused(bool paused) override;
  void abandon() override;
  HpoOutcome finish() override;

  /// Full per-rung view (the free function returns this; finish() flattens
  /// it into an HpoOutcome for the manager's uniform reporting).
  const HalvingOutcome& outcome() const { return outcome_; }
  int current_rung() const { return rung_index_; }

 private:
  /// Submit the current survivors at the current epoch budget. Fully
  /// replayed rungs close immediately (and may cascade into later rungs).
  void submit_rung();
  /// Rank the finished rung, promote the top 1/eta, advance the budget.
  void close_rung();
  void rebuild_futures();

  rt::StudySession session_;
  const ml::Dataset& dataset_;
  SearchSpace space_;
  HalvingOptions options_;
  Rng rng_;
  std::shared_ptr<reuse::ResultCache> cache_;
  std::optional<reuse::StageExecutor> executor_;
  double t0_ = 0.0;
  HalvingOutcome outcome_;
  std::vector<Config> survivors_;
  int epochs_ = 0;
  int rung_index_ = 0;
  RungResult rung_;
  std::vector<std::pair<Config, rt::Future>> submitted_;
  std::vector<std::pair<std::size_t, rt::Future>> outstanding_;
  std::vector<rt::Future> inflight_futures_;
  bool done_ = false;
  bool stopped_ = false;
  bool refill_paused_ = false;
  /// Rung promotion deferred by a pause (resume submits it).
  bool rung_pending_ = false;
};

/// State machine behind hyperband: s_max+1 HalvingRun brackets run in
/// sequence against one shared ResultCache.
class HyperbandRun : public TrialPump {
 public:
  HyperbandRun(rt::StudySession session, const ml::Dataset& dataset, SearchSpace space,
               HyperbandOptions options);

  void start() override;
  bool active() const override;
  const std::vector<rt::Future>& inflight() const override;
  void on_trial_complete(const rt::Future& finished) override;
  std::size_t trials_done() const override;
  const Trial* last_trial() const override;
  void set_refill_paused(bool paused) override;
  void abandon() override;
  HpoOutcome finish() override;

  const HyperbandOutcome& outcome() const { return outcome_; }

 private:
  void start_bracket();
  void harvest_bracket();

  rt::StudySession session_;
  const ml::Dataset& dataset_;
  SearchSpace space_;
  HyperbandOptions options_;
  std::shared_ptr<reuse::ResultCache> cache_;
  double t0_ = 0.0;
  HyperbandOutcome outcome_;
  int s_max_ = 0;
  int s_ = 0;
  std::unique_ptr<HalvingRun> bracket_;
  std::vector<rt::Future> empty_;
  bool stopped_ = false;
  bool refill_paused_ = false;
};

}  // namespace chpo::hpo
