#include "hpo/hyperband.hpp"

#include "hpo/study_run.hpp"

namespace chpo::hpo {

HalvingOutcome successive_halving(rt::StudySession session, const ml::Dataset& dataset,
                                  const SearchSpace& space, const HalvingOptions& options,
                                  std::shared_ptr<reuse::ResultCache> cache) {
  // Blocking convenience over the HalvingRun pump (see study_run.hpp);
  // service::StudyManager drives the same pump cooperatively instead.
  HalvingRun run(session, dataset, space, options, std::move(cache));
  run.start();
  while (run.active() && !run.inflight().empty())
    run.on_trial_complete(session.wait_any(run.inflight()));
  run.finish();
  return run.outcome();
}

HyperbandOutcome hyperband(rt::StudySession session, const ml::Dataset& dataset,
                           const SearchSpace& space, const HyperbandOptions& options) {
  HyperbandRun run(session, dataset, space, options);
  run.start();
  while (run.active() && !run.inflight().empty())
    run.on_trial_complete(session.wait_any(run.inflight()));
  run.finish();
  return run.outcome();
}

}  // namespace chpo::hpo
