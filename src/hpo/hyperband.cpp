#include "hpo/hyperband.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "support/log.hpp"

namespace chpo::hpo {

HalvingOutcome successive_halving(rt::Runtime& runtime, const ml::Dataset& dataset,
                                  const SearchSpace& space, const HalvingOptions& options,
                                  std::shared_ptr<reuse::ResultCache> cache) {
  if (options.initial_configs == 0)
    throw std::invalid_argument("successive_halving: need at least one config");
  if (options.eta <= 1.0) throw std::invalid_argument("successive_halving: eta must exceed 1");
  if (options.initial_epochs <= 0)
    throw std::invalid_argument("successive_halving: initial epochs must be positive");

  const double t0 = runtime.now();
  Rng rng(options.driver.seed ^ 0x4a17f1e5ULL);
  HalvingOutcome outcome;

  // Reuse mode: each rung is a batch through the stage executor, and all
  // rungs share one cache — a promoted config's next rung resumes from the
  // epoch checkpoint the previous rung left behind (deterministic seeds
  // make the trajectories identical across rungs).
  std::optional<reuse::StageExecutor> executor;
  if (options.driver.reuse.enabled && options.driver.cv_folds <= 1) {
    if (!cache) cache = std::make_shared<reuse::ResultCache>(options.driver.reuse);
    executor.emplace(runtime, dataset, options.driver.reuse, options.driver.trial_constraint,
                     options.driver.workload, cache);
  }

  std::vector<Config> survivors;
  survivors.reserve(options.initial_configs);
  for (std::size_t i = 0; i < options.initial_configs; ++i) survivors.push_back(space.sample(rng));

  int epochs = options.initial_epochs;
  int rung_index = 0;
  while (!survivors.empty()) {
    // Override each config's epoch budget with the rung budget.
    RungResult rung;
    rung.rung = rung_index;
    rung.epochs = epochs;

    std::vector<std::pair<Config, rt::Future>> submitted;
    std::vector<std::pair<std::size_t, rt::Future>> outstanding;
    if (executor) {
      std::vector<reuse::TrialRequest> requests;
      requests.reserve(survivors.size());
      for (std::size_t i = 0; i < survivors.size(); ++i) {
        Config budgeted = survivors[i];
        budgeted.set("num_epochs", json::Value(static_cast<std::int64_t>(epochs)));
        const int trial_index = rung_index * 1000 + static_cast<int>(i);
        requests.push_back(
            {trial_index, experiment_train_config(budgeted, options.driver, trial_index)});
        submitted.emplace_back(std::move(budgeted), rt::Future{});
      }
      const std::vector<reuse::SubmittedTrial> subs = executor->submit(requests);
      for (std::size_t i = 0; i < subs.size(); ++i) {
        if (subs[i].replayed) {
          Trial trial;
          trial.index = static_cast<int>(i);
          trial.config = submitted[i].first;
          trial.result = *subs[i].replayed;
          rung.trials.push_back(std::move(trial));
        } else {
          submitted[i].second = subs[i].future;
          outstanding.emplace_back(i, subs[i].future);
        }
      }
    } else {
      for (std::size_t i = 0; i < survivors.size(); ++i) {
        Config budgeted = survivors[i];
        budgeted.set("num_epochs", json::Value(static_cast<std::int64_t>(epochs)));
        const rt::TaskDef def =
            make_experiment_task(dataset, budgeted, options.driver,
                                 rung_index * 1000 + static_cast<int>(i));
        submitted.emplace_back(std::move(budgeted), runtime.submit(def));
      }
      for (std::size_t i = 0; i < submitted.size(); ++i)
        outstanding.emplace_back(i, submitted[i].second);
    }
    // Consume the rung as-completed (wait_any), not in submission order:
    // ranking needs every result anyway, but observing completions as they
    // land keeps trial bookkeeping off the slowest-first critical path.
    while (!outstanding.empty()) {
      std::vector<rt::Future> futures;
      futures.reserve(outstanding.size());
      for (const auto& [_, f] : outstanding) futures.push_back(f);
      const rt::Future finished = runtime.wait_any(futures);
      const auto it = std::find_if(outstanding.begin(), outstanding.end(), [&](const auto& entry) {
        return entry.second.producer == finished.producer;
      });
      Trial trial;
      trial.index = static_cast<int>(it->first);
      trial.config = submitted[it->first].first;
      trial.task = finished.producer;
      try {
        trial.result = runtime.wait_on_as<ml::TrainResult>(finished);
      } catch (const rt::TaskFailedError& e) {
        trial.failed = true;
        trial.failure_reason = e.what();
      }
      outstanding.erase(it);
      rung.trials.push_back(std::move(trial));
    }
    std::sort(rung.trials.begin(), rung.trials.end(),
              [](const Trial& a, const Trial& b) { return a.index < b.index; });

    // Rank survivors by accuracy, keep the top 1/eta.
    std::vector<const Trial*> ranked;
    for (const Trial& t : rung.trials)
      if (!t.failed) ranked.push_back(&t);
    std::sort(ranked.begin(), ranked.end(), [](const Trial* a, const Trial* b) {
      return a->result.final_val_accuracy > b->result.final_val_accuracy;
    });

    if (!ranked.empty() && ranked.front()->result.final_val_accuracy > outcome.best_accuracy) {
      outcome.best_accuracy = ranked.front()->result.final_val_accuracy;
      outcome.best_config = ranked.front()->config;
    }
    log_info("halving", "rung {}: {} trials at {} epochs, best {:.3f}", rung_index,
             rung.trials.size(), epochs, ranked.empty() ? 0.0 : ranked.front()->result.final_val_accuracy);
    outcome.rungs.push_back(std::move(rung));

    const std::size_t keep =
        static_cast<std::size_t>(std::floor(static_cast<double>(ranked.size()) / options.eta));
    if (keep == 0 || epochs >= options.max_epochs) break;
    survivors.clear();
    for (std::size_t i = 0; i < keep; ++i) survivors.push_back(ranked[i]->config);
    epochs = std::min(options.max_epochs,
                      static_cast<int>(std::lround(static_cast<double>(epochs) * options.eta)));
    ++rung_index;
  }
  if (executor) outcome.reuse = executor->report();
  outcome.elapsed_seconds = runtime.now() - t0;
  return outcome;
}

HyperbandOutcome hyperband(rt::Runtime& runtime, const ml::Dataset& dataset,
                           const SearchSpace& space, const HyperbandOptions& options) {
  if (options.max_epochs <= 0) throw std::invalid_argument("hyperband: max_epochs must be positive");
  if (options.eta <= 1.0) throw std::invalid_argument("hyperband: eta must exceed 1");

  const double t0 = runtime.now();
  HyperbandOutcome outcome;
  const double r_max = static_cast<double>(options.max_epochs);
  const int s_max = static_cast<int>(std::floor(std::log(r_max) / std::log(options.eta)));

  // One cache for all brackets: a config budget reached in an exploratory
  // bracket seeds the checkpoints later brackets resume from.
  std::shared_ptr<reuse::ResultCache> cache;
  if (options.driver.reuse.enabled && options.driver.cv_folds <= 1)
    cache = std::make_shared<reuse::ResultCache>(options.driver.reuse);

  for (int s = s_max; s >= 0; --s) {
    // Bracket s: n = ceil((s_max+1)/(s+1) * eta^s) configs at
    // r = R / eta^s initial epochs.
    const double eta_s = std::pow(options.eta, s);
    HalvingOptions bracket;
    bracket.initial_configs = static_cast<std::size_t>(
        std::ceil(static_cast<double>(s_max + 1) / static_cast<double>(s + 1) * eta_s));
    bracket.initial_epochs = std::max(1, static_cast<int>(std::floor(r_max / eta_s)));
    bracket.eta = options.eta;
    bracket.max_epochs = options.max_epochs;
    bracket.driver = options.driver;
    bracket.driver.seed = options.driver.seed + static_cast<std::uint64_t>(s) * 7907ULL;

    HalvingOutcome result = successive_halving(runtime, dataset, space, bracket, cache);
    for (const RungResult& rung : result.rungs) outcome.total_trials += rung.trials.size();
    if (result.best_accuracy > outcome.best_accuracy) {
      outcome.best_accuracy = result.best_accuracy;
      outcome.best_config = result.best_config;
    }
    if (result.reuse) {
      if (!outcome.reuse) outcome.reuse.emplace();
      outcome.reuse->cache = result.reuse->cache;  // shared cache -> cumulative stats
      outcome.reuse->trials += result.reuse->trials;
      outcome.reuse->replayed_trials += result.reuse->replayed_trials;
      outcome.reuse->chains += result.reuse->chains;
      outcome.reuse->stages += result.reuse->stages;
      outcome.reuse->shared_stages += result.reuse->shared_stages;
      outcome.reuse->naive_epochs += result.reuse->naive_epochs;
      outcome.reuse->planned_epochs += result.reuse->planned_epochs;
    }
    outcome.brackets.push_back(std::move(result));
  }
  outcome.elapsed_seconds = runtime.now() - t0;
  return outcome;
}

}  // namespace chpo::hpo
