#include "hpo/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <optional>

#include "hpo/checkpoint.hpp"
#include "reuse/stage_key.hpp"
#include "support/log.hpp"

namespace chpo::hpo {

ml::TrainConfig experiment_train_config(const Config& config, const DriverOptions& options,
                                        int trial_index, unsigned threads) {
  ml::TrainConfig tc;
  if (config.contains("optimizer")) tc.optimizer = config_string(config, "optimizer");
  int epochs = config.contains("num_epochs")
                   ? static_cast<int>(config_int(config, "num_epochs"))
                   : tc.num_epochs;
  epochs = std::max(1, epochs / std::max(1, options.epoch_divisor));
  if (options.epoch_cap > 0) epochs = std::min(epochs, options.epoch_cap);
  tc.num_epochs = epochs;
  if (config.contains("batch_size"))
    tc.batch_size = static_cast<int>(config_int(config, "batch_size"));
  if (config.contains("learning_rate"))
    tc.learning_rate = static_cast<float>(config_double(config, "learning_rate"));
  if (config.contains("lr_schedule")) tc.lr_schedule = config_string(config, "lr_schedule");
  if (config.contains("weight_decay"))
    tc.weight_decay = static_cast<float>(config_double(config, "weight_decay"));
  if (config.contains("batch_norm")) tc.batch_norm = config.at("batch_norm").as_bool();
  if (config.contains("hidden_layers"))
    tc.hidden_layers = static_cast<int>(config_int(config, "hidden_layers"));
  if (config.contains("hidden_units"))
    tc.hidden_units = static_cast<int>(config_int(config, "hidden_units"));
  if (config.contains("dropout"))
    tc.dropout = static_cast<float>(config_double(config, "dropout"));
  tc.threads = std::max(1u, threads);
  tc.target_accuracy = options.trial_target_accuracy;
  tc.patience = options.trial_patience;
  // Seed policy: per-trial-index by default (independent trials). Under
  // reuse with deterministic_seeds, the seed is a function of the
  // training-relevant config content, so trials differing only in epoch
  // budget are the same trajectory and share their stage-chain prefix.
  if (options.reuse.enabled && options.reuse.deterministic_seeds && options.cv_folds <= 1)
    tc.seed = reuse::derive_seed(options.seed, tc);
  else
    tc.seed = options.seed + static_cast<std::uint64_t>(trial_index) * 7919ULL;
  return tc;
}

rt::TaskDef make_experiment_task(const ml::Dataset& dataset, const Config& config,
                                 const DriverOptions& options, int trial_index) {
  rt::TaskDef def;
  def.name = "experiment";
  def.constraint = options.trial_constraint;

  const ml::Dataset* dataset_ptr = &dataset;
  def.body = [dataset_ptr, config, options, trial_index](rt::TaskContext& ctx) -> std::any {
    const ml::TrainConfig tc =
        experiment_train_config(config, options, trial_index, ctx.thread_budget());
    if (options.cv_folds > 1) {
      // Cross-validated trial: mean fold accuracy is the score; history
      // records one entry per fold so reports still have a curve to show.
      const ml::CvResult cv = ml::cross_validate(*dataset_ptr, tc, options.cv_folds);
      ml::TrainResult result;
      for (std::size_t fold = 0; fold < cv.fold_accuracies.size(); ++fold) {
        ml::EpochStats stats;
        stats.epoch = static_cast<int>(fold) + 1;
        stats.val_accuracy = cv.fold_accuracies[fold];
        result.history.push_back(stats);
      }
      result.final_val_accuracy = cv.mean_accuracy;
      result.best_val_accuracy = cv.mean_accuracy;
      result.epochs_run = tc.num_epochs;
      return result;
    }
    return ml::run_experiment(*dataset_ptr, tc);
  };

  if (options.workload) {
    const ml::WorkloadModel workload = *options.workload;
    const std::string optimizer =
        config.contains("optimizer") ? config_string(config, "optimizer") : "Adam";
    const int epochs =
        config.contains("num_epochs") ? static_cast<int>(config_int(config, "num_epochs")) : 10;
    const int batch =
        config.contains("batch_size") ? static_cast<int>(config_int(config, "batch_size")) : 32;
    def.cost = [workload, optimizer, epochs, batch](const rt::Placement& placement,
                                                    const cluster::NodeSpec& node) {
      return ml::experiment_seconds(workload, optimizer, epochs, batch, placement.cpu_count(),
                                    placement.gpu_count(), node);
    };
  }
  return def;
}

HpoDriver::HpoDriver(rt::Runtime& runtime, const ml::Dataset& dataset, DriverOptions options)
    : runtime_(runtime), dataset_(dataset), options_(std::move(options)) {}

void HpoDriver::finalise(HpoOutcome& outcome, double t0) const {
  outcome.elapsed_seconds = runtime_.now() - t0;
  // Trials were consumed in completion order; report them in submission
  // order so callers and reports stay deterministic.
  std::sort(outcome.trials.begin(), outcome.trials.end(),
            [](const Trial& a, const Trial& b) { return a.index < b.index; });
  double best = -1.0;
  for (std::size_t i = 0; i < outcome.trials.size(); ++i) {
    const Trial& t = outcome.trials[i];
    if (t.failed) continue;
    if (t.result.final_val_accuracy > best) {
      best = t.result.final_val_accuracy;
      outcome.best_index = static_cast<int>(i);
    }
  }
}

namespace {

/// The paper's `visualisation` task: condenses one experiment's result to
/// a report line (accuracy trajectory), running as a task of its own.
rt::TaskDef make_visualisation_task(const Config& config) {
  rt::TaskDef def;
  def.name = "visualisation";
  const std::string brief = config_brief(config);
  def.body = [brief](rt::TaskContext& ctx) -> std::any {
    const auto& result = ctx.read<ml::TrainResult>(0);
    std::string line = brief + " ->";
    for (const auto& epoch : result.history) {
      char buf[16];
      std::snprintf(buf, sizeof buf, " %.3f", epoch.val_accuracy);
      line += buf;
    }
    return line;
  };
  return def;
}

/// The final `plot` task (compss_wait_on target in Figure 2): merges all
/// visualisation lines into one report.
rt::TaskDef make_plot_task() {
  rt::TaskDef def;
  def.name = "plot";
  def.body = [](rt::TaskContext& ctx) -> std::any {
    std::string report = "validation accuracy per epoch, one line per experiment\n";
    for (std::size_t i = 0; i < ctx.param_count() - 1; ++i)
      report += ctx.read<std::string>(i) + "\n";
    return report;
  };
  return def;
}

}  // namespace

HpoOutcome HpoDriver::run(SearchAlgorithm& algorithm) {
  const double t0 = runtime_.now();
  HpoOutcome outcome;
  const std::vector<Trial> restored =
      options_.checkpoint_path.empty() ? std::vector<Trial>{}
                                       : load_checkpoint(options_.checkpoint_path);

  // Cross-trial reuse: trials become stage chains through a shared
  // executor + cache instead of monolithic experiment tasks. CV trials
  // keep the classic path (fold training has no stage decomposition).
  const bool use_reuse = options_.reuse.enabled && options_.cv_folds <= 1;
  std::optional<reuse::StageExecutor> executor;
  if (use_reuse)
    executor.emplace(runtime_, dataset_, options_.reuse, options_.trial_constraint,
                     options_.workload, std::make_shared<reuse::ResultCache>(options_.reuse));

  // Batch algorithms are drained up front (the paper's embarrassingly
  // parallel loop); sequential ones keep a window of suggestions in flight.
  const std::size_t window =
      algorithm.sequential()
          ? static_cast<std::size_t>(std::max(1, options_.parallel_suggestions))
          : std::numeric_limits<std::size_t>::max();

  struct InFlight {
    int index = -1;
    Config config;
    rt::Future future;
    rt::Future vis;  ///< producer == kNoTask unless visualise is on
  };
  std::vector<InFlight> inflight;
  std::vector<rt::Future> vis_done;  ///< vis futures of consumed, successful trials
  int next_index = 0;
  bool exhausted = false;
  std::size_t replayed = 0;

  const auto stop_hit = [&](const Trial& t) {
    return options_.stop_on_accuracy > 0 && !t.failed &&
           t.result.final_val_accuracy >= options_.stop_on_accuracy;
  };

  // Pull configs until the window is full or the algorithm runs dry. A
  // config found in the checkpoint is replayed inline instead of
  // resubmitted. Returns true when a replayed trial hit the stop threshold.
  const auto top_up = [&]() -> bool {
    while (!exhausted && inflight.size() < window) {
      const std::optional<Config> config = algorithm.next();
      if (!config) {
        exhausted = true;
        break;
      }
      if (const Trial* previous = find_completed(restored, *config)) {
        Trial trial;
        trial.index = next_index++;
        trial.config = *config;
        trial.result = previous->result;
        algorithm.tell(trial.config, trial.result.final_val_accuracy);
        ++replayed;
        outcome.trials.push_back(std::move(trial));
        if (stop_hit(outcome.trials.back())) return true;
        continue;
      }
      InFlight f;
      f.index = next_index++;
      f.config = *config;
      if (executor) {
        reuse::TrialRequest req;
        req.index = f.index;
        req.config = experiment_train_config(*config, options_, f.index);
        std::vector<reuse::SubmittedTrial> submitted = executor->submit({req});
        if (!submitted.empty() && submitted.front().replayed) {
          Trial trial;
          trial.index = f.index;
          trial.config = *config;
          trial.result = *submitted.front().replayed;
          algorithm.tell(trial.config, trial.result.final_val_accuracy);
          ++replayed;
          outcome.trials.push_back(std::move(trial));
          if (stop_hit(outcome.trials.back())) return true;
          continue;
        }
        f.future = submitted.front().future;
      } else {
        const rt::TaskDef def = make_experiment_task(dataset_, *config, options_, f.index);
        f.future = runtime_.submit(def);
      }
      if (options_.visualise)
        f.vis = runtime_.submit(make_visualisation_task(*config),
                                {{f.future.data, rt::Direction::In}});
      inflight.push_back(std::move(f));
    }
    return false;
  };

  bool stopped = false;
  if (executor && !algorithm.sequential()) {
    // Batch + reuse: drain the whole batch up front so the planner sees
    // every trial at once and can merge shared prefixes into one stage
    // tree (a trial-by-trial top_up would plan each chain in isolation).
    std::vector<reuse::TrialRequest> requests;
    std::vector<Config> request_configs;
    while (true) {
      const std::optional<Config> config = algorithm.next();
      if (!config) break;
      if (const Trial* previous = find_completed(restored, *config)) {
        Trial trial;
        trial.index = next_index++;
        trial.config = *config;
        trial.result = previous->result;
        algorithm.tell(trial.config, trial.result.final_val_accuracy);
        ++replayed;
        outcome.trials.push_back(std::move(trial));
        if (stop_hit(outcome.trials.back())) stopped = true;
        continue;
      }
      reuse::TrialRequest req;
      req.index = next_index++;
      req.config = experiment_train_config(*config, options_, req.index);
      requests.push_back(std::move(req));
      request_configs.push_back(*config);
    }
    exhausted = true;
    if (!stopped) {
      const std::vector<reuse::SubmittedTrial> submitted = executor->submit(requests);
      for (std::size_t i = 0; i < submitted.size(); ++i) {
        const reuse::SubmittedTrial& s = submitted[i];
        if (s.replayed) {
          Trial trial;
          trial.index = s.index;
          trial.config = request_configs[i];
          trial.result = *s.replayed;
          algorithm.tell(trial.config, trial.result.final_val_accuracy);
          outcome.trials.push_back(std::move(trial));
          if (stop_hit(outcome.trials.back())) stopped = true;
          continue;
        }
        InFlight f;
        f.index = s.index;
        f.config = request_configs[i];
        f.future = s.future;
        if (options_.visualise)
          f.vis = runtime_.submit(make_visualisation_task(f.config),
                                  {{f.future.data, rt::Direction::In}});
        inflight.push_back(std::move(f));
      }
    }
  } else {
    stopped = top_up();
  }
  log_info("hpo", "{}: {} trials in flight, window {} ({} replayed from checkpoint)",
           algorithm.name(), inflight.size(),
           window == std::numeric_limits<std::size_t>::max() ? std::string("all")
                                                             : std::to_string(window),
           replayed);

  // The completion-driven loop: consume whichever trial finishes first,
  // feed the observation to the algorithm, immediately refill the window.
  while (!stopped && !inflight.empty()) {
    std::vector<rt::Future> outstanding;
    outstanding.reserve(inflight.size());
    for (const InFlight& f : inflight) outstanding.push_back(f.future);
    const rt::Future finished = runtime_.wait_any(outstanding);
    const auto it =
        std::find_if(inflight.begin(), inflight.end(),
                     [&](const InFlight& f) { return f.future.producer == finished.producer; });

    Trial trial;
    trial.index = it->index;
    trial.config = it->config;
    trial.task = it->future.producer;
    trial.attempts = runtime_.graph().task(trial.task).attempts_made;
    const rt::Future vis = it->vis;
    inflight.erase(it);
    try {
      trial.result = runtime_.wait_on_as<ml::TrainResult>(finished);
      algorithm.tell(trial.config, trial.result.final_val_accuracy);
      if (vis.producer != rt::kNoTask) vis_done.push_back(vis);
    } catch (const rt::TaskFailedError& e) {
      trial.failed = true;
      trial.failure_reason = e.what();
    }
    outcome.trials.push_back(std::move(trial));
    if (!options_.checkpoint_path.empty())
      save_checkpoint(options_.checkpoint_path, outcome.trials);
    if (stop_hit(outcome.trials.back())) {
      stopped = true;
      break;
    }
    if (top_up()) stopped = true;
  }

  if (stopped) {
    outcome.stopped_early = true;
    // As-completed early stop: cancel what is still outstanding instead of
    // draining it in the runtime's destructor. Visualisation tasks are
    // dependents of their experiments, so they are cancelled transitively.
    for (const InFlight& f : inflight) runtime_.cancel(f.future);
    // Reuse mode: also cancel the underlying stage chains (finalize tasks
    // are their dependents, so whole trees unwind together).
    if (executor)
      for (const rt::Future& stage : executor->stage_futures()) runtime_.cancel(stage);
  }

  // "When all tasks are completed, we plot the graphs" (§4): one plot task
  // over every visualisation output that produced a value.
  if (options_.visualise && !outcome.stopped_early && !vis_done.empty()) {
    std::vector<rt::Param> params;
    params.reserve(vis_done.size());
    for (const rt::Future& v : vis_done) params.push_back({v.data, rt::Direction::In});
    const rt::Future plot = runtime_.submit(make_plot_task(), params);
    try {
      outcome.report = runtime_.wait_on_as<std::string>(plot);
    } catch (const rt::TaskFailedError& e) {
      outcome.report = std::string("plot task failed: ") + e.what();
    }
  }
  if (executor) outcome.reuse = executor->report();
  finalise(outcome, t0);
  return outcome;
}

}  // namespace chpo::hpo
