#include "hpo/driver.hpp"

#include <algorithm>
#include <cstdio>

#include "hpo/checkpoint.hpp"
#include "support/log.hpp"

namespace chpo::hpo {

namespace {

ml::TrainConfig train_config_from(const Config& config, const DriverOptions& options,
                                  int trial_index, unsigned threads) {
  ml::TrainConfig tc;
  if (config.contains("optimizer")) tc.optimizer = config_string(config, "optimizer");
  int epochs = config.contains("num_epochs")
                   ? static_cast<int>(config_int(config, "num_epochs"))
                   : tc.num_epochs;
  epochs = std::max(1, epochs / std::max(1, options.epoch_divisor));
  if (options.epoch_cap > 0) epochs = std::min(epochs, options.epoch_cap);
  tc.num_epochs = epochs;
  if (config.contains("batch_size"))
    tc.batch_size = static_cast<int>(config_int(config, "batch_size"));
  if (config.contains("learning_rate"))
    tc.learning_rate = static_cast<float>(config_double(config, "learning_rate"));
  if (config.contains("lr_schedule")) tc.lr_schedule = config_string(config, "lr_schedule");
  if (config.contains("weight_decay"))
    tc.weight_decay = static_cast<float>(config_double(config, "weight_decay"));
  if (config.contains("batch_norm")) tc.batch_norm = config.at("batch_norm").as_bool();
  if (config.contains("hidden_layers"))
    tc.hidden_layers = static_cast<int>(config_int(config, "hidden_layers"));
  if (config.contains("hidden_units"))
    tc.hidden_units = static_cast<int>(config_int(config, "hidden_units"));
  if (config.contains("dropout"))
    tc.dropout = static_cast<float>(config_double(config, "dropout"));
  tc.threads = std::max(1u, threads);
  tc.seed = options.seed + static_cast<std::uint64_t>(trial_index) * 7919ULL;
  tc.target_accuracy = options.trial_target_accuracy;
  tc.patience = options.trial_patience;
  return tc;
}

}  // namespace

rt::TaskDef make_experiment_task(const ml::Dataset& dataset, const Config& config,
                                 const DriverOptions& options, int trial_index) {
  rt::TaskDef def;
  def.name = "experiment";
  def.constraint = options.trial_constraint;

  const ml::Dataset* dataset_ptr = &dataset;
  def.body = [dataset_ptr, config, options, trial_index](rt::TaskContext& ctx) -> std::any {
    const ml::TrainConfig tc =
        train_config_from(config, options, trial_index, ctx.thread_budget());
    if (options.cv_folds > 1) {
      // Cross-validated trial: mean fold accuracy is the score; history
      // records one entry per fold so reports still have a curve to show.
      const ml::CvResult cv = ml::cross_validate(*dataset_ptr, tc, options.cv_folds);
      ml::TrainResult result;
      for (std::size_t fold = 0; fold < cv.fold_accuracies.size(); ++fold) {
        ml::EpochStats stats;
        stats.epoch = static_cast<int>(fold) + 1;
        stats.val_accuracy = cv.fold_accuracies[fold];
        result.history.push_back(stats);
      }
      result.final_val_accuracy = cv.mean_accuracy;
      result.best_val_accuracy = cv.mean_accuracy;
      result.epochs_run = tc.num_epochs;
      return result;
    }
    return ml::run_experiment(*dataset_ptr, tc);
  };

  if (options.workload) {
    const ml::WorkloadModel workload = *options.workload;
    const std::string optimizer =
        config.contains("optimizer") ? config_string(config, "optimizer") : "Adam";
    const int epochs =
        config.contains("num_epochs") ? static_cast<int>(config_int(config, "num_epochs")) : 10;
    const int batch =
        config.contains("batch_size") ? static_cast<int>(config_int(config, "batch_size")) : 32;
    def.cost = [workload, optimizer, epochs, batch](const rt::Placement& placement,
                                                    const cluster::NodeSpec& node) {
      return ml::experiment_seconds(workload, optimizer, epochs, batch, placement.cpu_count(),
                                    placement.gpu_count(), node);
    };
  }
  return def;
}

HpoDriver::HpoDriver(rt::Runtime& runtime, const ml::Dataset& dataset, DriverOptions options)
    : runtime_(runtime), dataset_(dataset), options_(std::move(options)) {}

HpoOutcome HpoDriver::run(SearchAlgorithm& algorithm) {
  return algorithm.sequential() ? run_sequential(algorithm) : run_batch(algorithm);
}

void HpoDriver::finalise(HpoOutcome& outcome, double t0) const {
  outcome.elapsed_seconds = runtime_.now() - t0;
  double best = -1.0;
  for (const Trial& t : outcome.trials) {
    if (t.failed) continue;
    if (t.result.final_val_accuracy > best) {
      best = t.result.final_val_accuracy;
      outcome.best_index = t.index;
    }
  }
}

namespace {

/// The paper's `visualisation` task: condenses one experiment's result to
/// a report line (accuracy trajectory), running as a task of its own.
rt::TaskDef make_visualisation_task(const Config& config) {
  rt::TaskDef def;
  def.name = "visualisation";
  const std::string brief = config_brief(config);
  def.body = [brief](rt::TaskContext& ctx) -> std::any {
    const auto& result = ctx.read<ml::TrainResult>(0);
    std::string line = brief + " ->";
    for (const auto& epoch : result.history) {
      char buf[16];
      std::snprintf(buf, sizeof buf, " %.3f", epoch.val_accuracy);
      line += buf;
    }
    return line;
  };
  return def;
}

/// The final `plot` task (compss_wait_on target in Figure 2): merges all
/// visualisation lines into one report.
rt::TaskDef make_plot_task() {
  rt::TaskDef def;
  def.name = "plot";
  def.body = [](rt::TaskContext& ctx) -> std::any {
    std::string report = "validation accuracy per epoch, one line per experiment\n";
    for (std::size_t i = 0; i < ctx.param_count() - 1; ++i)
      report += ctx.read<std::string>(i) + "\n";
    return report;
  };
  return def;
}

}  // namespace

HpoOutcome HpoDriver::run_batch(SearchAlgorithm& algorithm) {
  const double t0 = runtime_.now();
  HpoOutcome outcome;
  const std::vector<Trial> restored =
      options_.checkpoint_path.empty() ? std::vector<Trial>{}
                                       : load_checkpoint(options_.checkpoint_path);

  // The paper's main loop: submit every experiment, then wait on results.
  // A config found in the checkpoint is replayed instead of resubmitted.
  struct Pending {
    Config config;
    std::optional<rt::Future> future;  // nullopt: restored from checkpoint
    const Trial* restored = nullptr;
  };
  std::vector<Pending> submitted;
  std::vector<rt::Future> visualised;
  int index = 0;
  std::size_t replayed = 0;
  while (auto config = algorithm.next()) {
    Pending pending;
    pending.config = *config;
    if (const Trial* previous = find_completed(restored, *config)) {
      pending.restored = previous;
      ++replayed;
      if (options_.visualise) visualised.push_back(rt::Future{});  // keep indices aligned
    } else {
      const rt::TaskDef def = make_experiment_task(dataset_, *config, options_, index);
      const rt::Future experiment = runtime_.submit(def);
      pending.future = experiment;
      if (options_.visualise)
        visualised.push_back(runtime_.submit(make_visualisation_task(*config),
                                             {{experiment.data, rt::Direction::In}}));
    }
    submitted.push_back(std::move(pending));
    ++index;
  }
  log_info("hpo", "{}: submitted {} experiments ({} replayed from checkpoint)",
           algorithm.name(), submitted.size(), replayed);

  for (std::size_t i = 0; i < submitted.size(); ++i) {
    Trial trial;
    trial.index = static_cast<int>(i);
    trial.config = submitted[i].config;
    if (submitted[i].restored) {
      trial.result = submitted[i].restored->result;
      algorithm.tell(trial.config, trial.result.final_val_accuracy);
    } else {
      trial.task = submitted[i].future->producer;
      try {
        trial.result = runtime_.wait_on_as<ml::TrainResult>(*submitted[i].future);
        algorithm.tell(trial.config, trial.result.final_val_accuracy);
      } catch (const rt::TaskFailedError& e) {
        trial.failed = true;
        trial.failure_reason = e.what();
      }
    }
    outcome.trials.push_back(std::move(trial));
    if (!options_.checkpoint_path.empty())
      save_checkpoint(options_.checkpoint_path, outcome.trials);
    if (options_.stop_on_accuracy > 0 && !outcome.trials.back().failed &&
        outcome.trials.back().result.final_val_accuracy >= options_.stop_on_accuracy) {
      outcome.stopped_early = true;
      break;
    }
  }

  // "When all tasks are completed, we plot the graphs" (§4): one plot task
  // over every visualisation output that can still produce a value.
  if (options_.visualise && !outcome.stopped_early) {
    std::vector<rt::Param> params;
    for (std::size_t i = 0; i < visualised.size(); ++i)
      if (i < outcome.trials.size() && !outcome.trials[i].failed &&
          submitted[i].future.has_value())  // checkpoint-restored: no vis task
        params.push_back({visualised[i].data, rt::Direction::In});
    if (!params.empty()) {
      const rt::Future plot = runtime_.submit(make_plot_task(), params);
      try {
        outcome.report = runtime_.wait_on_as<std::string>(plot);
      } catch (const rt::TaskFailedError& e) {
        outcome.report = std::string("plot task failed: ") + e.what();
      }
    }
  }
  finalise(outcome, t0);
  return outcome;
}

HpoOutcome HpoDriver::run_sequential(SearchAlgorithm& algorithm) {
  const double t0 = runtime_.now();
  HpoOutcome outcome;
  const std::vector<Trial> restored =
      options_.checkpoint_path.empty() ? std::vector<Trial>{}
                                       : load_checkpoint(options_.checkpoint_path);
  int index = 0;
  while (auto config = algorithm.next()) {
    Trial trial;
    trial.index = index++;
    trial.config = *config;
    if (const Trial* previous = find_completed(restored, *config)) {
      trial.result = previous->result;
      algorithm.tell(trial.config, trial.result.final_val_accuracy);
      outcome.trials.push_back(std::move(trial));
      continue;
    }
    const rt::TaskDef def = make_experiment_task(dataset_, *config, options_, trial.index);
    const rt::Future future = runtime_.submit(def);
    trial.task = future.producer;
    try {
      trial.result = runtime_.wait_on_as<ml::TrainResult>(future);
      algorithm.tell(trial.config, trial.result.final_val_accuracy);
    } catch (const rt::TaskFailedError& e) {
      trial.failed = true;
      trial.failure_reason = e.what();
    }
    outcome.trials.push_back(std::move(trial));
    if (!options_.checkpoint_path.empty())
      save_checkpoint(options_.checkpoint_path, outcome.trials);
    if (options_.stop_on_accuracy > 0 && !outcome.trials.back().failed &&
        outcome.trials.back().result.final_val_accuracy >= options_.stop_on_accuracy) {
      outcome.stopped_early = true;
      break;
    }
  }
  finalise(outcome, t0);
  return outcome;
}

}  // namespace chpo::hpo
