#include "hpo/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <optional>

#include "hpo/checkpoint.hpp"
#include "hpo/study_run.hpp"
#include "reuse/stage_key.hpp"
#include "support/log.hpp"

namespace chpo::hpo {

ml::TrainConfig experiment_train_config(const Config& config, const DriverOptions& options,
                                        int trial_index, unsigned threads) {
  ml::TrainConfig tc;
  if (config.contains("optimizer")) tc.optimizer = config_string(config, "optimizer");
  int epochs = config.contains("num_epochs")
                   ? static_cast<int>(config_int(config, "num_epochs"))
                   : tc.num_epochs;
  epochs = std::max(1, epochs / std::max(1, options.epoch_divisor));
  if (options.epoch_cap > 0) epochs = std::min(epochs, options.epoch_cap);
  tc.num_epochs = epochs;
  if (config.contains("batch_size"))
    tc.batch_size = static_cast<int>(config_int(config, "batch_size"));
  if (config.contains("learning_rate"))
    tc.learning_rate = static_cast<float>(config_double(config, "learning_rate"));
  if (config.contains("lr_schedule")) tc.lr_schedule = config_string(config, "lr_schedule");
  if (config.contains("weight_decay"))
    tc.weight_decay = static_cast<float>(config_double(config, "weight_decay"));
  if (config.contains("batch_norm")) tc.batch_norm = config.at("batch_norm").as_bool();
  if (config.contains("hidden_layers"))
    tc.hidden_layers = static_cast<int>(config_int(config, "hidden_layers"));
  if (config.contains("hidden_units"))
    tc.hidden_units = static_cast<int>(config_int(config, "hidden_units"));
  if (config.contains("dropout"))
    tc.dropout = static_cast<float>(config_double(config, "dropout"));
  tc.threads = std::max(1u, threads);
  tc.target_accuracy = options.trial_target_accuracy;
  tc.patience = options.trial_patience;
  // Seed policy: per-trial-index by default (independent trials). Under
  // reuse with deterministic_seeds, the seed is a function of the
  // training-relevant config content, so trials differing only in epoch
  // budget are the same trajectory and share their stage-chain prefix.
  if (options.reuse.enabled && options.reuse.deterministic_seeds && options.cv_folds <= 1)
    tc.seed = reuse::derive_seed(options.seed, tc);
  else
    tc.seed = options.seed + static_cast<std::uint64_t>(trial_index) * 7919ULL;
  return tc;
}

rt::TaskDef make_experiment_task(const ml::Dataset& dataset, const Config& config,
                                 const DriverOptions& options, int trial_index) {
  rt::TaskDef def;
  def.name = "experiment";
  def.constraint = options.trial_constraint;

  const ml::Dataset* dataset_ptr = &dataset;
  def.body = [dataset_ptr, config, options, trial_index](rt::TaskContext& ctx) -> std::any {
    const ml::TrainConfig tc =
        experiment_train_config(config, options, trial_index, ctx.thread_budget());
    if (options.cv_folds > 1) {
      // Cross-validated trial: mean fold accuracy is the score; history
      // records one entry per fold so reports still have a curve to show.
      const ml::CvResult cv = ml::cross_validate(*dataset_ptr, tc, options.cv_folds);
      ml::TrainResult result;
      for (std::size_t fold = 0; fold < cv.fold_accuracies.size(); ++fold) {
        ml::EpochStats stats;
        stats.epoch = static_cast<int>(fold) + 1;
        stats.val_accuracy = cv.fold_accuracies[fold];
        result.history.push_back(stats);
      }
      result.final_val_accuracy = cv.mean_accuracy;
      result.best_val_accuracy = cv.mean_accuracy;
      result.epochs_run = tc.num_epochs;
      return result;
    }
    return ml::run_experiment(*dataset_ptr, tc);
  };

  if (options.workload) {
    const ml::WorkloadModel workload = *options.workload;
    const std::string optimizer =
        config.contains("optimizer") ? config_string(config, "optimizer") : "Adam";
    const int epochs =
        config.contains("num_epochs") ? static_cast<int>(config_int(config, "num_epochs")) : 10;
    const int batch =
        config.contains("batch_size") ? static_cast<int>(config_int(config, "batch_size")) : 32;
    def.cost = [workload, optimizer, epochs, batch](const rt::Placement& placement,
                                                    const cluster::NodeSpec& node) {
      return ml::experiment_seconds(workload, optimizer, epochs, batch, placement.cpu_count(),
                                    placement.gpu_count(), node);
    };
  }
  return def;
}

HpoDriver::HpoDriver(rt::StudySession session, const ml::Dataset& dataset,
                     DriverOptions options)
    : session_(session), dataset_(dataset), options_(std::move(options)) {}

HpoOutcome HpoDriver::run(SearchAlgorithm& algorithm) {
  // Blocking convenience: drive a private StudyRun pump to exhaustion.
  // Multi-study coordination lives in service::StudyManager, which drives
  // several pumps through one wait_any instead.
  StudyRun run(session_, dataset_, options_, algorithm);
  run.start();
  while (run.active() && !run.inflight().empty())
    run.on_trial_complete(session_.wait_any(run.inflight()));
  return run.finish();
}

}  // namespace chpo::hpo
