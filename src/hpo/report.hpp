// Reporting and visualisation — the "plot" task at the end of the paper's
// application (Figure 2) and the terminal analogue of Figures 7-8.
#pragma once

#include <string>
#include <vector>

#include "hpo/driver.hpp"
#include "runtime/node_health.hpp"
#include "trace/trace.hpp"

namespace chpo::hpo {

/// Per-trial summary table: config, epochs run, accuracies, attempts
/// consumed, early-stop flag.
std::string trials_table(const std::vector<Trial>& trials);

/// Per-task-name attempt statistics from a trace: runs, failures, retries,
/// stragglers detected, speculative launches/wins, backoffs, busy seconds.
/// The observability face of the straggler-mitigation layer.
std::string attempt_stats(const std::vector<trace::Event>& events);

/// ASCII chart of validation accuracy vs epoch, one curve per trial
/// (Figures 7 and 8). `height` rows span [0, 1] accuracy.
std::string accuracy_chart(const std::vector<Trial>& trials, std::size_t width = 90,
                           std::size_t height = 20);

/// CSV of the epoch histories: trial,epoch,train_loss,train_acc,val_acc.
std::string history_csv(const std::vector<Trial>& trials);

/// One-line summary of an outcome (best config, accuracy, elapsed).
std::string outcome_summary(const HpoOutcome& outcome);

/// Multi-line cache/stage-sharing accounting for a reuse-enabled run
/// (greppable "hits:" / "misses:" lines; used by chpo_run and the CI
/// warm-cache smoke test).
std::string reuse_summary(const reuse::ReuseReport& report);

/// Fault/recovery accounting for chaos runs: node membership events from
/// the trace, data lost with dead nodes, lineage recomputations (greppable
/// "recoveries:" line; the CI chaos smoke asserts on it) and the per-node
/// health table driving quarantine decisions.
std::string fault_summary(const std::vector<trace::Event>& events, std::size_t recoveries,
                          std::size_t unrecoverable, const rt::NodeHealth& health);

/// One row per concurrent study for the multi-study fleet table (built by
/// chpo_run --studies from service::StudyManager; kept service-agnostic
/// here so reporting has no dependency on the manager).
struct StudySummaryRow {
  std::string name;
  std::string algorithm;
  std::string state;  ///< "finished" | "killed" | ...
  std::size_t trials = 0;
  double best_accuracy = -1.0;  ///< < 0 renders as "-" (no successful trial)
  double elapsed_seconds = 0.0;
};

/// Fleet summary table: study, algorithm, state, trials, best, elapsed.
std::string multi_study_summary(const std::vector<StudySummaryRow>& rows);

}  // namespace chpo::hpo
