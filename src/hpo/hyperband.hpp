// Successive halving — the multi-fidelity extension of the future-work
// library.
//
// Starts `n` configurations at a small epoch budget, keeps the top 1/eta by
// validation accuracy, multiplies the budget by eta, and repeats. Every
// rung is a batch of independent experiment tasks, so each rung is as
// embarrassingly parallel as the paper's grid search and runs through the
// same Runtime.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "hpo/driver.hpp"
#include "hpo/search_space.hpp"
#include "ml/dataset.hpp"
#include "reuse/planner.hpp"
#include "reuse/result_cache.hpp"
#include "runtime/study_session.hpp"

namespace chpo::hpo {

struct HalvingOptions {
  std::size_t initial_configs = 27;
  int initial_epochs = 2;
  double eta = 3.0;     ///< keep top 1/eta per rung, multiply budget by eta
  int max_epochs = 54;  ///< budget ceiling
  DriverOptions driver;  ///< constraint / workload / seed shared with trials
};

struct RungResult {
  int rung = 0;
  int epochs = 0;
  std::vector<Trial> trials;  ///< all trials evaluated at this rung
};

struct HalvingOutcome {
  std::vector<RungResult> rungs;
  Config best_config;
  double best_accuracy = 0.0;
  double elapsed_seconds = 0.0;
  /// Set when HalvingOptions::driver.reuse is enabled: with deterministic
  /// seeds, each rung promotion resumes from the previous rung's cached
  /// epoch checkpoint instead of retraining from scratch.
  std::optional<reuse::ReuseReport> reuse;
};

/// Run successive halving over random samples of `space`. `cache` lets
/// callers (hyperband, repeated sessions) share one result cache across
/// brackets; pass nullptr to create one from the driver's ReusePolicy.
/// Like HpoDriver, halving runs through a StudySession (a tagged view of a
/// shared Runtime) — blocking convenience over the HalvingRun state
/// machine in study_run.hpp.
HalvingOutcome successive_halving(rt::StudySession session, const ml::Dataset& dataset,
                                  const SearchSpace& space, const HalvingOptions& options,
                                  std::shared_ptr<reuse::ResultCache> cache = nullptr);

/// Full Hyperband (Li et al. 2018): runs s_max+1 successive-halving
/// brackets trading off the number of configurations against the starting
/// epoch budget, from the most exploratory bracket (many configs, tiny
/// budget) to a single full-budget bracket.
struct HyperbandOptions {
  int max_epochs = 27;   ///< R: maximum epochs any config may receive
  double eta = 3.0;
  DriverOptions driver;
};

struct HyperbandOutcome {
  std::vector<HalvingOutcome> brackets;
  Config best_config;
  double best_accuracy = 0.0;
  double elapsed_seconds = 0.0;
  std::size_t total_trials = 0;
  /// Aggregated over all brackets (they share one ResultCache, so the
  /// cache stats here are cumulative and the tallies are summed).
  std::optional<reuse::ReuseReport> reuse;
};

HyperbandOutcome hyperband(rt::StudySession session, const ml::Dataset& dataset,
                           const SearchSpace& space, const HyperbandOptions& options);

}  // namespace chpo::hpo
