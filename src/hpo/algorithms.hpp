// Search algorithms.
//
// The paper implements grid search and random search on PyCOMPSs and leaves
// "a library that puts together all key algorithms in HPO" as future work —
// we ship that library: grid, random, Gaussian-process Bayesian
// optimisation (expected improvement), with successive halving in
// hyperband.hpp.
//
// Protocol: next() yields the next configuration to evaluate (nullopt when
// the algorithm is finished); tell() reports a finished trial's score
// (higher is better). Batch algorithms (grid, random) ignore tell() and can
// be fully drained up front — that is what makes the HPO embarrassingly
// parallel. Sequential algorithms (GP) need tell() between next() calls;
// sequential() distinguishes the two so the driver can pick its submission
// strategy.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hpo/gp.hpp"
#include "hpo/search_space.hpp"

namespace chpo::hpo {

class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;
  virtual std::string name() const = 0;

  virtual std::optional<Config> next() = 0;
  virtual void tell(const Config& config, double score) { (void)config, (void)score; }

  /// True when the algorithm must observe tell() before the following
  /// next() to make progress (model-based methods).
  virtual bool sequential() const { return false; }
};

/// Exhaustive grid search over a finite space (paper §2.1 / §5).
class GridSearch : public SearchAlgorithm {
 public:
  explicit GridSearch(const SearchSpace& space);
  std::string name() const override { return "grid"; }
  std::optional<Config> next() override;
  std::size_t total() const { return configs_.size(); }

 private:
  std::vector<Config> configs_;
  std::size_t cursor_ = 0;
};

/// Random search (Bergstra & Bengio 2012, paper §2.1): `n` iid samples.
class RandomSearch : public SearchAlgorithm {
 public:
  RandomSearch(const SearchSpace& space, std::size_t n, std::uint64_t seed);
  std::string name() const override { return "random"; }
  std::optional<Config> next() override;

 private:
  const SearchSpace& space_;
  std::size_t remaining_;
  Rng rng_;
};

/// GP surrogate + expected improvement. The first `n_init` points are
/// random; afterwards each next() fits the GP on all told observations and
/// maximises EI over `n_candidates` random candidate configs.
class GpBayesOpt : public SearchAlgorithm {
 public:
  struct Options {
    std::size_t max_evals = 30;
    std::size_t n_init = 5;
    std::size_t n_candidates = 256;
    double lengthscale = 0.35;
    double noise = 1e-6;
    std::uint64_t seed = 99;
  };

  GpBayesOpt(const SearchSpace& space, Options options);
  std::string name() const override { return "gp-ei"; }
  std::optional<Config> next() override;
  void tell(const Config& config, double score) override;
  bool sequential() const override { return true; }

  std::size_t observations() const { return ys_.size(); }

 private:
  const SearchSpace& space_;
  Options options_;
  Rng rng_;
  std::size_t issued_ = 0;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
};

/// Construct a point-search algorithm by name: "grid" | "random" | "gp" |
/// "tpe" (multi-fidelity "halving"/"hyperband" are driven differently; see
/// hyperband.hpp and service::StudyManager). `budget` caps random/gp/tpe
/// evaluations; grid ignores it. The returned algorithm holds a reference
/// to `space` — keep the space alive for the algorithm's lifetime.
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<SearchAlgorithm> make_search_algorithm(const std::string& name,
                                                       const SearchSpace& space,
                                                       std::size_t budget, std::uint64_t seed);

}  // namespace chpo::hpo
