// Trial checkpointing — application-level fault tolerance.
//
// The runtime retries individual task failures (§3), but a crashed *main
// program* (login-node eviction, wall-clock limit) would otherwise lose
// every finished experiment. A checkpoint file stores completed trials as
// JSON; on restart the driver replays matching configs from the file
// instead of retraining them ("continuity in case of failure", §3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hpo/driver.hpp"
#include "jsonlite/json.hpp"

namespace chpo::hpo {

/// Lossless-enough Trial serialization (configs, history, outcome flags).
json::Value trial_to_json(const Trial& trial);
Trial trial_from_json(const json::Value& value);

json::Value trials_to_json(const std::vector<Trial>& trials);
std::vector<Trial> trials_from_json(const json::Value& value);

/// Atomically (write + rename) persist trials to `path`.
void save_checkpoint(const std::string& path, const std::vector<Trial>& trials);

/// Load a checkpoint; empty vector when the file does not exist. Never
/// throws on damage: an unparseable file is a warned fresh start, and a
/// parseable file with some corrupt trial entries is salvaged entry by
/// entry (intact trials replay, damaged ones retrain) — the same policy
/// the reuse ResultCache applies to its snapshot files.
std::vector<Trial> load_checkpoint(const std::string& path);

/// Find a completed (non-failed) trial for `config` in `previous`, matching
/// by serialized config equality.
const Trial* find_completed(const std::vector<Trial>& previous, const Config& config);

}  // namespace chpo::hpo
