// Thread-budgeted parallel loop.
//
// This is the "internal parallelism" hook the paper attributes to
// TensorFlow: a task may parallelise its own tensor work, but only within
// the thread budget the runtime's @constraint granted it. Passing budget 1
// degrades to a plain serial loop with zero threading overhead, which is
// how CPU-affinity enforcement (Figure 4) is modelled.
#pragma once

#include <cstddef>
#include <functional>

namespace chpo {

/// Invoke fn(begin, end) over [0, n) split into contiguous chunks executed on
/// up to `thread_budget` threads (including the caller). fn must be safe to
/// run concurrently on disjoint ranges.
void parallel_for(std::size_t n, unsigned thread_budget,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace chpo
