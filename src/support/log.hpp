// Minimal leveled, thread-safe logger.
//
// The runtime logs scheduling decisions at Debug, lifecycle events at Info,
// and recoverable faults at Warn. Benchmarks silence everything below Warn
// so that figure tables stay clean on stdout (logs go to stderr).
#pragma once

#include <string>
#include <string_view>

#include "support/format.hpp"

namespace chpo {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Core sink: writes "[level] [component] message" to stderr under a mutex.
void log_message(LogLevel level, std::string_view component, std::string_view message);

template <typename... Args>
void log_debug(std::string_view component, std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Debug)
    log_message(LogLevel::Debug, component, format_str(fmt, args...));
}
template <typename... Args>
void log_info(std::string_view component, std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Info)
    log_message(LogLevel::Info, component, format_str(fmt, args...));
}
template <typename... Args>
void log_warn(std::string_view component, std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Warn)
    log_message(LogLevel::Warn, component, format_str(fmt, args...));
}
template <typename... Args>
void log_error(std::string_view component, std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Error)
    log_message(LogLevel::Error, component, format_str(fmt, args...));
}

}  // namespace chpo
