#include "support/parallel_for.hpp"

#include <algorithm>
#include <thread>
#include <vector>

namespace chpo {

void parallel_for(std::size_t n, unsigned thread_budget,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = std::max<std::size_t>(1, std::min<std::size_t>(thread_budget, n));
  if (threads == 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> helpers;
  helpers.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    helpers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  fn(0, std::min(n, chunk));
  for (auto& h : helpers) h.join();
}

}  // namespace chpo
