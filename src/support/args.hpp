// Minimal command-line argument parser for the CLI tools.
//
// Supports `--key value`, `--key=value`, boolean `--flag`, and positional
// arguments, with typed accessors and a generated usage string.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace chpo {

class ArgParser {
 public:
  /// Declare an option; `doc` feeds usage(). Declared booleans take no
  /// value; everything else consumes one.
  ArgParser& add_flag(std::string name, std::string doc);
  ArgParser& add_option(std::string name, std::string doc, std::string default_value = {});
  /// Like add_option, but every occurrence is kept (read via get_all).
  ArgParser& add_repeated(std::string name, std::string doc);

  /// Parse argv. Returns false (and sets error()) on unknown options or
  /// missing values.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback = {}) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name) const;
  /// All values of a repeated option, in command-line order.
  const std::vector<std::string>& get_all(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }
  std::string usage(const std::string& program, const std::string& summary) const;

 private:
  struct Spec {
    std::string doc;
    std::string default_value;
    bool is_flag = false;
    bool is_repeated = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::vector<std::string>> repeated_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace chpo
