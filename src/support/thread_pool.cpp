#include "support/thread_pool.hpp"

namespace chpo {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace chpo
