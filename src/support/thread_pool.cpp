#include "support/thread_pool.hpp"

namespace chpo {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!(queue_.empty() && active_ == 0)) cv_idle_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_work_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace chpo
