#include "support/strings.hpp"

#include <cmath>
#include <cstdio>

namespace chpo {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; };
  std::size_t b = 0, e = text.size();
  while (b < e && is_space(text[b])) ++b;
  while (e > b && is_space(text[e - 1])) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_duration(double seconds) {
  if (seconds < 0) seconds = 0;
  if (seconds < 60.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
    return buf;
  }
  const long total = static_cast<long>(std::llround(seconds));
  const long h = total / 3600;
  const long m = (total % 3600) / 60;
  const long s = total % 60;
  char buf[64];
  if (h > 0)
    std::snprintf(buf, sizeof buf, "%ldh %02ldm %02lds", h, m, s);
  else
    std::snprintf(buf, sizeof buf, "%ldm %02lds", m, s);
  return buf;
}

std::string pad_right(std::string text, std::size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  return text;
}

std::string pad_left(std::string text, std::size_t width) {
  if (text.size() < width) text.insert(text.begin(), width - text.size(), ' ');
  return text;
}

}  // namespace chpo
