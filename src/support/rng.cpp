#include "support/rng.hpp"

#include <cassert>
#include <cmath>

namespace chpo {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro state must not be all-zero; splitmix64 guarantees a good spread.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits → [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::next_uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::next_gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = next_uniform(-1.0, 1.0);
    v = next_uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::next_gaussian(double mean, double stddev) { return mean + stddev * next_gaussian(); }

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

std::size_t Rng::next_index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(next_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() { return Rng(next_u64() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace chpo
