// Fixed-size worker pool.
//
// Used by the threaded runtime backend (one pool per simulated node) and by
// parallel_for. Keeps semantics deliberately simple: submit() enqueues a job,
// the destructor drains and joins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chpo {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Enqueue a job. Safe from any thread, including pool workers.
  void submit(std::function<void()> job);

  /// Block until the queue is empty and all workers are idle.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace chpo
