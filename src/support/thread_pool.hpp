// Fixed-size worker pool.
//
// Used by the threaded runtime backend (one pool per simulated node) and by
// parallel_for. Keeps semantics deliberately simple: submit() enqueues a job,
// the destructor drains and joins. Queue state is guarded by an annotated
// Mutex, so the lock discipline is compile-time checked under clang's
// -Wthread-safety.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/thread_annotations.hpp"

namespace chpo {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Enqueue a job. Safe from any thread, including pool workers.
  void submit(std::function<void()> job) CHPO_EXCLUDES(mutex_);

  /// Block until the queue is empty and all workers are idle.
  void wait_idle() CHPO_EXCLUDES(mutex_);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() CHPO_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_{lockdep::kThreadPool};
  CondVar cv_work_;
  CondVar cv_idle_;
  std::deque<std::function<void()>> queue_ CHPO_GUARDED_BY(mutex_);
  std::size_t active_ CHPO_GUARDED_BY(mutex_) = 0;
  bool stopping_ CHPO_GUARDED_BY(mutex_) = false;
};

}  // namespace chpo
