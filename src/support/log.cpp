#include "support/log.hpp"

#include <atomic>
#include <cstdio>

#include "support/thread_annotations.hpp"

namespace chpo {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
/// Serializes whole lines onto stderr (no data to guard — the capability
/// models exclusive use of the stream). Innermost lock in the process:
/// anything may log, so nothing may be acquired under it.
Mutex g_sink_mutex{lockdep::kLogSink};

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void log_message(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  const MutexLock lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] [%.*s] %.*s\n", level_name(level), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()), message.data());
}

}  // namespace chpo
