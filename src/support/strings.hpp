// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace chpo {

/// Split on a single character; empty fields preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// "1h 23m 45s"-style rendering of a duration in seconds, used by the
/// figure benchmarks to print paper-comparable times.
std::string format_duration(double seconds);

/// Fixed-width human table cell padding (spaces on the right).
std::string pad_right(std::string text, std::size_t width);
std::string pad_left(std::string text, std::size_t width);

}  // namespace chpo
