// Runtime lock-order witness ("lockdep") — deadlock immunity, layer 1.
//
// clang's Thread Safety Analysis (support/thread_annotations.hpp) proves
// *which* lock guards a field; it says nothing about the *order* locks
// nest across threads. This header adds the missing half: every
// chpo::Mutex / chpo::SharedMutex may carry a LockClass (a name plus a
// rank in the global acquisition order), and under -DCHPO_LOCKDEP=ON a
// process-wide witness
//
//   - records the held-lock set of every thread on every acquire
//     (with the acquisition backtrace),
//   - maintains the observed lock-order graph over lock classes, and
//   - aborts the process on the FIRST violation it sees, printing both
//     acquisition stacks:
//       * a cycle in the order graph (the classic ABBA inversion),
//       * a rank inversion (acquiring a lower-ranked class while a
//         higher-ranked one is held), or
//       * a same-instance re-acquisition (guaranteed self-deadlock).
//
// The witness fires on the *potential* deadlock — the first run in which
// two locks are ever taken in opposite orders — not on the 1-in-10^6
// interleaving where the threads actually wedge. Checks run before the
// underlying mutex blocks, so a seeded ABBA aborts instead of hanging.
//
// Rank discipline: a thread may only acquire a class whose rank is >=
// every rank it already holds (outer subsystems are low, leaf locks are
// high; ties between *different* classes are legal and left to the order
// graph). Classes with rank kUnranked — including the anonymous per-
// instance classes given to default-constructed mutexes (test locals) —
// are exempt from the rank check but still tracked in the order graph,
// so an ABBA between unranked locks is caught too. Two instances of the
// same named class never nest in this codebase; nesting them is allowed
// by the witness but invisible to it (no self-edges), which is why every
// subsystem whose instances could ever nest must use distinct classes.
//
// The rank table below is the single source of truth for the blessed
// acquisition order. chpo_lint's `lock-rank-order` rule parses this file
// and cross-checks the declared ranks against the guard nesting it can
// see in source (one call level deep); the witness checks the orders
// that only materialize at runtime. DESIGN.md §11 documents the split.
//
// With CHPO_LOCKDEP off, everything here compiles to nothing: the hooks
// are empty inlines and a Mutex with a LockClass is exactly a Mutex.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace chpo::lockdep {

/// Rank for classes (and anonymous instances) outside the global order.
inline constexpr int kUnranked = -1;

/// One lock class: every mutex guarding the same kind of state shares a
/// class. `rank` is the class's position in the global acquisition order
/// (low = outer, acquired first; high = inner/leaf, acquired last).
struct LockClass {
  const char* name;
  int rank = kUnranked;
};

// ---------------------------------------------------------------------------
// The rank table: the blessed global acquisition order, outermost first.
// Gaps of 10 leave room to slot a new subsystem between two layers
// without renumbering. Parsed by chpo_lint (lock-rank-order), so keep
// each entry on one line in the form: LockClass kName{"label", rank};
// ---------------------------------------------------------------------------

/// SocketDaemon's I/O-thread -> coordinator command queue. Data moves
/// only (lint-enforced); ordered before every engine-side lock.
inline constexpr LockClass kDaemonCmdQueue{"daemon.cmd_queue", 10};
/// SocketDaemon's coordinator -> I/O-thread outbound-bytes queue.
inline constexpr LockClass kDaemonOutbox{"daemon.outbox", 20};
/// StateJournal fd state: the append/fsync barrier on the reply path.
inline constexpr LockClass kDaemonJournal{"daemon.journal", 30};
/// ThreadBackend's worker -> coordinator completion queue.
inline constexpr LockClass kBackendCompletions{"runtime.completions", 40};
/// One StealPool per-worker job deque (all shards share the class; a
/// worker or thief holds at most one shard at a time).
inline constexpr LockClass kStealShard{"runtime.steal_shard", 50};
/// StealPool park/wake epoch (taken after the shard lock is dropped).
inline constexpr LockClass kStealPark{"runtime.steal_park", 60};
/// Generic support::ThreadPool queue (parallel_for helpers).
inline constexpr LockClass kThreadPool{"support.thread_pool", 70};
/// FaultInjector rng + forced-failure table (hit from worker bodies).
inline constexpr LockClass kFaultInjector{"runtime.fault", 80};
/// DataRegistry version table (readers in bodies, writer on coordinator).
inline constexpr LockClass kDataRegistry{"runtime.data_registry", 90};
/// ResultCache memory/disk tiers. Logs warnings while held, so it must
/// stay below (outside) the log sink.
inline constexpr LockClass kResultCache{"reuse.result_cache", 100};
/// TraceSink event buffer.
inline constexpr LockClass kTraceSink{"trace.sink", 110};
/// The stderr log sink: the innermost lock in the process — anything may
/// log, so nothing may be acquired under it.
inline constexpr LockClass kLogSink{"support.log_sink", 120};

// ---------------------------------------------------------------------------
// Witness hooks (called by chpo::Mutex / chpo::SharedMutex).
// ---------------------------------------------------------------------------

#ifdef CHPO_LOCKDEP

/// Register a named class (dedups by LockClass address — the inline
/// constexpr table entries are unique program-wide). Returns the class id.
int register_class(const LockClass& cls);

/// Register an anonymous per-instance class for a default-constructed
/// mutex: unranked, but still a node in the order graph so ABBA between
/// ad-hoc (e.g. test-local) locks is caught.
int register_anonymous();

/// Pre-acquisition check + bookkeeping. Runs BEFORE the underlying mutex
/// blocks; aborts the process with both stacks on the first violation.
void note_acquire(int class_id, const void* instance);

/// Post-release bookkeeping (removes the instance from the held set).
void note_release(int class_id, const void* instance);

#else  // !CHPO_LOCKDEP — everything inlines to nothing.

constexpr int register_class(const LockClass&) { return -1; }
constexpr int register_anonymous() { return -1; }
inline void note_acquire(int, const void*) {}
inline void note_release(int, const void*) {}

#endif

// ---------------------------------------------------------------------------
// Introspection (tests, diagnostics). Real in lockdep.cpp under
// CHPO_LOCKDEP; trivial inlines otherwise.
// ---------------------------------------------------------------------------

#ifdef CHPO_LOCKDEP

/// True when the witness is compiled in and active.
bool enabled();
/// Distinct (from, to) class edges observed so far.
std::size_t edge_count();
/// True iff the observed lock-order graph is acyclic. (The witness
/// aborts on the first cycle, so a live process should always see true;
/// the positive nesting test asserts it explicitly.)
bool order_cycle_free();
/// Observed edges as (from-name, to-name) pairs, sorted.
std::vector<std::pair<std::string, std::string>> observed_edges();
/// Locks currently held by the calling thread (class names, outer first).
std::vector<std::string> held_by_this_thread();

#else

inline bool enabled() { return false; }
inline std::size_t edge_count() { return 0; }
inline bool order_cycle_free() { return true; }
inline std::vector<std::pair<std::string, std::string>> observed_edges() { return {}; }
inline std::vector<std::string> held_by_this_thread() { return {}; }

#endif

}  // namespace chpo::lockdep
