// Tiny "{}"-substitution formatter (std::format is unavailable on GCC 12).
//
// Supports positional "{}" placeholders; any format spec after ':' is
// ignored except a ".Nf" floating-point precision, which is honoured.
// "{{" and "}}" escape literal braces.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace chpo {

namespace detail {

inline void render_arg(std::ostringstream& out, std::string_view spec, double v) {
  // Honour ".Nf" precision specs; default otherwise.
  if (spec.size() >= 3 && spec[0] == '.' && spec.back() == 'f') {
    int precision = 0;
    for (std::size_t i = 1; i + 1 < spec.size(); ++i) {
      const char c = spec[i];
      if (c < '0' || c > '9') {
        precision = -1;
        break;
      }
      precision = precision * 10 + (c - '0');
    }
    if (precision >= 0) {
      const auto old_precision = out.precision(precision);
      const auto old_flags = out.flags();
      out << std::fixed << v;
      out.flags(old_flags);
      out.precision(old_precision);
      return;
    }
  }
  out << v;
}

inline void render_arg(std::ostringstream& out, std::string_view spec, float v) {
  render_arg(out, spec, static_cast<double>(v));
}

template <typename T>
void render_arg(std::ostringstream& out, std::string_view /*spec*/, const T& v) {
  out << v;
}

inline void append_nth(std::ostringstream&, std::string_view, std::size_t) {
  // No argument left for this placeholder: render nothing.
}

template <typename First, typename... Rest>
void append_nth(std::ostringstream& out, std::string_view spec, std::size_t index,
                const First& first, const Rest&... rest) {
  if (index == 0)
    render_arg(out, spec, first);
  else
    append_nth(out, spec, index - 1, rest...);
}

}  // namespace detail

template <typename... Args>
std::string format_str(std::string_view fmt, const Args&... args) {
  std::ostringstream out;
  std::size_t arg_index = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
      out << '{';
      ++i;
    } else if (c == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      out << '}';
      ++i;
    } else if (c == '{') {
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) {
        out << fmt.substr(i);
        break;
      }
      std::string_view inner = fmt.substr(i + 1, close - i - 1);
      std::string_view spec;
      if (const std::size_t colon = inner.find(':'); colon != std::string_view::npos)
        spec = inner.substr(colon + 1);
      detail::append_nth(out, spec, arg_index++, args...);
      i = close;
    } else {
      out << c;
    }
  }
  return out.str();
}

}  // namespace chpo
