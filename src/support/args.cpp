#include "support/args.hpp"

#include <charconv>
#include <sstream>

#include "support/strings.hpp"

namespace chpo {

ArgParser& ArgParser::add_flag(std::string name, std::string doc) {
  specs_[std::move(name)] = Spec{.doc = std::move(doc), .is_flag = true};
  return *this;
}

ArgParser& ArgParser::add_option(std::string name, std::string doc, std::string default_value) {
  specs_[std::move(name)] = Spec{.doc = std::move(doc), .default_value = std::move(default_value)};
  return *this;
}

ArgParser& ArgParser::add_repeated(std::string name, std::string doc) {
  specs_[std::move(name)] = Spec{.doc = std::move(doc), .is_repeated = true};
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (!starts_with(token, "--")) {
      positional_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    std::string value;
    bool has_inline_value = false;
    if (const std::size_t eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token.resize(eq);
      has_inline_value = true;
    }
    const auto it = specs_.find(token);
    if (it == specs_.end()) {
      error_ = "unknown option --" + token;
      return false;
    }
    if (it->second.is_flag) {
      if (has_inline_value) {
        error_ = "--" + token + " takes no value";
        return false;
      }
      values_[token] = "true";
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        error_ = "--" + token + " requires a value";
        return false;
      }
      value = argv[++i];
    }
    if (it->second.is_repeated) {
      repeated_[token].push_back(value);  // also mirrored into values_: last wins
    }
    values_[token] = std::move(value);
  }
  return true;
}

bool ArgParser::has(const std::string& name) const { return values_.contains(name); }

const std::vector<std::string>& ArgParser::get_all(const std::string& name) const {
  static const std::vector<std::string> kEmpty;
  const auto it = repeated_.find(name);
  return it != repeated_.end() ? it->second : kEmpty;
}

std::string ArgParser::get(const std::string& name, const std::string& fallback) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  if (const auto spec = specs_.find(name); spec != specs_.end() && !spec->second.default_value.empty())
    return spec->second.default_value;
  return fallback;
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t fallback) const {
  const std::string text = get(name);
  if (text.empty()) return fallback;
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return (ec == std::errc() && ptr == text.data() + text.size()) ? out : fallback;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const std::string text = get(name);
  if (text.empty()) return fallback;
  double out = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return (ec == std::errc() && ptr == text.data() + text.size()) ? out : fallback;
}

bool ArgParser::get_bool(const std::string& name) const { return get(name) == "true"; }

std::string ArgParser::usage(const std::string& program, const std::string& summary) const {
  std::ostringstream out;
  out << "usage: " << program << " [options] <args>\n" << summary << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    out << "  --" << pad_right(name + (spec.is_flag ? "" : " <value>"), 26) << spec.doc;
    if (!spec.default_value.empty()) out << " (default: " << spec.default_value << ")";
    out << "\n";
  }
  return out.str();
}

}  // namespace chpo
