// Lock-order witness implementation (see lockdep.hpp for the model).
//
// Internal synchronization uses a raw std::mutex deliberately: the
// witness cannot guard itself with the instrumented chpo::Mutex without
// recursing into its own hooks. tools/lint exempts this file from the
// raw-std-mutex rule for exactly that reason (the same way
// thread_annotations.hpp is exempt from raw-lock-call).
#include "support/lockdep.hpp"

#ifdef CHPO_LOCKDEP

#include <execinfo.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <set>

namespace chpo::lockdep {

namespace {

constexpr int kMaxFrames = 24;
constexpr int kMaxHeld = 32;

struct Stack {
  void* frames[kMaxFrames];
  int depth = 0;
  void capture() { depth = ::backtrace(frames, kMaxFrames); }
};

struct HeldLock {
  int class_id = -1;
  const void* instance = nullptr;
  Stack stack;
};

struct ClassInfo {
  std::string name;
  int rank = kUnranked;
  const LockClass* source = nullptr;  ///< dedup key for named classes
};

/// First observation of "to acquired while from was held": both stacks.
struct EdgeInfo {
  Stack from_stack;  ///< where the outer (held) lock was acquired
  Stack to_stack;    ///< where the inner lock was acquired under it
};

struct Witness {
  std::mutex mu;
  std::deque<ClassInfo> classes;                 // id = index
  std::map<int, std::set<int>> adjacency;        // class id -> successors
  std::map<std::pair<int, int>, EdgeInfo> edges;
};

Witness& witness() {
  static Witness w;
  return w;
}

/// Per-thread held-lock stack. Fixed capacity: no allocation on the
/// acquire path, and a depth overflow is itself reported as a bug.
struct HeldSet {
  HeldLock held[kMaxHeld];
  int depth = 0;
};

thread_local HeldSet t_held;

void print_stack(const Stack& stack) {
  ::backtrace_symbols_fd(const_cast<void**>(stack.frames), stack.depth, /*fd=*/2);
}

[[noreturn]] void abort_report() {
  std::fprintf(stderr,
               "chpo lockdep: aborting on first violation (fix the acquisition order or the "
               "rank table in support/lockdep.hpp)\n");
  std::fflush(stderr);
  std::abort();
}

/// DFS: is `target` reachable from `from` in the order graph?
/// Caller holds witness().mu. Fills `path` with the class ids walked
/// (from -> ... -> target) when found.
bool reachable(const Witness& w, int from, int target, std::set<int>& seen,
               std::vector<int>& path) {
  if (from == target) {
    path.push_back(from);
    return true;
  }
  if (!seen.insert(from).second) return false;
  const auto it = w.adjacency.find(from);
  if (it == w.adjacency.end()) return false;
  for (const int next : it->second) {
    if (reachable(w, next, target, seen, path)) {
      path.push_back(from);
      return true;
    }
  }
  return false;
}

}  // namespace

int register_class(const LockClass& cls) {
  Witness& w = witness();
  const std::lock_guard<std::mutex> lock(w.mu);
  for (std::size_t i = 0; i < w.classes.size(); ++i)
    if (w.classes[i].source == &cls) return static_cast<int>(i);
  w.classes.push_back(ClassInfo{cls.name != nullptr ? cls.name : "?", cls.rank, &cls});
  return static_cast<int>(w.classes.size() - 1);
}

int register_anonymous() {
  Witness& w = witness();
  const std::lock_guard<std::mutex> lock(w.mu);
  const int id = static_cast<int>(w.classes.size());
  w.classes.push_back(ClassInfo{"anon#" + std::to_string(id), kUnranked, nullptr});
  return id;
}

void note_acquire(int class_id, const void* instance) {
  if (class_id < 0) return;
  HeldSet& held = t_held;

  Stack here;
  here.capture();

  // Same-instance re-acquisition: a guaranteed self-deadlock (chpo::Mutex
  // is not recursive). Report both stacks and abort before blocking.
  for (int i = 0; i < held.depth; ++i) {
    if (held.held[i].instance == instance) {
      Witness& w = witness();
      const std::lock_guard<std::mutex> lock(w.mu);
      std::fprintf(stderr,
                   "chpo lockdep: RECURSIVE ACQUISITION of lock class '%s' (instance %p)\n"
                   "  first acquired at:\n",
                   w.classes[class_id].name.c_str(), instance);
      print_stack(held.held[i].stack);
      std::fprintf(stderr, "  re-acquired (would self-deadlock) at:\n");
      print_stack(here);
      abort_report();
    }
  }

  Witness& w = witness();
  {
    const std::lock_guard<std::mutex> lock(w.mu);
    const ClassInfo& acquiring = w.classes[class_id];

    for (int i = 0; i < held.depth; ++i) {
      const HeldLock& outer = held.held[i];
      const ClassInfo& held_cls = w.classes[outer.class_id];

      // Rank inversion: acquiring a lower-ranked (outer) class while a
      // higher-ranked (inner) one is held breaks the declared order even
      // if no opposite-order acquisition was ever observed.
      if (acquiring.rank != kUnranked && held_cls.rank != kUnranked &&
          acquiring.rank < held_cls.rank) {
        std::fprintf(stderr,
                     "chpo lockdep: RANK INVERSION: acquiring '%s' (rank %d) while holding "
                     "'%s' (rank %d)\n  '%s' acquired at:\n",
                     acquiring.name.c_str(), acquiring.rank, held_cls.name.c_str(),
                     held_cls.rank, held_cls.name.c_str());
        print_stack(outer.stack);
        std::fprintf(stderr, "  '%s' being acquired at:\n", acquiring.name.c_str());
        print_stack(here);
        abort_report();
      }

      if (outer.class_id == class_id) continue;  // same class: no self-edge

      // ABBA: the reverse order (class_id ->* outer) was already observed.
      std::set<int> seen;
      std::vector<int> path;  // filled from target back to class_id
      if (reachable(w, class_id, outer.class_id, seen, path)) {
        std::reverse(path.begin(), path.end());  // class_id -> ... -> outer
        std::fprintf(stderr,
                     "chpo lockdep: LOCK-ORDER CYCLE (ABBA): acquiring '%s' while holding "
                     "'%s', but the opposite order was already observed:\n  ",
                     acquiring.name.c_str(), held_cls.name.c_str());
        for (std::size_t p = 0; p < path.size(); ++p)
          std::fprintf(stderr, "%s'%s'", p == 0 ? "" : " -> ", w.classes[path[p]].name.c_str());
        std::fprintf(stderr, " -> (now) '%s'\n", acquiring.name.c_str());
        std::fprintf(stderr, "  this thread: '%s' acquired at:\n", held_cls.name.c_str());
        print_stack(outer.stack);
        std::fprintf(stderr, "  this thread: '%s' being acquired at:\n", acquiring.name.c_str());
        print_stack(here);
        if (path.size() >= 2) {
          const auto edge = w.edges.find({path[0], path[1]});
          if (edge != w.edges.end()) {
            std::fprintf(stderr, "  opposite order: '%s' was acquired at:\n",
                         w.classes[path[0]].name.c_str());
            print_stack(edge->second.from_stack);
            std::fprintf(stderr, "  opposite order: '%s' then acquired under it at:\n",
                         w.classes[path[1]].name.c_str());
            print_stack(edge->second.to_stack);
          }
        }
        abort_report();
      }

      // Record the new order edge (first observation keeps its stacks).
      if (w.adjacency[outer.class_id].insert(class_id).second)
        w.edges[{outer.class_id, class_id}] = EdgeInfo{outer.stack, here};
    }
  }

  if (held.depth >= kMaxHeld) {
    std::fprintf(stderr, "chpo lockdep: HELD-LOCK DEPTH OVERFLOW (%d locks held by one thread)\n",
                 held.depth);
    print_stack(here);
    abort_report();
  }
  held.held[held.depth].class_id = class_id;
  held.held[held.depth].instance = instance;
  held.held[held.depth].stack = here;
  ++held.depth;
}

void note_release(int class_id, const void* instance) {
  if (class_id < 0) return;
  HeldSet& held = t_held;
  // Releases are near-LIFO (RAII guards), so scan from the top.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.held[i].instance != instance) continue;
    for (int j = i; j + 1 < held.depth; ++j) held.held[j] = held.held[j + 1];
    --held.depth;
    return;
  }
  // Releasing a lock the witness never saw acquired: tolerated (e.g. a
  // mutex acquired before CHPO_LOCKDEP state existed), never fatal.
}

bool enabled() { return true; }

std::size_t edge_count() {
  Witness& w = witness();
  const std::lock_guard<std::mutex> lock(w.mu);
  return w.edges.size();
}

bool order_cycle_free() {
  Witness& w = witness();
  const std::lock_guard<std::mutex> lock(w.mu);
  // Kahn-style: the graph is acyclic iff every node can be peeled.
  std::map<int, int> indegree;
  for (const auto& [from, tos] : w.adjacency) {
    indegree.try_emplace(from, 0);
    for (const int to : tos) ++indegree[to];
  }
  std::vector<int> ready;
  for (const auto& [node, deg] : indegree)
    if (deg == 0) ready.push_back(node);
  std::size_t peeled = 0;
  while (!ready.empty()) {
    const int node = ready.back();
    ready.pop_back();
    ++peeled;
    const auto it = w.adjacency.find(node);
    if (it == w.adjacency.end()) continue;
    for (const int to : it->second)
      if (--indegree[to] == 0) ready.push_back(to);
  }
  return peeled == indegree.size();
}

std::vector<std::pair<std::string, std::string>> observed_edges() {
  Witness& w = witness();
  const std::lock_guard<std::mutex> lock(w.mu);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(w.edges.size());
  for (const auto& [key, info] : w.edges)
    out.emplace_back(w.classes[key.first].name, w.classes[key.second].name);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> held_by_this_thread() {
  Witness& w = witness();
  const std::lock_guard<std::mutex> lock(w.mu);
  std::vector<std::string> out;
  for (int i = 0; i < t_held.depth; ++i) out.push_back(w.classes[t_held.held[i].class_id].name);
  return out;
}

}  // namespace chpo::lockdep

#endif  // CHPO_LOCKDEP
