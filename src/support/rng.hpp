// Deterministic, splittable random number generation.
//
// All stochastic components (random search, dataset synthesis, weight init,
// failure injection) draw from Rng so that every experiment in this repo is
// reproducible from a single seed. The generator is xoshiro256** seeded via
// SplitMix64, which is both fast and statistically strong enough for
// simulation workloads.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace chpo {

/// Complete generator state — capture with Rng::state(), restore with
/// Rng::set_state(). Lets checkpoint/resume paths (the reuse subsystem's
/// train-stage snapshots) continue a random sequence bit-exactly.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  double spare_gaussian = 0.0;
  bool has_spare = false;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double next_uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached spare).
  double next_gaussian();

  /// Gaussian with explicit mean / stddev.
  double next_gaussian(double mean, double stddev);

  /// Bernoulli trial.
  bool next_bool(double p_true);

  /// Index in [0, n) — convenience for container sampling. Requires n > 0.
  std::size_t next_index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream; used to give each task / trial its
  /// own generator without correlated sequences.
  Rng split();

  RngState state() const {
    return RngState{{state_[0], state_[1], state_[2], state_[3]}, spare_gaussian_, has_spare_};
  }
  void set_state(const RngState& s) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = s.s[i];
    spare_gaussian_ = s.spare_gaussian;
    has_spare_ = s.has_spare;
  }

 private:
  std::uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace chpo
