// Thread-safety annotations + annotated lock primitives.
//
// A macro shim over clang's Thread Safety Analysis (-Wthread-safety): on
// clang the CHPO_* macros expand to the capability attributes and the
// analysis checks, at compile time, that every access to a CHPO_GUARDED_BY
// member happens under its lock and that every CHPO_REQUIRES contract is
// honoured at each call site. On GCC (and any compiler without the
// attributes) everything expands to nothing and the code compiles exactly
// as before — annotations are contracts, never behaviour.
//
// The standard library's lock types carry no annotations under libstdc++,
// so the analysis cannot see through std::scoped_lock / std::unique_lock.
// This header therefore also provides thin annotated wrappers — Mutex,
// SharedMutex, the MutexLock / ReaderLock / WriterLock RAII guards, and a
// CondVar that waits on a Mutex directly — which the rest of the codebase
// uses instead of the raw std types (enforced by chpo_lint's raw-std-mutex
// rule). The wrappers follow the reference pattern from the clang Thread
// Safety Analysis documentation.
//
// Lock-discipline contract for the repo (see DESIGN.md "Threading model &
// static analysis"): locks are only ever taken through the RAII guards
// below; chpo_lint rejects raw .lock()/.unlock() calls outside this file.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "support/lockdep.hpp"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CHPO_HAVE_THREAD_SAFETY_ATTRIBUTES 1
#endif
#endif

#ifdef CHPO_HAVE_THREAD_SAFETY_ATTRIBUTES
#define CHPO_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CHPO_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Marks a class as a capability (a lock, or a fake role capability such as
/// rt::EngineContext). The string names the capability kind in diagnostics.
#define CHPO_CAPABILITY(x) CHPO_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define CHPO_SCOPED_CAPABILITY CHPO_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define CHPO_GUARDED_BY(x) CHPO_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define CHPO_PT_GUARDED_BY(x) CHPO_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function precondition: caller must hold the capability exclusively.
#define CHPO_REQUIRES(...) CHPO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function precondition: caller must hold the capability (shared is enough).
#define CHPO_REQUIRES_SHARED(...) CHPO_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively (held on return).
#define CHPO_ACQUIRE(...) CHPO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability in shared mode.
#define CHPO_ACQUIRE_SHARED(...) CHPO_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases an exclusively held capability.
#define CHPO_RELEASE(...) CHPO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared-held capability.
#define CHPO_RELEASE_SHARED(...) CHPO_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function releases a capability held in either mode (scoped-guard dtors).
#define CHPO_RELEASE_GENERIC(...) CHPO_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first arg is the success return value.
#define CHPO_TRY_ACQUIRE(...) CHPO_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must be called *without* the capability held (deadlock guard).
#define CHPO_EXCLUDES(...) CHPO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function asserts (at runtime) that the capability is already held.
#define CHPO_ASSERT_CAPABILITY(x) CHPO_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given capability.
#define CHPO_RETURN_CAPABILITY(x) CHPO_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function is exempt from the analysis. Used only where
/// the discipline is enforced by construction-time sequencing the analysis
/// cannot see (e.g. FaultInjector's copy operations, which run before any
/// worker thread exists).
#define CHPO_NO_THREAD_SAFETY_ANALYSIS CHPO_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace chpo {

/// std::mutex with capability annotations. Prefer the MutexLock guard;
/// the raw lock()/unlock() exist for the guard and CondVar only (chpo_lint
/// forbids calling them anywhere else).
///
/// A Mutex may carry a lockdep::LockClass naming its place in the global
/// acquisition order (see support/lockdep.hpp). Default-constructed
/// mutexes get an anonymous unranked class. With CHPO_LOCKDEP off the
/// hooks are empty inlines and class_id_ is a dead -1.
class CHPO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : class_id_(lockdep::register_anonymous()) {}
  explicit Mutex(const lockdep::LockClass& cls) : class_id_(lockdep::register_class(cls)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // note_acquire runs BEFORE the underlying lock so an ordering violation
  // aborts with stacks instead of deadlocking silently.
  void lock() CHPO_ACQUIRE() {
    lockdep::note_acquire(class_id_, this);
    m_.lock();
  }
  void unlock() CHPO_RELEASE() {
    lockdep::note_release(class_id_, this);
    m_.unlock();
  }
  bool try_lock() CHPO_TRY_ACQUIRE(true) {
    // A try_lock never blocks, but a successful one still orders this
    // class after everything held — so it goes through the same check.
    lockdep::note_acquire(class_id_, this);
    if (m_.try_lock()) return true;
    lockdep::note_release(class_id_, this);
    return false;
  }

 private:
  std::mutex m_;
  int class_id_ = -1;
};

/// std::shared_mutex with capability annotations (DataRegistry's
/// many-readers / single-writer version table). Shared acquisitions feed
/// the lockdep witness exactly like exclusive ones: a reader blocked
/// behind a writer deadlocks just as hard, so the ordering rules are
/// mode-independent.
class CHPO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() : class_id_(lockdep::register_anonymous()) {}
  explicit SharedMutex(const lockdep::LockClass& cls)
      : class_id_(lockdep::register_class(cls)) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CHPO_ACQUIRE() {
    lockdep::note_acquire(class_id_, this);
    m_.lock();
  }
  void unlock() CHPO_RELEASE() {
    lockdep::note_release(class_id_, this);
    m_.unlock();
  }
  void lock_shared() CHPO_ACQUIRE_SHARED() {
    lockdep::note_acquire(class_id_, this);
    m_.lock_shared();
  }
  void unlock_shared() CHPO_RELEASE_SHARED() {
    lockdep::note_release(class_id_, this);
    m_.unlock_shared();
  }

 private:
  std::shared_mutex m_;
  int class_id_ = -1;
};

/// RAII exclusive lock on a Mutex.
class CHPO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CHPO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() CHPO_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// RAII exclusive lock on a SharedMutex.
class CHPO_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) CHPO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() CHPO_RELEASE() { mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class CHPO_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) CHPO_ACQUIRE_SHARED(mu) : mu_(mu) { mu_.lock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() CHPO_RELEASE_GENERIC() { mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

/// Condition variable that waits on a Mutex directly (condition_variable_any
/// under the hood, so no std::unique_lock is needed — the annotated Mutex is
/// its own BasicLockable). The caller must hold the mutex around wait();
/// predicate re-checks live in the caller's scope, where the analysis can
/// see the capability:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
///
/// The internal unlock/relock inside wait() is invisible to the analysis,
/// which is the correct model: the capability is held before and after.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) CHPO_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu, const std::chrono::time_point<Clock, Duration>& tp)
      CHPO_REQUIRES(mu) {
    return cv_.wait_until(mu, tp);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
      CHPO_REQUIRES(mu) {
    return cv_.wait_for(mu, d);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace chpo
