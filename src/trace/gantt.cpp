#include "trace/gantt.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>

#include "support/strings.hpp"
#include "trace/analysis.hpp"

namespace chpo::trace {
namespace {

char task_glyph(std::uint64_t task_id) {
  static constexpr char kGlyphs[] = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  return kGlyphs[task_id % (sizeof(kGlyphs) - 1)];
}

}  // namespace

std::string render_gantt(const std::vector<Event>& events, const GanttOptions& options) {
  double t0 = std::numeric_limits<double>::infinity();
  double t1 = -std::numeric_limits<double>::infinity();
  for (const Event& e : events) {
    if (e.kind != EventKind::TaskRun) continue;
    t0 = std::min(t0, e.t_start);
    t1 = std::max(t1, e.t_end);
  }
  if (!(t0 < t1)) return "(empty trace)\n";

  const std::size_t width = std::max<std::size_t>(options.width, 10);
  const double bucket = (t1 - t0) / static_cast<double>(width);

  // Row key: (node, core) or (node, 0) when collapsed.
  std::map<std::pair<int, unsigned>, std::string> rows;
  for (const Event& e : events) {
    if (e.kind != EventKind::TaskRun) continue;
    const auto b0 = static_cast<std::size_t>((e.t_start - t0) / bucket);
    auto b1 = static_cast<std::size_t>((e.t_end - t0) / bucket);
    b1 = std::min(b1, width - 1);
    std::vector<unsigned> cores = e.cores;
    if (options.collapse_nodes) cores = {0};
    if (cores.empty()) cores = {0};
    for (const unsigned core : cores) {
      std::string& row = rows[{e.node, core}];
      if (row.empty()) row.assign(width, '.');
      for (std::size_t b = b0; b <= b1 && b < width; ++b) {
        row[b] = (row[b] == '.') ? task_glyph(e.task_id) : '#';
      }
    }
  }

  std::string out;
  out += "time: " + format_duration(0) + " .. " + format_duration(t1 - t0) + "  (" +
         std::to_string(width) + " buckets, " + format_duration(bucket) + " each)\n";
  std::size_t printed = 0;
  for (const auto& [key, row] : rows) {
    if (printed++ >= options.max_rows) {
      out += "... (" + std::to_string(rows.size() - options.max_rows) + " more rows)\n";
      break;
    }
    std::string label = options.collapse_nodes
                            ? "node " + std::to_string(key.first)
                            : "n" + std::to_string(key.first) + "/c" + std::to_string(key.second);
    out += pad_right(std::move(label), 10) + "|" + row + "|\n";
  }
  return out;
}

std::string render_parallelism_profile(const std::vector<Event>& events, std::size_t width,
                                       std::size_t height) {
  const Analysis analysis(events);
  const auto profile = analysis.concurrency_profile();
  if (profile.empty() || analysis.makespan() <= 0) return "(empty trace)\n";
  width = std::max<std::size_t>(width, 10);
  height = std::max<std::size_t>(height, 3);

  // Average concurrency per time bucket (step function integrated).
  const double t0 = analysis.first_start();
  const double bucket_seconds = analysis.makespan() / static_cast<double>(width);
  std::vector<double> buckets(width, 0.0);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double start = profile[i].time;
    const double end =
        i + 1 < profile.size() ? profile[i + 1].time : t0 + analysis.makespan();
    const double level = static_cast<double>(profile[i].running);
    // Distribute this interval's area over the buckets it spans.
    double cursor = start;
    while (cursor < end - 1e-15) {
      auto b = static_cast<std::size_t>((cursor - t0) / bucket_seconds);
      b = std::min(b, width - 1);
      const double bucket_end = t0 + static_cast<double>(b + 1) * bucket_seconds;
      const double slice = std::min(end, bucket_end) - cursor;
      if (slice <= 0) break;  // floating-point guard: never spin in place
      buckets[b] += level * slice / bucket_seconds;
      cursor += slice;
    }
  }
  const double peak = *std::max_element(buckets.begin(), buckets.end());
  if (peak <= 0) return "(no running tasks)\n";

  std::string out = "running tasks over time (peak " +
                    std::to_string(analysis.peak_concurrency()) + ")\n";
  for (std::size_t row = 0; row < height; ++row) {
    const double level = peak * static_cast<double>(height - row) / static_cast<double>(height);
    char label[16];
    std::snprintf(label, sizeof label, "%5.1f", level);
    out += label;
    out += " |";
    for (std::size_t b = 0; b < width; ++b) out += buckets[b] >= level - 1e-12 ? '#' : ' ';
    out += "|\n";
  }
  out += "       0 .. " + format_duration(analysis.makespan()) + "\n";
  return out;
}

}  // namespace chpo::trace
