#include "trace/chrome_writer.hpp"

#include <fstream>

#include "jsonlite/json.hpp"

namespace chpo::trace {

namespace {

json::Value span_event(const Event& e, unsigned core) {
  json::Value out;
  out.set("name", json::Value(e.task_name + " #" + std::to_string(e.task_id)));
  out.set("cat", json::Value(kind_name(e.kind)));
  out.set("ph", json::Value("X"));  // complete event
  out.set("ts", json::Value(e.t_start * 1e6));
  out.set("dur", json::Value((e.t_end - e.t_start) * 1e6));
  out.set("pid", json::Value(static_cast<std::int64_t>(e.node < 0 ? 0 : e.node)));
  out.set("tid", json::Value(static_cast<std::int64_t>(core)));
  json::Value args;
  args.set("task", json::Value(static_cast<std::int64_t>(e.task_id)));
  args.set("attempt", json::Value(static_cast<std::int64_t>(e.attempt)));
  out.set("args", std::move(args));
  return out;
}

json::Value instant_event(const Event& e) {
  json::Value out;
  out.set("name", json::Value(std::string(kind_name(e.kind))));
  out.set("ph", json::Value("i"));
  out.set("s", json::Value("g"));  // global scope marker
  out.set("ts", json::Value(e.t_start * 1e6));
  out.set("pid", json::Value(static_cast<std::int64_t>(e.node < 0 ? 0 : e.node)));
  out.set("tid", json::Value(static_cast<std::int64_t>(0)));
  json::Value args;
  args.set("task", json::Value(static_cast<std::int64_t>(e.task_id)));
  out.set("args", std::move(args));
  return out;
}

}  // namespace

std::string to_chrome_trace(const std::vector<Event>& events) {
  json::Array trace_events;
  for (const Event& e : events) {
    const bool is_span = e.kind == EventKind::TaskRun || e.kind == EventKind::Transfer;
    if (is_span) {
      if (e.cores.empty()) {
        trace_events.push_back(span_event(e, 0));
      } else {
        for (unsigned core : e.cores) trace_events.push_back(span_event(e, core));
      }
    } else {
      trace_events.push_back(instant_event(e));
    }
  }
  json::Value document;
  document.set("traceEvents", json::Value(std::move(trace_events)));
  document.set("displayTimeUnit", json::Value("ms"));
  return json::serialize(document);
}

void write_chrome_trace(const std::string& path, const std::vector<Event>& events) {
  std::ofstream out(path, std::ios::trunc);
  out << to_chrome_trace(events) << "\n";
}

}  // namespace chpo::trace
