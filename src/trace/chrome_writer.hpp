// Chrome trace-event export (chrome://tracing, Perfetto).
//
// A modern complement to the Paraver .prv output: one JSON file that any
// Chromium browser renders as an interactive timeline. Nodes map to
// processes, cores to threads; point events become instant events.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace chpo::trace {

/// Serialize to the Trace Event Format ("traceEvents" JSON array).
/// Durations are microseconds as the format requires.
std::string to_chrome_trace(const std::vector<Event>& events);

/// Write `path` (conventionally ending in .json).
void write_chrome_trace(const std::string& path, const std::vector<Event>& events);

}  // namespace chpo::trace
