// Execution tracing — the Extrae/Paraver substitute.
//
// The paper's evaluation (Figures 4-6) is read off Paraver traces: which
// core ran which task, when, and how the runtime filled resources. TraceSink
// collects equivalent records from either backend (wall-clock seconds from
// the threaded backend, virtual seconds from the simulator). Analysis and
// rendering live in analysis.hpp / gantt.hpp; prv_writer.hpp emits a
// Paraver-compatible .prv file.
//
// Tracing can be disabled (the paper: "these two features can easily be
// turned off by a simple flag"), which turns record() into an atomic-flag
// check — the overhead benchmark measures exactly this.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "support/thread_annotations.hpp"

namespace chpo::trace {

/// Point events mark instants; span events carry a duration.
enum class EventKind : std::uint8_t {
  TaskRun,       ///< span: task body executing on its resources
  Transfer,      ///< span: input staging onto the execution node
  TaskSubmit,    ///< point: main program submitted the task (event flag)
  TaskSchedule,  ///< point: scheduler placed the task
  TaskFailure,   ///< point: an attempt failed
  TaskRetry,     ///< point: runtime relaunched a failed task
  NodeDown,      ///< point: a node was lost
  Sync,          ///< point: wait_on barrier reached
  WaitAny,       ///< point: wait_any returned (task_id = the winner)
  Cancel,        ///< point: caller cancelled the task (early stop)
  StragglerDetected,  ///< point: a running attempt crossed the straggler threshold
  SpeculativeLaunch,  ///< point: duplicate attempt launched on another node
  SpeculativeWin,     ///< point: a speculative duplicate finished first
  Backoff,            ///< span: retry delayed by exponential backoff
  CacheHit,           ///< point: reuse stage/result served from the cache
  CacheMiss,          ///< point: reuse stage had to be computed
  StageShared,        ///< point: one planned stage serves several trials
  NodeUp,             ///< point: a lost node rejoined the cluster
  DataLost,           ///< point: a committed version lost its last replica
  LineageRecompute,   ///< point: a recovery attempt recommitted lost data
  Quarantine,         ///< point: a flaky node entered health quarantine
  StudyOpen,          ///< point: a study session was opened (task_id = study)
  StudyPause,         ///< point: a study's ready queue was held
  StudyResume,        ///< point: a paused study resumed scheduling
  StudyCancel,        ///< point: a study's in-flight work was torn down
};

/// Number of EventKind values (for exhaustive .pcf / report iteration).
inline constexpr int kEventKindCount = static_cast<int>(EventKind::StudyCancel) + 1;

struct Event {
  EventKind kind = EventKind::TaskRun;
  std::uint64_t task_id = 0;
  /// Owning study of the task (or the subject study of a Study* event).
  std::uint32_t study = 0;
  int attempt = 0;
  std::string task_name;
  /// Resource placement. node < 0 means "not bound to a node" (e.g. submit).
  int node = -1;
  /// Core slots occupied on the node (affinity set); empty for point events.
  std::vector<unsigned> cores;
  std::vector<unsigned> gpus;
  double t_start = 0.0;  ///< seconds (wall or virtual)
  double t_end = 0.0;    ///< == t_start for point events
};

class TraceSink {
 public:
  explicit TraceSink(bool enabled = true) : enabled_(enabled) {}

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record an event; no-op (single atomic load) when disabled.
  void record(Event event);

  /// Snapshot of all events sorted by t_start. Safe while recording.
  std::vector<Event> events() const;

  std::size_t size() const;
  void clear();

 private:
  std::atomic<bool> enabled_;
  mutable Mutex mutex_{lockdep::kTraceSink};
  std::vector<Event> events_ CHPO_GUARDED_BY(mutex_);
};

/// Human-readable name for an event kind.
const char* kind_name(EventKind kind);

}  // namespace chpo::trace
