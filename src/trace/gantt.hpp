// ASCII Gantt rendering of a trace — the terminal stand-in for a Paraver
// timeline window. Each row is one core (or one node, collapsed); columns
// are time buckets; a cell shows a glyph identifying the task running there.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace chpo::trace {

struct GanttOptions {
  std::size_t width = 100;       ///< time buckets across the terminal
  bool collapse_nodes = false;   ///< one row per node instead of per core
  std::size_t max_rows = 64;     ///< truncate very tall clusters
};

/// Render TaskRun spans as a multi-line string. Glyphs cycle through
/// [a-zA-Z0-9] by task id; '.' is idle; '#' marks >1 task in a bucket
/// (only possible in collapsed mode).
std::string render_gantt(const std::vector<Event>& events, const GanttOptions& options = {});

/// Parallelism profile: a bar chart of how many tasks ran concurrently
/// over time (the summary one reads off a Paraver "parallelism" view).
std::string render_parallelism_profile(const std::vector<Event>& events, std::size_t width = 80,
                                       std::size_t height = 12);

}  // namespace chpo::trace
