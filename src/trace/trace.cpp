#include "trace/trace.hpp"

#include <algorithm>

namespace chpo::trace {

void TraceSink::record(Event event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<Event> TraceSink::events() const {
  std::vector<Event> copy;
  {
    const MutexLock lock(mutex_);
    copy = events_;
  }
  std::stable_sort(copy.begin(), copy.end(),
                   [](const Event& a, const Event& b) { return a.t_start < b.t_start; });
  return copy;
}

std::size_t TraceSink::size() const {
  const MutexLock lock(mutex_);
  return events_.size();
}

void TraceSink::clear() {
  const MutexLock lock(mutex_);
  events_.clear();
}

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::TaskRun: return "task_run";
    case EventKind::Transfer: return "transfer";
    case EventKind::TaskSubmit: return "task_submit";
    case EventKind::TaskSchedule: return "task_schedule";
    case EventKind::TaskFailure: return "task_failure";
    case EventKind::TaskRetry: return "task_retry";
    case EventKind::NodeDown: return "node_down";
    case EventKind::Sync: return "sync";
    case EventKind::WaitAny: return "wait_any";
    case EventKind::Cancel: return "cancel";
    case EventKind::StragglerDetected: return "straggler_detected";
    case EventKind::SpeculativeLaunch: return "speculative_launch";
    case EventKind::SpeculativeWin: return "speculative_win";
    case EventKind::Backoff: return "backoff";
    case EventKind::CacheHit: return "cache_hit";
    case EventKind::CacheMiss: return "cache_miss";
    case EventKind::StageShared: return "stage_shared";
    case EventKind::NodeUp: return "node_up";
    case EventKind::DataLost: return "data_lost";
    case EventKind::LineageRecompute: return "lineage_recompute";
    case EventKind::Quarantine: return "quarantine";
    case EventKind::StudyOpen: return "study_open";
    case EventKind::StudyPause: return "study_pause";
    case EventKind::StudyResume: return "study_resume";
    case EventKind::StudyCancel: return "study_cancel";
  }
  return "unknown";
}

}  // namespace chpo::trace
