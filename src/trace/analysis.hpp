// Quantitative trace analysis — the numbers one reads off a Paraver view.
//
// Computes the metrics the paper's evaluation discusses: makespan, per-core
// busy fraction, how many tasks started "at the same time" (Figure 5's 24
// simultaneous starts), concurrency over time, and which cores were reused
// by queued tasks once they freed up.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace chpo::trace {

/// Identifies one core on one node.
struct CoreId {
  int node = 0;
  unsigned core = 0;
  auto operator<=>(const CoreId&) const = default;
};

struct CoreUsage {
  CoreId id;
  double busy_seconds = 0.0;
  std::size_t tasks_run = 0;
};

struct ConcurrencySample {
  double time = 0.0;
  std::size_t running = 0;  ///< tasks running in [time, next sample)
};

struct TaskSpanStat {
  std::uint64_t task_id = 0;
  std::string name;
  int node = -1;
  int attempt = 0;
  double start = 0.0;
  double end = 0.0;
  double duration() const { return end - start; }
};

class Analysis {
 public:
  /// Builds statistics from TaskRun spans (other kinds kept for counters).
  explicit Analysis(const std::vector<Event>& events);

  /// End of the last task minus start of the first (0 if no tasks).
  double makespan() const { return makespan_; }
  double first_start() const { return first_start_; }

  std::size_t task_count() const { return spans_.size(); }
  std::size_t failure_count() const { return failures_; }
  std::size_t retry_count() const { return retries_; }

  /// Tasks whose start is within `epsilon` of the very first start.
  std::size_t tasks_started_together(double epsilon = 1e-9) const;

  /// Busy time per core, sorted by (node, core). The rvalue overload
  /// returns by value so `analyze().core_usage()` never dangles.
  const std::vector<CoreUsage>& core_usage() const& { return cores_; }
  std::vector<CoreUsage> core_usage() && { return std::move(cores_); }

  /// Mean busy fraction over all cores that appear in the trace, relative
  /// to the makespan.
  double mean_core_utilisation() const;

  /// Busy fraction relative to an explicit capacity (cores * makespan).
  double utilisation_vs_capacity(unsigned total_cores) const;

  /// Number of distinct nodes that ran at least one task.
  std::size_t nodes_used() const;

  /// Step function of concurrently running tasks.
  std::vector<ConcurrencySample> concurrency_profile() const;
  std::size_t peak_concurrency() const;

  /// Per-task spans sorted by start time. The rvalue overload returns by
  /// value so `analyze().spans()` never dangles.
  const std::vector<TaskSpanStat>& spans() const& { return spans_; }
  std::vector<TaskSpanStat> spans() && { return std::move(spans_); }

  /// Cores that ran more than one task (Figure 5: cores reused as they free).
  std::vector<CoreId> reused_cores() const;

  /// Duration statistics aggregated per task name (experiment vs
  /// visualisation vs plot, etc.), sorted by name.
  struct NameStats {
    std::string name;
    std::size_t count = 0;
    double total_seconds = 0.0;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
    double mean_seconds() const {
      return count ? total_seconds / static_cast<double>(count) : 0.0;
    }
  };
  std::vector<NameStats> stats_by_name() const;

 private:
  std::vector<TaskSpanStat> spans_;
  std::vector<CoreUsage> cores_;
  double makespan_ = 0.0;
  double first_start_ = 0.0;
  std::size_t failures_ = 0;
  std::size_t retries_ = 0;
};

}  // namespace chpo::trace
