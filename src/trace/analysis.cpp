#include "trace/analysis.hpp"

#include <algorithm>
#include <limits>

namespace chpo::trace {

Analysis::Analysis(const std::vector<Event>& events) {
  std::map<CoreId, CoreUsage> usage;
  double min_start = std::numeric_limits<double>::infinity();
  double max_end = -std::numeric_limits<double>::infinity();
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::TaskFailure: ++failures_; continue;
      case EventKind::TaskRetry: ++retries_; continue;
      case EventKind::TaskRun: break;
      default: continue;
    }
    spans_.push_back(TaskSpanStat{.task_id = e.task_id,
                                  .name = e.task_name,
                                  .node = e.node,
                                  .attempt = e.attempt,
                                  .start = e.t_start,
                                  .end = e.t_end});
    min_start = std::min(min_start, e.t_start);
    max_end = std::max(max_end, e.t_end);
    for (const unsigned core : e.cores) {
      CoreId id{.node = e.node, .core = core};
      CoreUsage& u = usage[id];
      u.id = id;
      u.busy_seconds += e.t_end - e.t_start;
      ++u.tasks_run;
    }
  }
  if (!spans_.empty()) {
    first_start_ = min_start;
    makespan_ = max_end - min_start;
  }
  std::sort(spans_.begin(), spans_.end(),
            [](const TaskSpanStat& a, const TaskSpanStat& b) { return a.start < b.start; });
  cores_.reserve(usage.size());
  for (auto& [id, u] : usage) cores_.push_back(u);
}

std::size_t Analysis::tasks_started_together(double epsilon) const {
  if (spans_.empty()) return 0;
  std::size_t n = 0;
  for (const auto& s : spans_)
    if (s.start - first_start_ <= epsilon) ++n;
  return n;
}

double Analysis::mean_core_utilisation() const {
  if (cores_.empty() || makespan_ <= 0.0) return 0.0;
  double total = 0.0;
  for (const auto& u : cores_) total += u.busy_seconds / makespan_;
  return total / static_cast<double>(cores_.size());
}

double Analysis::utilisation_vs_capacity(unsigned total_cores) const {
  if (total_cores == 0 || makespan_ <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& u : cores_) busy += u.busy_seconds;
  return busy / (static_cast<double>(total_cores) * makespan_);
}

std::size_t Analysis::nodes_used() const {
  std::vector<int> nodes;
  for (const auto& s : spans_) nodes.push_back(s.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes.size();
}

std::vector<ConcurrencySample> Analysis::concurrency_profile() const {
  // Sweep over start(+1)/end(-1) deltas.
  std::vector<std::pair<double, int>> deltas;
  deltas.reserve(spans_.size() * 2);
  for (const auto& s : spans_) {
    deltas.emplace_back(s.start, +1);
    deltas.emplace_back(s.end, -1);
  }
  std::sort(deltas.begin(), deltas.end());
  std::vector<ConcurrencySample> profile;
  long running = 0;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    running += deltas[i].second;
    // Collapse simultaneous deltas into one sample.
    if (i + 1 < deltas.size() && deltas[i + 1].first == deltas[i].first) continue;
    profile.push_back(
        ConcurrencySample{.time = deltas[i].first, .running = static_cast<std::size_t>(running)});
  }
  return profile;
}

std::size_t Analysis::peak_concurrency() const {
  std::size_t peak = 0;
  for (const auto& s : concurrency_profile()) peak = std::max(peak, s.running);
  return peak;
}

std::vector<Analysis::NameStats> Analysis::stats_by_name() const {
  std::map<std::string, NameStats> by_name;
  for (const auto& span : spans_) {
    NameStats& stats = by_name[span.name];
    if (stats.count == 0) {
      stats.name = span.name;
      stats.min_seconds = span.duration();
      stats.max_seconds = span.duration();
    }
    ++stats.count;
    stats.total_seconds += span.duration();
    stats.min_seconds = std::min(stats.min_seconds, span.duration());
    stats.max_seconds = std::max(stats.max_seconds, span.duration());
  }
  std::vector<NameStats> out;
  out.reserve(by_name.size());
  for (auto& [name, stats] : by_name) out.push_back(std::move(stats));
  return out;
}

std::vector<CoreId> Analysis::reused_cores() const {
  std::vector<CoreId> reused;
  for (const auto& u : cores_)
    if (u.tasks_run > 1) reused.push_back(u.id);
  return reused;
}

}  // namespace chpo::trace
