// Paraver .prv export.
//
// Emits the subset of the Paraver trace format (header + state records)
// that Paraver needs to draw the timelines in Figures 4-6: one application,
// one task per node, one "thread" per core; state 1 = running task body,
// state 0 = idle. Also writes the companion .row file naming the threads.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "trace/trace.hpp"

namespace chpo::trace {

/// Serialize the trace to .prv text. Times are converted to integer
/// nanoseconds as Paraver expects.
std::string to_prv(const std::vector<Event>& events, const cluster::ClusterSpec& spec);

/// Companion .row file content (resource naming).
std::string to_row(const cluster::ClusterSpec& spec);

/// Companion .pcf file content: state colours and event-type names so
/// Paraver labels our records ("Running task", submit/failure flags, ...).
std::string to_pcf();

/// Convenience: write `<basename>.prv`, `<basename>.row`, `<basename>.pcf`.
void write_prv_files(const std::string& basename, const std::vector<Event>& events,
                     const cluster::ClusterSpec& spec);

}  // namespace chpo::trace
