#include "jsonlite/wire.hpp"

namespace chpo::json {

std::string encode_frame(const Value& value) {
  std::string out = serialize(value);
  out.push_back('\n');
  return out;
}

void LineDecoder::feed(std::string_view bytes) {
  std::size_t start = 0;
  while (start < bytes.size()) {
    std::size_t nl = bytes.find('\n', start);
    if (discarding_) {
      // Tail of a line that already blew the limit: swallow to newline.
      if (nl == std::string_view::npos) return;
      discarding_ = false;
      start = nl + 1;
      continue;
    }
    if (nl == std::string_view::npos) {
      partial_.append(bytes.substr(start));
      if (partial_.size() > max_line_bytes_) oversized();
      break;
    }
    partial_.append(bytes.substr(start, nl - start));
    start = nl + 1;
    if (partial_.size() > max_line_bytes_) {
      oversized();
      discarding_ = false;  // this line ended at the newline we just ate
      continue;
    }
    // Tolerate CRLF clients.
    if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
    std::string line;
    line.swap(partial_);
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    Frame frame;
    try {
      frame.value = parse(line);
    } catch (const JsonError& err) {
      frame.error = err.what();
      frame.raw = std::move(line);
    }
    ready_.push_back(std::move(frame));
  }
}

std::optional<Frame> LineDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  Frame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

void LineDecoder::oversized() {
  Frame frame;
  frame.error = "line exceeds " + std::to_string(max_line_bytes_) +
                " bytes (protocol limit); closing connection";
  frame.fatal = true;
  ready_.push_back(std::move(frame));
  partial_.clear();
  discarding_ = true;
}

}  // namespace chpo::json
