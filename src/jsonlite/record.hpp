// CRC-tagged NDJSON record framing for durable append-only logs.
//
// The service daemon's write-ahead journal (daemon/journal.hpp) appends
// one record per state-changing event. A crash can tear the final write
// at any byte, so every record line carries a CRC32 of its payload:
//
//   <8 lowercase hex digits of crc32(payload)> <compact JSON payload>\n
//
// A reader walks the file line by line and stops at the first record
// whose CRC or JSON does not check out — everything before the torn tail
// is trusted, everything from it on is discarded (and reported, so the
// journal owner can warn). Compact serialization never emits raw
// newlines, so the line boundary is unambiguous.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "jsonlite/json.hpp"

namespace chpo::json {

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
std::uint32_t crc32(std::string_view bytes);

/// Frame one record: "<crc32 hex> <compact json>\n".
std::string encode_record(const Value& value);

/// One attempted record decode. A failed decode means the line was torn
/// or corrupted — `error` says how.
struct RecordDecode {
  Value value;
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Decode one record line (without its trailing '\n').
RecordDecode decode_record(std::string_view line);

/// A whole record file replayed up to the last intact record.
struct RecordReplay {
  std::vector<Value> records;  ///< every record before the first bad line
  /// Bytes discarded from the first bad/torn line to end of file
  /// (0 = the file was fully intact).
  std::size_t torn_bytes = 0;
  /// Why the tail was discarded (empty when torn_bytes == 0).
  std::string torn_error;
  bool torn() const { return torn_bytes > 0; }
};

/// Read `path` and decode records until the first corrupt or torn line.
/// A missing file is an empty, untorn replay — append-only logs start
/// empty. A final line with no '\n' is decoded if it checks out (the
/// crash landed between write and newline being visible is impossible —
/// the newline is part of the same write — but a torn write may still
/// keep the line intact up to the cut).
RecordReplay read_records(const std::string& path);

}  // namespace chpo::json
