// Newline-delimited JSON framing for the service daemon wire protocol.
//
// One frame = one JSON document followed by '\n'. The framing is
// byte-stream oriented: LineDecoder accepts arbitrary read() chunks,
// reassembles complete lines, and yields one Frame per line. A line that
// fails to parse yields a Frame carrying the parse error instead of a
// value — the decoder recovers at the next newline, so one malformed
// request never poisons the connection.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "jsonlite/json.hpp"

namespace chpo::json {

/// Serialize `value` as a single wire frame (compact JSON + '\n').
/// Compact serialization never emits raw newlines, so the frame boundary
/// is unambiguous.
std::string encode_frame(const Value& value);

/// One decoded line. Exactly one of {value, error} is meaningful:
/// ok() == true  -> value holds the parsed document;
/// ok() == false -> error holds the parse failure message and `raw`
///                  the offending line (for diagnostics / error replies).
/// `fatal` marks a protocol violation the connection cannot recover from
/// (an oversized line): the peer should be sent the error and dropped.
struct Frame {
  Value value;
  std::string error;
  std::string raw;
  bool fatal = false;
  bool ok() const { return error.empty(); }
};

/// Incremental NDJSON line decoder. feed() bytes as they arrive; next()
/// pops completed frames in arrival order. Blank lines are skipped.
///
/// Input is bounded: a line longer than max_line_bytes() yields one fatal
/// error frame the moment the limit is crossed — the decoder never
/// buffers more than the limit, so a client streaming an endless line
/// cannot grow the buffer without bound. The remainder of the oversized
/// line is discarded up to its newline; the owner is expected to fail
/// the connection on the fatal frame regardless.
class LineDecoder {
 public:
  /// Default cap on one line's bytes (1 MiB).
  static constexpr std::size_t kDefaultMaxLineBytes = 1u << 20;

  /// Append a chunk of raw bytes from the stream.
  void feed(std::string_view bytes);

  /// Next complete frame, or nullopt when no full line is buffered yet.
  std::optional<Frame> next();

  /// Bytes of the current (incomplete) trailing line.
  std::size_t pending_bytes() const { return partial_.size(); }

  /// Cap one line's length; crossing it is a fatal protocol error.
  void set_max_line_bytes(std::size_t bytes) { max_line_bytes_ = bytes; }
  std::size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  /// Emit the fatal oversized-line frame and enter discard mode.
  void oversized();

  std::string partial_;
  std::deque<Frame> ready_;
  std::size_t max_line_bytes_ = kDefaultMaxLineBytes;
  /// An oversized line already produced its fatal frame; swallow its
  /// remaining bytes until the next newline.
  bool discarding_ = false;
};

}  // namespace chpo::json
