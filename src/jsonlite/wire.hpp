// Newline-delimited JSON framing for the service daemon wire protocol.
//
// One frame = one JSON document followed by '\n'. The framing is
// byte-stream oriented: LineDecoder accepts arbitrary read() chunks,
// reassembles complete lines, and yields one Frame per line. A line that
// fails to parse yields a Frame carrying the parse error instead of a
// value — the decoder recovers at the next newline, so one malformed
// request never poisons the connection.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "jsonlite/json.hpp"

namespace chpo::json {

/// Serialize `value` as a single wire frame (compact JSON + '\n').
/// Compact serialization never emits raw newlines, so the frame boundary
/// is unambiguous.
std::string encode_frame(const Value& value);

/// One decoded line. Exactly one of {value, error} is meaningful:
/// ok() == true  -> value holds the parsed document;
/// ok() == false -> error holds the parse failure message and `raw`
///                  the offending line (for diagnostics / error replies).
struct Frame {
  Value value;
  std::string error;
  std::string raw;
  bool ok() const { return error.empty(); }
};

/// Incremental NDJSON line decoder. feed() bytes as they arrive; next()
/// pops completed frames in arrival order. Blank lines are skipped.
class LineDecoder {
 public:
  /// Append a chunk of raw bytes from the stream.
  void feed(std::string_view bytes);

  /// Next complete frame, or nullopt when no full line is buffered yet.
  std::optional<Frame> next();

  /// Bytes of the current (incomplete) trailing line.
  std::size_t pending_bytes() const { return partial_.size(); }

 private:
  std::string partial_;
  std::deque<Frame> ready_;
};

}  // namespace chpo::json
