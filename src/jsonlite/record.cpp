#include "jsonlite/record.hpp"

#include <array>
#include <fstream>
#include <sstream>

namespace chpo::json {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    table[n] = c;
  }
  return table;
}

std::string crc_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string encode_record(const Value& value) {
  const std::string payload = serialize(value);
  std::string out = crc_hex(crc32(payload));
  out.push_back(' ');
  out += payload;
  out.push_back('\n');
  return out;
}

RecordDecode decode_record(std::string_view line) {
  RecordDecode decode;
  if (line.size() < 10 || line[8] != ' ') {
    decode.error = "malformed record frame (want '<crc32 hex> <json>')";
    return decode;
  }
  std::uint32_t want = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const char c = line[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9')
      digit = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    else {
      decode.error = "malformed record frame (bad crc digit)";
      return decode;
    }
    want = (want << 4) | digit;
  }
  const std::string_view payload = line.substr(9);
  if (crc32(payload) != want) {
    decode.error = "crc mismatch (torn or corrupted record)";
    return decode;
  }
  try {
    decode.value = parse(payload);
  } catch (const JsonError& e) {
    decode.error = std::string("crc ok but payload unparseable: ") + e.what();
  }
  return decode;
}

RecordReplay read_records(const std::string& path) {
  RecordReplay replay;
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return replay;  // absent = empty log
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string bytes = buffer.str();

  std::size_t pos = 0;
  while (pos < bytes.size()) {
    std::size_t nl = bytes.find('\n', pos);
    const bool last_unterminated = nl == std::string::npos;
    if (last_unterminated) nl = bytes.size();
    const std::string_view line(bytes.data() + pos, nl - pos);
    if (line.empty()) {  // blank line: tolerate, skip
      pos = nl + 1;
      continue;
    }
    RecordDecode decode = decode_record(line);
    if (!decode.ok()) {
      replay.torn_bytes = bytes.size() - pos;
      replay.torn_error = decode.error;
      return replay;
    }
    replay.records.push_back(std::move(decode.value));
    if (last_unterminated) break;
    pos = nl + 1;
  }
  return replay;
}

}  // namespace chpo::json
