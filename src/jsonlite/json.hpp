// Minimal JSON value model, parser and serializer.
//
// The paper's HPO application is driven by a JSON search-space file
// (Listing 1). This module provides the subset we need — full RFC 8259
// syntax minus \u surrogate pairs beyond the BMP — with precise error
// positions, preserved object key order (so grid enumeration is stable),
// and an integer/double distinction (epochs and batch sizes are ints).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace chpo::json {

class Value;

using Array = std::vector<Value>;
/// Object preserves insertion order; lookup is linear (objects here are tiny).
using Object = std::vector<std::pair<std::string, Value>>;

enum class Type { Null, Bool, Int, Double, String, Array, Object };

/// Thrown on parse errors and type mismatches.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Value {
 public:
  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(int i) : type_(Type::Int), int_(i) {}
  Value(std::int64_t i) : type_(Type::Int), int_(i) {}
  Value(double d) : type_(Type::Double), double_(d) {}
  Value(const char* s) : type_(Type::String), string_(s) {}
  Value(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Value(Array a) : type_(Type::Array), array_(std::move(a)) {}
  Value(Object o) : type_(Type::Object), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_int() const { return type_ == Type::Int; }
  bool is_double() const { return type_ == Type::Double; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Checked accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Numeric coercion: Int or Double both convert.
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member access; throws if not an object or key absent.
  const Value& at(std::string_view key) const;
  /// nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Insert or overwrite an object member (creates an Object from Null).
  void set(std::string key, Value v);

  /// Array element access; throws if not an array or out of range.
  const Value& at(std::size_t index) const;

  std::size_t size() const;

  bool operator==(const Value& other) const;

 private:
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
Value parse(std::string_view text);

/// Parse the contents of a file; JsonError carries the path on failure.
Value parse_file(const std::string& path);

/// Compact serialization.
std::string serialize(const Value& value);

/// Pretty serialization with two-space indent.
std::string serialize_pretty(const Value& value);

}  // namespace chpo::json
