#include "jsonlite/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace chpo::json {

namespace {

[[noreturn]] void type_error(const char* expected, Type got) {
  static constexpr const char* names[] = {"null", "bool", "int", "double", "string", "array", "object"};
  throw JsonError(std::string("json: expected ") + expected + ", got " + names[static_cast<int>(got)]);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

std::int64_t Value::as_int() const {
  if (type_ != Type::Int) type_error("int", type_);
  return int_;
}

double Value::as_double() const {
  if (type_ == Type::Int) return static_cast<double>(int_);
  if (type_ != Type::Double) type_error("number", type_);
  return double_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

const Array& Value::as_array() const {
  if (type_ != Type::Array) type_error("array", type_);
  return array_;
}

Array& Value::as_array() {
  if (type_ != Type::Array) type_error("array", type_);
  return array_;
}

const Object& Value::as_object() const {
  if (type_ != Type::Object) type_error("object", type_);
  return object_;
}

Object& Value::as_object() {
  if (type_ != Type::Object) type_error("object", type_);
  return object_;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (!v) throw JsonError("json: missing key '" + std::string(key) + "'");
  return *v;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

void Value::set(std::string key, Value v) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) type_error("object", type_);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

const Value& Value::at(std::size_t index) const {
  if (type_ != Type::Array) type_error("array", type_);
  if (index >= array_.size()) throw JsonError("json: index out of range");
  return array_[index];
}

std::size_t Value::size() const {
  switch (type_) {
    case Type::Array: return array_.size();
    case Type::Object: return object_.size();
    case Type::String: return string_.size();
    default: return 0;
  }
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) {
    // Allow 3 == 3.0 comparisons across Int/Double.
    if (is_number() && other.is_number()) return as_double() == other.as_double();
    return false;
  }
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Int: return int_ == other.int_;
    case Type::Double: return double_ == other.double_;
    case Type::String: return string_ == other.string_;
    case Type::Array: return array_ == other.array_;
    case Type::Object: return object_ == other.object_;
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("json parse error at line " + std::to_string(line) + ", column " +
                    std::to_string(col) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_whitespace();
    if (peek() == '}') {
      take();
      return Value(std::move(obj));
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected string key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char next = take();
      if (next == '}') break;
      if (next != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_whitespace();
    if (peek() == ']') {
      take();
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char next = take();
      if (next == ']') break;
      if (next != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else
                fail("invalid hex digit in \\u escape");
            }
            // UTF-8 encode BMP code point (surrogate pairs unsupported).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool has_digits = false;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      has_digits = true;
    }
    if (!has_digits) fail("invalid number");
    bool is_integer = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integer = false;
      ++pos_;
      bool frac = false;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        frac = true;
      }
      if (!frac) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      bool exp = false;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp = true;
      }
      if (!exp) fail("digits required in exponent");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (is_integer) {
      std::int64_t iv = 0;
      const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), iv);
      if (ec == std::errc() && ptr == token.data() + token.size()) return Value(iv);
      // Fall through to double on overflow.
    }
    double dv = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), dv);
    if (ec != std::errc() || ptr != token.data() + token.size()) fail("invalid number");
    return Value(dv);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void escape_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; emit null like common serializers.
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void serialize_impl(const Value& v, std::string& out, int indent, int depth) {
  const auto newline_indent = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Type::Int: out += std::to_string(v.as_int()); break;
    case Type::Double: append_number(v.as_double(), out); break;
    case Type::String: escape_string(v.as_string(), out); break;
    case Type::Array: {
      const Array& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out.push_back(',');
        newline_indent(depth + 1);
        serialize_impl(arr[i], out, indent, depth + 1);
      }
      newline_indent(depth);
      out.push_back(']');
      break;
    }
    case Type::Object: {
      const Object& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, member] : obj) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(depth + 1);
        escape_string(k, out);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        serialize_impl(member, out, indent, depth + 1);
      }
      newline_indent(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("json: cannot open file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return parse(ss.str());
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

std::string serialize(const Value& value) {
  std::string out;
  serialize_impl(value, out, /*indent=*/-1, 0);
  return out;
}

std::string serialize_pretty(const Value& value) {
  std::string out;
  serialize_impl(value, out, /*indent=*/2, 0);
  return out;
}

}  // namespace chpo::json
