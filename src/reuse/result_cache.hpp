// ResultCache — content-addressed store for stage outputs.
//
// Two tiers: an in-memory LRU map (hot snapshots flowing between stages of
// one run) and an optional on-disk store under ReusePolicy::cache_dir
// (survives the process; what warm reruns and rung promotions hit).
// Entries are immutable once written — keys are content hashes, so any
// writer for a key computes the same value and puts are first-write-wins:
// a duplicate put (speculative attempt, retry, racing unmerged twins) is
// counted and dropped, never overwrites (the no-double-commit rule in
// DESIGN.md).
//
// All methods are thread-safe; snapshot values are returned as
// shared_ptr<const ...> so task bodies keep them alive across eviction.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/trainer.hpp"
#include "reuse/policy.hpp"
#include "reuse/stage_key.hpp"
#include "support/thread_annotations.hpp"

namespace chpo::reuse {

struct CacheStats {
  std::size_t hits = 0;        ///< get_* served (memory or disk)
  std::size_t misses = 0;      ///< get_* came up empty
  std::size_t disk_hits = 0;   ///< subset of hits loaded from disk
  std::size_t puts = 0;        ///< entries committed
  std::size_t duplicate_puts = 0;  ///< dropped first-write-wins re-puts
  std::size_t evictions = 0;   ///< in-memory LRU evictions
  std::size_t corrupt = 0;     ///< unreadable disk entries dropped
  std::size_t memory_bytes = 0;
  std::size_t disk_bytes = 0;
  std::size_t bytes_written = 0;  ///< total bytes persisted to disk
};

class ResultCache {
 public:
  /// Scans policy.cache_dir (creating it if needed) so pre-existing
  /// entries are immediately visible. Unreadable directories degrade to
  /// in-memory-only with a warning.
  explicit ResultCache(ReusePolicy policy);

  /// Snapshot lookup; counts a hit or miss.
  std::shared_ptr<const ml::TrainSnapshot> get_snapshot(const StageKey& key);
  /// Like get_snapshot but silent — for speculative descending probes that
  /// would otherwise inflate the miss counter.
  std::shared_ptr<const ml::TrainSnapshot> probe_snapshot(const StageKey& key);
  /// First-write-wins; returns false (and counts duplicate_puts) when the
  /// key already exists.
  bool put_snapshot(const StageKey& key, std::shared_ptr<const ml::TrainSnapshot> snap);

  /// Result lookup/commit; same counting and write-once semantics.
  std::optional<ml::TrainResult> get_result(const StageKey& key);
  std::optional<ml::TrainResult> probe_result(const StageKey& key);
  bool put_result(const StageKey& key, const ml::TrainResult& result);

  CacheStats stats() const;
  const ReusePolicy& policy() const { return policy_; }

 private:
  struct Entry {
    std::shared_ptr<const ml::TrainSnapshot> snapshot;  ///< one of the two is set
    std::optional<ml::TrainResult> result;
    std::size_t bytes = 0;
    std::uint64_t tick = 0;
  };

  // Locked helpers — the CHPO_REQUIRES contracts make "caller must hold
  // mutex_" a compile-time rule under clang's -Wthread-safety.
  Entry* lookup_memory(const StageKey& key) CHPO_REQUIRES(mutex_);
  void insert_memory(const StageKey& key, Entry entry) CHPO_REQUIRES(mutex_);
  void evict_to_budget() CHPO_REQUIRES(mutex_);
  std::string snapshot_path(const StageKey& key) const;
  std::string result_path(const StageKey& key) const;
  std::shared_ptr<const ml::TrainSnapshot> load_snapshot_from_disk(const StageKey& key)
      CHPO_REQUIRES(mutex_);
  std::optional<ml::TrainResult> load_result_from_disk(const StageKey& key)
      CHPO_REQUIRES(mutex_);
  void persist(const std::string& path, const std::string& bytes) CHPO_REQUIRES(mutex_);
  void drop_corrupt(const std::string& path, const char* what) CHPO_REQUIRES(mutex_);
  void note_disk_file(const std::string& path, std::size_t bytes) CHPO_REQUIRES(mutex_);
  void evict_disk_to_budget() CHPO_REQUIRES(mutex_);

  ReusePolicy policy_;
  /// Written once in the constructor (pre-sharing), read under mutex_.
  bool disk_ok_ = false;
  mutable Mutex mutex_{lockdep::kResultCache};
  std::unordered_map<StageKey, Entry, StageKeyHash> memory_ CHPO_GUARDED_BY(mutex_);
  /// On-disk files in write order (oldest first) for disk-side eviction.
  std::vector<std::pair<std::string, std::size_t>> disk_files_ CHPO_GUARDED_BY(mutex_);
  std::uint64_t tick_ CHPO_GUARDED_BY(mutex_) = 0;
  CacheStats stats_ CHPO_GUARDED_BY(mutex_);
};

}  // namespace chpo::reuse
