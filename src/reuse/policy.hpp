// ReusePolicy — the opt-in knobs for the cross-trial reuse subsystem.
//
// Off by default: HpoDriver behaves exactly as before unless `enabled` is
// set. With reuse on, trial batches are decomposed into content-hashed
// stages (DESIGN.md "Cross-trial reuse"): trials sharing a training prefix
// execute it once, and stage outputs land in a ResultCache so later runs
// (or hyperband promotions) resume instead of retraining.
#pragma once

#include <cstddef>
#include <string>

namespace chpo::reuse {

struct ReusePolicy {
  /// Master switch; everything below is ignored when false.
  bool enabled = false;

  /// Merge trials that share a stage-chain prefix into one chain (stage-tree
  /// planning). false = every trial gets its own chain — still cached, but
  /// no cross-trial sharing (the baseline `bench_reuse` compares against).
  bool merge = true;

  /// Derive each trial's training seed from the content hash of the config
  /// fields that affect training (instead of the driver's per-trial-index
  /// seed). Required for trials differing only in `num_epochs` to share a
  /// prefix; costs seed diversity across identical configs.
  bool deterministic_seeds = true;

  /// Directory for the persistent store. Empty = in-memory cache only.
  std::string cache_dir;

  /// LRU budget for in-memory entries.
  std::size_t max_memory_bytes = 256ull << 20;

  /// LRU budget for the on-disk store (only with a cache_dir).
  std::size_t max_disk_bytes = 1ull << 30;

  /// Persist interior epoch-boundary snapshots, not just final results.
  /// Snapshots are what warm rung promotions / refined grids resume from;
  /// turning this off keeps only the (small) per-trial result JSONs.
  bool persist_snapshots = true;
};

}  // namespace chpo::reuse
