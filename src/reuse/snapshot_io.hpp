// Serialization for cache entries.
//
// TrainSnapshots travel as a compact binary blob (tensors dominate; JSON
// would 5x the size); TrainResults as JSON, shared with the HPO checkpoint
// format. Deserialization is strictly bounds-checked: a truncated or
// corrupt blob throws, and ResultCache turns that into a warned cache miss
// — never a crash (ISSUE 3 robustness satellite).
#pragma once

#include <string>

#include "jsonlite/json.hpp"
#include "ml/trainer.hpp"

namespace chpo::reuse {

/// Binary encode/decode of a complete TrainSnapshot. deserialize_snapshot
/// throws std::runtime_error on truncation, bad magic, or trailing bytes.
std::string serialize_snapshot(const ml::TrainSnapshot& snap);
ml::TrainSnapshot deserialize_snapshot(const std::string& bytes);

/// JSON encode/decode of a TrainResult (the hpo checkpoint uses the same
/// representation). train_result_from_json throws json::JsonError on
/// missing/mistyped fields.
json::Value train_result_to_json(const ml::TrainResult& result);
ml::TrainResult train_result_from_json(const json::Value& value);

/// Rough in-memory footprint of a snapshot (for the cache's LRU budget).
std::size_t snapshot_bytes(const ml::TrainSnapshot& snap);

}  // namespace chpo::reuse
