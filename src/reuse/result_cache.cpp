#include "reuse/result_cache.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "jsonlite/json.hpp"
#include "reuse/snapshot_io.hpp"
#include "support/log.hpp"

namespace fs = std::filesystem;

namespace chpo::reuse {

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buf).str();
}

}  // namespace

ResultCache::ResultCache(ReusePolicy policy) : policy_(std::move(policy)) {
  if (policy_.cache_dir.empty()) return;
  std::error_code ec;
  fs::create_directories(policy_.cache_dir, ec);
  if (ec) {
    log_warn("reuse", "cache dir {} unusable ({}); falling back to in-memory cache",
             policy_.cache_dir, ec.message());
    return;
  }
  disk_ok_ = true;
  // Pre-existing entries, oldest first, so eviction drops stale ones.
  std::vector<std::pair<fs::file_time_type, std::pair<std::string, std::size_t>>> found;
  for (const auto& entry : fs::directory_iterator(policy_.cache_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".snap" && ext != ".json") continue;
    found.push_back({entry.last_write_time(ec),
                     {entry.path().string(), static_cast<std::size_t>(entry.file_size(ec))}});
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [time, file] : found) {
    stats_.disk_bytes += file.second;
    disk_files_.push_back(std::move(file));
  }
}

// ------------------------------------------------------------ in-memory

ResultCache::Entry* ResultCache::lookup_memory(const StageKey& key) {
  const auto it = memory_.find(key);
  if (it == memory_.end()) return nullptr;
  it->second.tick = ++tick_;
  return &it->second;
}

void ResultCache::insert_memory(const StageKey& key, Entry entry) {
  entry.tick = ++tick_;
  stats_.memory_bytes += entry.bytes;
  memory_.emplace(key, std::move(entry));
  evict_to_budget();
}

void ResultCache::evict_to_budget() {
  while (stats_.memory_bytes > policy_.max_memory_bytes && memory_.size() > 1) {
    auto lru = memory_.begin();
    for (auto it = memory_.begin(); it != memory_.end(); ++it)
      if (it->second.tick < lru->second.tick) lru = it;
    stats_.memory_bytes -= lru->second.bytes;
    ++stats_.evictions;
    memory_.erase(lru);
  }
}

// ----------------------------------------------------------------- disk

std::string ResultCache::snapshot_path(const StageKey& key) const {
  return (fs::path(policy_.cache_dir) / (key.hex() + ".snap")).string();
}

std::string ResultCache::result_path(const StageKey& key) const {
  return (fs::path(policy_.cache_dir) / (key.hex() + ".result.json")).string();
}

void ResultCache::drop_corrupt(const std::string& path, const char* what) {
  ++stats_.corrupt;
  log_warn("reuse", "corrupt cache entry {} ({}); dropping and recomputing", path, what);
  std::error_code ec;
  fs::remove(path, ec);
  const auto it = std::find_if(disk_files_.begin(), disk_files_.end(),
                               [&](const auto& f) { return f.first == path; });
  if (it != disk_files_.end()) {
    stats_.disk_bytes -= std::min(stats_.disk_bytes, it->second);
    disk_files_.erase(it);
  }
}

std::shared_ptr<const ml::TrainSnapshot> ResultCache::load_snapshot_from_disk(const StageKey& key) {
  if (!disk_ok_) return nullptr;
  const std::string path = snapshot_path(key);
  const std::optional<std::string> bytes = read_file(path);
  if (!bytes) return nullptr;
  try {
    return std::make_shared<const ml::TrainSnapshot>(deserialize_snapshot(*bytes));
  } catch (const std::exception& e) {
    drop_corrupt(path, e.what());
    return nullptr;
  }
}

std::optional<ml::TrainResult> ResultCache::load_result_from_disk(const StageKey& key) {
  if (!disk_ok_) return std::nullopt;
  const std::string path = result_path(key);
  const std::optional<std::string> bytes = read_file(path);
  if (!bytes) return std::nullopt;
  try {
    return train_result_from_json(json::parse(*bytes));
  } catch (const std::exception& e) {
    drop_corrupt(path, e.what());
    return std::nullopt;
  }
}

void ResultCache::persist(const std::string& path, const std::string& bytes) {
  if (!disk_ok_) return;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      log_warn("reuse", "cannot write cache entry {}", tmp);
      return;
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      log_warn("reuse", "short write for cache entry {}", tmp);
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    log_warn("reuse", "cannot commit cache entry {} ({})", path, ec.message());
    fs::remove(tmp, ec);
    return;
  }
  stats_.bytes_written += bytes.size();
  note_disk_file(path, bytes.size());
}

void ResultCache::note_disk_file(const std::string& path, std::size_t bytes) {
  stats_.disk_bytes += bytes;
  disk_files_.push_back({path, bytes});
  evict_disk_to_budget();
}

void ResultCache::evict_disk_to_budget() {
  while (stats_.disk_bytes > policy_.max_disk_bytes && disk_files_.size() > 1) {
    const auto [path, bytes] = disk_files_.front();
    disk_files_.erase(disk_files_.begin());
    std::error_code ec;
    fs::remove(path, ec);
    stats_.disk_bytes -= std::min(stats_.disk_bytes, bytes);
    ++stats_.evictions;
  }
}

// ------------------------------------------------------------ snapshots

std::shared_ptr<const ml::TrainSnapshot> ResultCache::get_snapshot(const StageKey& key) {
  const MutexLock lock(mutex_);
  if (Entry* e = lookup_memory(key); e && e->snapshot) {
    ++stats_.hits;
    return e->snapshot;
  }
  if (auto snap = load_snapshot_from_disk(key)) {
    ++stats_.hits;
    ++stats_.disk_hits;
    insert_memory(key, Entry{snap, std::nullopt, snapshot_bytes(*snap), 0});
    return snap;
  }
  ++stats_.misses;
  return nullptr;
}

std::shared_ptr<const ml::TrainSnapshot> ResultCache::probe_snapshot(const StageKey& key) {
  const MutexLock lock(mutex_);
  if (Entry* e = lookup_memory(key); e && e->snapshot) return e->snapshot;
  if (auto snap = load_snapshot_from_disk(key)) {
    insert_memory(key, Entry{snap, std::nullopt, snapshot_bytes(*snap), 0});
    return snap;
  }
  return nullptr;
}

bool ResultCache::put_snapshot(const StageKey& key, std::shared_ptr<const ml::TrainSnapshot> snap) {
  const MutexLock lock(mutex_);
  if (memory_.contains(key)) {
    ++stats_.duplicate_puts;
    return false;
  }
  ++stats_.puts;
  const std::size_t bytes = snapshot_bytes(*snap);
  if (disk_ok_ && policy_.persist_snapshots) {
    const std::string path = snapshot_path(key);
    std::error_code ec;
    if (fs::exists(path, ec))
      ++stats_.duplicate_puts;  // an earlier process already committed it
    else
      persist(path, serialize_snapshot(*snap));
  }
  insert_memory(key, Entry{std::move(snap), std::nullopt, bytes, 0});
  return true;
}

// -------------------------------------------------------------- results

std::optional<ml::TrainResult> ResultCache::get_result(const StageKey& key) {
  const MutexLock lock(mutex_);
  if (Entry* e = lookup_memory(key); e && e->result) {
    ++stats_.hits;
    return e->result;
  }
  if (auto result = load_result_from_disk(key)) {
    ++stats_.hits;
    ++stats_.disk_hits;
    insert_memory(key, Entry{nullptr, result, sizeof(ml::TrainResult) + result->history.size() * sizeof(ml::EpochStats), 0});
    return result;
  }
  ++stats_.misses;
  return std::nullopt;
}

std::optional<ml::TrainResult> ResultCache::probe_result(const StageKey& key) {
  const MutexLock lock(mutex_);
  if (Entry* e = lookup_memory(key); e && e->result) return e->result;
  if (auto result = load_result_from_disk(key)) {
    insert_memory(key, Entry{nullptr, result, sizeof(ml::TrainResult) + result->history.size() * sizeof(ml::EpochStats), 0});
    return result;
  }
  return std::nullopt;
}

bool ResultCache::put_result(const StageKey& key, const ml::TrainResult& result) {
  const MutexLock lock(mutex_);
  if (const auto it = memory_.find(key); it != memory_.end() && it->second.result) {
    ++stats_.duplicate_puts;
    return false;
  }
  ++stats_.puts;
  if (disk_ok_) {
    const std::string path = result_path(key);
    std::error_code ec;
    if (fs::exists(path, ec))
      ++stats_.duplicate_puts;
    else
      persist(path, json::serialize(train_result_to_json(result)));
  }
  insert_memory(key, Entry{nullptr, result,
                           sizeof(ml::TrainResult) + result.history.size() * sizeof(ml::EpochStats),
                           0});
  return true;
}

CacheStats ResultCache::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

}  // namespace chpo::reuse
