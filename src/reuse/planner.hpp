// Stage-tree planner and executor.
//
// Input: a batch of pending trials (index + fully resolved TrainConfig).
// plan_chains groups them by chain key — trials that are the same training
// trajectory up to their epoch budget — and splits each chain at the sorted
// distinct budgets, yielding a prefix tree whose interior nodes are
// train-to-epoch-k segments:
//
//   dataset ── chain A ── (0,20] ── (20,50] ── (50,100]
//                         └ trial 3   └ trial 7    └ trial 12
//
// StageExecutor lowers the tree onto the existing Runtime: one `stage`
// task per segment (each consuming its parent's snapshot future, so the
// runtime's dependency tracking orders them), plus one tiny `finalize`
// task per trial that converts the boundary snapshot into the trial's
// TrainResult. Shared segments run once (StageShared trace event); every
// stage consults the ResultCache first (CacheHit/CacheMiss events), and
// trials whose final result is already cached are replayed without
// submitting anything.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"
#include "ml/trainer.hpp"
#include "reuse/policy.hpp"
#include "reuse/result_cache.hpp"
#include "reuse/stage_key.hpp"
#include "runtime/study_session.hpp"

namespace chpo::reuse {

/// One pending trial: the driver's trial index plus the exact TrainConfig
/// the trial would run with (budget in config.num_epochs).
struct TrialRequest {
  int index = -1;
  ml::TrainConfig config;
};

/// A train-to-epoch segment of a chain: runs (begin_epoch, end_epoch].
struct PlannedSegment {
  int begin_epoch = 0;
  int end_epoch = 0;
  /// Trials whose budget ends exactly at end_epoch.
  std::vector<int> finalize_trials;
  /// Trials whose chain passes through this segment (>=1; >1 means shared).
  std::size_t shared_by = 1;
};

/// All trials sharing one training trajectory, split at their budgets.
struct PlannedChain {
  StageKey key;
  ml::TrainConfig config;  ///< num_epochs == max budget in the chain
  std::vector<PlannedSegment> segments;
  std::vector<TrialRequest> trials;
};

/// Build the stage tree. merge=false plans one chain per trial (no
/// sharing; the unmerged baseline). Pure function of its inputs — tested
/// directly, independent of any runtime.
std::vector<PlannedChain> plan_chains(const StageKey& dataset, std::vector<TrialRequest> trials,
                                      bool merge);

/// What StageExecutor::submit hands back per trial: either a future that
/// yields ml::TrainResult, or an already-cached result (no task submitted).
struct SubmittedTrial {
  int index = -1;
  rt::Future future;  ///< producer == rt::kNoTask when replayed
  std::optional<ml::TrainResult> replayed;
};

/// Aggregate reuse accounting surfaced in the HPO report / chpo_run.
struct ReuseReport {
  CacheStats cache;
  std::size_t trials = 0;
  std::size_t replayed_trials = 0;  ///< served entirely from the result cache
  std::size_t chains = 0;
  std::size_t stages = 0;          ///< segment tasks submitted
  std::size_t shared_stages = 0;   ///< segments serving >1 trial
  long naive_epochs = 0;    ///< sum of trial budgets (no reuse)
  long planned_epochs = 0;  ///< sum of submitted segment lengths
};

/// Lowers planned chains onto a StudySession (stage and finalize tasks
/// carry the session's study tag, so cancelling a study unwinds its stage
/// trees and nobody else's). One executor may serve many submit() rounds
/// (hyperband submits rung after rung against the same cache, which is how
/// promotions resume from rung checkpoints).
class StageExecutor {
 public:
  /// `dataset` must outlive the session's Runtime (same contract as
  /// HpoDriver). `workload` prices segment tasks for the simulation
  /// backend.
  StageExecutor(rt::StudySession session, const ml::Dataset& dataset, ReusePolicy policy,
                rt::Constraint constraint, std::optional<ml::WorkloadModel> workload,
                std::shared_ptr<ResultCache> cache);

  /// Plan + submit a batch. Order of the returned vector matches `trials`.
  std::vector<SubmittedTrial> submit(const std::vector<TrialRequest>& trials);

  /// Futures of every stage task submitted so far (for cancellation on
  /// whole-HPO early stop; finalize futures are returned per trial).
  const std::vector<rt::Future>& stage_futures() const { return stage_futures_; }

  ReuseReport report() const;
  const std::shared_ptr<ResultCache>& cache() const { return cache_; }

 private:
  rt::StudySession session_;
  const ml::Dataset* dataset_;
  ReusePolicy policy_;
  rt::Constraint constraint_;
  std::optional<ml::WorkloadModel> workload_;
  std::shared_ptr<ResultCache> cache_;
  StageKey dataset_key_;
  std::vector<rt::Future> stage_futures_;
  ReuseReport tally_;
};

}  // namespace chpo::reuse
