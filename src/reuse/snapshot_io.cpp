#include "reuse/snapshot_io.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace chpo::reuse {

namespace {

constexpr std::uint64_t kMagic = 0x43485053'4e415031ULL;  // "CHPSNAP1"

// ------------------------------------------------------------- writer

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }

void put_f64(std::string& out, double d) { put_u64(out, std::bit_cast<std::uint64_t>(d)); }

void put_u8(std::string& out, bool b) { out.push_back(b ? '\1' : '\0'); }

void put_tensor(std::string& out, const ml::Tensor& t) {
  put_u64(out, t.shape().size());
  for (const std::size_t d : t.shape()) put_u64(out, d);
  const std::size_t bytes = t.size() * sizeof(float);
  out.append(reinterpret_cast<const char*>(t.data()), bytes);
}

void put_tensors(std::string& out, const std::vector<ml::Tensor>& ts) {
  put_u64(out, ts.size());
  for (const ml::Tensor& t : ts) put_tensor(out, t);
}

void put_result(std::string& out, const ml::TrainResult& r) {
  put_u64(out, r.history.size());
  for (const ml::EpochStats& e : r.history) {
    put_i64(out, e.epoch);
    put_f64(out, e.train_loss);
    put_f64(out, e.train_accuracy);
    put_f64(out, e.val_accuracy);
  }
  put_f64(out, r.final_val_accuracy);
  put_f64(out, r.best_val_accuracy);
  put_i64(out, r.epochs_run);
  put_u8(out, r.stopped_early);
}

// ------------------------------------------------------------- reader

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool u8() {
    need(1);
    return bytes_[pos_++] != '\0';
  }

  /// Bounded count: guards against a corrupt length word asking for more
  /// elements than the remaining bytes could possibly hold.
  std::size_t count(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    if (min_elem_bytes > 0 && n > (bytes_.size() - pos_) / min_elem_bytes)
      throw std::runtime_error("snapshot: implausible element count");
    return static_cast<std::size_t>(n);
  }

  ml::Tensor tensor() {
    const std::size_t rank = count(8);
    std::vector<std::size_t> shape(rank);
    std::size_t total = 1;
    for (std::size_t i = 0; i < rank; ++i) {
      shape[i] = static_cast<std::size_t>(u64());
      if (shape[i] != 0 && total > bytes_.size() / shape[i])
        throw std::runtime_error("snapshot: implausible tensor shape");
      total *= shape[i];
    }
    need(total * sizeof(float));
    ml::Tensor t(shape);
    std::memcpy(t.data(), bytes_.data() + pos_, total * sizeof(float));
    pos_ += total * sizeof(float);
    return t;
  }

  std::vector<ml::Tensor> tensors() {
    const std::size_t n = count(8);
    std::vector<ml::Tensor> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(tensor());
    return out;
  }

  ml::TrainResult result() {
    ml::TrainResult r;
    const std::size_t n = count(32);
    r.history.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ml::EpochStats e;
      e.epoch = static_cast<int>(i64());
      e.train_loss = f64();
      e.train_accuracy = f64();
      e.val_accuracy = f64();
      r.history.push_back(e);
    }
    r.final_val_accuracy = f64();
    r.best_val_accuracy = f64();
    r.epochs_run = static_cast<int>(i64());
    r.stopped_early = u8();
    return r;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) {
    if (bytes_.size() - pos_ < n) throw std::runtime_error("snapshot: truncated");
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serialize_snapshot(const ml::TrainSnapshot& snap) {
  std::string out;
  out.reserve(snapshot_bytes(snap));
  put_u64(out, kMagic);
  put_i64(out, snap.epochs_done);
  put_u8(out, snap.finished);
  put_f64(out, snap.best);
  put_i64(out, snap.epochs_since_best);
  put_tensors(out, snap.weights);
  put_u64(out, snap.layer_state.size());
  for (const ml::LayerState& ls : snap.layer_state) {
    put_tensors(out, ls.tensors);
    put_u64(out, ls.words.size());
    for (const std::uint64_t w : ls.words) put_u64(out, w);
  }
  put_tensors(out, snap.optimizer.slots);
  put_i64(out, snap.optimizer.steps);
  for (const std::uint64_t w : snap.shuffle_rng.s) put_u64(out, w);
  put_f64(out, snap.shuffle_rng.spare_gaussian);
  put_u8(out, snap.shuffle_rng.has_spare);
  put_u64(out, snap.order.size());
  for (const std::size_t idx : snap.order) put_u64(out, idx);
  put_result(out, snap.partial);
  return out;
}

ml::TrainSnapshot deserialize_snapshot(const std::string& bytes) {
  Reader in(bytes);
  if (in.u64() != kMagic) throw std::runtime_error("snapshot: bad magic");
  ml::TrainSnapshot snap;
  snap.epochs_done = static_cast<int>(in.i64());
  snap.finished = in.u8();
  snap.best = in.f64();
  snap.epochs_since_best = static_cast<int>(in.i64());
  snap.weights = in.tensors();
  const std::size_t layers = in.count(16);
  snap.layer_state.reserve(layers);
  for (std::size_t i = 0; i < layers; ++i) {
    ml::LayerState ls;
    ls.tensors = in.tensors();
    const std::size_t words = in.count(8);
    ls.words.reserve(words);
    for (std::size_t w = 0; w < words; ++w) ls.words.push_back(in.u64());
    snap.layer_state.push_back(std::move(ls));
  }
  snap.optimizer.slots = in.tensors();
  snap.optimizer.steps = static_cast<long>(in.i64());
  for (std::size_t i = 0; i < 4; ++i) snap.shuffle_rng.s[i] = in.u64();
  snap.shuffle_rng.spare_gaussian = in.f64();
  snap.shuffle_rng.has_spare = in.u8();
  const std::size_t order_n = in.count(8);
  snap.order.reserve(order_n);
  for (std::size_t i = 0; i < order_n; ++i) snap.order.push_back(static_cast<std::size_t>(in.u64()));
  snap.partial = in.result();
  if (!in.exhausted()) throw std::runtime_error("snapshot: trailing bytes");
  return snap;
}

json::Value train_result_to_json(const ml::TrainResult& result) {
  json::Value out;
  json::Array history;
  for (const auto& epoch : result.history) {
    json::Value e;
    e.set("epoch", json::Value(static_cast<std::int64_t>(epoch.epoch)));
    e.set("train_loss", json::Value(epoch.train_loss));
    e.set("train_accuracy", json::Value(epoch.train_accuracy));
    e.set("val_accuracy", json::Value(epoch.val_accuracy));
    history.push_back(std::move(e));
  }
  out.set("history", json::Value(std::move(history)));
  out.set("final_val_accuracy", json::Value(result.final_val_accuracy));
  out.set("best_val_accuracy", json::Value(result.best_val_accuracy));
  out.set("epochs_run", json::Value(static_cast<std::int64_t>(result.epochs_run)));
  out.set("stopped_early", json::Value(result.stopped_early));
  return out;
}

ml::TrainResult train_result_from_json(const json::Value& value) {
  ml::TrainResult result;
  for (const auto& e : value.at("history").as_array()) {
    ml::EpochStats stats;
    stats.epoch = static_cast<int>(e.at("epoch").as_int());
    stats.train_loss = e.at("train_loss").as_double();
    stats.train_accuracy = e.at("train_accuracy").as_double();
    stats.val_accuracy = e.at("val_accuracy").as_double();
    result.history.push_back(stats);
  }
  result.final_val_accuracy = value.at("final_val_accuracy").as_double();
  result.best_val_accuracy = value.at("best_val_accuracy").as_double();
  result.epochs_run = static_cast<int>(value.at("epochs_run").as_int());
  result.stopped_early = value.at("stopped_early").as_bool();
  return result;
}

std::size_t snapshot_bytes(const ml::TrainSnapshot& snap) {
  std::size_t bytes = 256;
  for (const ml::Tensor& t : snap.weights) bytes += t.size() * sizeof(float) + 32;
  for (const ml::LayerState& ls : snap.layer_state) {
    for (const ml::Tensor& t : ls.tensors) bytes += t.size() * sizeof(float) + 32;
    bytes += ls.words.size() * 8 + 16;
  }
  for (const ml::Tensor& t : snap.optimizer.slots) bytes += t.size() * sizeof(float) + 32;
  bytes += snap.order.size() * 8 + 8;
  bytes += snap.partial.history.size() * sizeof(ml::EpochStats);
  return bytes;
}

}  // namespace chpo::reuse
