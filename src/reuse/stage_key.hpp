// Content-addressed stage keys.
//
// A trial decomposes into a chain of stages: dataset -> train segments at
// epoch boundaries -> per-budget result. Each stage's key is a canonical
// 128-bit hash of (parent key, the config subset that affects the stage),
// so two trials whose configs agree on every training-relevant field share
// the whole prefix of the chain — the invariant the planner's stage tree
// and the ResultCache are built on.
//
// Canonicalisation rules:
//  * floats hash by bit pattern after promoting to double and folding
//    -0.0 to 0.0 — no formatting, no epsilon;
//  * `threads` never enters a key (training is thread-count invariant:
//    parallel_for splits rows contiguously);
//  * `num_epochs` enters the chain key only for non-constant lr schedules,
//    whose per-epoch multiplier depends on the total epoch count;
//  * the seed that enters the chain key is the seed the trial actually
//    trains with (see ReusePolicy::deterministic_seeds / derive_seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "ml/dataset.hpp"
#include "ml/trainer.hpp"

namespace chpo::reuse {

struct StageKey {
  std::uint64_t hi = 0, lo = 0;
  bool operator==(const StageKey&) const = default;
  /// 32 lowercase hex digits — the on-disk file stem.
  std::string hex() const;
};

struct StageKeyHash {
  std::size_t operator()(const StageKey& k) const noexcept {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental two-lane 64-bit mixer (SplitMix64 finalizer per word).
/// Deterministic across platforms and runs — keys are stable cache
/// identities, never process-local.
class KeyHasher {
 public:
  KeyHasher();
  KeyHasher& add(std::uint64_t word);
  KeyHasher& add(std::int64_t word) { return add(static_cast<std::uint64_t>(word)); }
  KeyHasher& add(const std::string& s);
  /// Canonical float hashing: promote to double, fold -0.0 to 0.0.
  KeyHasher& add_real(double d);
  KeyHasher& add(const StageKey& key) { return add(key.hi).add(key.lo); }
  StageKey digest() const;

 private:
  std::uint64_t a_, b_;
};

/// Content hash of a dataset (shape, labels and pixel data) — the root of
/// every stage chain.
StageKey dataset_key(const ml::Dataset& data);

/// Hash of the TrainConfig fields that shape training dynamics, excluding
/// seed, threads and num_epochs. Two configs with equal hashes train
/// identically epoch-for-epoch (given the same seed and data).
std::uint64_t train_content_hash(const ml::TrainConfig& config);

/// Content-derived seed: same training-relevant fields -> same seed, so
/// epoch-budget variants of a config share their prefix.
std::uint64_t derive_seed(std::uint64_t base_seed, const ml::TrainConfig& config);

/// Key of a trial's full training chain (dataset + every relevant field +
/// the seed it runs with). Trials with equal chain keys are the same
/// training trajectory, differing at most in epoch budget.
StageKey chain_key(const StageKey& dataset, const ml::TrainConfig& config);

/// Key of the epoch-boundary snapshot at `epoch` within a chain.
StageKey snapshot_key(const StageKey& chain, int epoch);

/// Key of the finished TrainResult for an epoch budget within a chain.
StageKey result_key(const StageKey& chain, int epoch_budget);

}  // namespace chpo::reuse
