#include "reuse/stage_key.hpp"

#include <bit>
#include <cstdio>

namespace chpo::reuse {

namespace {

/// SplitMix64 finalizer — strong single-word avalanche.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t canonical_real_bits(double d) {
  if (d == 0.0) d = 0.0;  // fold -0.0
  return std::bit_cast<std::uint64_t>(d);
}

}  // namespace

std::string StageKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

KeyHasher::KeyHasher() : a_(0x6a09e667f3bcc908ULL), b_(0xbb67ae8584caa73bULL) {}

KeyHasher& KeyHasher::add(std::uint64_t word) {
  a_ = mix(a_ ^ word);
  b_ = mix(b_ + word * 0x9e3779b97f4a7c15ULL);
  return *this;
}

KeyHasher& KeyHasher::add(const std::string& s) {
  add(static_cast<std::uint64_t>(s.size()));
  std::uint64_t word = 0;
  int n = 0;
  for (const unsigned char c : s) {
    word = (word << 8) | c;
    if (++n == 8) {
      add(word);
      word = 0;
      n = 0;
    }
  }
  if (n > 0) add(word);
  return *this;
}

KeyHasher& KeyHasher::add_real(double d) { return add(canonical_real_bits(d)); }

StageKey KeyHasher::digest() const { return {mix(a_ ^ b_), mix(b_ ^ (a_ >> 1))}; }

StageKey dataset_key(const ml::Dataset& data) {
  KeyHasher h;
  h.add(std::string("dataset-v1"));
  h.add(data.name);
  h.add(static_cast<std::uint64_t>(data.channels));
  h.add(static_cast<std::uint64_t>(data.height));
  h.add(static_cast<std::uint64_t>(data.width));
  h.add(static_cast<std::uint64_t>(data.classes));
  h.add(static_cast<std::uint64_t>(data.train_size()));
  h.add(static_cast<std::uint64_t>(data.test_size()));
  for (std::size_t i = 0; i < data.train_x.size(); ++i)
    h.add(static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(data.train_x[i])));
  for (const int y : data.train_y) h.add(static_cast<std::uint64_t>(y));
  for (std::size_t i = 0; i < data.test_x.size(); ++i)
    h.add(static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(data.test_x[i])));
  for (const int y : data.test_y) h.add(static_cast<std::uint64_t>(y));
  return h.digest();
}

std::uint64_t train_content_hash(const ml::TrainConfig& config) {
  KeyHasher h;
  h.add(std::string("train-content-v1"));
  h.add(config.optimizer);
  h.add(static_cast<std::uint64_t>(config.batch_size));
  h.add_real(config.learning_rate);
  h.add(config.lr_schedule);
  h.add_real(config.weight_decay);
  h.add(std::uint64_t{config.batch_norm ? 1u : 0u});
  h.add(static_cast<std::uint64_t>(config.hidden_layers));
  h.add(static_cast<std::uint64_t>(config.hidden_units));
  h.add_real(config.dropout);
  return h.digest().lo;
}

std::uint64_t derive_seed(std::uint64_t base_seed, const ml::TrainConfig& config) {
  return mix(base_seed ^ train_content_hash(config));
}

StageKey chain_key(const StageKey& dataset, const ml::TrainConfig& config) {
  KeyHasher h;
  h.add(std::string("chain-v1"));
  h.add(dataset);
  h.add(train_content_hash(config));
  h.add(config.seed);
  h.add_real(config.target_accuracy);
  h.add(static_cast<std::uint64_t>(config.patience));
  // Non-constant schedules scale the lr as multiplier(epoch, num_epochs):
  // the trajectory depends on the total budget, so budgets cannot share.
  if (config.lr_schedule != "constant") h.add(static_cast<std::uint64_t>(config.num_epochs));
  return h.digest();
}

StageKey snapshot_key(const StageKey& chain, int epoch) {
  KeyHasher h;
  h.add(std::string("snap-v1"));
  h.add(chain);
  h.add(static_cast<std::uint64_t>(epoch));
  return h.digest();
}

StageKey result_key(const StageKey& chain, int epoch_budget) {
  KeyHasher h;
  h.add(std::string("result-v1"));
  h.add(chain);
  h.add(static_cast<std::uint64_t>(epoch_budget));
  return h.digest();
}

}  // namespace chpo::reuse
