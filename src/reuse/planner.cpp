#include "reuse/planner.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/log.hpp"

namespace chpo::reuse {

namespace {

/// Chain identity of one trial. With merging off, the key is salted with
/// the trial index so "unmerged" trials never share cache entries — the
/// honest no-reuse baseline bench_reuse compares against.
StageKey effective_chain_key(const StageKey& dataset, const TrialRequest& trial, bool merge) {
  const StageKey key = chain_key(dataset, trial.config);
  if (merge) return key;
  KeyHasher h;
  h.add(std::string("solo"));
  h.add(key);
  h.add(static_cast<std::uint64_t>(trial.index));
  return h.digest();
}

}  // namespace

std::vector<PlannedChain> plan_chains(const StageKey& dataset, std::vector<TrialRequest> trials,
                                      bool merge) {
  std::vector<PlannedChain> chains;
  for (TrialRequest& trial : trials) {
    const StageKey key = effective_chain_key(dataset, trial, merge);
    PlannedChain* chain = nullptr;
    if (merge)
      for (PlannedChain& c : chains)
        if (c.key == key) {
          chain = &c;
          break;
        }
    if (!chain) {
      PlannedChain fresh;
      fresh.key = key;
      fresh.config = trial.config;
      chains.push_back(std::move(fresh));
      chain = &chains.back();
    }
    chain->config.num_epochs = std::max(chain->config.num_epochs, trial.config.num_epochs);
    chain->trials.push_back(std::move(trial));
  }

  for (PlannedChain& chain : chains) {
    std::vector<int> budgets;
    budgets.reserve(chain.trials.size());
    for (const TrialRequest& t : chain.trials) budgets.push_back(t.config.num_epochs);
    std::sort(budgets.begin(), budgets.end());
    budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());

    int prev = 0;
    for (const int budget : budgets) {
      PlannedSegment seg;
      seg.begin_epoch = prev;
      seg.end_epoch = budget;
      seg.shared_by = 0;
      for (const TrialRequest& t : chain.trials) {
        if (t.config.num_epochs == budget) seg.finalize_trials.push_back(t.index);
        if (t.config.num_epochs >= budget) ++seg.shared_by;
      }
      chain.segments.push_back(std::move(seg));
      prev = budget;
    }
  }
  return chains;
}

// -------------------------------------------------------- StageExecutor

StageExecutor::StageExecutor(rt::StudySession session, const ml::Dataset& dataset,
                             ReusePolicy policy, rt::Constraint constraint,
                             std::optional<ml::WorkloadModel> workload,
                             std::shared_ptr<ResultCache> cache)
    : session_(session),
      dataset_(&dataset),
      policy_(std::move(policy)),
      constraint_(constraint),
      workload_(std::move(workload)),
      cache_(std::move(cache)),
      dataset_key_(dataset_key(dataset)) {
  if (!cache_) cache_ = std::make_shared<ResultCache>(policy_);
}

namespace {

/// Value flowing from one stage task to the next: the epoch-boundary
/// snapshot plus accounting of what the stage actually did.
struct StageValue {
  std::shared_ptr<const ml::TrainSnapshot> snapshot;
  bool cache_hit = false;  ///< stage ran zero epochs (everything cached)
  int trained_epochs = 0;
};

rt::TaskDef make_stage_task(const ml::Dataset* dataset, const PlannedChain& chain,
                            const PlannedSegment& seg, std::shared_ptr<ResultCache> cache,
                            rt::Constraint constraint,
                            const std::optional<ml::WorkloadModel>& workload) {
  rt::TaskDef def;
  def.name = "stage";
  def.constraint = constraint;

  const ml::TrainConfig cfg = chain.config;
  const StageKey ckey = chain.key;
  const int begin = seg.begin_epoch;
  const int end = seg.end_epoch;

  def.body = [dataset, cfg, ckey, end, cache](rt::TaskContext& ctx) -> std::any {
    // Whole segment already computed (warm cache or a racing twin)?
    if (auto hit = cache->get_snapshot(snapshot_key(ckey, end)))
      return StageValue{std::move(hit), true, 0};

    // Resume point: the parent segment's snapshot, improved by any deeper
    // interior snapshot a previous run left behind (rung promotions).
    // Root segments have no In param (the implicit return Out is always
    // bound), so look for an actual input rather than counting bindings.
    std::shared_ptr<const ml::TrainSnapshot> base;
    for (std::size_t i = 0; i < ctx.param_count(); ++i)
      if (ctx.binding(i).param.dir == rt::Direction::In) {
        base = ctx.read<StageValue>(i).snapshot;
        break;
      }
    const int base_epochs = base ? base->epochs_done : 0;
    if (!base || !base->finished) {
      for (int e = end - 1; e > base_epochs; --e)
        if (auto s = cache->probe_snapshot(snapshot_key(ckey, e))) {
          base = std::move(s);
          break;
        }
    }

    ml::TrainConfig tc = cfg;
    tc.threads = std::max(1u, ctx.thread_budget());
    ml::TrainerSession session(*dataset, tc);
    if (base) session.restore(*base);
    int trained = 0;
    while (!session.finished() && session.epochs_done() < end) {
      session.step_epoch();
      ++trained;
    }
    auto snap = std::make_shared<const ml::TrainSnapshot>(session.snapshot());
    cache->put_snapshot(snapshot_key(ckey, end), snap);
    return StageValue{std::move(snap), trained == 0, trained};
  };

  if (workload) {
    const ml::WorkloadModel model = *workload;
    const std::string optimizer = cfg.optimizer;
    const int epochs = end - begin;
    const int batch = cfg.batch_size;
    def.cost = [model, optimizer, epochs, batch](const rt::Placement& placement,
                                                 const cluster::NodeSpec& node) {
      return ml::experiment_seconds(model, optimizer, epochs, batch, placement.cpu_count(),
                                    placement.gpu_count(), node);
    };
  }
  return def;
}

rt::TaskDef make_finalize_task(const PlannedChain& chain, int budget,
                               std::shared_ptr<ResultCache> cache) {
  rt::TaskDef def;
  def.name = "finalize";
  const StageKey ckey = chain.key;
  def.body = [ckey, budget, cache](rt::TaskContext& ctx) -> std::any {
    const StageValue& sv = ctx.read<StageValue>(0);
    ml::TrainResult result = sv.snapshot->partial;
    cache->put_result(result_key(ckey, budget), result);
    return result;
  };
  // Near-free on the simulator: it just repackages the boundary snapshot.
  def.cost = [](const rt::Placement&, const cluster::NodeSpec&) { return 1e-3; };
  return def;
}

}  // namespace

std::vector<SubmittedTrial> StageExecutor::submit(const std::vector<TrialRequest>& trials) {
  tally_.trials += trials.size();
  std::unordered_map<int, SubmittedTrial> by_index;

  // Replay trials whose final result is already cached — no tasks at all.
  std::vector<TrialRequest> pending;
  for (const TrialRequest& trial : trials) {
    tally_.naive_epochs += trial.config.num_epochs;
    const StageKey ckey = effective_chain_key(dataset_key_, trial, policy_.merge);
    if (auto result = cache_->get_result(result_key(ckey, trial.config.num_epochs))) {
      SubmittedTrial s;
      s.index = trial.index;
      s.replayed = std::move(result);
      by_index.emplace(trial.index, std::move(s));
      ++tally_.replayed_trials;
      trace::Event e;
      e.kind = trace::EventKind::CacheHit;
      e.task_name = "replay";
      e.t_start = e.t_end = session_.now();
      session_.trace().record(std::move(e));
    } else {
      pending.push_back(trial);
    }
  }

  const std::vector<PlannedChain> chains = plan_chains(dataset_key_, std::move(pending), policy_.merge);
  tally_.chains += chains.size();

  for (const PlannedChain& chain : chains) {
    rt::Future parent;  // producer == kNoTask for the root segment
    for (const PlannedSegment& seg : chain.segments) {
      const rt::TaskDef def =
          make_stage_task(dataset_, chain, seg, cache_, constraint_, workload_);
      std::vector<rt::Param> params;
      if (parent.producer != rt::kNoTask) params.push_back({parent.data, rt::Direction::In});

      rt::StudySession sess = session_;  // sessions are cheap value handles
      const rt::Future stage = session_.submit(
          def, params, [sess](const rt::Future& f, rt::TaskState state) mutable {
            if (state != rt::TaskState::Done) return;
            try {
              const StageValue& v = sess.peek<StageValue>(f.data);
              trace::Event e;
              e.kind = v.cache_hit ? trace::EventKind::CacheHit : trace::EventKind::CacheMiss;
              e.task_id = f.producer;
              e.task_name = "stage";
              e.t_start = e.t_end = sess.now();
              sess.trace().record(std::move(e));
            } catch (const std::bad_any_cast&) {
              // Cost-only simulation: bodies never ran, no StageValue.
            }
          });
      stage_futures_.push_back(stage);
      ++tally_.stages;
      tally_.planned_epochs += seg.end_epoch - seg.begin_epoch;
      if (seg.shared_by > 1) {
        ++tally_.shared_stages;
        trace::Event e;
        e.kind = trace::EventKind::StageShared;
        e.task_id = stage.producer;
        e.task_name = "stage";
        e.t_start = e.t_end = session_.now();
        session_.trace().record(std::move(e));
      }

      for (const int trial_index : seg.finalize_trials) {
        SubmittedTrial s;
        s.index = trial_index;
        s.future = session_.submit(make_finalize_task(chain, seg.end_epoch, cache_),
                                   {{stage.data, rt::Direction::In}});
        by_index.emplace(trial_index, std::move(s));
      }
      parent = stage;
    }
  }

  std::vector<SubmittedTrial> out;
  out.reserve(trials.size());
  for (const TrialRequest& trial : trials) {
    auto it = by_index.find(trial.index);
    if (it == by_index.end()) {
      log_warn("reuse", "trial {} missing from plan; this is a bug", trial.index);
      continue;
    }
    out.push_back(std::move(it->second));
  }
  return out;
}

ReuseReport StageExecutor::report() const {
  ReuseReport report = tally_;
  report.cache = cache_->stats();
  return report;
}

}  // namespace chpo::reuse
