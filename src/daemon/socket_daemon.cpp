#include "daemon/socket_daemon.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <utility>

#include "jsonlite/wire.hpp"
#include "support/log.hpp"

namespace chpo::daemon {
namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Per-connection state, owned exclusively by the I/O thread.
struct Conn {
  ClientId client = 0;
  json::LineDecoder decoder;
  std::string outbox;
  /// A fatal protocol violation (oversized line) was sent to the client;
  /// stop reading and close once the error reply has flushed.
  bool failing = false;
};

}  // namespace

SocketDaemon::SocketDaemon(SocketDaemonOptions options, Server& server)
    : options_(std::move(options)), server_(server) {}

SocketDaemon::~SocketDaemon() {
  if (io_thread_.joinable()) {
    stop_.store(true, std::memory_order_release);
    poke();
    io_thread_.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

bool SocketDaemon::setup_socket() {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    log_warn("daemon", "pipe() failed: {}", std::strerror(errno));
    return false;
  }
  wake_read_ = pipefd[0];
  wake_write_ = pipefd[1];
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    log_warn("daemon", "socket() failed: {}", std::strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    log_warn("daemon", "socket path too long: {}", options_.socket_path);
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);
  ::unlink(options_.socket_path.c_str());  // stale socket from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    log_warn("daemon", "bind({}) failed: {}", options_.socket_path, std::strerror(errno));
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    log_warn("daemon", "listen() failed: {}", std::strerror(errno));
    return false;
  }
  set_nonblocking(listen_fd_);
  return true;
}

void SocketDaemon::poke() {
  if (wake_write_ < 0) return;
  const char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const auto n = ::write(wake_write_, &byte, 1);
}

void SocketDaemon::deliver(std::vector<Outbound> messages) {
  if (messages.empty()) return;
  {
    MutexLock lock(out_mutex_);
    for (Outbound& m : messages) {
      out_pending_.push_back(OutBytes{m.client, json::encode_frame(m.message)});
    }
  }
  poke();
}

int SocketDaemon::run() {
  if (!setup_socket()) return 1;
  log_info("daemon", "listening on {}", options_.socket_path);
  io_thread_ = std::thread([this] { io_loop(); });

  while (true) {
    std::vector<Command> batch;
    {
      MutexLock lock(queue_mutex_);
      if (commands_.empty() && !server_.busy()) {
        // Idle: nothing queued, nothing to drive. Sleep until the I/O
        // thread hands us a command (bounded, as a safety net).
        queue_cv_.wait_for(queue_mutex_, std::chrono::milliseconds(200));
      }
      while (!commands_.empty()) {
        batch.push_back(std::move(commands_.front()));
        commands_.pop_front();
      }
    }
    // Queue lock dropped before any Server call: handling a request can
    // block on the engine, and the I/O thread must stay free to enqueue.
    for (Command& cmd : batch) {
      switch (cmd.kind) {
        case Command::Kind::Frame:
          deliver(server_.handle(cmd.client, cmd.frame));
          break;
        case Command::Kind::LineError:
          deliver(server_.handle_line_error(cmd.client, cmd.error));
          break;
        case Command::Kind::Disconnect:
          server_.disconnect(cmd.client);
          break;
      }
    }
    if (server_.busy()) deliver(server_.step(options_.step_seconds));
    if (server_.done()) break;
  }

  stop_.store(true, std::memory_order_release);
  poke();
  io_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  log_info("daemon", "exited cleanly");
  return 0;
}

void SocketDaemon::io_loop() {
  std::map<int, Conn> conns;            // fd -> connection, this thread only
  std::map<ClientId, int> client_fd;    // reverse index for outbound routing
  ClientId next_client = 1;
  int grace_polls = 40;  // ~2s of 50ms polls to flush outboxes after stop

  auto push_command = [this](Command cmd) {
    {
      MutexLock lock(queue_mutex_);
      commands_.push_back(std::move(cmd));
    }
    queue_cv_.notify_one();
  };

  auto close_conn = [&](int fd, bool notify) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    const ClientId client = it->second.client;
    client_fd.erase(client);
    conns.erase(it);
    ::close(fd);
    if (notify) {
      push_command(Command{Command::Kind::Disconnect, client, json::Value(), {}});
    }
  };

  while (true) {
    const bool stopping = stop_.load(std::memory_order_acquire);

    // Route coordinator output into per-connection outboxes. Bytes for a
    // client that vanished are dropped — it can't read them anyway.
    {
      MutexLock lock(out_mutex_);
      while (!out_pending_.empty()) {
        OutBytes out = std::move(out_pending_.front());
        out_pending_.pop_front();
        auto it = client_fd.find(out.client);
        if (it != client_fd.end()) conns[it->second].outbox += out.bytes;
      }
    }

    bool any_outbox = false;
    std::vector<pollfd> fds;
    fds.push_back(pollfd{wake_read_, POLLIN, 0});
    if (!stopping) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (auto& [fd, conn] : conns) {
      short events = POLLIN;
      if (!conn.outbox.empty()) {
        events |= POLLOUT;
        any_outbox = true;
      }
      fds.push_back(pollfd{fd, events, 0});
    }

    if (stopping && (!any_outbox || grace_polls-- <= 0)) {
      for (auto& [fd, conn] : conns) ::close(fd);
      return;
    }

    if (::poll(fds.data(), fds.size(), 50) < 0 && errno != EINTR) {
      log_warn("daemon", "poll() failed: {}", std::strerror(errno));
      return;
    }

    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      if (p.fd == wake_read_) {
        char buf[64];
        while (::read(wake_read_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (p.fd == listen_fd_) {
        while (true) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking(fd);
          Conn conn;
          conn.client = next_client++;
          conn.decoder.set_max_line_bytes(options_.max_line_bytes);
          client_fd[conn.client] = fd;
          conns.emplace(fd, std::move(conn));
        }
        continue;
      }
      auto it = conns.find(p.fd);
      if (it == conns.end()) continue;
      Conn& conn = it->second;

      if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        close_conn(p.fd, /*notify=*/true);
        continue;
      }
      if ((p.revents & POLLIN) && !conn.failing) {
        char buf[4096];
        bool closed = false;
        while (true) {
          const ssize_t n = ::read(p.fd, buf, sizeof(buf));
          if (n > 0) {
            conn.decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
            continue;
          }
          if (n == 0) closed = true;  // orderly EOF
          if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) closed = true;
          break;
        }
        while (std::optional<json::Frame> frame = conn.decoder.next()) {
          if (frame->ok()) {
            push_command(Command{Command::Kind::Frame, conn.client, std::move(frame->value), {}});
          } else if (frame->fatal) {
            // Oversized line: the decoder bounded its buffer; fail the
            // connection — reply directly from the I/O thread (the
            // coordinator never sees the request) and close after flush.
            conn.outbox += json::encode_frame(make_parse_error("protocol error: " + frame->error));
            conn.failing = true;
            push_command(Command{Command::Kind::Disconnect, conn.client, json::Value(), {}});
            break;
          } else {
            push_command(
                Command{Command::Kind::LineError, conn.client, json::Value(), frame->error});
          }
        }
        if (closed) {
          close_conn(p.fd, /*notify=*/true);
          continue;
        }
      }
      if ((p.revents & POLLOUT) && !conn.outbox.empty()) {
        const ssize_t n =
            ::send(p.fd, conn.outbox.data(), conn.outbox.size(), MSG_NOSIGNAL);
        if (n > 0) {
          conn.outbox.erase(0, static_cast<std::size_t>(n));
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          close_conn(p.fd, /*notify=*/true);
          continue;
        }
      }
      if (conn.failing && conn.outbox.empty())
        close_conn(p.fd, /*notify=*/false);  // Disconnect already queued
    }
  }
}

}  // namespace chpo::daemon
