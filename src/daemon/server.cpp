#include "daemon/server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "support/log.hpp"

namespace chpo::daemon {

namespace {

/// File-system-safe study name for checkpoint paths.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') c = '_';
  return out;
}

bool terminal(service::StudyState state) {
  return state == service::StudyState::Finished || state == service::StudyState::Killed;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// tmp + (fsync) + rename + (fsync dir): a crash leaves either the old
/// file or the complete new one, never a torn manifest.
bool atomic_write_file(const std::string& path, const std::string& bytes, bool durable) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = write_all(fd, bytes.data(), bytes.size());
  if (ok && durable) ::fsync(fd);
  ::close(fd);
  if (!ok) return false;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return false;
  if (durable) {
    const std::string::size_type slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }
  return true;
}

JournalOptions journal_options(const ServerOptions& options) {
  JournalOptions j;
  if (!options.state_dir.empty()) j.path = options.state_dir + "/journal.ndjson";
  j.fsync = options.fsync;
  j.compact_every = options.journal_compact_every;
  return j;
}

// Tolerant field readers for journal/manifest records: a missing or
// mistyped field degrades to a default instead of aborting recovery.
std::int64_t int_field(const json::Value& rec, std::string_view key, std::int64_t fallback = 0) {
  const json::Value* v = rec.find(key);
  return v != nullptr && v->is_int() ? v->as_int() : fallback;
}

std::string string_field(const json::Value& rec, std::string_view key) {
  const json::Value* v = rec.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

bool bool_field(const json::Value& rec, std::string_view key) {
  const json::Value* v = rec.find(key);
  return v != nullptr && v->is_bool() && v->as_bool();
}

double double_field(const json::Value& rec, std::string_view key) {
  const json::Value* v = rec.find(key);
  return v != nullptr && v->is_number() ? v->as_double() : 0.0;
}

service::StudyCloseTotals totals_from_record(const json::Value& rec) {
  service::StudyCloseTotals totals;
  totals.trials = static_cast<std::size_t>(int_field(rec, "trials"));
  totals.task_attempts = static_cast<std::size_t>(int_field(rec, "attempts"));
  totals.replayed_trials = static_cast<std::size_t>(int_field(rec, "replayed"));
  totals.cache_hits = static_cast<std::uint64_t>(int_field(rec, "cache_hits"));
  totals.engine_seconds = double_field(rec, "engine_seconds");
  totals.killed = bool_field(rec, "killed");
  return totals;
}

}  // namespace

Server::Server(ServerOptions options, const ml::Dataset& dataset)
    : options_(std::move(options)),
      dataset_(dataset),
      manager_(std::move(options_.manager), dataset),
      journal_(journal_options(options_)) {
  manager_.set_event_tap([this](const service::StudyEvent& event) { on_manager_event(event); });
  recover();
}

void Server::on_manager_event(const service::StudyEvent& event) {
  PendingEvent ev;
  ev.kind = event.kind;
  ev.study = event.study;
  ev.state = event.state;
  ev.trials_done = event.trials_done;
  if (event.kind == service::StudyEvent::Kind::TrialComplete) {
    const auto it = studies_.find(event.study);
    if (it != studies_.end()) {
      ++it->second.trials_counted;
      const service::TrialDelta delta = ledger_.on_trial(it->second.tenant, event.trial);
      it->second.counted_delta.task_attempts += delta.task_attempts;
      it->second.counted_delta.replayed_trials += delta.replayed_trials;
    }
    if (event.trial != nullptr) {
      ev.trial_index = event.trial->index;
      ev.trial_failed = event.trial->failed;
      ev.accuracy = event.trial->failed ? 0.0 : event.trial->result.final_val_accuracy;
    }
  }
  pending_.push_back(ev);
}

void Server::fan_out(rt::StudyId study, const json::Value& event,
                     std::vector<Outbound>& out) const {
  const auto it = watchers_.find(study);
  if (it != watchers_.end())
    for (const ClientId client : it->second) out.push_back({client, event});
  for (const ClientId client : watch_all_) {
    if (it != watchers_.end() && it->second.count(client)) continue;  // no duplicates
    out.push_back({client, event});
  }
}

void Server::drain_events(std::vector<Outbound>& out) {
  std::vector<PendingEvent> events;
  events.swap(pending_);
  for (const PendingEvent& ev : events) {
    const auto info_it = studies_.find(ev.study);
    const std::string name =
        info_it != studies_.end() ? info_it->second.name : manager_.status(ev.study).name;
    if (ev.kind == service::StudyEvent::Kind::TrialComplete)
      fan_out(ev.study,
              make_trial_event(ev.study, name, ev.trial_index, ev.accuracy, ev.trial_failed,
                               ev.trials_done),
              out);
    else
      fan_out(ev.study, make_state_event(ev.study, name, ev.state, ev.trials_done), out);
    // Settle accounting when a study leaves the fleet. Deferred to here
    // (not done in the tap) because outcome() must not be called from
    // inside a manager method.
    if (ev.kind != service::StudyEvent::Kind::TrialComplete && terminal(ev.state) &&
        info_it != studies_.end() && !info_it->second.closed_accounted) {
      StudyInfo& info = info_it->second;
      info.closed_accounted = true;
      const bool killed = ev.state == service::StudyState::Killed;
      const service::StudyCloseTotals totals =
          service::study_close_totals(manager_.outcome(ev.study), killed);
      // The closed record carries the study's ABSOLUTE totals (not a
      // delta): replaying it after a crash applies the whole study with
      // zero counted-live, so it lands exactly once either way.
      json::Value rec;
      rec.set("rec", json::Value("closed"));
      rec.set("study", json::Value(static_cast<std::int64_t>(ev.study)));
      rec.set("tenant", json::Value(info.tenant));
      rec.set("name", json::Value(info.name));
      rec.set("killed", json::Value(totals.killed));
      rec.set("trials", json::Value(static_cast<std::int64_t>(totals.trials)));
      rec.set("attempts", json::Value(static_cast<std::int64_t>(totals.task_attempts)));
      rec.set("replayed", json::Value(static_cast<std::int64_t>(totals.replayed_trials)));
      rec.set("cache_hits", json::Value(static_cast<std::int64_t>(totals.cache_hits)));
      rec.set("engine_seconds", json::Value(totals.engine_seconds));
      if (!info.dedup_key.empty()) rec.set("key", json::Value(info.dedup_key));
      journal_event(std::move(rec));
      ledger_.apply_closed(info.tenant, totals, info.trials_counted, info.counted_delta);
      if (!info.dedup_key.empty()) {
        const auto dd = dedup_.find(info.dedup_key);
        if (dd != dedup_.end()) {
          dd->second.live = false;
          dd->second.last_state = service::study_state_name(ev.state);
        }
      }
    }
  }
}

rt::StudyId Server::submit_spec(const std::string& tenant, json::Value spec_json) {
  if (!spec_json.is_object()) throw service::SpecError("submit: 'spec' must be a JSON object");

  std::string name;
  if (const json::Value* v = spec_json.find("name"); v != nullptr && v->is_string())
    name = v->as_string();
  if (name.empty()) {
    std::string algorithm = "random";
    if (const json::Value* v = spec_json.find("algorithm"); v != nullptr && v->is_string())
      algorithm = v->as_string();
    name = tenant + "-" + algorithm + "-" + std::to_string(ordinal_++);
    spec_json.set("name", json::Value(name));
  }
  // Stateful deployments checkpoint every study so a drained shutdown can
  // resume it; an explicit per-spec checkpoint wins.
  if (!options_.state_dir.empty() && spec_json.find("checkpoint") == nullptr)
    spec_json.set("checkpoint",
                  json::Value(options_.state_dir + "/" + sanitize(name) + ".trials.json"));

  service::StudySpec spec = service::study_spec_from_json(spec_json, options_.defaults);
  spec.weight *= ledger_.quota(tenant).weight;

  bool start_paused = false;
  if (const json::Value* v = spec_json.find("paused")) start_paused = v->as_bool();

  const rt::StudyId id = manager_.submit(std::move(spec));
  if (start_paused) manager_.pause(id);

  // The stored spec seeds snapshots; pause intent is tracked separately
  // (kept across a crash, dropped across a graceful shutdown).
  if (spec_json.contains("paused")) {
    json::Object& object = spec_json.as_object();
    object.erase(std::remove_if(object.begin(), object.end(),
                                [](const auto& member) { return member.first == "paused"; }),
                 object.end());
  }
  StudyInfo info;
  info.tenant = tenant;
  info.name = name;
  info.spec_json = std::move(spec_json);
  info.paused_wanted = start_paused;
  studies_.emplace(id, std::move(info));
  ledger_.on_submitted(tenant);
  return id;
}

json::Value Server::op_submit(const json::Value& request) {
  if (draining_) return make_error(request, "shutting down: submissions are closed");
  const json::Value* spec = request.find("spec");
  if (spec == nullptr) return make_error(request, "submit: missing 'spec'");
  const std::string tenant = tenant_field(request);

  // Idempotent resubmit: a string request id is a client-chosen dedup key
  // (scoped per tenant). A retry of an already-acknowledged submit —
  // reply lost to a daemon crash or a network timeout — gets the original
  // study back and charges nothing.
  std::string key;
  if (const json::Value* id = request.find("id"); id != nullptr && id->is_string() &&
                                                  !id->as_string().empty())
    key = tenant + "\n" + id->as_string();
  if (!key.empty()) {
    const auto hit = dedup_.find(key);
    if (hit != dedup_.end()) {
      json::Value reply = make_reply(request, true);
      reply.set("duplicate", json::Value(true));
      reply.set("name", json::Value(hit->second.name));
      if (hit->second.live && manager_.known(hit->second.study)) {
        reply.set("study", json::Value(static_cast<std::int64_t>(hit->second.study)));
        reply.set("state",
                  json::Value(service::study_state_name(manager_.state(hit->second.study))));
      } else {
        reply.set("state", json::Value(hit->second.last_state));
      }
      return reply;
    }
  }

  if (quota_known_.insert(tenant).second) ledger_.set_quota(tenant, options_.default_quota);
  if (!ledger_.admit_study(tenant)) {
    json::Value rec;
    rec.set("rec", json::Value("reject"));
    rec.set("tenant", json::Value(tenant));
    journal_event(std::move(rec));
    return make_error(request, "tenant '" + tenant + "' is over its active-study quota");
  }
  try {
    const rt::StudyId id = submit_spec(tenant, *spec);
    StudyInfo& info = studies_.at(id);
    if (!key.empty()) {
      info.dedup_key = key;
      DedupEntry entry;
      entry.live = true;
      entry.study = id;
      entry.name = info.name;
      remember_dedup(key, entry);
    }
    json::Value rec;
    rec.set("rec", json::Value("submit"));
    rec.set("study", json::Value(static_cast<std::int64_t>(id)));
    rec.set("tenant", json::Value(tenant));
    rec.set("spec", info.spec_json);
    rec.set("paused", json::Value(info.paused_wanted));
    rec.set("ordinal", json::Value(static_cast<std::int64_t>(ordinal_)));
    if (!key.empty()) rec.set("key", json::Value(key));
    journal_event(std::move(rec));
    json::Value reply = make_reply(request, true);
    reply.set("study", json::Value(static_cast<std::int64_t>(id)));
    reply.set("name", json::Value(info.name));
    reply.set("state", json::Value(service::study_state_name(manager_.state(id))));
    return reply;
  } catch (const service::SpecError& e) {
    return make_error(request, e.what());
  }
}

json::Value Server::status_json(rt::StudyId id) const {
  const service::StudyStatus status = manager_.status(id);
  json::Value row;
  row.set("study", json::Value(static_cast<std::int64_t>(id)));
  row.set("name", json::Value(status.name));
  const auto info = studies_.find(id);
  row.set("tenant", json::Value(info != studies_.end() ? info->second.tenant : std::string()));
  row.set("algorithm", json::Value(status.algorithm));
  row.set("state", json::Value(service::study_state_name(status.state)));
  row.set("trials_done", json::Value(static_cast<std::int64_t>(status.trials_done)));
  const rt::StudyProgress progress = manager_.progress(id);
  json::Value tasks;
  tasks.set("total", json::Value(static_cast<std::int64_t>(progress.total)));
  tasks.set("waiting", json::Value(static_cast<std::int64_t>(progress.waiting)));
  tasks.set("ready", json::Value(static_cast<std::int64_t>(progress.ready)));
  tasks.set("running", json::Value(static_cast<std::int64_t>(progress.running)));
  tasks.set("done", json::Value(static_cast<std::int64_t>(progress.done)));
  tasks.set("failed", json::Value(static_cast<std::int64_t>(progress.failed)));
  tasks.set("cancelled", json::Value(static_cast<std::int64_t>(progress.cancelled)));
  row.set("tasks", tasks);
  if (terminal(status.state)) {
    const hpo::HpoOutcome& outcome = manager_.outcome(id);
    if (const hpo::Trial* best = outcome.best())
      row.set("best_accuracy", json::Value(best->result.final_val_accuracy));
    row.set("elapsed_seconds", json::Value(outcome.elapsed_seconds));
  }
  return row;
}

json::Value Server::op_list(const json::Value& request) const {
  json::Value reply = make_reply(request, true);
  json::Array rows;
  for (const rt::StudyId id : manager_.studies()) rows.push_back(status_json(id));
  reply.set("studies", json::Value(std::move(rows)));
  return reply;
}

json::Value Server::op_status(const json::Value& request) const {
  const std::optional<rt::StudyId> id = study_field(request);
  if (!id || !manager_.known(*id)) return make_error(request, "unknown study");
  json::Value reply = make_reply(request, true);
  const json::Value row = status_json(*id);  // named: the loop borrows its object
  for (const auto& [key, value] : row.as_object()) reply.set(key, value);
  return reply;
}

json::Value Server::op_lifecycle(const json::Value& request, const std::string& op) {
  const std::optional<rt::StudyId> id = study_field(request);
  if (!id || !manager_.known(*id)) return make_error(request, "unknown study");
  const service::StudyState before = manager_.state(*id);
  const auto info = studies_.find(*id);
  if (op == "pause") {
    if (terminal(before) || before == service::StudyState::Paused)
      return make_error(request, std::string("cannot pause a ") +
                                     service::study_state_name(before) + " study");
    manager_.pause(*id);
    if (info != studies_.end()) info->second.paused_wanted = true;
  } else if (op == "resume") {
    if (terminal(before))
      return make_error(request, std::string("cannot resume a ") +
                                     service::study_state_name(before) + " study");
    manager_.resume(*id);
    if (info != studies_.end()) info->second.paused_wanted = false;
  } else {  // kill
    if (terminal(before))
      return make_error(request, std::string("study is already ") +
                                     service::study_state_name(before));
    manager_.kill(*id);
  }
  json::Value rec;
  rec.set("rec", json::Value(op));
  rec.set("study", json::Value(static_cast<std::int64_t>(*id)));
  journal_event(std::move(rec));
  json::Value reply = make_reply(request, true);
  reply.set("study", json::Value(static_cast<std::int64_t>(*id)));
  reply.set("state", json::Value(service::study_state_name(manager_.state(*id))));
  return reply;
}

json::Value Server::op_watch(ClientId client, const json::Value& request,
                             std::vector<Outbound>& snapshots) {
  const json::Value* study = request.find("study");
  std::vector<rt::StudyId> snapshot_ids;
  if (study == nullptr) {
    watch_all_.insert(client);
    snapshot_ids = manager_.studies();
  } else {
    const std::optional<rt::StudyId> id = study_field(request);
    if (!id || !manager_.known(*id)) return make_error(request, "unknown study");
    watchers_[*id].insert(client);
    snapshot_ids.push_back(*id);
  }
  // Immediate state snapshot to just this client: a watch on an already
  // finished study terminates without waiting for an event that will
  // never come.
  for (const rt::StudyId id : snapshot_ids) {
    const service::StudyStatus status = manager_.status(id);
    snapshots.push_back(
        {client, make_state_event(id, status.name, status.state, status.trials_done)});
  }
  return make_reply(request, true);
}

json::Value Server::op_unwatch(ClientId client, const json::Value& request) {
  const std::optional<rt::StudyId> id = study_field(request);
  if (id)
    watchers_[*id].erase(client);
  else
    watch_all_.erase(client);
  return make_reply(request, true);
}

json::Value Server::op_accounting(const json::Value& request) const {
  json::Value reply = make_reply(request, true);
  json::Array rows;
  for (const std::string& tenant : ledger_.tenants()) rows.push_back(ledger_.tenant_to_json(tenant));
  reply.set("tenants", json::Value(std::move(rows)));
  return reply;
}

json::Value Server::op_stats(const json::Value& request) const {
  const service::ManagerStats stats = manager_.stats();
  json::Value reply = make_reply(request, true);
  reply.set("queued", json::Value(static_cast<std::int64_t>(stats.queued)));
  reply.set("running", json::Value(static_cast<std::int64_t>(stats.running)));
  reply.set("paused", json::Value(static_cast<std::int64_t>(stats.paused)));
  reply.set("finished", json::Value(static_cast<std::int64_t>(stats.finished)));
  reply.set("killed", json::Value(static_cast<std::int64_t>(stats.killed)));
  reply.set("total_studies", json::Value(static_cast<std::int64_t>(stats.total_studies)));
  reply.set("trials_done", json::Value(static_cast<std::int64_t>(stats.trials_done)));
  reply.set("inflight", json::Value(static_cast<std::int64_t>(stats.inflight)));
  reply.set("completions_routed",
            json::Value(static_cast<std::int64_t>(stats.completions_routed)));
  reply.set("leaked_completions",
            json::Value(static_cast<std::int64_t>(stats.leaked_completions)));
  reply.set("lineage_violations",
            json::Value(static_cast<std::int64_t>(manager_.lineage_violations())));
  reply.set("draining", json::Value(draining_));
  reply.set("recovered_degraded", json::Value(recovered_degraded_));
  reply.set("journal_records",
            json::Value(static_cast<std::int64_t>(journal_.appended_since_reset())));
  return reply;
}

json::Value Server::op_quota(const json::Value& request) {
  const json::Value* tenant = request.find("tenant");
  if (tenant == nullptr || !tenant->is_string())
    return make_error(request, "quota: missing 'tenant'");
  service::TenantQuota quota = ledger_.quota(tenant->as_string());
  if (const json::Value* v = request.find("weight")) {
    if (!v->is_number() || v->as_double() <= 0.0)
      return make_error(request, "quota: 'weight' must be a positive number");
    quota.weight = v->as_double();
  }
  if (const json::Value* v = request.find("max_active_studies")) {
    if (!v->is_int() || v->as_int() < 0)
      return make_error(request, "quota: 'max_active_studies' must be a non-negative integer");
    quota.max_active_studies = static_cast<std::size_t>(v->as_int());
  }
  quota_known_.insert(tenant->as_string());
  ledger_.set_quota(tenant->as_string(), quota);
  json::Value rec;
  rec.set("rec", json::Value("quota"));
  rec.set("tenant", *tenant);
  rec.set("weight", json::Value(quota.weight));
  rec.set("max_active_studies", json::Value(static_cast<std::int64_t>(quota.max_active_studies)));
  journal_event(std::move(rec));
  return make_reply(request, true);
}

std::vector<Outbound> Server::handle(ClientId client, const json::Value& request) {
  std::vector<Outbound> out;
  const json::Value* op_value = request.is_object() ? request.find("op") : nullptr;
  if (op_value == nullptr || !op_value->is_string()) {
    out.push_back({client, make_error(request, "request must be an object with a string 'op'")});
    return out;
  }
  const std::string& op = op_value->as_string();

  json::Value reply;
  bool has_reply = true;
  std::vector<Outbound> snapshots;
  try {
    if (op == "ping") {
      reply = make_reply(request, true);
      reply.set("pong", json::Value(true));
    } else if (op == "submit") {
      reply = op_submit(request);
    } else if (op == "list") {
      reply = op_list(request);
    } else if (op == "status") {
      reply = op_status(request);
    } else if (op == "pause" || op == "resume" || op == "kill") {
      reply = op_lifecycle(request, op);
    } else if (op == "watch") {
      reply = op_watch(client, request, snapshots);
    } else if (op == "unwatch") {
      reply = op_unwatch(client, request);
    } else if (op == "accounting") {
      reply = op_accounting(request);
    } else if (op == "stats") {
      reply = op_stats(request);
    } else if (op == "quota") {
      reply = op_quota(request);
    } else if (op == "shutdown") {
      if (draining_) {
        reply = make_error(request, "already shutting down");
      } else {
        // Checkpoint-everything-then-drain: gate admission, stop every
        // running pump's refills (in-flight attempts finish and are
        // checkpointed per trial), reply from step() once drained.
        draining_ = true;
        manager_.set_admission_paused(true);
        for (const rt::StudyId id : manager_.studies())
          if (manager_.state(id) == service::StudyState::Running) manager_.pause(id);
        shutdown_reply_pending_ = true;
        shutdown_client_ = client;
        shutdown_request_ = request;
        has_reply = false;
        log_info("daemon", "shutdown requested: draining {} in-flight trials",
                 manager_.stats().inflight);
      }
    } else {
      reply = make_error(request, "unknown op '" + op + "'");
    }
  } catch (const std::exception& e) {
    reply = make_error(request, e.what());
  }

  if (has_reply) out.push_back({client, std::move(reply)});
  for (Outbound& snapshot : snapshots) out.push_back(std::move(snapshot));
  drain_events(out);  // state changes caused by this request reach watchers
  // Durability barrier: every record this request appended hits the disk
  // before any reply in `out` can leave the process.
  journal_.sync();
  maybe_compact();
  return out;
}

std::vector<Outbound> Server::handle_line_error(ClientId client, const std::string& error) {
  return {{client, make_parse_error("parse error: " + error)}};
}

void Server::disconnect(ClientId client) {
  watch_all_.erase(client);
  for (auto& [_, clients] : watchers_) clients.erase(client);
  if (shutdown_reply_pending_ && shutdown_client_ == client) shutdown_reply_pending_ = false;
}

bool Server::busy() const {
  if (done_) return false;
  if (draining_) return true;
  const service::ManagerStats stats = manager_.stats();
  return stats.queued + stats.running + stats.inflight > 0;
}

std::vector<Outbound> Server::step(double seconds) {
  std::vector<Outbound> out;
  if (done_) return out;
  manager_.step_for(seconds);
  drain_events(out);
  journal_.sync();  // closed-study records are durable before their events leave
  maybe_compact();
  if (draining_ && manager_.stats().inflight == 0) {
    // Final snapshot folds the journal in; pause intent is dropped on a
    // graceful shutdown (it is connection-era policy, and the operator
    // asked for a clean restart point).
    compact(/*include_paused=*/false);
    if (shutdown_reply_pending_) {
      json::Value reply = make_reply(shutdown_request_, true);
      reply.set("drained", json::Value(true));
      std::int64_t persisted = 0;
      for (const auto& [id, _] : studies_)
        if (!terminal(manager_.state(id))) ++persisted;
      reply.set("persisted_studies", json::Value(persisted));
      out.push_back({shutdown_client_, std::move(reply)});
      shutdown_reply_pending_ = false;
    }
    done_ = true;
    log_info("daemon", "drain complete; manifest written, {} leaked completions",
             manager_.leaked_completions());
  }
  return out;
}

void Server::journal_event(json::Value record) {
  if (!journal_.enabled()) return;
  record.set("epoch", json::Value(static_cast<std::int64_t>(epoch_)));
  journal_.append(record);
}

void Server::remember_dedup(const std::string& key, DedupEntry entry) {
  const auto [it, inserted] = dedup_.emplace(key, entry);
  if (!inserted) {
    it->second = std::move(entry);
    return;
  }
  dedup_order_.push_back(key);
  if (dedup_order_.size() > kDedupWindow) {
    dedup_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
}

void Server::write_snapshot(bool include_paused) const {
  if (options_.state_dir.empty()) return;
  json::Array entries;
  for (const auto& [id, info] : studies_) {
    if (terminal(manager_.state(id))) continue;
    json::Value entry;
    entry.set("study", json::Value(static_cast<std::int64_t>(id)));
    entry.set("tenant", json::Value(info.tenant));
    entry.set("spec", info.spec_json);
    if (include_paused && info.paused_wanted) entry.set("paused", json::Value(true));
    if (!info.dedup_key.empty()) entry.set("key", json::Value(info.dedup_key));
    entries.push_back(std::move(entry));
  }
  // Persist the ledger MINUS live-study contributions: recovery resubmits
  // the studies above (re-applying their submissions) and their eventual
  // close re-applies their trials — subtracting here is what keeps the
  // meter exactly-once across a restart.
  service::TenantLedger persisted = ledger_;
  for (const auto& [id, info] : studies_) {
    if (terminal(manager_.state(id))) continue;
    persisted.withdraw_live(info.tenant, info.trials_counted, info.counted_delta);
  }
  json::Array ledger_rows;
  for (const std::string& tenant : persisted.tenants())
    ledger_rows.push_back(persisted.tenant_to_json(tenant));
  json::Array dedup_rows;
  for (const std::string& key : dedup_order_) {
    const auto it = dedup_.find(key);
    if (it == dedup_.end()) continue;
    json::Value row;
    row.set("key", json::Value(key));
    row.set("name", json::Value(it->second.name));
    row.set("live", json::Value(it->second.live));
    if (it->second.live)
      row.set("study", json::Value(static_cast<std::int64_t>(it->second.study)));
    else
      row.set("state", json::Value(it->second.last_state));
    dedup_rows.push_back(std::move(row));
  }
  json::Value manifest;
  manifest.set("studies", json::Value(std::move(entries)));
  manifest.set("ledger", json::Value(std::move(ledger_rows)));
  manifest.set("dedup", json::Value(std::move(dedup_rows)));
  manifest.set("ordinal", json::Value(static_cast<std::int64_t>(ordinal_)));
  manifest.set("epoch", json::Value(static_cast<std::int64_t>(epoch_)));
  const std::string path = options_.state_dir + "/manifest.json";
  if (!atomic_write_file(path, json::serialize_pretty(manifest) + "\n", options_.fsync))
    log_warn("daemon", "failed to write manifest snapshot at {}", path);
}

void Server::compact(bool include_paused) {
  if (options_.state_dir.empty()) return;
  write_snapshot(include_paused);
  journal_.reset();
  ++epoch_;
}

void Server::maybe_compact() {
  if (draining_ || !journal_.wants_compaction()) return;
  compact(/*include_paused=*/true);
}

void Server::recover() {
  if (options_.state_dir.empty()) return;
  const std::string path = options_.state_dir + "/manifest.json";

  /// A study to resubmit at the end of recovery.
  struct Candidate {
    rt::StudyId old_id = rt::kMainStudy;  ///< id in the previous lifetime
    bool has_old_id = false;              ///< pre-journal manifests lack it
    std::string tenant;
    json::Value spec_json;
    bool paused = false;
    std::string dedup_key;
    bool dead = false;  ///< tombstoned by a kill/closed journal record
  };
  std::vector<Candidate> candidates;
  std::map<rt::StudyId, std::size_t> by_old_id;
  std::uint64_t snapshot_epoch = 0;

  // Phase 1: the manifest snapshot. A corrupt (unparseable) file is
  // quarantined, not silently discarded: the journal may still hold
  // enough to recover, and the operator keeps the evidence.
  json::Value manifest;
  bool have_manifest = false;
  try {
    manifest = json::parse_file(path);
    have_manifest = true;
  } catch (const json::JsonError& e) {
    if (std::ifstream(path).good()) {
      const std::string bad = path + ".bad";
      if (std::rename(path.c_str(), bad.c_str()) == 0)
        log_warn("daemon", "manifest {} is corrupt ({}); quarantined to {}, recovering degraded",
                 path, e.what(), bad);
      else
        log_warn("daemon", "manifest {} is corrupt ({}), recovering degraded", path, e.what());
      recovered_degraded_ = true;
    }
  }
  if (have_manifest) {
    snapshot_epoch = static_cast<std::uint64_t>(int_field(manifest, "epoch"));
    ordinal_ = static_cast<std::uint64_t>(int_field(manifest, "ordinal"));
    if (const json::Value* rows = manifest.find("ledger"); rows != nullptr && rows->is_array())
      for (const json::Value& row : rows->as_array()) {
        ledger_.restore_tenant(row);
        if (const std::string tenant = string_field(row, "tenant"); !tenant.empty())
          quota_known_.insert(tenant);
      }
    if (const json::Value* rows = manifest.find("dedup"); rows != nullptr && rows->is_array())
      for (const json::Value& row : rows->as_array()) {
        const std::string key = string_field(row, "key");
        if (key.empty()) continue;
        DedupEntry entry;
        entry.name = string_field(row, "name");
        entry.live = bool_field(row, "live");
        entry.study = static_cast<rt::StudyId>(int_field(row, "study"));
        entry.last_state = string_field(row, "state");
        remember_dedup(key, entry);
      }
    if (const json::Value* rows = manifest.find("studies"); rows != nullptr && rows->is_array())
      for (const json::Value& entry : rows->as_array()) {
        const json::Value* spec = entry.find("spec");
        if (spec == nullptr) continue;
        Candidate c;
        c.tenant = string_field(entry, "tenant");
        if (c.tenant.empty()) c.tenant = "default";
        c.spec_json = *spec;
        c.paused = bool_field(entry, "paused");
        c.dedup_key = string_field(entry, "key");
        if (const json::Value* v = entry.find("study"); v != nullptr && v->is_int()) {
          c.old_id = static_cast<rt::StudyId>(v->as_int());
          c.has_old_id = true;
          by_old_id[c.old_id] = candidates.size();
        }
        candidates.push_back(std::move(c));
      }
  }

  // Phase 2: replay the journal on top of the snapshot, stopping at the
  // first torn/corrupt record (a torn tail is an operation that was never
  // acknowledged — the client retries it). Records from epochs the
  // snapshot already folded in are skipped, so a crash between the
  // snapshot rename and the journal truncate double-applies nothing.
  const json::RecordReplay replay = StateJournal::load(options_.state_dir + "/journal.ndjson");
  if (replay.torn())
    log_warn("daemon",
             "journal tail torn after {} intact records ({}); dropping the unacknowledged tail",
             replay.records.size(), replay.torn_error);
  const auto candidate_of = [&](const json::Value& rec) -> Candidate* {
    const json::Value* v = rec.find("study");
    if (v == nullptr || !v->is_int()) return nullptr;
    const auto it = by_old_id.find(static_cast<rt::StudyId>(v->as_int()));
    return it == by_old_id.end() ? nullptr : &candidates[it->second];
  };
  // Kills whose closed record was lost to the crash: settle them with
  // empty totals so the tenant's active/killed counters stay exact.
  std::map<rt::StudyId, std::string> pending_kills;
  std::size_t replayed_records = 0;
  for (const json::Value& rec : replay.records) {
    if (!rec.is_object()) continue;
    const std::int64_t rec_epoch = int_field(rec, "epoch", -1);
    if (rec_epoch >= 0 && static_cast<std::uint64_t>(rec_epoch) <= snapshot_epoch)
      continue;  // already folded into the snapshot
    if (rec_epoch >= 0) epoch_ = std::max(epoch_, static_cast<std::uint64_t>(rec_epoch));
    ++replayed_records;
    const std::string kind = string_field(rec, "rec");
    if (kind == "submit") {
      Candidate c;
      c.tenant = string_field(rec, "tenant");
      if (c.tenant.empty()) c.tenant = "default";
      if (const json::Value* spec = rec.find("spec")) c.spec_json = *spec;
      c.paused = bool_field(rec, "paused");
      c.dedup_key = string_field(rec, "key");
      c.old_id = static_cast<rt::StudyId>(int_field(rec, "study"));
      c.has_old_id = true;
      ordinal_ = std::max(ordinal_, static_cast<std::uint64_t>(int_field(rec, "ordinal")));
      if (quota_known_.insert(c.tenant).second)
        ledger_.set_quota(c.tenant, options_.default_quota);
      if (!c.dedup_key.empty()) {
        DedupEntry entry;
        entry.live = true;
        entry.study = c.old_id;
        entry.name = string_field(c.spec_json, "name");
        remember_dedup(c.dedup_key, entry);
      }
      by_old_id[c.old_id] = candidates.size();
      candidates.push_back(std::move(c));
    } else if (kind == "pause" || kind == "resume") {
      if (Candidate* c = candidate_of(rec)) c->paused = kind == "pause";
    } else if (kind == "kill") {
      if (Candidate* c = candidate_of(rec); c != nullptr && !c->dead) {
        c->dead = true;
        pending_kills[c->old_id] = c->tenant;
      }
    } else if (kind == "closed") {
      const std::string tenant = string_field(rec, "tenant");
      // Re-apply the close with zero counted-live: the recovered ledger
      // holds no live contribution for this study (the snapshot subtracted
      // it, or the submission itself is being replayed right here).
      ledger_.on_submitted(tenant);
      ledger_.apply_closed(tenant, totals_from_record(rec), 0, {});
      if (Candidate* c = candidate_of(rec)) {
        c->dead = true;
        pending_kills.erase(c->old_id);
      }
      if (const std::string key = string_field(rec, "key"); !key.empty()) {
        DedupEntry entry;
        entry.live = false;
        entry.name = string_field(rec, "name");
        entry.last_state = bool_field(rec, "killed") ? "killed" : "finished";
        remember_dedup(key, entry);
      }
    } else if (kind == "quota") {
      const std::string tenant = string_field(rec, "tenant");
      if (tenant.empty()) continue;
      service::TenantQuota quota;
      quota.weight = double_field(rec, "weight");
      if (quota.weight <= 0.0) quota.weight = 1.0;
      quota.max_active_studies = static_cast<std::size_t>(int_field(rec, "max_active_studies"));
      ledger_.set_quota(tenant, quota);
      quota_known_.insert(tenant);
    } else if (kind == "reject") {
      ledger_.note_rejected(string_field(rec, "tenant"));
    }
  }
  for (const auto& [old_id, tenant] : pending_kills) {
    // Acknowledged kill whose close never reached the journal: the study
    // is gone either way — settle the counters with empty totals.
    ledger_.on_submitted(tenant);
    service::StudyCloseTotals totals;
    totals.killed = true;
    ledger_.apply_closed(tenant, totals, 0, {});
  }

  // Phase 3: resubmit the surviving studies. Their per-study checkpoints
  // replay completed trials, so work resumes where the crash cut it; the
  // close-time reconciliation re-counts those trials exactly once.
  std::size_t resumed = 0;
  std::set<std::string> remapped_keys;
  for (Candidate& c : candidates) {
    if (c.dead) continue;
    try {
      if (quota_known_.insert(c.tenant).second) ledger_.set_quota(c.tenant, options_.default_quota);
      const rt::StudyId id = submit_spec(c.tenant, std::move(c.spec_json));
      StudyInfo& info = studies_.at(id);
      if (c.paused && !info.paused_wanted) {
        manager_.pause(id);
        info.paused_wanted = true;
      }
      if (!c.dedup_key.empty()) {
        info.dedup_key = c.dedup_key;
        const auto it = dedup_.find(c.dedup_key);
        if (it != dedup_.end()) {
          it->second.live = true;
          it->second.study = id;  // ids renumber across a restart
        }
        remapped_keys.insert(c.dedup_key);
      }
      ++resumed;
    } catch (const std::exception& e) {
      log_warn("daemon", "recovered study skipped: {}", e.what());
    }
  }
  // Any dedup entry still pointing at a previous-lifetime id (tombstoned
  // study, or a resubmission that failed) must not alias a fresh id.
  for (auto& [key, entry] : dedup_) {
    if (entry.live && remapped_keys.find(key) == remapped_keys.end()) {
      entry.live = false;
      if (entry.last_state.empty()) entry.last_state = "killed";
    }
  }
  if (resumed > 0 || replayed_records > 0 || recovered_degraded_)
    log_info("daemon",
             "recovery: {} journal records replayed, {} studies resubmitted from {} "
             "(checkpoints replay completed trials){}",
             replayed_records, resumed, path, recovered_degraded_ ? ", DEGRADED" : "");
  // Fold recovery into a fresh snapshot immediately: the old journal
  // references the previous lifetime's study ids, the new one must not.
  // The new snapshot's epoch must exceed every surviving journal record's,
  // so a crash between its rename and the truncate replays nothing stale.
  epoch_ = std::max(epoch_, snapshot_epoch + 1);
  compact(/*include_paused=*/true);
}

}  // namespace chpo::daemon
