#include "daemon/server.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "support/log.hpp"

namespace chpo::daemon {

namespace {

/// File-system-safe study name for checkpoint paths.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') c = '_';
  return out;
}

bool terminal(service::StudyState state) {
  return state == service::StudyState::Finished || state == service::StudyState::Killed;
}

}  // namespace

Server::Server(ServerOptions options, const ml::Dataset& dataset)
    : options_(std::move(options)),
      dataset_(dataset),
      manager_(std::move(options_.manager), dataset) {
  manager_.set_event_tap([this](const service::StudyEvent& event) { on_manager_event(event); });
  load_manifest();
}

void Server::on_manager_event(const service::StudyEvent& event) {
  PendingEvent ev;
  ev.kind = event.kind;
  ev.study = event.study;
  ev.state = event.state;
  ev.trials_done = event.trials_done;
  if (event.kind == service::StudyEvent::Kind::TrialComplete) {
    const auto it = studies_.find(event.study);
    if (it != studies_.end()) {
      ++it->second.trials_counted;
      ledger_.on_trial(it->second.tenant, event.trial);
    }
    if (event.trial != nullptr) {
      ev.trial_index = event.trial->index;
      ev.trial_failed = event.trial->failed;
      ev.accuracy = event.trial->failed ? 0.0 : event.trial->result.final_val_accuracy;
    }
  }
  pending_.push_back(ev);
}

void Server::fan_out(rt::StudyId study, const json::Value& event,
                     std::vector<Outbound>& out) const {
  const auto it = watchers_.find(study);
  if (it != watchers_.end())
    for (const ClientId client : it->second) out.push_back({client, event});
  for (const ClientId client : watch_all_) {
    if (it != watchers_.end() && it->second.count(client)) continue;  // no duplicates
    out.push_back({client, event});
  }
}

void Server::drain_events(std::vector<Outbound>& out) {
  std::vector<PendingEvent> events;
  events.swap(pending_);
  for (const PendingEvent& ev : events) {
    const auto info_it = studies_.find(ev.study);
    const std::string name =
        info_it != studies_.end() ? info_it->second.name : manager_.status(ev.study).name;
    if (ev.kind == service::StudyEvent::Kind::TrialComplete)
      fan_out(ev.study,
              make_trial_event(ev.study, name, ev.trial_index, ev.accuracy, ev.trial_failed,
                               ev.trials_done),
              out);
    else
      fan_out(ev.study, make_state_event(ev.study, name, ev.state, ev.trials_done), out);
    // Settle accounting when a study leaves the fleet. Deferred to here
    // (not done in the tap) because outcome() must not be called from
    // inside a manager method.
    if (ev.kind != service::StudyEvent::Kind::TrialComplete && terminal(ev.state) &&
        info_it != studies_.end() && !info_it->second.closed_accounted) {
      info_it->second.closed_accounted = true;
      ledger_.on_study_closed(info_it->second.tenant, manager_.outcome(ev.study),
                              info_it->second.trials_counted,
                              ev.state == service::StudyState::Killed);
    }
  }
}

rt::StudyId Server::submit_spec(const std::string& tenant, json::Value spec_json) {
  if (!spec_json.is_object()) throw service::SpecError("submit: 'spec' must be a JSON object");

  std::string name;
  if (const json::Value* v = spec_json.find("name"); v != nullptr && v->is_string())
    name = v->as_string();
  if (name.empty()) {
    std::string algorithm = "random";
    if (const json::Value* v = spec_json.find("algorithm"); v != nullptr && v->is_string())
      algorithm = v->as_string();
    name = tenant + "-" + algorithm + "-" + std::to_string(ordinal_++);
    spec_json.set("name", json::Value(name));
  }
  // Stateful deployments checkpoint every study so a drained shutdown can
  // resume it; an explicit per-spec checkpoint wins.
  if (!options_.state_dir.empty() && spec_json.find("checkpoint") == nullptr)
    spec_json.set("checkpoint",
                  json::Value(options_.state_dir + "/" + sanitize(name) + ".trials.json"));

  service::StudySpec spec = service::study_spec_from_json(spec_json, options_.defaults);
  spec.weight *= ledger_.quota(tenant).weight;

  bool start_paused = false;
  if (const json::Value* v = spec_json.find("paused")) start_paused = v->as_bool();

  const rt::StudyId id = manager_.submit(std::move(spec));
  if (start_paused) manager_.pause(id);

  // The stored spec seeds the shutdown manifest; a restart must not
  // re-pause (pause state is connection-era policy, not study identity).
  if (spec_json.contains("paused")) {
    json::Object& object = spec_json.as_object();
    object.erase(std::remove_if(object.begin(), object.end(),
                                [](const auto& member) { return member.first == "paused"; }),
                 object.end());
  }
  StudyInfo info;
  info.tenant = tenant;
  info.name = name;
  info.spec_json = std::move(spec_json);
  studies_.emplace(id, std::move(info));
  ledger_.on_submitted(tenant);
  return id;
}

json::Value Server::op_submit(const json::Value& request) {
  if (draining_) return make_error(request, "shutting down: submissions are closed");
  const json::Value* spec = request.find("spec");
  if (spec == nullptr) return make_error(request, "submit: missing 'spec'");
  const std::string tenant = tenant_field(request);
  if (quota_known_.insert(tenant).second) ledger_.set_quota(tenant, options_.default_quota);
  if (!ledger_.admit_study(tenant))
    return make_error(request, "tenant '" + tenant + "' is over its active-study quota");
  try {
    const rt::StudyId id = submit_spec(tenant, *spec);
    json::Value reply = make_reply(request, true);
    reply.set("study", json::Value(static_cast<std::int64_t>(id)));
    reply.set("name", json::Value(studies_.at(id).name));
    reply.set("state", json::Value(service::study_state_name(manager_.state(id))));
    return reply;
  } catch (const service::SpecError& e) {
    return make_error(request, e.what());
  }
}

json::Value Server::status_json(rt::StudyId id) const {
  const service::StudyStatus status = manager_.status(id);
  json::Value row;
  row.set("study", json::Value(static_cast<std::int64_t>(id)));
  row.set("name", json::Value(status.name));
  const auto info = studies_.find(id);
  row.set("tenant", json::Value(info != studies_.end() ? info->second.tenant : std::string()));
  row.set("algorithm", json::Value(status.algorithm));
  row.set("state", json::Value(service::study_state_name(status.state)));
  row.set("trials_done", json::Value(static_cast<std::int64_t>(status.trials_done)));
  const rt::StudyProgress progress = manager_.progress(id);
  json::Value tasks;
  tasks.set("total", json::Value(static_cast<std::int64_t>(progress.total)));
  tasks.set("waiting", json::Value(static_cast<std::int64_t>(progress.waiting)));
  tasks.set("ready", json::Value(static_cast<std::int64_t>(progress.ready)));
  tasks.set("running", json::Value(static_cast<std::int64_t>(progress.running)));
  tasks.set("done", json::Value(static_cast<std::int64_t>(progress.done)));
  tasks.set("failed", json::Value(static_cast<std::int64_t>(progress.failed)));
  tasks.set("cancelled", json::Value(static_cast<std::int64_t>(progress.cancelled)));
  row.set("tasks", tasks);
  if (terminal(status.state)) {
    const hpo::HpoOutcome& outcome = manager_.outcome(id);
    if (const hpo::Trial* best = outcome.best())
      row.set("best_accuracy", json::Value(best->result.final_val_accuracy));
    row.set("elapsed_seconds", json::Value(outcome.elapsed_seconds));
  }
  return row;
}

json::Value Server::op_list(const json::Value& request) const {
  json::Value reply = make_reply(request, true);
  json::Array rows;
  for (const rt::StudyId id : manager_.studies()) rows.push_back(status_json(id));
  reply.set("studies", json::Value(std::move(rows)));
  return reply;
}

json::Value Server::op_status(const json::Value& request) const {
  const std::optional<rt::StudyId> id = study_field(request);
  if (!id || !manager_.known(*id)) return make_error(request, "unknown study");
  json::Value reply = make_reply(request, true);
  const json::Value row = status_json(*id);  // named: the loop borrows its object
  for (const auto& [key, value] : row.as_object()) reply.set(key, value);
  return reply;
}

json::Value Server::op_lifecycle(const json::Value& request, const std::string& op) {
  const std::optional<rt::StudyId> id = study_field(request);
  if (!id || !manager_.known(*id)) return make_error(request, "unknown study");
  const service::StudyState before = manager_.state(*id);
  if (op == "pause") {
    if (terminal(before) || before == service::StudyState::Paused)
      return make_error(request, std::string("cannot pause a ") +
                                     service::study_state_name(before) + " study");
    manager_.pause(*id);
  } else if (op == "resume") {
    if (terminal(before))
      return make_error(request, std::string("cannot resume a ") +
                                     service::study_state_name(before) + " study");
    manager_.resume(*id);
  } else {  // kill
    if (terminal(before))
      return make_error(request, std::string("study is already ") +
                                     service::study_state_name(before));
    manager_.kill(*id);
  }
  json::Value reply = make_reply(request, true);
  reply.set("study", json::Value(static_cast<std::int64_t>(*id)));
  reply.set("state", json::Value(service::study_state_name(manager_.state(*id))));
  return reply;
}

json::Value Server::op_watch(ClientId client, const json::Value& request,
                             std::vector<Outbound>& snapshots) {
  const json::Value* study = request.find("study");
  std::vector<rt::StudyId> snapshot_ids;
  if (study == nullptr) {
    watch_all_.insert(client);
    snapshot_ids = manager_.studies();
  } else {
    const std::optional<rt::StudyId> id = study_field(request);
    if (!id || !manager_.known(*id)) return make_error(request, "unknown study");
    watchers_[*id].insert(client);
    snapshot_ids.push_back(*id);
  }
  // Immediate state snapshot to just this client: a watch on an already
  // finished study terminates without waiting for an event that will
  // never come.
  for (const rt::StudyId id : snapshot_ids) {
    const service::StudyStatus status = manager_.status(id);
    snapshots.push_back(
        {client, make_state_event(id, status.name, status.state, status.trials_done)});
  }
  return make_reply(request, true);
}

json::Value Server::op_unwatch(ClientId client, const json::Value& request) {
  const std::optional<rt::StudyId> id = study_field(request);
  if (id)
    watchers_[*id].erase(client);
  else
    watch_all_.erase(client);
  return make_reply(request, true);
}

json::Value Server::op_accounting(const json::Value& request) const {
  json::Value reply = make_reply(request, true);
  json::Array rows;
  for (const std::string& tenant : ledger_.tenants()) {
    const service::TenantStats stats = ledger_.stats(tenant);
    const service::TenantQuota quota = ledger_.quota(tenant);
    json::Value row;
    row.set("tenant", json::Value(tenant));
    row.set("studies_submitted", json::Value(static_cast<std::int64_t>(stats.studies_submitted)));
    row.set("studies_active", json::Value(static_cast<std::int64_t>(stats.studies_active)));
    row.set("studies_finished", json::Value(static_cast<std::int64_t>(stats.studies_finished)));
    row.set("studies_killed", json::Value(static_cast<std::int64_t>(stats.studies_killed)));
    row.set("submits_rejected", json::Value(static_cast<std::int64_t>(stats.submits_rejected)));
    row.set("trials_completed", json::Value(static_cast<std::int64_t>(stats.trials_completed)));
    row.set("task_attempts", json::Value(static_cast<std::int64_t>(stats.task_attempts)));
    row.set("replayed_trials", json::Value(static_cast<std::int64_t>(stats.replayed_trials)));
    row.set("cache_hits", json::Value(static_cast<std::int64_t>(stats.cache_hits)));
    row.set("engine_seconds", json::Value(stats.engine_seconds));
    row.set("weight", json::Value(quota.weight));
    row.set("max_active_studies",
            json::Value(static_cast<std::int64_t>(quota.max_active_studies)));
    rows.push_back(row);
  }
  reply.set("tenants", json::Value(std::move(rows)));
  return reply;
}

json::Value Server::op_stats(const json::Value& request) const {
  const service::ManagerStats stats = manager_.stats();
  json::Value reply = make_reply(request, true);
  reply.set("queued", json::Value(static_cast<std::int64_t>(stats.queued)));
  reply.set("running", json::Value(static_cast<std::int64_t>(stats.running)));
  reply.set("paused", json::Value(static_cast<std::int64_t>(stats.paused)));
  reply.set("finished", json::Value(static_cast<std::int64_t>(stats.finished)));
  reply.set("killed", json::Value(static_cast<std::int64_t>(stats.killed)));
  reply.set("total_studies", json::Value(static_cast<std::int64_t>(stats.total_studies)));
  reply.set("trials_done", json::Value(static_cast<std::int64_t>(stats.trials_done)));
  reply.set("inflight", json::Value(static_cast<std::int64_t>(stats.inflight)));
  reply.set("completions_routed",
            json::Value(static_cast<std::int64_t>(stats.completions_routed)));
  reply.set("leaked_completions",
            json::Value(static_cast<std::int64_t>(stats.leaked_completions)));
  reply.set("lineage_violations",
            json::Value(static_cast<std::int64_t>(manager_.lineage_violations())));
  reply.set("draining", json::Value(draining_));
  return reply;
}

json::Value Server::op_quota(const json::Value& request) {
  const json::Value* tenant = request.find("tenant");
  if (tenant == nullptr || !tenant->is_string())
    return make_error(request, "quota: missing 'tenant'");
  service::TenantQuota quota = ledger_.quota(tenant->as_string());
  if (const json::Value* v = request.find("weight")) {
    if (!v->is_number() || v->as_double() <= 0.0)
      return make_error(request, "quota: 'weight' must be a positive number");
    quota.weight = v->as_double();
  }
  if (const json::Value* v = request.find("max_active_studies")) {
    if (!v->is_int() || v->as_int() < 0)
      return make_error(request, "quota: 'max_active_studies' must be a non-negative integer");
    quota.max_active_studies = static_cast<std::size_t>(v->as_int());
  }
  quota_known_.insert(tenant->as_string());
  ledger_.set_quota(tenant->as_string(), quota);
  return make_reply(request, true);
}

std::vector<Outbound> Server::handle(ClientId client, const json::Value& request) {
  std::vector<Outbound> out;
  const json::Value* op_value = request.is_object() ? request.find("op") : nullptr;
  if (op_value == nullptr || !op_value->is_string()) {
    out.push_back({client, make_error(request, "request must be an object with a string 'op'")});
    return out;
  }
  const std::string& op = op_value->as_string();

  json::Value reply;
  bool has_reply = true;
  std::vector<Outbound> snapshots;
  try {
    if (op == "ping") {
      reply = make_reply(request, true);
      reply.set("pong", json::Value(true));
    } else if (op == "submit") {
      reply = op_submit(request);
    } else if (op == "list") {
      reply = op_list(request);
    } else if (op == "status") {
      reply = op_status(request);
    } else if (op == "pause" || op == "resume" || op == "kill") {
      reply = op_lifecycle(request, op);
    } else if (op == "watch") {
      reply = op_watch(client, request, snapshots);
    } else if (op == "unwatch") {
      reply = op_unwatch(client, request);
    } else if (op == "accounting") {
      reply = op_accounting(request);
    } else if (op == "stats") {
      reply = op_stats(request);
    } else if (op == "quota") {
      reply = op_quota(request);
    } else if (op == "shutdown") {
      if (draining_) {
        reply = make_error(request, "already shutting down");
      } else {
        // Checkpoint-everything-then-drain: gate admission, stop every
        // running pump's refills (in-flight attempts finish and are
        // checkpointed per trial), reply from step() once drained.
        draining_ = true;
        manager_.set_admission_paused(true);
        for (const rt::StudyId id : manager_.studies())
          if (manager_.state(id) == service::StudyState::Running) manager_.pause(id);
        shutdown_reply_pending_ = true;
        shutdown_client_ = client;
        shutdown_request_ = request;
        has_reply = false;
        log_info("daemon", "shutdown requested: draining {} in-flight trials",
                 manager_.stats().inflight);
      }
    } else {
      reply = make_error(request, "unknown op '" + op + "'");
    }
  } catch (const std::exception& e) {
    reply = make_error(request, e.what());
  }

  if (has_reply) out.push_back({client, std::move(reply)});
  for (Outbound& snapshot : snapshots) out.push_back(std::move(snapshot));
  drain_events(out);  // state changes caused by this request reach watchers
  return out;
}

std::vector<Outbound> Server::handle_line_error(ClientId client, const std::string& error) {
  return {{client, make_parse_error("parse error: " + error)}};
}

void Server::disconnect(ClientId client) {
  watch_all_.erase(client);
  for (auto& [_, clients] : watchers_) clients.erase(client);
  if (shutdown_reply_pending_ && shutdown_client_ == client) shutdown_reply_pending_ = false;
}

bool Server::busy() const {
  if (done_) return false;
  if (draining_) return true;
  const service::ManagerStats stats = manager_.stats();
  return stats.queued + stats.running + stats.inflight > 0;
}

std::vector<Outbound> Server::step(double seconds) {
  std::vector<Outbound> out;
  if (done_) return out;
  manager_.step_for(seconds);
  drain_events(out);
  if (draining_ && manager_.stats().inflight == 0) {
    write_manifest();
    if (shutdown_reply_pending_) {
      json::Value reply = make_reply(shutdown_request_, true);
      reply.set("drained", json::Value(true));
      std::int64_t persisted = 0;
      for (const auto& [id, _] : studies_)
        if (!terminal(manager_.state(id))) ++persisted;
      reply.set("persisted_studies", json::Value(persisted));
      out.push_back({shutdown_client_, std::move(reply)});
      shutdown_reply_pending_ = false;
    }
    done_ = true;
    log_info("daemon", "drain complete; manifest written, {} leaked completions",
             manager_.leaked_completions());
  }
  return out;
}

void Server::write_manifest() const {
  if (options_.state_dir.empty()) return;
  json::Array entries;
  for (const auto& [id, info] : studies_) {
    if (terminal(manager_.state(id))) continue;
    json::Value entry;
    entry.set("tenant", json::Value(info.tenant));
    entry.set("spec", info.spec_json);
    entries.push_back(std::move(entry));
  }
  json::Value manifest;
  manifest.set("studies", json::Value(std::move(entries)));
  const std::string path = options_.state_dir + "/manifest.json";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    file << json::serialize_pretty(manifest) << "\n";
    if (!file.good()) {
      log_warn("daemon", "failed to write shutdown manifest {}", tmp);
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    log_warn("daemon", "failed to move shutdown manifest into place at {}", path);
}

void Server::load_manifest() {
  if (options_.state_dir.empty()) return;
  const std::string path = options_.state_dir + "/manifest.json";
  json::Value manifest;
  try {
    manifest = json::parse_file(path);
  } catch (const json::JsonError&) {
    return;  // no manifest (fresh start) or unreadable — start empty
  }
  const json::Value* studies = manifest.find("studies");
  if (studies == nullptr || !studies->is_array()) return;
  std::size_t resumed = 0;
  for (const json::Value& entry : studies->as_array()) {
    try {
      const std::string tenant = entry.at("tenant").as_string();
      if (quota_known_.insert(tenant).second) ledger_.set_quota(tenant, options_.default_quota);
      submit_spec(tenant, entry.at("spec"));
      ++resumed;
    } catch (const std::exception& e) {
      log_warn("daemon", "manifest entry skipped: {}", e.what());
    }
  }
  if (resumed > 0)
    log_info("daemon", "resumed {} studies from {} (checkpoints replay completed trials)",
             resumed, path);
}

}  // namespace chpo::daemon
