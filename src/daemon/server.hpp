// Server — the daemon's protocol brain, socket-free.
//
// One Server owns one StudyManager (and through it the Runtime) plus the
// per-tenant ledger, and turns parsed request objects into reply/event
// objects. It never touches a file descriptor: the socket front-end
// (socket_daemon.hpp) feeds it decoded frames and ships back the Outbound
// messages it returns — which is exactly what makes the full protocol
// (including shutdown-drain and watch streaming) unit-testable without a
// socket in sight.
//
// Threading: every method must be called from one thread (the daemon's
// coordinator), because the engine underneath is single-thread confined.
// step() is the cooperation point — it drives the manager for a bounded
// slice so trial completions and admissions interleave with request
// handling instead of blocking it.
//
// Dynamic admission: submit() only queues into the StudyManager; actual
// pump start happens inside the next step()'s admission pass, so a submit
// landing while the engine is saturated never stalls the running pumps.
//
// Shutdown ("checkpoint-everything-then-drain"): admission is gated,
// every Running study is paused (refills stop; in-flight attempts finish
// and are checkpointed per-trial as always), and once nothing is in
// flight the non-terminal studies' specs are written to
// <state_dir>/manifest.json. The reply to the shutdown request is only
// sent then — a client that got the reply knows the manifest is on disk.
// A restarting Server resubmits the manifest entries; their per-study
// checkpoint files replay completed trials, so work resumes where the
// drain cut it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "daemon/protocol.hpp"
#include "jsonlite/json.hpp"
#include "ml/dataset.hpp"
#include "service/study_manager.hpp"
#include "service/study_spec.hpp"
#include "service/tenant_ledger.hpp"

namespace chpo::daemon {

/// Connection identity as the front-end sees it (fd, test index, ...).
using ClientId = std::uint64_t;

/// One message to deliver to one client.
struct Outbound {
  ClientId client = 0;
  json::Value message;
};

struct ServerOptions {
  service::ManagerOptions manager;
  /// Defaults a submitted spec starts from (host-configured driver knobs).
  service::StudySpecDefaults defaults;
  /// Per-study checkpoint files + shutdown manifest live here; empty =
  /// stateless (no checkpoint injection, no manifest, no resume).
  std::string state_dir;
  /// Quota seeded for tenants that never got an explicit `quota` request.
  service::TenantQuota default_quota;
};

class Server {
 public:
  /// Loads <state_dir>/manifest.json if present and resubmits its studies
  /// (their checkpoints replay completed trials). `dataset` must outlive
  /// the server.
  Server(ServerOptions options, const ml::Dataset& dataset);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Dispatch one request; returns the reply plus any events it caused
  /// (e.g. a state event to watchers when the request was `pause`).
  /// Shutdown requests get their reply later, from step(), once drained.
  std::vector<Outbound> handle(ClientId client, const json::Value& request);

  /// A line that failed to decode: an error reply, connection kept.
  std::vector<Outbound> handle_line_error(ClientId client, const std::string& error);

  /// The front-end lost this client: drop its watch subscriptions (and
  /// its pending shutdown reply, if it was the requester).
  void disconnect(ClientId client);

  /// Drive the manager for at most `seconds`; returns watch events (and
  /// the shutdown reply once the drain completes).
  std::vector<Outbound> step(double seconds);

  /// True while step() has (or may soon have) work: studies queued,
  /// running, in flight, or a drain in progress.
  bool busy() const;

  bool draining() const { return draining_; }
  /// Shutdown finished: manifest written, reply emitted. The front-end
  /// exits its loop when this is true and its outboxes are empty.
  bool done() const { return done_; }

  const service::StudyManager& manager() const { return manager_; }
  const service::TenantLedger& ledger() const { return ledger_; }

 private:
  struct StudyInfo {
    std::string tenant;
    std::string name;
    json::Value spec_json;  ///< as admitted (checkpoint/name injected)
    std::size_t trials_counted = 0;  ///< metered live via trial events
    bool closed_accounted = false;   ///< on_study_closed already applied
  };

  json::Value op_submit(const json::Value& request);
  json::Value op_list(const json::Value& request) const;
  json::Value op_status(const json::Value& request) const;
  json::Value op_lifecycle(const json::Value& request, const std::string& op);
  /// Subscribes and appends an immediate state snapshot for the watched
  /// studies to `snapshots` (so watch-after-finish still terminates).
  json::Value op_watch(ClientId client, const json::Value& request,
                       std::vector<Outbound>& snapshots);
  json::Value op_unwatch(ClientId client, const json::Value& request);
  json::Value op_accounting(const json::Value& request) const;
  json::Value op_stats(const json::Value& request) const;
  json::Value op_quota(const json::Value& request);

  void on_manager_event(const service::StudyEvent& event);
  /// Convert buffered manager events into watcher Outbounds and settle
  /// closed studies' accounting (deferred: taps must not re-enter the
  /// manager, but outcome() is safe here).
  void drain_events(std::vector<Outbound>& out);
  void fan_out(rt::StudyId study, const json::Value& event, std::vector<Outbound>& out) const;
  void write_manifest() const;
  void load_manifest();
  rt::StudyId submit_spec(const std::string& tenant, json::Value spec_json);
  json::Value status_json(rt::StudyId id) const;

  /// Manager event copied out of the tap (the Trial pointer dies with the
  /// tap call, so the fields a wire event needs are flattened here).
  struct PendingEvent {
    service::StudyEvent::Kind kind = service::StudyEvent::Kind::StateChanged;
    rt::StudyId study = rt::kMainStudy;
    service::StudyState state = service::StudyState::Queued;
    std::size_t trials_done = 0;
    int trial_index = -1;
    double accuracy = 0.0;
    bool trial_failed = false;
  };

  ServerOptions options_;
  const ml::Dataset& dataset_;
  service::StudyManager manager_;
  service::TenantLedger ledger_;
  std::map<rt::StudyId, StudyInfo> studies_;
  std::map<rt::StudyId, std::set<ClientId>> watchers_;
  std::set<ClientId> watch_all_;
  std::vector<PendingEvent> pending_;
  /// Tenants whose quota is pinned (explicit `quota` request or already
  /// seeded with the default) — first submit seeds options_.default_quota.
  std::set<std::string> quota_known_;
  std::uint64_t ordinal_ = 0;  ///< default study-name counter
  bool draining_ = false;
  bool done_ = false;
  bool shutdown_reply_pending_ = false;
  ClientId shutdown_client_ = 0;
  json::Value shutdown_request_;
};

}  // namespace chpo::daemon
