// Server — the daemon's protocol brain, socket-free.
//
// One Server owns one StudyManager (and through it the Runtime) plus the
// per-tenant ledger, and turns parsed request objects into reply/event
// objects. It never touches a file descriptor: the socket front-end
// (socket_daemon.hpp) feeds it decoded frames and ships back the Outbound
// messages it returns — which is exactly what makes the full protocol
// (including shutdown-drain, watch streaming and crash recovery)
// unit-testable without a socket in sight.
//
// Threading: every method must be called from one thread (the daemon's
// coordinator), because the engine underneath is single-thread confined.
// step() is the cooperation point — it drives the manager for a bounded
// slice so trial completions and admissions interleave with request
// handling instead of blocking it.
//
// Dynamic admission: submit() only queues into the StudyManager; actual
// pump start happens inside the next step()'s admission pass, so a submit
// landing while the engine is saturated never stalls the running pumps.
//
// Crash safety (the daemon process is a fault domain, like worker nodes):
// every state-changing request is appended to a write-ahead journal
// (journal.hpp) and fsynced before its reply leaves handle()/step() — an
// acknowledged submit/kill/pause/resume/quota survives kill -9 at any
// instant. Every `journal_compact_every` records the journal is folded
// into the manifest snapshot (atomic tmp+rename+fsync) and truncated.
// Startup is a two-phase recovery: load the snapshot, replay the journal
// on top (stopping at a torn tail, detected by per-record CRCs), resubmit
// the surviving studies (their per-study checkpoints replay completed
// trials) and reconcile the TenantLedger so every trial and engine-second
// is counted exactly once across the restart. A submit whose request "id"
// is a string is idempotent: the id seeds a dedup window (persisted via
// journal + snapshot), so a client retrying a reply lost to a crash gets
// the original study back instead of a duplicate.
//
// Shutdown ("checkpoint-everything-then-drain"): admission is gated,
// every Running study is paused (refills stop; in-flight attempts finish
// and are checkpointed per-trial as always), and once nothing is in
// flight the final snapshot is written and the journal truncated. The
// reply to the shutdown request is only sent then — a client that got
// the reply knows the manifest is on disk. A restarting Server resubmits
// the manifest entries; their per-study checkpoint files replay completed
// trials, so work resumes where the drain cut it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "daemon/journal.hpp"
#include "daemon/protocol.hpp"
#include "jsonlite/json.hpp"
#include "ml/dataset.hpp"
#include "service/study_manager.hpp"
#include "service/study_spec.hpp"
#include "service/tenant_ledger.hpp"

namespace chpo::daemon {

/// Connection identity as the front-end sees it (fd, test index, ...).
using ClientId = std::uint64_t;

/// One message to deliver to one client.
struct Outbound {
  ClientId client = 0;
  json::Value message;
};

struct ServerOptions {
  service::ManagerOptions manager;
  /// Defaults a submitted spec starts from (host-configured driver knobs).
  service::StudySpecDefaults defaults;
  /// Per-study checkpoint files, the write-ahead journal and the manifest
  /// snapshot live here; empty = stateless (no journal, no recovery).
  std::string state_dir;
  /// Quota seeded for tenants that never got an explicit `quota` request.
  service::TenantQuota default_quota;
  /// fsync the journal before acknowledgements (--fsync / --no-fsync).
  bool fsync = true;
  /// Journal records between snapshot compactions (0 = only at shutdown).
  std::size_t journal_compact_every = 256;
};

class Server {
 public:
  /// Runs crash recovery against <state_dir> if present: snapshot, then
  /// journal replay, then resubmission of surviving studies (their
  /// checkpoints replay completed trials). `dataset` must outlive the
  /// server.
  Server(ServerOptions options, const ml::Dataset& dataset);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Dispatch one request; returns the reply plus any events it caused
  /// (e.g. a state event to watchers when the request was `pause`). The
  /// journal is synced before returning, so a delivered reply implies a
  /// durable operation. Shutdown requests get their reply later, from
  /// step(), once drained.
  std::vector<Outbound> handle(ClientId client, const json::Value& request);

  /// A line that failed to decode: an error reply, connection kept.
  std::vector<Outbound> handle_line_error(ClientId client, const std::string& error);

  /// The front-end lost this client: drop its watch subscriptions (and
  /// its pending shutdown reply, if it was the requester).
  void disconnect(ClientId client);

  /// Drive the manager for at most `seconds`; returns watch events (and
  /// the shutdown reply once the drain completes).
  std::vector<Outbound> step(double seconds);

  /// True while step() has (or may soon have) work: studies queued,
  /// running, in flight, or a drain in progress.
  bool busy() const;

  bool draining() const { return draining_; }
  /// Shutdown finished: manifest written, reply emitted. The front-end
  /// exits its loop when this is true and its outboxes are empty.
  bool done() const { return done_; }

  /// Startup found a corrupt manifest (quarantined to manifest.json.bad)
  /// — state was recovered degraded, not silently reset. Also surfaced
  /// over the `stats` op.
  bool recovered_degraded() const { return recovered_degraded_; }

  const service::StudyManager& manager() const { return manager_; }
  const service::TenantLedger& ledger() const { return ledger_; }

 private:
  struct StudyInfo {
    std::string tenant;
    std::string name;
    json::Value spec_json;  ///< as admitted (checkpoint/name injected)
    std::size_t trials_counted = 0;  ///< metered live via trial events
    /// Attempt/replay meters applied live alongside trials_counted — the
    /// exactly-once close subtracts these from the study's totals.
    service::TrialDelta counted_delta;
    bool closed_accounted = false;  ///< close already applied
    std::string dedup_key;          ///< idempotent-submit key ("" = none)
    /// Client-visible pause intent (submit paused / pause / resume ops).
    /// Tracked here because the manager reports pause-on-queued as Queued,
    /// and the drain's internal pauses must not look client-requested.
    bool paused_wanted = false;
  };

  /// One idempotent-submit window entry: what a retried submit gets back.
  struct DedupEntry {
    bool live = false;  ///< study currently known to the manager
    rt::StudyId study = rt::kMainStudy;
    std::string name;
    std::string last_state;  ///< state name once no longer live
  };

  json::Value op_submit(const json::Value& request);
  json::Value op_list(const json::Value& request) const;
  json::Value op_status(const json::Value& request) const;
  json::Value op_lifecycle(const json::Value& request, const std::string& op);
  /// Subscribes and appends an immediate state snapshot for the watched
  /// studies to `snapshots` (so watch-after-finish still terminates).
  json::Value op_watch(ClientId client, const json::Value& request,
                       std::vector<Outbound>& snapshots);
  json::Value op_unwatch(ClientId client, const json::Value& request);
  json::Value op_accounting(const json::Value& request) const;
  json::Value op_stats(const json::Value& request) const;
  json::Value op_quota(const json::Value& request);

  void on_manager_event(const service::StudyEvent& event);
  /// Convert buffered manager events into watcher Outbounds and settle
  /// closed studies' accounting (deferred: taps must not re-enter the
  /// manager, but outcome() is safe here).
  void drain_events(std::vector<Outbound>& out);
  void fan_out(rt::StudyId study, const json::Value& event, std::vector<Outbound>& out) const;
  rt::StudyId submit_spec(const std::string& tenant, json::Value spec_json);
  json::Value status_json(rt::StudyId id) const;

  // --- write-ahead journal + snapshot ---------------------------------
  /// Append one record (tagged with the current epoch) to the journal.
  void journal_event(json::Value record);
  /// Snapshot (studies + ledger + dedup + ordinal + epoch) atomically to
  /// manifest.json. `include_paused` preserves client-visible pause state
  /// (compaction); the graceful-shutdown snapshot drops it, because pause
  /// is connection-era policy, not study identity.
  void write_snapshot(bool include_paused) const;
  /// Snapshot + truncate the journal + bump the epoch.
  void compact(bool include_paused);
  void maybe_compact();
  /// Two-phase recovery: snapshot, then journal replay, then candidate
  /// resubmission, then an immediate compaction (so the on-disk state
  /// references this lifetime's study ids).
  void recover();
  void remember_dedup(const std::string& key, DedupEntry entry);

  /// Manager event copied out of the tap (the Trial pointer dies with the
  /// tap call, so the fields a wire event needs are flattened here).
  struct PendingEvent {
    service::StudyEvent::Kind kind = service::StudyEvent::Kind::StateChanged;
    rt::StudyId study = rt::kMainStudy;
    service::StudyState state = service::StudyState::Queued;
    std::size_t trials_done = 0;
    int trial_index = -1;
    double accuracy = 0.0;
    bool trial_failed = false;
  };

  ServerOptions options_;
  const ml::Dataset& dataset_;
  service::StudyManager manager_;
  service::TenantLedger ledger_;
  StateJournal journal_;
  std::map<rt::StudyId, StudyInfo> studies_;
  std::map<rt::StudyId, std::set<ClientId>> watchers_;
  std::set<ClientId> watch_all_;
  std::vector<PendingEvent> pending_;
  /// Tenants whose quota is pinned (explicit `quota` request or already
  /// seeded with the default) — first submit seeds options_.default_quota.
  std::set<std::string> quota_known_;
  /// Idempotent-submit window, insertion-ordered and bounded.
  static constexpr std::size_t kDedupWindow = 128;
  std::map<std::string, DedupEntry> dedup_;
  std::deque<std::string> dedup_order_;
  std::uint64_t ordinal_ = 0;  ///< default study-name counter
  /// Compaction epoch: journal records carry it, the snapshot stores it,
  /// and replay skips records from epochs the snapshot already folded in
  /// (a crash between snapshot-rename and journal-truncate is harmless).
  std::uint64_t epoch_ = 1;
  bool recovered_degraded_ = false;
  bool draining_ = false;
  bool done_ = false;
  bool shutdown_reply_pending_ = false;
  ClientId shutdown_client_ = 0;
  json::Value shutdown_request_;
};

}  // namespace chpo::daemon
