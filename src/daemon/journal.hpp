// StateJournal — the daemon's write-ahead log.
//
// Every state-changing event the Server acknowledges (submit, kill,
// pause, resume, quota change, study close, rejected submit) is appended
// here as one CRC-tagged NDJSON record (jsonlite/record.hpp) and fsynced
// BEFORE the reply leaves the process. The contract that buys:
//
//   acknowledged  =>  recoverable.
//
// A crash (`kill -9`, OOM, power loss) at any instant loses at most the
// operations whose replies were never sent — which the client retries
// (chpo_ctl's backoff + the server's idempotent-submit dedup window make
// the retry safe). A torn final write is detected by its CRC; recovery
// replays the journal up to the last intact record.
//
// Periodically (every `compact_every` appended records) the Server folds
// the journal into the manifest snapshot (atomic tmp+rename) and calls
// reset() to truncate the log — the journal never grows without bound.
//
// Crash-injection hook (tests only): when the environment variable
// CHPO_CRASH_AFTER_OP=<n> is set, the n-th append _exit(137)s the
// process right after (or, with CHPO_CRASH_TORN=1, halfway through) the
// write — the exact abrupt-death instants the recovery path must absorb.
//
// Threading: driven from the coordinator thread, same confinement as the
// Server, but guarded by its own mutex (lockdep class daemon.journal) so
// the append/fsync barrier is an explicit lock class in the global
// acquisition order rather than an unstated convention. The journal lock
// is by design held across fsync — it IS the durability barrier — which
// is why daemon/journal.cpp is the one documented exemption from the
// lint rule forbidding blocking calls under a lock.
#pragma once

#include <cstddef>
#include <string>

#include "jsonlite/json.hpp"
#include "jsonlite/record.hpp"
#include "support/thread_annotations.hpp"

namespace chpo::daemon {

struct JournalOptions {
  /// Journal file path; empty = journalling disabled (stateless daemon).
  std::string path;
  /// fsync after each acknowledged batch. Off trades durability of the
  /// last instants for throughput (recovery still works from whatever
  /// reached the disk).
  bool fsync = true;
  /// Appended records that trigger a compaction (snapshot + truncate);
  /// 0 = never compact on count (shutdown still snapshots).
  std::size_t compact_every = 256;
};

class StateJournal {
 public:
  explicit StateJournal(JournalOptions options);
  ~StateJournal();

  StateJournal(const StateJournal&) = delete;
  StateJournal& operator=(const StateJournal&) = delete;

  bool enabled() const { return fd_ >= 0; }

  /// Append one record (buffered in the kernel, not yet synced). Returns
  /// false if the write failed (disk full / fd gone) — the caller logs
  /// and runs degraded rather than crashing the fleet.
  bool append(const json::Value& record);

  /// Barrier before an acknowledgement leaves the process: fsync the
  /// appended records (no-op when nothing was appended or fsync is off).
  void sync();

  /// Records appended since the last reset() (compaction trigger).
  std::size_t appended_since_reset() const {
    const MutexLock lock(mutex_);
    return appended_;
  }
  /// True when the compaction threshold has been crossed.
  bool wants_compaction() const {
    const MutexLock lock(mutex_);
    return fd_ >= 0 && options_.compact_every > 0 && appended_ >= options_.compact_every;
  }

  /// Truncate the journal after a successful snapshot. The truncate is
  /// synced so a crash right after compaction cannot resurrect stale
  /// records on top of the new snapshot.
  void reset();

  /// Replay the journal at `path` up to the last intact record.
  static json::RecordReplay load(const std::string& path);

 private:
  void crash_hook(const std::string& bytes) CHPO_REQUIRES(mutex_);

  JournalOptions options_;
  /// Set once in the constructor, closed in the destructor; stable in
  /// between, so reads need no lock. The mutex serializes *use* of the fd
  /// (append/sync/truncate) and the counters derived from it.
  int fd_ = -1;
  mutable Mutex mutex_{lockdep::kDaemonJournal};
  std::size_t appended_ CHPO_GUARDED_BY(mutex_) = 0;
  bool dirty_ CHPO_GUARDED_BY(mutex_) = false;
  /// CHPO_CRASH_AFTER_OP countdown (-1 = hook disabled).
  long crash_after_ = -1;
  bool crash_torn_ = false;
};

}  // namespace chpo::daemon
