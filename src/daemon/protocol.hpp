// Wire-protocol message shapes for the HPO service daemon.
//
// Framing is NDJSON (jsonlite/wire.hpp): one JSON object per line, both
// directions. Requests carry an "op" plus op-specific fields; every
// request gets exactly one reply object with "ok" (true/false) and the
// request's "id" echoed back when present, so clients can pipeline.
// Streaming `watch` subscriptions additionally receive event objects
// (distinguished by an "event" field instead of "ok") interleaved with
// replies on the same connection.
//
//   request  {"op":"submit","id":7,"tenant":"alice","spec":{...}}
//   reply    {"id":7,"ok":true,"study":3,"name":"alice-tpe"}
//   error    {"id":7,"ok":false,"error":"unknown study 42"}
//   event    {"event":"trial","study":3,"name":"alice-tpe","index":0,
//             "accuracy":0.91,"failed":false,"trials_done":1}
//   event    {"event":"state","study":3,"name":"alice-tpe",
//             "state":"finished","trials_done":8}
#pragma once

#include <optional>
#include <string>

#include "jsonlite/json.hpp"
#include "runtime/types.hpp"
#include "service/study_manager.hpp"

namespace chpo::daemon {

/// Reply skeleton: {"id": <echoed>, "ok": ok}. Callers add result fields.
json::Value make_reply(const json::Value& request, bool ok);

/// Error reply for a parsed request (echoes its "id" when present).
json::Value make_error(const json::Value& request, const std::string& message);

/// Error reply for a line that never parsed (no id to echo).
json::Value make_parse_error(const std::string& message);

/// {"event":"trial", ...} — one completed trial of a watched study.
json::Value make_trial_event(rt::StudyId study, const std::string& name, int index,
                             double accuracy, bool failed, std::size_t trials_done);

/// {"event":"state", ...} — a watched study changed lifecycle state.
json::Value make_state_event(rt::StudyId study, const std::string& name,
                             service::StudyState state, std::size_t trials_done);

/// The "study" field of a request, if present and integral.
std::optional<rt::StudyId> study_field(const json::Value& request);

/// The "tenant" field, defaulting to "default" when absent.
std::string tenant_field(const json::Value& request);

}  // namespace chpo::daemon
