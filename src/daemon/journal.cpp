#include "daemon/journal.hpp"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "support/log.hpp"

namespace chpo::daemon {

namespace {

/// write() the whole buffer, riding out EINTR/partial writes.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

StateJournal::StateJournal(JournalOptions options) : options_(std::move(options)) {
  if (options_.path.empty()) return;
  fd_ = ::open(options_.path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    log_warn("daemon", "cannot open journal {}: {} (running without crash safety)",
             options_.path, std::strerror(errno));
    return;
  }
  if (const char* env = std::getenv("CHPO_CRASH_AFTER_OP"); env != nullptr && *env != '\0')
    crash_after_ = std::strtol(env, nullptr, 10);
  if (const char* env = std::getenv("CHPO_CRASH_TORN"); env != nullptr && *env == '1')
    crash_torn_ = true;
}

StateJournal::~StateJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void StateJournal::crash_hook(const std::string& bytes) {
  if (crash_after_ < 0) return;
  if (--crash_after_ > 0) return;
  // Abrupt death mid-operation: optionally tear the record in half first
  // so recovery also has to cope with a partial final write.
  if (crash_torn_) {
    write_all(fd_, bytes.data(), bytes.size() / 2);
  } else {
    write_all(fd_, bytes.data(), bytes.size());
  }
  ::fsync(fd_);
  log_warn("daemon", "CHPO_CRASH_AFTER_OP hook firing: simulating kill -9");
  ::_exit(137);
}

bool StateJournal::append(const json::Value& record) {
  if (fd_ < 0) return false;
  const std::string bytes = json::encode_record(record);
  const MutexLock lock(mutex_);
  crash_hook(bytes);
  if (!write_all(fd_, bytes.data(), bytes.size())) {
    log_warn("daemon", "journal append failed: {} (running degraded)", std::strerror(errno));
    return false;
  }
  ++appended_;
  dirty_ = true;
  return true;
}

void StateJournal::sync() {
  if (fd_ < 0) return;
  // The journal lock held across fsync IS the durability barrier (the
  // documented exemption from the blocking-call-under-lock lint rule).
  const MutexLock lock(mutex_);
  if (!dirty_) return;
  if (options_.fsync) ::fsync(fd_);
  dirty_ = false;
}

void StateJournal::reset() {
  if (fd_ < 0) return;
  const MutexLock lock(mutex_);
  if (::ftruncate(fd_, 0) != 0)
    log_warn("daemon", "journal truncate failed: {}", std::strerror(errno));
  if (options_.fsync) ::fsync(fd_);
  appended_ = 0;
  dirty_ = false;
}

json::RecordReplay StateJournal::load(const std::string& path) {
  return json::read_records(path);
}

}  // namespace chpo::daemon
