#include "daemon/protocol.hpp"

namespace chpo::daemon {

json::Value make_reply(const json::Value& request, bool ok) {
  json::Value reply;
  if (const json::Value* id = request.find("id")) reply.set("id", *id);
  reply.set("ok", json::Value(ok));
  return reply;
}

json::Value make_error(const json::Value& request, const std::string& message) {
  json::Value reply = make_reply(request, false);
  reply.set("error", json::Value(message));
  return reply;
}

json::Value make_parse_error(const std::string& message) {
  json::Value reply;
  reply.set("ok", json::Value(false));
  reply.set("error", json::Value(message));
  return reply;
}

json::Value make_trial_event(rt::StudyId study, const std::string& name, int index,
                             double accuracy, bool failed, std::size_t trials_done) {
  json::Value event;
  event.set("event", json::Value("trial"));
  event.set("study", json::Value(static_cast<std::int64_t>(study)));
  event.set("name", json::Value(name));
  event.set("index", json::Value(static_cast<std::int64_t>(index)));
  event.set("accuracy", json::Value(accuracy));
  event.set("failed", json::Value(failed));
  event.set("trials_done", json::Value(static_cast<std::int64_t>(trials_done)));
  return event;
}

json::Value make_state_event(rt::StudyId study, const std::string& name,
                             service::StudyState state, std::size_t trials_done) {
  json::Value event;
  event.set("event", json::Value("state"));
  event.set("study", json::Value(static_cast<std::int64_t>(study)));
  event.set("name", json::Value(name));
  event.set("state", json::Value(service::study_state_name(state)));
  event.set("trials_done", json::Value(static_cast<std::int64_t>(trials_done)));
  return event;
}

std::optional<rt::StudyId> study_field(const json::Value& request) {
  const json::Value* v = request.find("study");
  if (v == nullptr || !v->is_int() || v->as_int() < 0) return std::nullopt;
  return static_cast<rt::StudyId>(v->as_int());
}

std::string tenant_field(const json::Value& request) {
  const json::Value* v = request.find("tenant");
  if (v != nullptr && v->is_string() && !v->as_string().empty()) return v->as_string();
  return "default";
}

}  // namespace chpo::daemon
