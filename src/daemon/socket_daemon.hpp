// SocketDaemon — the Unix-domain-socket front-end around daemon::Server.
//
// Two threads:
//
//   I/O thread       owns every connection (accept, read, write, close).
//                    Raw bytes feed per-connection LineDecoders; complete
//                    frames become commands on the command queue. It never
//                    touches the Server.
//
//   coordinator      the thread that called run(). Drains the command
//                    queue, calls Server::handle/step (and through it the
//                    single-thread-confined engine), and hands replies and
//                    watch events back as encoded bytes on the outbound
//                    queue. It never touches a socket.
//
// The two queues are the only shared state. The locking discipline —
// enforced by the chpo_lint `registry-lock-blocking-call` rule — is that
// no connection/queue lock is ever held across a blocking Server or
// StudyManager call: queues are locked to move data, unlocked to act on
// it. A slow engine step can therefore never wedge the I/O thread, and a
// slow client can never wedge the engine.
//
// A self-pipe wakes the I/O thread's poll() when the coordinator enqueues
// outbound bytes. Backpressure is per-connection: bytes queue in that
// connection's outbox; other connections and the engine are unaffected.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "daemon/server.hpp"
#include "jsonlite/wire.hpp"
#include "support/thread_annotations.hpp"

namespace chpo::daemon {

struct SocketDaemonOptions {
  /// Path to bind the AF_UNIX listening socket at (unlinked on exit).
  std::string socket_path;
  /// Engine slice per coordinator iteration: how long one Server::step may
  /// drive the engine before request handling gets a turn again.
  double step_seconds = 0.05;
  /// Per-connection input line cap: a client sending a longer line gets a
  /// protocol error and the connection is closed (no unbounded buffering).
  std::size_t max_line_bytes = json::LineDecoder::kDefaultMaxLineBytes;
};

class SocketDaemon {
 public:
  /// `server` must outlive the daemon. run() does the bind/listen.
  SocketDaemon(SocketDaemonOptions options, Server& server);
  ~SocketDaemon();

  SocketDaemon(const SocketDaemon&) = delete;
  SocketDaemon& operator=(const SocketDaemon&) = delete;

  /// Bind + listen, spawn the I/O thread, and run the coordinator loop on
  /// the calling thread until the server reports done (shutdown drained)
  /// and the last replies are flushed. Returns 0 on clean exit, non-zero
  /// if the socket could not be set up.
  int run();

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  /// One decoded input unit, crossing from the I/O thread to the
  /// coordinator. Disconnect tells the Server to drop subscriptions.
  struct Command {
    enum class Kind { Frame, LineError, Disconnect };
    Kind kind = Kind::Frame;
    ClientId client = 0;
    json::Value frame;
    std::string error;
  };

  /// Encoded bytes crossing from the coordinator to the I/O thread.
  struct OutBytes {
    ClientId client = 0;
    std::string bytes;
  };

  bool setup_socket();
  void io_loop();
  /// Wake the I/O thread's poll (self-pipe write; safe from any thread).
  void poke();
  /// Encode server messages and enqueue them for the I/O thread.
  void deliver(std::vector<Outbound> messages);

  SocketDaemonOptions options_;
  Server& server_;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::thread io_thread_;
  std::atomic<bool> stop_{false};

  chpo::Mutex queue_mutex_{lockdep::kDaemonCmdQueue};
  chpo::CondVar queue_cv_;
  std::deque<Command> commands_ CHPO_GUARDED_BY(queue_mutex_);

  chpo::Mutex out_mutex_{lockdep::kDaemonOutbox};
  std::deque<OutBytes> out_pending_ CHPO_GUARDED_BY(out_mutex_);
};

}  // namespace chpo::daemon
