#include "runtime/sim_backend.hpp"

#include <algorithm>
#include <stdexcept>

namespace chpo::rt {

namespace {

struct EvLater {
  template <typename Ev>
  bool operator()(const Ev& a, const Ev& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

SimBackend::SimBackend(Engine& engine, SimOptions options)
    : engine_(engine), options_(options) {
  // Virtual-clock preemption happens at dispatch (the attempt's end event
  // is moved to its deadline), so the engine must not also arm reap
  // deadlines for these attempts. Node deaths/rejoins need no loading
  // here: the engine owns the membership timeline and surfaces it through
  // next_wakeup()/on_wakeup().
  // Construction happens on the coordinator thread (inside the Runtime
  // constructor), so the engine-context capability is ours to assert.
  EngineContextScope ctx(g_engine_ctx);
  engine_.set_backend_preempts_timeouts(true);
}

double SimBackend::task_duration(const TaskRecord& record, const Placement& placement) const {
  const TaskCost& cost = record.implementation_cost(record.active_variant);
  if (!cost) return options_.default_task_seconds;
  const auto& spec = engine_.resources().spec();
  const cluster::NodeSpec& node = spec.nodes.at(static_cast<std::size_t>(placement.node));
  const double seconds = cost(placement, node);
  return seconds > 0.0 ? seconds : 0.0;
}

void SimBackend::dispatch(const Dispatch& d, bool inputs_already_staged) {
  const TaskRecord& record = engine_.graph().task(d.task);
  const double staging =
      inputs_already_staged ? 0.0 : engine_.stage_inputs(d.task, d.placement.node, now_);
  const double duration = task_duration(record, d.placement);

  Ev ev;
  ev.seq = seq_++;
  ev.kind = EvKind::TaskEnd;
  ev.task = d.task;
  ev.attempt_id = d.attempt_id;
  ev.placement = d.placement;
  ev.start = now_ + staging;
  ev.time = ev.start + duration;
  if (options_.execute_bodies) {
    ev.result = engine_.execute_body(d.task, d.placement, /*simulated=*/true);
  } else {
    // Bodies skipped, but injected faults must still fire (fault studies
    // run with execute_bodies=false).
    ev.result = engine_.injection_result(d.task);
  }
  // @task(time_out) or the adaptive timeout: the runtime kills the attempt
  // at its deadline (virtual-clock preemption).
  const double timeout = engine_.attempt_timeout(d.task);
  if (timeout > 0.0 && duration > timeout) {
    ev.time = ev.start + timeout;
    ev.result = AttemptResult{};
    ev.result.error = "timeout after " + std::to_string(timeout) + "s";
  }
  events_.push_back(std::move(ev));
  std::push_heap(events_.begin(), events_.end(), EvLater{});
}

void SimBackend::arm_wakeup() {
  const std::optional<double> wake = engine_.next_wakeup(now_);
  if (!wake) return;
  // Already armed at or before the requested time: the queued event will
  // trigger on_wakeup, which re-arms for anything later.
  if (armed_wakeup_ >= 0.0 && armed_wakeup_ <= *wake) return;
  Ev ev;
  ev.time = *wake;
  ev.seq = seq_++;
  ev.kind = EvKind::EngineWakeup;
  events_.push_back(std::move(ev));
  std::push_heap(events_.begin(), events_.end(), EvLater{});
  armed_wakeup_ = *wake;
}

bool SimBackend::done(TaskId target) const {
  // A barrier also waits out pending lineage recoveries (quiescent), so
  // data lost to a node death is recomputed before control returns.
  return target == kNoTask ? engine_.quiescent() : engine_.task_terminal(target);
}

bool SimBackend::drive(const std::function<bool()>& finished, double deadline) {
  engine_.flush_notifications();
  while (!finished()) {
    // Expired horizon first, before starting new work — mirrors
    // ThreadBackend, so run_for(0) dispatches nothing on either backend.
    if (deadline >= 0.0 && now_ >= deadline) return false;

    // Engine duties due right now (backoff expiries, stragglers), then
    // regular placement. on_wakeup can fail tasks (unsatisfiable promoted
    // retry), so flush before re-checking the target.
    for (const Dispatch& d : engine_.on_wakeup(now_)) dispatch(d, false);
    for (const Dispatch& d : engine_.schedule(now_)) dispatch(d, false);
    engine_.flush_notifications();

    if (finished()) return true;

    // Future duties (straggler thresholds, backoff expiries) become events.
    arm_wakeup();

    if (events_.empty()) {
      if (engine_.reap_infeasible()) {
        engine_.flush_notifications();
        continue;
      }
      if (finished()) return true;
      if (deadline >= 0.0) {
        // Bounded wait with nothing schedulable (e.g. every remaining task
        // held by a paused study): advance to the horizon and hand back.
        now_ = std::max(now_, deadline);
        return false;
      }
      throw std::runtime_error("SimBackend: no pending events but target not finished");
    }

    if (deadline >= 0.0 && events_.front().time > deadline) {
      // The next completion lies beyond the horizon: advance the clock to
      // the deadline and hand control back with attempts still in flight.
      now_ = std::max(now_, deadline);
      return false;
    }

    std::pop_heap(events_.begin(), events_.end(), EvLater{});
    Ev ev = std::move(events_.back());
    events_.pop_back();
    now_ = std::max(now_, ev.time);

    if (ev.kind == EvKind::EngineWakeup) {
      // Loop back to the top: on_wakeup runs with the clock at the armed
      // time (applying node deaths/rejoins at their exact virtual instant),
      // then re-arms for whatever duty is next.
      armed_wakeup_ = -1.0;
      continue;
    }

    Engine::Completion completion =
        engine_.complete_attempt(ev.attempt_id, std::move(ev.result), ev.start, now_);
    // Same-node retry keeps its staged inputs; duration is re-modelled.
    if (completion.retry) dispatch(*completion.retry, true);
    // Safe point: the engine holds no record references here, so queued
    // terminal notifications (and their user callbacks) can fire.
    engine_.flush_notifications();
  }
  return true;
}

void SimBackend::run_until(TaskId target) {
  drive([this, target] { return done(target); }, /*deadline=*/-1.0);
}

void SimBackend::run_until_any(std::span<const TaskId> targets) {
  drive(
      [this, targets] {
        return std::any_of(targets.begin(), targets.end(),
                           [this](TaskId t) { return engine_.task_terminal(t); });
      },
      /*deadline=*/-1.0);
}

bool SimBackend::run_for(double seconds) {
  return drive([this] { return engine_.quiescent(); }, now_ + seconds);
}

bool SimBackend::run_until_any_for(std::span<const TaskId> targets, double seconds) {
  auto any_done = [this, targets] {
    return std::any_of(targets.begin(), targets.end(),
                       [this](TaskId t) { return engine_.task_terminal(t); });
  };
  drive(any_done, now_ + seconds);
  return any_done();
}

void SimBackend::run_until_condition(const std::function<bool()>& finished) {
  drive(finished, /*deadline=*/-1.0);
}

}  // namespace chpo::rt
