#include "runtime/engine.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

#include "support/log.hpp"

namespace chpo::rt {

Engine::Engine(TaskGraph& graph, const cluster::ClusterSpec& spec, EngineOptions options,
               FaultInjector injector, trace::TraceSink& sink)
    : graph_(graph),
      resources_(spec),
      scheduler_(make_scheduler(options.scheduler)),
      options_(std::move(options)),
      injector_(std::move(injector)),
      sink_(sink),
      speculation_(options_.speculation),
      health_(options_.node_health, spec.nodes.size()) {
  scheduler_->set_health(&health_);
  // Turn the injector's membership timeline (explicit schedule + sampled
  // MTTF/MTTR churn) into the engine's unified node-event queue. Both
  // backends drain it through on_wakeup()/schedule() — the simulation
  // backend at exact virtual instants, the threaded one on the wall clock.
  injector_.materialize_node_schedule(spec.nodes.size());
  for (const NodeFailureEvent& f : injector_.node_failures())
    node_events_.push_back(NodeEvent{.time = f.time, .node = f.node, .up = false});
  for (const NodeRecoveryEvent& r : injector_.node_recoveries())
    node_events_.push_back(NodeEvent{.time = r.time, .node = r.node, .up = true});
  std::sort(node_events_.begin(), node_events_.end(), [](const NodeEvent& a, const NodeEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.up < b.up;  // a same-instant down/up pair is a transient blip
  });
}

void Engine::inject_node_event(std::size_t node, double time, bool up) {
  if (node >= resources_.node_count())
    throw std::out_of_range("Engine: node event for unknown node");
  NodeEvent event{.time = time, .node = node, .up = up};
  const auto insert_at = std::upper_bound(
      node_events_.begin() + static_cast<std::ptrdiff_t>(next_node_event_), node_events_.end(),
      event, [](const NodeEvent& a, const NodeEvent& b) { return a.time < b.time; });
  node_events_.insert(insert_at, event);
}

void Engine::on_submitted(TaskId task, double now) {
  TaskRecord& record = graph_.task(task);
  ++study_counts_[record.study].submitted;
  sink_.record(trace::Event{.kind = trace::EventKind::TaskSubmit,
                            .task_id = task,
                            .study = record.study,
                            .task_name = record.def.name,
                            .t_start = now,
                            .t_end = now});
  if (record.state == TaskState::Cancelled) {
    // Doomed at submission: a predecessor had already failed.
    mark_terminal(task);
    return;
  }
  if (record.state == TaskState::Ready) make_ready(task);
}

void Engine::on_submitted_batch(const std::vector<TaskId>& tasks, double now) {
  // Deliberately the same per-task sequence as N on_submitted calls, in
  // submission order: batch admission amortizes what surrounds this loop
  // (context scope, notification flush, backend wakeup), never what is in
  // it — that keeps sim schedules bit-identical across submission styles.
  for (const TaskId task : tasks) on_submitted(task, now);
}

void Engine::mark_terminal(TaskId task) {
  ++terminal_;
  TaskRecord& record = graph_.task(task);
  ++study_counts_[record.study].terminal;
  record.terminal_seq = ++terminal_seq_;
  // Queue, don't fire: the listener may run a user callback that submits
  // new tasks — reallocating the graph's record storage and appending to
  // existing tasks' successor lists — while complete_attempt or
  // cancel_dependents still holds references into them.
  if (on_terminal_) pending_notifications_.emplace_back(task, record.state);
}

void Engine::flush_notifications() {
  if (flushing_) return;  // outermost flush drains what a callback queued
  flushing_ = true;
  struct Reset {
    bool& flag;
    ~Reset() { flag = false; }
  } reset{flushing_};
  while (!pending_notifications_.empty()) {
    const auto [task, state] = pending_notifications_.front();
    pending_notifications_.pop_front();
    on_terminal_(task, state);
  }
}

namespace {

/// Any implementation (primary or @implement variant) feasible?
bool any_implementation_feasible(const TaskRecord& record, const ResourceState& resources) {
  if (resources.feasible(record.def.constraint)) return true;
  for (const TaskVariant& variant : record.def.variants)
    if (resources.feasible(variant.constraint)) return true;
  return false;
}

}  // namespace

void Engine::make_ready(TaskId task) {
  TaskRecord& record = graph_.task(task);
  record.state = TaskState::Ready;
  if (!any_implementation_feasible(record, resources_)) {
    log_warn("engine", "task {} '{}' has an unsatisfiable constraint ({} cpus, {} gpus)", task,
             record.def.name, record.def.constraint.cpus, record.def.constraint.gpus);
    record.state = TaskState::Failed;
    record.failure_reason = "constraint unsatisfiable on this cluster";
    mark_terminal(task);
    cancel_dependents(task);
    return;
  }
  push_ready(record);
}

void Engine::push_ready(TaskRecord& record) {
  if (record.in_ready) return;  // already queued (and its entry is live)
  record.in_ready = true;
  ++record.ready_epoch;
  ready_shards_[record.study].fifo.emplace_back(record.id, record.ready_epoch);
  ++ready_total_;
}

void Engine::remove_from_ready(TaskRecord& record) {
  if (!record.in_ready) return;
  record.in_ready = false;
  ++record.ready_epoch;  // the queued entry no longer matches: stale
  --ready_total_;
}

std::vector<Dispatch> Engine::schedule(double now) {
  std::vector<Dispatch> dispatches;
  process_node_events(now, dispatches);

  // One walk per study shard: compact lazily-removed (stale) entries in
  // place and lineage-gate the survivors. A ready task whose input
  // versions died with a node stays queued (its recovery is demanded
  // here) instead of dispatching into a DataLostError; tasks with
  // unrecoverable inputs fail below. The gate runs before
  // dispatch_recoveries so a recovery it demands can launch in this same
  // pass. The per-input version_lost probes (a shared-lock registry
  // lookup each) only run while some version is actually lost — the
  // common case skips them entirely.
  const bool gate = graph_.registry().lost_count() > 0;
  // Study policy (pause / max_running quota) is applied here, during the
  // walk, by capping how many live entries each shard contributes — the
  // first `budget` survivors, i.e. exactly the set the old post-hoc
  // truncation kept. Held entries are still compacted and lineage-gated,
  // they just don't become candidates this round.
  //
  // Candidate collection has two shapes. Order-insensitive schedulers
  // (everything but Fifo) re-sort by (priority, id) anyway, so their
  // candidates go straight into one flat reused buffer and the fair-share
  // interleave is skipped wholesale. Fifo consumes engine order, so its
  // candidates keep per-study lists for the weighted-deficit interleave.
  const bool interleave = scheduler_->order_sensitive();
  std::map<StudyId, std::vector<TaskId>> runnable;
  schedule_scratch_.clear();
  std::vector<TaskId> doomed;
  for (auto& [study, shard] : ready_shards_) {
    const StudyPolicy policy = policy_for(study);
    std::size_t budget = shard.fifo.size();
    if (policy.paused) {
      budget = 0;
    } else if (policy.max_running > 0) {
      // Lineage-recovery attempts re-execute Done tasks on the engine's
      // behalf and never count against a study's cap — the shard counter
      // only tracks non-recovery attempts.
      const int slots = policy.max_running - shard.running;
      budget = slots > 0 ? static_cast<std::size_t>(slots) : 0;
    }
    std::vector<TaskId>* live = nullptr;
    std::size_t taken = 0;
    std::size_t write = 0;
    for (std::size_t read = 0; read < shard.fifo.size(); ++read) {
      const std::pair<TaskId, std::uint32_t> entry = shard.fifo[read];
      TaskRecord& record = graph_.task(entry.first);
      if (!record.in_ready || record.ready_epoch != entry.second) continue;  // stale: drop
      shard.fifo[write++] = entry;
      if (gate) {
        bool task_doomed = false;
        if (!inputs_ready(record, now, task_doomed)) {
          if (task_doomed) doomed.push_back(entry.first);
          continue;  // held behind lineage recovery (or failed below)
        }
      }
      if (taken >= budget) continue;  // paused or at quota: hold, keep compacting
      ++taken;
      if (interleave) {
        if (live == nullptr) live = &runnable[study];
        live->push_back(entry.first);
      } else {
        schedule_scratch_.push_back(entry.first);
      }
    }
    shard.fifo.resize(write);
  }
  for (TaskId id : doomed) {
    TaskRecord& record = graph_.task(id);
    remove_from_ready(record);
    record.state = TaskState::Failed;
    record.failure_reason = "input data lost with a node and unrecoverable";
    mark_terminal(id);
    cancel_dependents(id);
  }
  // Recoveries get resource priority over fresh placements: downstream
  // work is already blocked on them.
  dispatch_recoveries(now, dispatches);
  std::vector<TaskId> interleaved;
  if (interleave) interleaved = apply_study_policy(runnable);
  const std::vector<TaskId>& ordered = interleave ? interleaved : schedule_scratch_;
  if (ordered.empty()) return dispatches;

  std::vector<Dispatch> placed = scheduler_->schedule(ordered, graph_, resources_);
  for (Dispatch& d : placed) {
    TaskRecord& record = graph_.task(d.task);
    remove_from_ready(record);
    record.state = TaskState::Running;
    record.last_node = d.placement.node;
    record.active_variant = d.variant;
    check_input_liveness(record);
    d.attempt_id = register_attempt(d.task, d.placement, now, /*speculative=*/false);
    sink_.record(trace::Event{.kind = trace::EventKind::TaskSchedule,
                              .task_id = d.task,
                              .study = record.study,
                              .attempt = record.attempts_made + 1,
                              .task_name = record.def.name,
                              .node = d.placement.node,
                              .cores = d.placement.cores,
                              .t_start = now,
                              .t_end = now});
    dispatches.push_back(std::move(d));
  }
  return dispatches;
}

void Engine::set_study_policy(StudyId study, StudyPolicy policy) {
  if (policy.weight <= 0.0)
    throw std::invalid_argument("Engine: study fair-share weight must be > 0");
  study_policies_[study] = policy;
}

void Engine::set_study_paused(StudyId study, bool paused) {
  study_policies_[study].paused = paused;
}

bool Engine::study_paused(StudyId study) const {
  const auto it = study_policies_.find(study);
  return it != study_policies_.end() && it->second.paused;
}

StudyPolicy Engine::policy_for(StudyId study) const {
  const auto it = study_policies_.find(study);
  return it == study_policies_.end() ? StudyPolicy{} : it->second;
}

std::size_t Engine::study_task_count(StudyId study) const {
  const auto it = study_counts_.find(study);
  return it == study_counts_.end() ? 0 : it->second.submitted;
}

std::size_t Engine::study_terminal_count(StudyId study) const {
  const auto it = study_counts_.find(study);
  return it == study_counts_.end() ? 0 : it->second.terminal;
}

std::size_t Engine::cancel_study(StudyId study, double now) {
  std::size_t cancelled = 0;
  const std::size_t total = graph_.size();
  for (TaskId id = 0; id < total; ++id) {
    if (graph_.task(id).study != study) continue;
    if (cancel(id, now)) ++cancelled;
  }
  sink_.record(trace::Event{.kind = trace::EventKind::StudyCancel,
                            .task_id = cancelled,
                            .study = study,
                            .t_start = now,
                            .t_end = now});
  return cancelled;
}

std::vector<TaskId> Engine::apply_study_policy(std::map<StudyId, std::vector<TaskId>>& runnable) {
  std::vector<TaskId> out;
  if (runnable.empty()) return out;
  // Lists arrive pre-filtered from the ready-shard walk (pause and
  // max_running quotas already applied by capping each shard's
  // contribution), so a single study's order is just its FIFO order.
  if (runnable.size() == 1) return std::move(runnable.begin()->second);

  // Weighted-deficit interleave: repeatedly grant the study whose
  // (running + granted) / weight is smallest, so over time each study's
  // share of placements tracks its weight. `running` is the shard counter
  // maintained at attempt registration/conclusion — an O(studies) read
  // per pass instead of an O(inflight) rescan; only studies whose counter
  // actually moved shift the interleave. Ties go to the lowest StudyId —
  // deterministic on both backends (std::map iterates in id order).
  //
  // The deficit is a multiply by the precomputed reciprocal weight: the
  // scan runs once per granted task, so a divide here is measurable in
  // storms.
  struct Cursor {
    std::vector<TaskId>* list = nullptr;
    std::size_t next = 0;
    int active = 0;
    double inv_weight = 1.0;
  };
  // A flat array, filled in StudyId order (the map guarantees it): the
  // selection scan below runs once per granted task, so it must walk
  // contiguous memory, and "first cursor wins ties" then means "lowest
  // StudyId wins" — deterministic on both backends.
  std::vector<Cursor> cursors;
  cursors.reserve(runnable.size());
  std::size_t total = 0;
  for (auto& [study, list] : runnable) {
    if (list.empty()) continue;
    Cursor c;
    c.list = &list;
    c.active = ready_shards_[study].running;
    c.inv_weight = 1.0 / policy_for(study).weight;
    cursors.push_back(c);
    total += list.size();
  }
  out.reserve(total);
  while (true) {
    Cursor* best = nullptr;
    double best_deficit = 0.0;
    for (Cursor& c : cursors) {
      if (c.next >= c.list->size()) continue;
      const double deficit = static_cast<double>(c.active) * c.inv_weight;
      if (best == nullptr || deficit < best_deficit) {
        best = &c;
        best_deficit = deficit;
      }
    }
    if (best == nullptr) break;
    out.push_back((*best->list)[best->next++]);
    ++best->active;
  }
  return out;
}

std::string Engine::speculation_key(const TaskRecord& record) const {
  if (record.active_variant < 0) return record.def.name;
  return record.def.name + "#" + std::to_string(record.active_variant);
}

double Engine::attempt_timeout(TaskId task) const {
  const TaskRecord& record = graph_.task(task);
  return speculation_.effective_timeout(speculation_key(record), record.def.timeout_seconds);
}

std::uint64_t Engine::register_attempt(TaskId task, const Placement& placement, double now,
                                       bool speculative, bool recovery) {
  TaskRecord& record = graph_.task(task);
  ++running_;
  ++record.running_attempts;
  // Shard counter behind the fair-share deficits; recovery attempts act on
  // the engine's behalf and never count against their study.
  if (!recovery) ++ready_shards_[record.study].running;
  health_.on_placement(static_cast<std::size_t>(placement.node));
  Attempt attempt;
  attempt.task = task;
  attempt.placement = placement;
  attempt.start = now;
  attempt.speculative = speculative;
  attempt.recovery = recovery;
  const double timeout = attempt_timeout(task);
  attempt.deadline = (!backend_preempts_timeouts_ && timeout > 0.0)
                         ? now + timeout
                         : std::numeric_limits<double>::infinity();
  const std::uint64_t id = next_attempt_id_++;
  inflight_.emplace(id, std::move(attempt));
  return id;
}

Engine::BodyJob Engine::prepare_body(TaskId task) const {
  const TaskRecord& record = graph_.task(task);
  BodyJob job;
  job.task = task;
  // A lineage recompute replays the attempt that originally succeeded, so
  // its per-attempt seed (and thus any seeded randomness in the body) is
  // identical and the recomputed value matches bit for bit.
  job.attempt = record.recovering && record.state == TaskState::Done ? record.succeeded_attempt
                                                                     : record.attempts_made + 1;
  job.body = record.implementation_body(record.active_variant);
  job.bindings = record.bindings;
  job.seed = options_.seed ^ (task * 0x9e3779b97f4a7c15ULL) ^
             static_cast<std::uint64_t>(job.attempt);
  return job;
}

AttemptResult Engine::execute_prepared(const BodyJob& job, const Placement& placement,
                                       bool simulated) {
  AttemptResult result;
  if (injector_.should_fail(job.task, job.attempt)) {
    result.error = "injected failure";
    return result;
  }
  if (!job.body) {
    result.success = true;  // pure-cost task (simulation-only workloads)
    return result;
  }
  TaskContext ctx(graph_.registry(), job.bindings, placement, job.attempt, simulated, job.seed);
  try {
    result.return_value = job.body(ctx);
    result.writes = ctx.pending_writes();
    result.success = true;
  } catch (const DataLostError& e) {
    // An input's replicas died mid-flight. Flagged so the conclusion path
    // re-queues the task behind lineage recovery without charging it.
    result.error = e.what();
    result.data_lost = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception in task body";
  }
  return result;
}

AttemptResult Engine::execute_body(TaskId task, const Placement& placement, bool simulated) {
  return execute_prepared(prepare_body(task), placement, simulated);
}

AttemptResult Engine::injection_result(TaskId task) {
  const TaskRecord& record = graph_.task(task);
  AttemptResult result;
  if (injector_.should_fail(task, record.attempts_made + 1))
    result.error = "injected failure";
  else
    result.success = true;
  return result;
}

double Engine::stage_inputs(TaskId task, int node, double now) {
  const cluster::ClusterSpec& spec = resources_.spec();
  if (spec.has_parallel_fs) return 0.0;
  TaskRecord& record = graph_.task(task);
  DataRegistry& registry = graph_.registry();
  double total = 0.0;
  for (const ParamBinding& b : record.bindings) {
    if (b.param.dir == Direction::Out) continue;
    if (registry.available_everywhere(b.param.data, b.read_version)) continue;
    if (registry.locations(b.param.data, b.read_version).contains(node)) continue;
    const double seconds = spec.network.transfer_seconds(registry.bytes_of(b.param.data));
    sink_.record(trace::Event{.kind = trace::EventKind::Transfer,
                              .task_id = task,
                              .study = record.study,
                              .task_name = record.def.name,
                              .node = node,
                              .t_start = now + total,
                              .t_end = now + total + seconds});
    registry.add_location(b.param.data, b.read_version, node);
    total += seconds;
  }
  return total;
}

void Engine::commit_outputs(TaskRecord& task, AttemptResult& result) {
  DataRegistry& registry = graph_.registry();
  const cluster::ClusterSpec& spec = resources_.spec();
  // With a PFS every node can read fresh outputs; otherwise they live on
  // the producing node until staged elsewhere.
  const int location = spec.has_parallel_fs ? -1 : task.last_node;

  // Explicit ctx.write()s first (last write to an index wins).
  std::vector<bool> written(task.bindings.size(), false);
  for (auto& [index, value] : result.writes) {
    const ParamBinding& b = task.bindings[index];
    registry.commit(b.param.data, b.write_version, std::move(value), location);
    written[index] = true;
  }
  // The body's return value goes to the implicit result binding (the last).
  const std::size_t result_index = task.bindings.size() - 1;
  if (!written[result_index]) {
    registry.commit(task.result.data, task.result.version, std::move(result.return_value), location);
    written[result_index] = true;
  }
  // InOut params not explicitly written carry the old value forward; Out
  // params not written become empty (reading them is a caller bug).
  for (std::size_t i = 0; i < task.bindings.size(); ++i) {
    if (written[i]) continue;
    const ParamBinding& b = task.bindings[i];
    if (b.param.dir == Direction::InOut)
      registry.commit(b.param.data, b.write_version,
                      registry.value(b.param.data, b.read_version), location);
    else if (b.param.dir == Direction::Out)
      registry.commit(b.param.data, b.write_version, {}, location);
  }
}

Engine::Completion Engine::complete_attempt(std::uint64_t attempt_id, AttemptResult result,
                                            double start, double end) {
  const auto it = inflight_.find(attempt_id);
  // Stale: the attempt was reaped at its deadline (its failure is already
  // accounted for and its resources released) — drop the late completion.
  if (it == inflight_.end()) return {};
  const Attempt attempt = std::move(it->second);
  inflight_.erase(it);
  return conclude_attempt(attempt, std::move(result), start, end);
}

Engine::Completion Engine::conclude_attempt(const Attempt& attempt, AttemptResult result,
                                            double start, double end) {
  if (attempt.recovery) return conclude_recovery(attempt, std::move(result), start, end);
  Completion completion;
  const TaskId task = attempt.task;
  const Placement& placement = attempt.placement;
  TaskRecord& record = graph_.task(task);
  resources_.release(placement);
  --running_;
  --record.running_attempts;
  --ready_shards_[record.study].running;
  health_.on_conclusion(static_cast<std::size_t>(placement.node));

  sink_.record(trace::Event{.kind = trace::EventKind::TaskRun,
                            .task_id = task,
                            .study = record.study,
                            .attempt = record.attempts_made + 1,
                            .task_name = record.def.name,
                            .node = placement.node,
                            .cores = placement.cores,
                            .gpus = placement.gpus,
                            .t_start = start,
                            .t_end = end});
  for (const NodeSlice& slice : placement.secondary) {
    // @multinode: the task occupied every slice for the same interval.
    sink_.record(trace::Event{.kind = trace::EventKind::TaskRun,
                              .task_id = task,
                              .study = record.study,
                              .attempt = record.attempts_made + 1,
                              .task_name = record.def.name,
                              .node = slice.node,
                              .cores = slice.cores,
                              .gpus = slice.gpus,
                              .t_start = start,
                              .t_end = end});
  }

  if (task_terminal(task)) {
    // The task's fate was decided while this attempt ran: a speculative
    // sibling won the race, or a second abandoned attempt reported after
    // the first already turned the task Cancelled. Abandon-on-finish:
    // discard the result, the resources just came back, nothing retries.
    return completion;
  }

  if (record.abandoned) {
    // Runtime::cancel caught this attempt mid-flight: whatever it produced
    // is discarded — no commit, no retry, dependents were already doomed.
    ++record.attempts_made;
    if (record.running_attempts > 0) return completion;  // a sibling still runs
    record.state = TaskState::Cancelled;
    if (record.failure_reason.empty()) record.failure_reason = "cancelled while running";
    mark_terminal(task);
    return completion;
  }

  if (!result.success && result.data_lost) {
    // The body died reading data whose replicas went down with a node —
    // not this task's fault. Re-queue it uncharged behind the recovery of
    // whatever is still lost; lineage gating holds it until the inputs are
    // recommitted. Only an *unrecoverable* input turns this into a real
    // failure (charged below, doomed at gating).
    bool doomed_input = false;
    for (const ParamBinding& b : record.bindings) {
      if (b.param.dir == Direction::Out) continue;
      if (!graph_.registry().version_lost(b.param.data, b.read_version)) continue;
      if (!demand_recovery(b.param.data, b.read_version, end)) doomed_input = true;
    }
    if (!doomed_input) {
      sink_.record(trace::Event{.kind = trace::EventKind::TaskRetry,
                                .task_id = task,
                                .study = record.study,
                                .attempt = record.attempts_made + 1,
                                .task_name = record.def.name,
                                .node = -1,
                                .t_start = end,
                                .t_end = end});
      make_ready(task);
      if (record.state == TaskState::Ready) completion.newly_ready.push_back(task);
      return completion;
    }
  }

  ++record.attempts_made;

  if (result.success) {
    record.succeeded_attempt = record.attempts_made;
    if (!resources_.node_down(static_cast<std::size_t>(placement.node)))
      health_.record_success(static_cast<std::size_t>(placement.node));
    speculation_.record(speculation_key(record), end - start);
    if (attempt.speculative)
      sink_.record(trace::Event{.kind = trace::EventKind::SpeculativeWin,
                                .task_id = task,
                                .study = record.study,
                                .attempt = record.attempts_made,
                                .task_name = record.def.name,
                                .node = placement.node,
                                .t_start = end,
                                .t_end = end});
    commit_outputs(record, result);
    record.state = TaskState::Done;
    mark_terminal(task);
    for (TaskId succ : record.successors) {
      TaskRecord& s = graph_.task(succ);
      if (s.state != TaskState::WaitingDeps) continue;
      if (--s.deps_remaining == 0) {
        make_ready(succ);
        if (s.state == TaskState::Ready) completion.newly_ready.push_back(succ);
      }
    }
    return completion;
  }

  // ---- Failure path (paper §4 retry policy) ----
  record.failure_reason = result.error;
  sink_.record(trace::Event{.kind = trace::EventKind::TaskFailure,
                            .task_id = task,
                            .study = record.study,
                            .attempt = record.attempts_made,
                            .task_name = record.def.name,
                            .node = placement.node,
                            .t_start = end,
                            .t_end = end});
  log_warn("engine", "task {} '{}' attempt {} failed on node {}: {}", task, record.def.name,
           record.attempts_made, placement.node, result.error);
  if (!resources_.node_down(static_cast<std::size_t>(placement.node)) &&
      health_.record_failure(static_cast<std::size_t>(placement.node))) {
    sink_.record(trace::Event{.kind = trace::EventKind::Quarantine,
                              .node = placement.node,
                              .t_start = end,
                              .t_end = end});
    log_warn("engine", "node {} quarantined (failure score {:.2f})", placement.node,
             health_.score(static_cast<std::size_t>(placement.node)));
  }

  if (record.running_attempts > 0) {
    // A sibling attempt (the straggling original or a speculative
    // duplicate) is still in flight: absorb this failure and let the
    // sibling decide the task's fate. The task stays Running.
    return completion;
  }

  if (record.attempts_made >= options_.fault_policy.max_attempts) {
    record.state = TaskState::Failed;
    mark_terminal(task);
    cancel_dependents(task);
    return completion;
  }

  const double delay = options_.fault_policy.retry_delay(record.attempts_made);
  const bool want_same_node = record.attempts_made <= options_.fault_policy.same_node_retries;
  if (want_same_node && delay <= 0.0) {
    // Its slots were just released, so this succeeds unless the node died.
    const Constraint& constraint = record.implementation_constraint(record.active_variant);
    auto retry_placement =
        constraint.nodes > 1
            ? resources_.try_allocate_multi(constraint, record.excluded_nodes)
            : resources_.try_allocate(static_cast<std::size_t>(placement.node), constraint);
    if (retry_placement) {
      record.state = TaskState::Running;
      sink_.record(trace::Event{.kind = trace::EventKind::TaskRetry,
                                .task_id = task,
                                .study = record.study,
                                .attempt = record.attempts_made + 1,
                                .task_name = record.def.name,
                                .node = placement.node,
                                .t_start = end,
                                .t_end = end});
      Dispatch retry{.task = task, .placement = std::move(*retry_placement),
                     .variant = record.active_variant};
      retry.attempt_id = register_attempt(task, retry.placement, end, /*speculative=*/false);
      completion.retry = std::move(retry);
      return completion;
    }
  }
  // A pinned backoff retry intends to come back to this node, so it must
  // not be blacklisted; every other path that reaches here resubmits
  // elsewhere (including a same-node retry whose node just died).
  const bool defer_pinned = want_same_node && delay > 0.0;
  if (!defer_pinned) {
    // Resubmit elsewhere: never return to the node that failed us.
    if (std::find(record.excluded_nodes.begin(), record.excluded_nodes.end(), placement.node) ==
        record.excluded_nodes.end())
      record.excluded_nodes.push_back(placement.node);
    // If the blacklist now covers every live node, the failures are task-
    // transient rather than node-specific: reset it so remaining attempts
    // can still land somewhere (dead nodes stay unusable via ResourceState).
    bool any_allowed = false;
    for (std::size_t node = 0; node < resources_.node_count() && !any_allowed; ++node) {
      if (std::find(record.excluded_nodes.begin(), record.excluded_nodes.end(),
                    static_cast<int>(node)) != record.excluded_nodes.end())
        continue;
      any_allowed = resources_.could_fit(node, record.def.constraint);
    }
    if (!any_allowed) record.excluded_nodes.clear();
  }

  if (delay > 0.0) {
    // Exponential backoff: hold the task out of the ready queue until the
    // delay expires, then retry (preferring the same node while the paper's
    // same-node budget lasts). It counts as Ready so cancel() still works.
    sink_.record(trace::Event{.kind = trace::EventKind::Backoff,
                              .task_id = task,
                              .study = record.study,
                              .attempt = record.attempts_made + 1,
                              .task_name = record.def.name,
                              .node = want_same_node ? placement.node : -1,
                              .t_start = end,
                              .t_end = end + delay});
    record.state = TaskState::Ready;
    delayed_.push_back(DelayedRetry{.task = task,
                                    .ready_at = end + delay,
                                    .pinned_node = want_same_node ? placement.node : -1});
    return completion;
  }

  sink_.record(trace::Event{.kind = trace::EventKind::TaskRetry,
                            .task_id = task,
                            .study = record.study,
                            .attempt = record.attempts_made + 1,
                            .task_name = record.def.name,
                            .node = -1,
                            .t_start = end,
                            .t_end = end});
  make_ready(task);
  if (record.state == TaskState::Ready) completion.newly_ready.push_back(task);
  return completion;
}

std::vector<Dispatch> Engine::on_wakeup(double now) {
  std::vector<Dispatch> launches;

  // 0) Apply node membership changes whose time has come (deaths reap the
  // node's attempts; rejoins restore capacity on probation).
  process_node_events(now, launches);

  // 1) Reap in-flight attempts past their deadline. The failure is charged
  // now — a ThreadBackend body may still be running, but its completion
  // will arrive with an id the registry no longer knows and be dropped.
  std::vector<std::pair<std::uint64_t, Attempt>> expired;
  for (const auto& [id, attempt] : inflight_)
    if (attempt.deadline <= now) expired.emplace_back(id, attempt);
  for (auto& [id, attempt] : expired) {
    inflight_.erase(id);
    const double timeout = attempt.deadline - attempt.start;
    AttemptResult result;
    result.error = "timeout after " + std::to_string(timeout) + "s (reaped in flight)";
    Completion completion = conclude_attempt(attempt, std::move(result), attempt.start, now);
    if (completion.retry) launches.push_back(*completion.retry);
  }

  // 2) Promote retries whose backoff delay expired.
  for (std::size_t i = 0; i < delayed_.size();) {
    if (delayed_[i].ready_at > now) {
      ++i;
      continue;
    }
    const DelayedRetry due = delayed_[i];
    delayed_.erase(delayed_.begin() + static_cast<std::ptrdiff_t>(i));
    TaskRecord& record = graph_.task(due.task);
    // Cancelled (or otherwise resolved) while waiting out the delay.
    if (record.state != TaskState::Ready || task_terminal(due.task)) continue;
    if (due.pinned_node >= 0) {
      const Constraint& constraint = record.implementation_constraint(record.active_variant);
      if (constraint.nodes <= 1) {
        if (auto placement =
                resources_.try_allocate(static_cast<std::size_t>(due.pinned_node), constraint)) {
          record.state = TaskState::Running;
          record.last_node = due.pinned_node;
          sink_.record(trace::Event{.kind = trace::EventKind::TaskRetry,
                                    .task_id = due.task,
                                    .study = record.study,
                                    .attempt = record.attempts_made + 1,
                                    .task_name = record.def.name,
                                    .node = due.pinned_node,
                                    .t_start = now,
                                    .t_end = now});
          Dispatch retry{.task = due.task, .placement = std::move(*placement),
                         .variant = record.active_variant};
          retry.attempt_id = register_attempt(due.task, retry.placement, now, false);
          launches.push_back(std::move(retry));
          continue;
        }
      }
    }
    // No pin, or the pinned node is busy/dead: back to the ready queue for
    // the scheduler (make_ready fails the task if nothing can ever fit).
    sink_.record(trace::Event{.kind = trace::EventKind::TaskRetry,
                              .task_id = due.task,
                              .study = record.study,
                              .attempt = record.attempts_made + 1,
                              .task_name = record.def.name,
                              .node = -1,
                              .t_start = now,
                              .t_end = now});
    make_ready(due.task);
  }

  // 3) Speculative duplicates for straggling attempts.
  check_speculation(now, launches);
  return launches;
}

void Engine::check_speculation(double now, std::vector<Dispatch>& out) {
  const SpeculationPolicy& policy = options_.speculation;
  if (!policy.enabled) return;
  for (const auto& [id, attempt] : inflight_) {
    if (attempt.speculative) continue;
    TaskRecord& record = graph_.task(attempt.task);
    if (record.abandoned || task_terminal(attempt.task)) continue;
    if (record.speculative_launches >= policy.max_duplicates) continue;
    const Constraint& constraint = record.implementation_constraint(record.active_variant);
    if (constraint.nodes > 1) continue;  // @multinode duplicates unsupported
    const auto threshold = speculation_.straggler_threshold(speculation_key(record));
    if (!threshold || now - attempt.start < *threshold) continue;
    if (!record.straggler_flagged) {
      record.straggler_flagged = true;
      sink_.record(trace::Event{.kind = trace::EventKind::StragglerDetected,
                                .task_id = attempt.task,
                                .study = record.study,
                                .attempt = record.attempts_made + 1,
                                .task_name = record.def.name,
                                .node = attempt.placement.node,
                                .t_start = now,
                                .t_end = now});
      log_info("engine", "task {} '{}' straggling on node {} ({:.3f}s > {:.3f}s threshold)",
               attempt.task, record.def.name, attempt.placement.node, now - attempt.start,
               *threshold);
    }
    // Duplicate placement: constraint-feasible slot on another node, never
    // the straggler's node and never a blacklisted one.
    auto placement = place_duplicate(record, constraint, resources_, attempt.placement.node);
    if (!placement) continue;  // no slot right now; try again on a later wakeup
    ++record.speculative_launches;
    Dispatch duplicate{.task = attempt.task, .placement = std::move(*placement),
                       .variant = record.active_variant};
    duplicate.attempt_id = register_attempt(attempt.task, duplicate.placement, now, true);
    sink_.record(trace::Event{.kind = trace::EventKind::SpeculativeLaunch,
                              .task_id = attempt.task,
                              .study = record.study,
                              .attempt = record.attempts_made + 1,
                              .task_name = record.def.name,
                              .node = duplicate.placement.node,
                              .t_start = now,
                              .t_end = now});
    out.push_back(std::move(duplicate));
  }
}

std::optional<double> Engine::next_wakeup(double now) const {
  std::optional<double> wake;
  const auto consider = [&](double t) {
    if (t > now && (!wake || t < *wake)) wake = t;
  };
  const SpeculationPolicy& policy = options_.speculation;
  for (const auto& [id, attempt] : inflight_) {
    if (attempt.deadline < std::numeric_limits<double>::infinity()) consider(attempt.deadline);
    if (!policy.enabled || attempt.speculative) continue;
    const TaskRecord& record = graph_.task(attempt.task);
    if (record.abandoned || record.speculative_launches >= policy.max_duplicates) continue;
    if (const auto threshold = speculation_.straggler_threshold(speculation_key(record)))
      consider(attempt.start + *threshold);
  }
  for (const DelayedRetry& d : delayed_) consider(d.ready_at);
  if (next_node_event_ < node_events_.size()) consider(node_events_[next_node_event_].time);
  return wake;
}

void Engine::cancel_dependents(TaskId task) {
  for (TaskId succ : graph_.task(task).successors) {
    TaskRecord& s = graph_.task(succ);
    if (s.state == TaskState::WaitingDeps || s.state == TaskState::Ready) {
      if (s.state == TaskState::Ready) remove_from_ready(s);
      s.state = TaskState::Cancelled;
      s.failure_reason = "predecessor " + std::to_string(task) + " failed";
      mark_terminal(succ);
      cancel_dependents(succ);
    }
  }
}

bool Engine::cancel(TaskId task, double now) {
  TaskRecord& record = graph_.task(task);
  if (task_terminal(task)) return false;  // too late: result already landed
  // Already cancelled, just not yet terminal: the abandoned attempt is
  // still in flight. Dependents were doomed on the first cancel.
  if (record.abandoned) return false;

  sink_.record(trace::Event{.kind = trace::EventKind::Cancel,
                            .task_id = task,
                            .study = record.study,
                            .task_name = record.def.name,
                            .node = record.state == TaskState::Running ? record.last_node : -1,
                            .t_start = now,
                            .t_end = now});

  if (record.state == TaskState::Running) {
    // The attempt holds its resources until it reports back; the outcome
    // will be discarded in complete_attempt. Dependents are doomed now —
    // the inputs they wait for will never be committed.
    record.abandoned = true;
    record.failure_reason = "cancelled by caller";
    cancel_dependents(task);
    return true;
  }

  // WaitingDeps or Ready: never held resources, nothing to release.
  if (record.state == TaskState::Ready) remove_from_ready(record);
  record.state = TaskState::Cancelled;
  record.failure_reason = "cancelled by caller";
  mark_terminal(task);
  cancel_dependents(task);
  return true;
}

void Engine::process_node_events(double now, std::vector<Dispatch>& out) {
  while (next_node_event_ < node_events_.size() && node_events_[next_node_event_].time <= now) {
    const NodeEvent event = node_events_[next_node_event_++];
    if (event.up)
      handle_node_up(event.node, now);
    else
      handle_node_down(event.node, now, out);
  }
}

void Engine::handle_node_down(std::size_t node, double now, std::vector<Dispatch>& out) {
  if (node >= resources_.node_count() || resources_.node_down(node)) return;
  resources_.mark_node_down(node);
  health_.on_node_down(node);
  sink_.record(trace::Event{.kind = trace::EventKind::NodeDown,
                            .node = static_cast<int>(node),
                            .t_start = now,
                            .t_end = now});
  log_warn("engine", "node {} failed at t={:.3f}", node, now);

  // Reap every in-flight attempt touching the node (primary or any
  // @multinode slice). The failure is charged now; if a worker thread is
  // still inside the body, its completion arrives with an id the registry
  // no longer knows and is dropped as stale.
  std::vector<std::pair<std::uint64_t, Attempt>> hit;
  for (const auto& [id, attempt] : inflight_) {
    bool touches = attempt.placement.node == static_cast<int>(node);
    for (const NodeSlice& slice : attempt.placement.secondary)
      touches = touches || slice.node == static_cast<int>(node);
    if (touches) hit.emplace_back(id, attempt);
  }
  for (auto& [id, attempt] : hit) {
    inflight_.erase(id);
    AttemptResult result;
    result.error = "node " + std::to_string(node) + " failed";
    Completion completion = conclude_attempt(attempt, std::move(result), attempt.start, now);
    if (completion.retry) out.push_back(*completion.retry);
  }

  // Lineage bookkeeping: versions whose only replicas lived here are now
  // lost. Recovery is demanded lazily — by gated ready tasks, by running
  // consumers that hit DataLostError, or by wait_on.
  for (const LostVersion& lv : graph_.registry().drop_node_replicas(static_cast<int>(node))) {
    sink_.record(trace::Event{.kind = trace::EventKind::DataLost,
                              .task_id = lv.producer,
                              .node = static_cast<int>(node),
                              .t_start = now,
                              .t_end = now});
    log_warn("engine", "d{}v{} lost with node {} (producer task {})", lv.data, lv.version, node,
             lv.producer);
  }

  reap_infeasible();
}

void Engine::handle_node_up(std::size_t node, double now) {
  if (node >= resources_.node_count() || !resources_.node_down(node)) return;
  resources_.mark_node_up(node);
  health_.on_node_up(node);
  sink_.record(trace::Event{.kind = trace::EventKind::NodeUp,
                            .node = static_cast<int>(node),
                            .t_start = now,
                            .t_end = now});
  log_info("engine", "node {} rejoined at t={:.3f} (on probation)", node, now);
}

bool Engine::node_up_pending() const {
  for (std::size_t i = next_node_event_; i < node_events_.size(); ++i)
    if (node_events_[i].up) return true;
  return false;
}

bool Engine::demand_recovery(DataId data, std::uint32_t version, double now) {
  const TaskId producer = graph_.registry().producer(data, version);
  if (producer == kNoTask) return false;
  return enqueue_recovery(producer, now);
}

bool Engine::enqueue_recovery(TaskId producer, double now) {
  if (unrecoverable_.contains(producer)) return false;
  if (recovery_.contains(producer)) return true;
  TaskRecord& record = graph_.task(producer);
  // Only a task that committed once has anything to replay.
  if (record.state != TaskState::Done) return false;
  recovery_.emplace(producer, RecoveryJob{.task = producer});
  record.recovering = true;
  log_info("engine", "lineage: queueing recompute of task {} '{}'", producer, record.def.name);
  // Walk the chain: the producer's own lost inputs must come back first.
  // Terminates — a version's producer always has a smaller task id, and
  // the recovery_ map memoizes visited tasks.
  bool recoverable = true;
  for (const ParamBinding& b : record.bindings) {
    if (b.param.dir == Direction::Out) continue;
    if (!graph_.registry().version_lost(b.param.data, b.read_version)) continue;
    if (!demand_recovery(b.param.data, b.read_version, now)) recoverable = false;
  }
  if (!recoverable) {
    recovery_.erase(producer);
    record.recovering = false;
    unrecoverable_.insert(producer);
    return false;
  }
  return true;
}

void Engine::dispatch_recoveries(double now, std::vector<Dispatch>& out) {
  if (recovery_.empty()) return;
  std::vector<TaskId> doomed;
  for (auto& [task, job] : recovery_) {
    if (job.inflight) continue;
    TaskRecord& record = graph_.task(task);
    bool waiting = false;
    bool input_doomed = false;
    for (const ParamBinding& b : record.bindings) {
      if (b.param.dir == Direction::Out) continue;
      if (graph_.registry().has_value(b.param.data, b.read_version)) continue;
      const TaskId producer = graph_.registry().producer(b.param.data, b.read_version);
      if (producer == kNoTask || unrecoverable_.contains(producer)) {
        input_doomed = true;
        break;
      }
      waiting = true;  // the input's own recovery has not recommitted yet
    }
    if (input_doomed) {
      doomed.push_back(task);
      continue;
    }
    if (waiting) continue;

    const Constraint& constraint = record.implementation_constraint(record.active_variant);
    std::optional<Placement> placement;
    if (constraint.nodes > 1) {
      placement = resources_.try_allocate_multi(constraint, job.excluded_nodes);
    } else {
      for (std::size_t node = 0; node < resources_.node_count() && !placement; ++node) {
        if (std::find(job.excluded_nodes.begin(), job.excluded_nodes.end(),
                      static_cast<int>(node)) != job.excluded_nodes.end())
          continue;
        placement = resources_.try_allocate(node, constraint);
      }
    }
    if (!placement) continue;  // resources busy; retried on a later round

    job.inflight = true;
    Dispatch d{.task = task, .placement = std::move(*placement), .variant = record.active_variant};
    d.attempt_id = register_attempt(task, d.placement, now, /*speculative=*/false,
                                    /*recovery=*/true);
    sink_.record(trace::Event{.kind = trace::EventKind::LineageRecompute,
                              .task_id = task,
                              .study = record.study,
                              .attempt = record.succeeded_attempt,
                              .task_name = record.def.name,
                              .node = d.placement.node,
                              .t_start = now,
                              .t_end = now});
    log_info("engine", "lineage: recomputing task {} '{}' on node {}", task, record.def.name,
             d.placement.node);
    out.push_back(std::move(d));
  }
  for (TaskId task : doomed) {
    recovery_.erase(task);
    graph_.task(task).recovering = false;
    unrecoverable_.insert(task);
    log_warn("engine", "lineage: task {} unrecoverable (an input can never be recomputed)", task);
  }
}

Engine::Completion Engine::conclude_recovery(const Attempt& attempt, AttemptResult result,
                                             double start, double end) {
  Completion completion;
  const TaskId task = attempt.task;
  const std::size_t node = static_cast<std::size_t>(attempt.placement.node);
  TaskRecord& record = graph_.task(task);
  resources_.release(attempt.placement);
  --running_;
  --record.running_attempts;
  health_.on_conclusion(node);

  const auto it = recovery_.find(task);
  if (it == recovery_.end()) return completion;  // job withdrawn while in flight
  RecoveryJob& job = it->second;
  job.inflight = false;

  sink_.record(trace::Event{.kind = trace::EventKind::TaskRun,
                            .task_id = task,
                            .study = record.study,
                            .attempt = record.succeeded_attempt,
                            .task_name = record.def.name,
                            .node = attempt.placement.node,
                            .cores = attempt.placement.cores,
                            .gpus = attempt.placement.gpus,
                            .t_start = start,
                            .t_end = end});

  if (result.success) {
    if (!resources_.node_down(node)) health_.record_success(node);
    // The recomputed outputs live where the recompute ran; commit clears
    // the lost flags, unblocking gated consumers and wait_on. Task state is
    // untouched — it was Done and stays Done with its original
    // terminal_seq; only the data came back.
    record.last_node = attempt.placement.node;
    commit_outputs(record, result);
    ++recoveries_done_;
    record.recovering = false;
    recovery_.erase(it);
    log_info("engine", "lineage: task {} '{}' recomputed on node {}", task, record.def.name,
             static_cast<int>(node));
    return completion;
  }

  if (result.data_lost) {
    // Its own input died again mid-recompute. Re-demand and retry without
    // charging the job unless the chain is now unrecoverable.
    bool chain_ok = true;
    for (const ParamBinding& b : record.bindings) {
      if (b.param.dir == Direction::Out) continue;
      if (!graph_.registry().version_lost(b.param.data, b.read_version)) continue;
      if (!demand_recovery(b.param.data, b.read_version, end)) chain_ok = false;
    }
    if (chain_ok) return completion;
  }

  if (!resources_.node_down(node) && health_.record_failure(node)) {
    sink_.record(trace::Event{.kind = trace::EventKind::Quarantine,
                              .node = attempt.placement.node,
                              .t_start = end,
                              .t_end = end});
  }
  ++job.attempts;
  if (std::find(job.excluded_nodes.begin(), job.excluded_nodes.end(), attempt.placement.node) ==
      job.excluded_nodes.end())
    job.excluded_nodes.push_back(attempt.placement.node);
  if (job.attempts >= options_.fault_policy.max_attempts) {
    recovery_.erase(it);
    record.recovering = false;
    unrecoverable_.insert(task);
    log_warn("engine", "lineage: recovery of task {} abandoned after {} attempts", task,
             options_.fault_policy.max_attempts);
    return completion;
  }
  // If the exclusion list now covers every live node, the failures are
  // transient rather than node-specific: reset it so the remaining budget
  // can still land somewhere.
  bool any_allowed = false;
  for (std::size_t n = 0; n < resources_.node_count() && !any_allowed; ++n) {
    if (std::find(job.excluded_nodes.begin(), job.excluded_nodes.end(), static_cast<int>(n)) !=
        job.excluded_nodes.end())
      continue;
    any_allowed = resources_.could_fit(n, record.implementation_constraint(record.active_variant));
  }
  if (!any_allowed) job.excluded_nodes.clear();
  return completion;
}

Engine::VersionStatus Engine::request_version(DataId data, std::uint32_t version, double now) {
  DataRegistry& registry = graph_.registry();
  if (registry.has_value(data, version)) return VersionStatus::Available;
  if (registry.version_lost(data, version)) {
    const TaskId producer = registry.producer(data, version);
    if (producer != kNoTask && unrecoverable_.contains(producer))
      return VersionStatus::Unrecoverable;
    return demand_recovery(data, version, now) ? VersionStatus::Recovering
                                               : VersionStatus::Unrecoverable;
  }
  return VersionStatus::Recovering;  // producer has not committed yet
}

bool Engine::inputs_ready(const TaskRecord& record, double now, bool& doomed) {
  bool ready = true;
  for (const ParamBinding& b : record.bindings) {
    if (b.param.dir == Direction::Out) continue;
    if (!graph_.registry().version_lost(b.param.data, b.read_version)) continue;
    ready = false;
    if (!demand_recovery(b.param.data, b.read_version, now)) doomed = true;
  }
  return ready;
}

void Engine::check_input_liveness(const TaskRecord& record) {
  const DataRegistry& registry = graph_.registry();
  for (const ParamBinding& b : record.bindings) {
    if (b.param.dir == Direction::Out) continue;
    if (registry.available_everywhere(b.param.data, b.read_version)) continue;
    const std::set<int> locs = registry.locations(b.param.data, b.read_version);
    if (locs.empty()) continue;  // main-program data, staged on demand
    bool live = false;
    for (int n : locs)
      if (n >= 0 && !resources_.node_down(static_cast<std::size_t>(n))) live = true;
    if (!live) {
      ++lineage_violations_;
      log_warn("engine", "invariant violation: task {} dispatched with no live replica of d{}v{}",
               record.id, b.param.data, b.read_version);
    }
  }
}

bool Engine::reap_infeasible() {
  // Capacity that is scheduled to return is not gone: while a rejoin event
  // is pending, tasks wait for it instead of failing.
  if (node_up_pending()) return false;
  bool progressed = false;
  // With every node dead (and none returning), pending lineage recoveries
  // can never run — abandon them so barriers terminate.
  if (!recovery_.empty()) {
    bool any_live = false;
    for (std::size_t node = 0; node < resources_.node_count() && !any_live; ++node)
      any_live = !resources_.node_down(node);
    if (!any_live) {
      for (auto& [task, job] : recovery_) {
        graph_.task(task).recovering = false;
        unrecoverable_.insert(task);
      }
      recovery_.clear();
      progressed = true;
    }
  }
  for (auto& [study, shard] : ready_shards_) {
    std::size_t write = 0;
    for (std::size_t read = 0; read < shard.fifo.size(); ++read) {
      const std::pair<TaskId, std::uint32_t> entry = shard.fifo[read];
      TaskRecord& record = graph_.task(entry.first);
      if (!record.in_ready || record.ready_epoch != entry.second) continue;  // stale: drop
      bool feasible = false;
      const int n_variants = static_cast<int>(record.def.variants.size());
      for (int variant = -1; variant < n_variants && !feasible; ++variant) {
        const Constraint& constraint = record.implementation_constraint(variant);
        unsigned fitting = 0;
        for (std::size_t node = 0; node < resources_.node_count(); ++node) {
          if (std::find(record.excluded_nodes.begin(), record.excluded_nodes.end(),
                        static_cast<int>(node)) != record.excluded_nodes.end())
            continue;
          if (resources_.could_fit(node, constraint)) ++fitting;
        }
        feasible = fitting >= std::max(1u, constraint.nodes);
      }
      if (feasible) {
        shard.fifo[write++] = entry;
        continue;
      }
      remove_from_ready(record);
      record.state = TaskState::Failed;
      record.failure_reason = "no live node can satisfy the constraint";
      mark_terminal(record.id);
      cancel_dependents(record.id);
      progressed = true;
    }
    shard.fifo.resize(write);
  }
  return progressed;
}

bool Engine::task_terminal(TaskId task) const {
  const TaskState s = graph_.task(task).state;
  return s == TaskState::Done || s == TaskState::Failed || s == TaskState::Cancelled;
}

bool Engine::all_terminal() const { return terminal_ == graph_.size(); }

}  // namespace chpo::rt
