// Scheduling policies.
//
// Given the set of ready tasks and the current resource occupancy, a policy
// decides which task to place where. All policies honour the COMPSs
// priority hint (priority tasks jump the queue) and never oversubscribe —
// ResourceState is the single source of truth for slot ownership.
//
// Policies provided:
//  * FifoScheduler      — submission order, first node that fits.
//  * PriorityScheduler  — priority flag first, then submission order
//                         (the COMPSs default; used by all paper figures).
//  * LocalityScheduler  — like Priority, but among fitting nodes prefers the
//                         one holding the most input bytes (matters only
//                         when the cluster has no parallel filesystem).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/data_registry.hpp"
#include "runtime/graph.hpp"
#include "runtime/node_health.hpp"
#include "runtime/resources.hpp"
#include "runtime/types.hpp"

namespace chpo::rt {

/// One placement decision.
struct Dispatch {
  TaskId task = kNoTask;
  Placement placement;
  /// Implementation chosen: -1 = primary, else index into def.variants.
  int variant = -1;
  /// Engine-stamped in-flight attempt handle (0 = not yet registered).
  /// Backends hand it back via Engine::complete_attempt so a completion of
  /// a reaped or superseded attempt can be told apart from a live one.
  std::uint64_t attempt_id = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;

  /// Place as many ready tasks as resources allow. `ready` is in submission
  /// order. Allocations are made through `resources` (and must be released
  /// by the caller when tasks finish). Tasks with excluded nodes are never
  /// placed there.
  virtual std::vector<Dispatch> schedule(const std::vector<TaskId>& ready, const TaskGraph& graph,
                                         ResourceState& resources) = 0;

  /// True iff this policy consumes `ready` in the order given. Policies
  /// that re-sort by (priority, id) — everything except Fifo — return
  /// false, which lets the engine skip the O(tasks × studies) fair-share
  /// interleave on the storm hot path: the sort would erase the interleave
  /// anyway, so only *membership* (pause / max_running truncation) has to
  /// be computed.
  virtual bool order_sensitive() const { return false; }

  /// Health-gated placement: when a tracker is set, nodes it disallows
  /// (quarantined/probation beyond their concurrency cap) receive no new
  /// placements. Nullptr disables gating.
  void set_health(const NodeHealth* health) { health_ = health; }

 protected:
  /// The tracker to gate this round with, or nullptr when gating would
  /// block *every* node — a fully quarantined cluster must still make
  /// progress, so gating falls away rather than deadlocking.
  /// Note: the per-node concurrency cap is enforced against in-flight
  /// counts updated at dispatch conclusion; a single scheduling round may
  /// place a small batch above the cap. Accepted — the cap is a throttle,
  /// not a hard isolation boundary.
  const NodeHealth* effective_health(const ResourceState& resources) const {
    if (!health_) return nullptr;
    for (std::size_t node = 0; node < resources.node_count(); ++node)
      if (!resources.node_down(node) && health_->allow_placement(node)) return health_;
    return nullptr;
  }

  const NodeHealth* health_ = nullptr;
};

class FifoScheduler : public Scheduler {
 public:
  std::string name() const override { return "fifo"; }
  bool order_sensitive() const override { return true; }
  std::vector<Dispatch> schedule(const std::vector<TaskId>& ready, const TaskGraph& graph,
                                 ResourceState& resources) override;
};

class PriorityScheduler : public Scheduler {
 public:
  std::string name() const override { return "priority"; }
  std::vector<Dispatch> schedule(const std::vector<TaskId>& ready, const TaskGraph& graph,
                                 ResourceState& resources) override;
};

class LocalityScheduler : public Scheduler {
 public:
  std::string name() const override { return "locality"; }
  std::vector<Dispatch> schedule(const std::vector<TaskId>& ready, const TaskGraph& graph,
                                 ResourceState& resources) override;
};

/// Duration-aware implementation selection: among the (implementation,
/// node) pairs that fit *now*, pick the one whose cost model predicts the
/// shortest run. Fixes the @implement pathology where availability-greedy
/// selection strands a long task on a slow fallback (see bench_variants);
/// tasks without cost models fall back to first-fit like Priority.
class CostAwareScheduler : public Scheduler {
 public:
  std::string name() const override { return "cost-aware"; }
  std::vector<Dispatch> schedule(const std::vector<TaskId>& ready, const TaskGraph& graph,
                                 ResourceState& resources) override;
};

/// Factory by name: "fifo", "priority", "locality", "cost-aware".
std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

/// Shared helper: first node (by index) that can take the task now,
/// skipping the task's excluded nodes and (when `health` is non-null)
/// nodes the health tracker disallows. Returns the placement or nullopt.
std::optional<Placement> place_first_fit(const TaskRecord& task, ResourceState& resources,
                                         const NodeHealth* health = nullptr);

/// Placement for a speculative duplicate of a straggling attempt: first
/// node that satisfies `constraint` now, skipping the task's excluded
/// (blacklisted) nodes and `avoid_node` — the node the straggling original
/// runs on, where a duplicate would only queue behind the same slowness.
std::optional<Placement> place_duplicate(const TaskRecord& task, const Constraint& constraint,
                                         ResourceState& resources, int avoid_node);

/// Bytes of the task's In/InOut params already resident on `node`.
std::uint64_t local_input_bytes(const TaskRecord& task, const DataRegistry& registry, int node);

}  // namespace chpo::rt
