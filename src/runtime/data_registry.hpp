// Versioned data registry — the runtime's dependency oracle.
//
// Every object a task touches is registered here. Each write (OUT / INOUT)
// creates a new version of the datum; the version chain yields exactly the
// RAW / WAR / WAW dependencies COMPSs derives from parameter directions.
// The d{n}v{m} labels in the paper's Figure 3 task graph are (datum,
// version) pairs — our DOT export uses the same naming.
//
// The registry also tracks which nodes hold a copy of each version (for the
// locality-aware scheduler and the transfer cost model) and stores the
// actual values, keyed by (datum, version), so that concurrent readers of
// different versions never race.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "runtime/types.hpp"

namespace chpo::rt {

/// Result of declaring one task access: the version it will read and/or
/// write and the task ids it now depends on.
struct AccessPlan {
  std::uint32_t read_version = 0;   ///< meaningful for In / InOut
  std::uint32_t write_version = 0;  ///< meaningful for Out / InOut
  std::vector<TaskId> depends_on;   ///< producers / prior readers to wait for
};

class DataRegistry {
 public:
  /// Register a new datum. `bytes` feeds the transfer cost model.
  /// With `everywhere` (the default, modelling a parallel filesystem or a
  /// trivially small value) version 0 is readable from any node at no
  /// cost; with everywhere=false it lives only with the main program and
  /// must be staged to each node that consumes it.
  DataId register_data(std::any initial_value = {}, std::uint64_t bytes = 64,
                       std::string label = {}, bool everywhere = true);

  /// Declare that `task` accesses `param`; returns the planned versions and
  /// the dependency set. Must be called in task submission order.
  AccessPlan plan_access(TaskId task, const Param& param);

  /// Commit a produced value for (datum, version); marks it available on
  /// `node` (-1 = main program / everywhere).
  void commit(DataId data, std::uint32_t version, std::any value, int node);

  /// Value lookup; throws std::out_of_range if that version was never
  /// committed (version 0 is committed at registration).
  const std::any& value(DataId data, std::uint32_t version) const;
  bool has_value(DataId data, std::uint32_t version) const;

  /// Latest created version number (the one the next reader would see).
  std::uint32_t current_version(DataId data) const;

  /// Task that produces (data, version); kNoTask for version 0.
  TaskId producer(DataId data, std::uint32_t version) const;

  /// Nodes known to hold (data, version). Empty set + available==true means
  /// "available everywhere" (main-program data or PFS).
  bool available_everywhere(DataId data, std::uint32_t version) const;
  std::set<int> locations(DataId data, std::uint32_t version) const;
  void add_location(DataId data, std::uint32_t version, int node);

  std::uint64_t bytes_of(DataId data) const;
  const std::string& label_of(DataId data) const;

  std::size_t datum_count() const;

 private:
  struct VersionInfo {
    TaskId producer = kNoTask;
    std::any value;
    bool committed = false;
    bool everywhere = false;
    std::set<int> locations;
  };
  struct DatumInfo {
    std::uint64_t bytes = 64;
    std::string label;
    std::uint32_t current = 0;
    TaskId last_writer = kNoTask;             ///< producer of `current`
    std::vector<TaskId> readers_of_current;   ///< tasks reading `current`
    std::vector<VersionInfo> versions;        ///< index == version number
  };

  DatumInfo& datum(DataId id);
  const DatumInfo& datum(DataId id) const;

  mutable std::shared_mutex mutex_;
  std::vector<DatumInfo> data_;
};

}  // namespace chpo::rt
