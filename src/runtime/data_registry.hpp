// Versioned data registry — the runtime's dependency oracle.
//
// Every object a task touches is registered here. Each write (OUT / INOUT)
// creates a new version of the datum; the version chain yields exactly the
// RAW / WAR / WAW dependencies COMPSs derives from parameter directions.
// The d{n}v{m} labels in the paper's Figure 3 task graph are (datum,
// version) pairs — our DOT export uses the same naming.
//
// The registry also tracks which nodes hold a copy of each version (for the
// locality-aware scheduler and the transfer cost model) and stores the
// actual values, keyed by (datum, version), so that concurrent readers of
// different versions never race.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/types.hpp"
#include "support/thread_annotations.hpp"

namespace chpo::rt {

/// Thrown by value() for a version whose only replicas died with a node.
/// Distinct from the never-committed std::out_of_range so consumers (and
/// the engine's recovery path) can tell "not yet produced" from "produced
/// and lost" — the latter is recoverable through lineage.
class DataLostError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A committed version that lost its last replica when a node died. The
/// producer is the lineage handle: re-executing it (after recovering its
/// own inputs the same way) recreates the value.
struct LostVersion {
  DataId data = 0;
  std::uint32_t version = 0;
  TaskId producer = kNoTask;
};

/// Result of declaring one task access: the version it will read and/or
/// write and the task ids it now depends on.
struct AccessPlan {
  std::uint32_t read_version = 0;   ///< meaningful for In / InOut
  std::uint32_t write_version = 0;  ///< meaningful for Out / InOut
  std::vector<TaskId> depends_on;   ///< producers / prior readers to wait for
};

class DataRegistry {
 public:
  /// Register a new datum. `bytes` feeds the transfer cost model.
  /// With `everywhere` (the default, modelling a parallel filesystem or a
  /// trivially small value) version 0 is readable from any node at no
  /// cost; with everywhere=false it lives only with the main program and
  /// must be staged to each node that consumes it.
  DataId register_data(std::any initial_value = {}, std::uint64_t bytes = 64,
                       std::string label = {}, bool everywhere = true);

  /// Declare that `task` accesses `param`; returns the planned versions and
  /// the dependency set. Must be called in task submission order.
  AccessPlan plan_access(TaskId task, const Param& param);

  /// Commit a produced value for (datum, version); marks it available on
  /// `node` (-1 = main program / everywhere).
  void commit(DataId data, std::uint32_t version, std::any value, int node);

  /// Value lookup; throws std::out_of_range if that version was never
  /// committed (version 0 is committed at registration). The reference is
  /// only stable on the coordinator thread — worker-side readers must pin
  /// the bytes with value_ptr() instead, because the coordinator may drop
  /// a version (node death) or recommit it (lineage recovery) while a
  /// zombie body is still reading.
  const std::any& value(DataId data, std::uint32_t version) const;
  /// Shared-ownership lookup: same checks as value(), but the returned
  /// pointer keeps the bytes alive even if the version is dropped or
  /// recommitted afterwards.
  std::shared_ptr<const std::any> value_ptr(DataId data, std::uint32_t version) const;
  bool has_value(DataId data, std::uint32_t version) const;

  /// Latest created version number (the one the next reader would see).
  std::uint32_t current_version(DataId data) const;

  /// Task that produces (data, version); kNoTask for version 0.
  TaskId producer(DataId data, std::uint32_t version) const;

  /// Nodes known to hold (data, version). Empty set + available==true means
  /// "available everywhere" (main-program data or PFS).
  bool available_everywhere(DataId data, std::uint32_t version) const;
  std::set<int> locations(DataId data, std::uint32_t version) const;
  void add_location(DataId data, std::uint32_t version, int node);

  /// Node death: forget every replica held by `node`. Committed versions
  /// left with no live location (and not available everywhere) become
  /// *lost*: their value is dropped, value() starts throwing DataLostError,
  /// and they are returned so the engine can walk the lineage and
  /// re-execute the producers. Version-0 data with a producer of kNoTask
  /// (main-program inputs) is never dropped — the main program survives.
  std::vector<LostVersion> drop_node_replicas(int node);

  /// Whether (data, version) is currently lost (committed once, then every
  /// replica died). Cleared by the recovery commit.
  bool version_lost(DataId data, std::uint32_t version) const;

  /// Number of versions currently lost. The engine's ready-queue gating
  /// uses this as a fast path: when zero, no per-task version_lost probes
  /// are needed at all.
  std::size_t lost_count() const;

  std::uint64_t bytes_of(DataId data) const;
  const std::string& label_of(DataId data) const;

  std::size_t datum_count() const;

 private:
  struct VersionInfo {
    TaskId producer = kNoTask;
    /// Shared so a reader that pinned the bytes (value_ptr) survives the
    /// coordinator dropping or recommitting the version under it.
    std::shared_ptr<const std::any> value;
    bool committed = false;
    bool everywhere = false;
    bool lost = false;  ///< committed once, then last replica died
    std::set<int> locations;
  };
  struct DatumInfo {
    std::uint64_t bytes = 64;
    std::string label;
    std::uint32_t current = 0;
    TaskId last_writer = kNoTask;             ///< producer of `current`
    std::vector<TaskId> readers_of_current;   ///< tasks reading `current`
    std::vector<VersionInfo> versions;        ///< index == version number
  };

  DatumInfo& datum(DataId id) CHPO_REQUIRES(mutex_);
  const DatumInfo& datum(DataId id) const CHPO_REQUIRES_SHARED(mutex_);

  /// Many concurrent readers (task bodies resolving committed versions),
  /// one writer (the coordinator committing / dropping / recommitting).
  mutable SharedMutex mutex_{lockdep::kDataRegistry};
  std::vector<DatumInfo> data_ CHPO_GUARDED_BY(mutex_);
  std::size_t lost_count_ CHPO_GUARDED_BY(mutex_) = 0;
};

}  // namespace chpo::rt
