// Dynamic task dependency graph.
//
// Built at submission time exactly as the COMPSs runtime does (§3): each
// task's parameter directions are run through the DataRegistry, producing
// predecessor edges. The graph also holds per-task lifecycle state for the
// execution engine and can export itself as Graphviz DOT with the paper's
// d{n}v{m} edge labels (Figure 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/data_registry.hpp"
#include "runtime/task.hpp"
#include "runtime/types.hpp"

namespace chpo::rt {

struct TaskRecord {
  TaskId id = 0;
  /// Owning study: completions route to this study's session and
  /// cancel_study(study) touches only tasks that carry its tag.
  StudyId study = kMainStudy;
  TaskDef def;
  std::vector<ParamBinding> bindings;
  Future result;  ///< implicit return datum

  std::vector<TaskId> predecessors;
  std::vector<TaskId> successors;

  TaskState state = TaskState::WaitingDeps;
  std::size_t deps_remaining = 0;
  int attempts_made = 0;
  std::vector<int> excluded_nodes;  ///< nodes this task must avoid (after faults)
  int last_node = -1;               ///< node of the most recent attempt
  /// Implementation chosen for the current/last attempt: -1 = primary,
  /// otherwise an index into def.variants (@implement).
  int active_variant = -1;
  std::string failure_reason;
  /// Runtime::cancel hit this task while an attempt was in flight: the
  /// attempt's outcome is discarded when it reports back.
  bool abandoned = false;
  /// Attempts currently holding resources. Normally 0 or 1; speculation can
  /// run the original and up to SpeculationPolicy::max_duplicates at once.
  int running_attempts = 0;
  /// Speculative duplicates launched for this task so far.
  int speculative_launches = 0;
  /// A StragglerDetected event was already recorded (emit it once).
  bool straggler_flagged = false;
  /// Completion-order stamp (1-based); 0 while the task is not yet
  /// terminal. wait_any uses it to pick the *first* finisher.
  std::uint64_t terminal_seq = 0;
  /// Attempt number (1-based) of the attempt whose outputs were committed.
  /// Lineage recovery replays this attempt so injected-failure draws and
  /// seeds line up and the recomputed value is bit-identical.
  int succeeded_attempt = 0;
  /// A lineage-recovery re-execution of this (Done) task is pending or in
  /// flight. Recovery never reopens task state — the task stays Done and
  /// keeps its terminal_seq; only its output data is recommitted.
  bool recovering = false;
  /// Live entry in the engine's per-study ready shard. Removal is lazy:
  /// clearing this flag (plus bumping ready_epoch) invalidates the queued
  /// entry in O(1); the shard compacts stale entries on its next scan.
  bool in_ready = false;
  /// Generation stamp for the queued ready entry; a shard entry whose
  /// stamp doesn't match is stale (the task left and possibly re-entered
  /// the ready set since it was queued).
  std::uint32_t ready_epoch = 0;

  const Constraint& implementation_constraint(int variant) const {
    return variant < 0 ? def.constraint
                       : def.variants.at(static_cast<std::size_t>(variant)).constraint;
  }
  const TaskBody& implementation_body(int variant) const {
    if (variant >= 0) {
      const TaskVariant& v = def.variants.at(static_cast<std::size_t>(variant));
      if (v.body) return v.body;
    }
    return def.body;
  }
  const TaskCost& implementation_cost(int variant) const {
    if (variant >= 0) {
      const TaskVariant& v = def.variants.at(static_cast<std::size_t>(variant));
      if (v.cost) return v.cost;
    }
    return def.cost;
  }
};

class TaskGraph {
 public:
  explicit TaskGraph(DataRegistry& registry) : registry_(registry) {}

  /// Create a task, derive dependencies from its params, and register the
  /// implicit return datum. Returns the new task's id. `study` tags the
  /// task with its owning session (kMainStudy for direct Runtime use).
  TaskId add_task(TaskDef def, const std::vector<Param>& params,
                  StudyId study = kMainStudy);

  /// Defined inline: this is the single hottest call in the engine (every
  /// scheduling walk, gating probe and ordering comparator goes through
  /// it), so it must compile down to a bounds-checked vector index.
  TaskRecord& task(TaskId id) {
    if (id >= tasks_.size()) throw std::out_of_range("TaskGraph: unknown task " + std::to_string(id));
    return tasks_[id];
  }
  const TaskRecord& task(TaskId id) const {
    if (id >= tasks_.size()) throw std::out_of_range("TaskGraph: unknown task " + std::to_string(id));
    return tasks_[id];
  }
  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }

  /// All task ids currently in `state`.
  std::vector<TaskId> tasks_in_state(TaskState state) const;

  /// Sanity check: true if every edge points from a lower to a higher id
  /// (submission order is a valid topological order by construction).
  bool is_acyclic() const;

  /// Longest path length in tasks (the critical path of the application).
  std::size_t critical_path_length() const;

  /// Graphviz DOT export. Futures passed to wait_on can be marked so a
  /// "sync" node is drawn, mirroring Figure 3.
  std::string to_dot(const std::vector<Future>& synced = {}) const;

  DataRegistry& registry() { return registry_; }
  const DataRegistry& registry() const { return registry_; }

 private:
  DataRegistry& registry_;
  std::vector<TaskRecord> tasks_;
};

}  // namespace chpo::rt
