#include "runtime/fault.hpp"

namespace chpo::rt {

bool FaultInjector::should_fail(TaskId task, int attempt) {
  (void)attempt;
  if (auto it = forced_.find(task); it != forced_.end() && it->second > 0) {
    --it->second;
    return true;
  }
  if (task_failure_prob_ > 0.0) return rng_.next_bool(task_failure_prob_);
  return false;
}

}  // namespace chpo::rt
