#include "runtime/fault.hpp"

#include <algorithm>
#include <cmath>

namespace chpo::rt {

double FaultPolicy::retry_delay(int failed_attempts) const {
  if (backoff_base_seconds <= 0.0 || failed_attempts < 1) return 0.0;
  const double factor = std::pow(std::max(1.0, backoff_multiplier), failed_attempts - 1);
  return std::min(backoff_max_seconds, backoff_base_seconds * factor);
}

void SpeculationTracker::record(const std::string& key, double seconds) {
  std::vector<double>& samples = samples_[key];
  samples.insert(std::upper_bound(samples.begin(), samples.end(), seconds), seconds);
}

std::optional<double> SpeculationTracker::baseline(const std::string& key) const {
  const auto it = samples_.find(key);
  if (it == samples_.end()) return std::nullopt;
  const std::vector<double>& samples = it->second;
  const std::size_t required = static_cast<std::size_t>(std::max(2, policy_.min_observations));
  if (samples.size() < required) return std::nullopt;
  const double q = std::clamp(policy_.quantile, 0.0, 1.0);
  const std::size_t index =
      std::min(samples.size() - 1, static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  return samples[index];
}

std::optional<double> SpeculationTracker::straggler_threshold(const std::string& key) const {
  const auto base = baseline(key);
  if (!base) return std::nullopt;
  return std::max(policy_.straggler_multiplier, 1.0) * *base;
}

double SpeculationTracker::effective_timeout(const std::string& key, double def_timeout) const {
  if (def_timeout > 0.0) return def_timeout;
  if (policy_.adaptive_timeout_multiplier <= 0.0) return 0.0;
  const auto base = baseline(key);
  if (!base) return 0.0;
  return policy_.adaptive_timeout_multiplier * *base;
}

std::size_t SpeculationTracker::observations(const std::string& key) const {
  const auto it = samples_.find(key);
  return it == samples_.end() ? 0 : it->second.size();
}

bool FaultInjector::should_fail(TaskId task, int attempt) {
  (void)attempt;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = forced_.find(task); it != forced_.end() && it->second > 0) {
    --it->second;
    return true;
  }
  if (task_failure_prob_ > 0.0) return rng_.next_bool(task_failure_prob_);
  return false;
}

}  // namespace chpo::rt
