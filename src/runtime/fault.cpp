#include "runtime/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace chpo::rt {

double FaultPolicy::retry_delay(int failed_attempts) const {
  if (backoff_base_seconds <= 0.0 || failed_attempts < 1) return 0.0;
  const double factor = std::pow(std::max(1.0, backoff_multiplier), failed_attempts - 1);
  return std::min(backoff_max_seconds, backoff_base_seconds * factor);
}

void SpeculationTracker::record(const std::string& key, double seconds) {
  std::vector<double>& samples = samples_[key];
  samples.insert(std::upper_bound(samples.begin(), samples.end(), seconds), seconds);
}

std::optional<double> SpeculationTracker::baseline(const std::string& key) const {
  const auto it = samples_.find(key);
  if (it == samples_.end()) return std::nullopt;
  const std::vector<double>& samples = it->second;
  const std::size_t required = static_cast<std::size_t>(std::max(2, policy_.min_observations));
  if (samples.size() < required) return std::nullopt;
  const double q = std::clamp(policy_.quantile, 0.0, 1.0);
  const std::size_t index =
      std::min(samples.size() - 1, static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  return samples[index];
}

std::optional<double> SpeculationTracker::straggler_threshold(const std::string& key) const {
  const auto base = baseline(key);
  if (!base) return std::nullopt;
  return std::max(policy_.straggler_multiplier, 1.0) * *base;
}

double SpeculationTracker::effective_timeout(const std::string& key, double def_timeout) const {
  if (def_timeout > 0.0) return def_timeout;
  if (policy_.adaptive_timeout_multiplier <= 0.0) return 0.0;
  const auto base = baseline(key);
  if (!base) return 0.0;
  return policy_.adaptive_timeout_multiplier * *base;
}

std::size_t SpeculationTracker::observations(const std::string& key) const {
  const auto it = samples_.find(key);
  return it == samples_.end() ? 0 : it->second.size();
}

double FaultInjector::exp_draw_locked(double mean) {
  // Inverse-CDF sample; 1-u in (0,1] keeps log() finite.
  const double u = rng_.next_double();
  return -mean * std::log(std::max(1e-12, 1.0 - u));
}

void FaultInjector::materialize_node_schedule(std::size_t n_nodes) {
  const MutexLock lock(mutex_);
  if (chaos_materialized_ || chaos_.mttf_seconds <= 0.0 || n_nodes == 0) return;
  chaos_materialized_ = true;

  // Sample each node's alternating up/down timeline, then admit failures in
  // global time order only while at least one other node stays live — chaos
  // degrades a run, it must not strand the whole cluster.
  struct Outage {
    std::size_t node;
    double fail_at;
    double recover_at;  ///< infinity = permanent
  };
  std::vector<Outage> outages;
  for (std::size_t node = 0; node < n_nodes; ++node) {
    double t = exp_draw_locked(chaos_.mttf_seconds);
    while (t < chaos_.horizon_seconds) {
      if (chaos_.mttr_seconds <= 0.0) {
        outages.push_back(Outage{node, t, std::numeric_limits<double>::infinity()});
        break;
      }
      const double back = t + exp_draw_locked(chaos_.mttr_seconds);
      outages.push_back(Outage{node, t, back});
      t = back + exp_draw_locked(chaos_.mttf_seconds);
    }
  }
  std::sort(outages.begin(), outages.end(),
            [](const Outage& a, const Outage& b) { return a.fail_at < b.fail_at; });

  std::vector<double> down_until(n_nodes, -1.0);  ///< recovery time while down
  for (const Outage& o : outages) {
    std::size_t live = 0;
    for (std::size_t node = 0; node < n_nodes; ++node)
      if (node != o.node && down_until[node] < o.fail_at) ++live;
    if (live == 0) continue;  // would kill the last live node: skip
    down_until[o.node] = o.recover_at;
    node_failures_.push_back(NodeFailureEvent{.node = o.node, .time = o.fail_at});
    if (std::isfinite(o.recover_at))
      node_recoveries_.push_back(NodeRecoveryEvent{.node = o.node, .time = o.recover_at});
  }
}

bool FaultInjector::should_fail(TaskId task, int attempt) {
  (void)attempt;
  const MutexLock lock(mutex_);
  if (auto it = forced_.find(task); it != forced_.end() && it->second > 0) {
    --it->second;
    return true;
  }
  if (task_failure_prob_ > 0.0) return rng_.next_bool(task_failure_prob_);
  return false;
}

}  // namespace chpo::rt
