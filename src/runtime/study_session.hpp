// StudySession — a study-scoped view of one shared Runtime.
//
// The HPO layer never sees rt::Runtime& anymore (chpo_lint enforces it):
// drivers receive this handle instead, so N concurrent studies can
// multiplex one engine. Tasks submitted through a session carry the
// session's StudyId; the terminal-notification funnel demultiplexes
// completions back to the owning session's queue, and cancel_all() tears
// down exactly this study's in-flight work — a neighbouring study never
// observes another's early stop, kill, or fault.
//
// The handle is a cheap copyable (Runtime*, StudyId) pair. It does not own
// the Runtime: whoever built the Runtime (an application, optimize(), or
// service::StudyManager) must keep it alive for as long as any session
// handle is in use. All calls happen on the coordinator thread, exactly
// like direct Runtime calls — sessions make ownership *logical*, not
// concurrent (the engine stays single-thread confined).
#pragma once

#include <any>
#include <span>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace chpo::rt {

class StudySession {
 public:
  /// Invalid handle; assign from Runtime::open_study()/main_study().
  StudySession() = default;

  StudyId id() const { return id_; }
  bool valid() const { return runtime_ != nullptr; }
  const std::string& name() const { return runtime_->study_name(id_); }

  /// Submit a task tagged with this study; see Runtime::submit.
  Future submit(const TaskDef& def, const std::vector<Param>& params = {}) {
    return runtime_->submit_study(id_, def, params, {});
  }
  Future submit(const TaskDef& def, const std::vector<Param>& params,
                Runtime::CompletionCallback on_complete) {
    return runtime_->submit_study(id_, def, params, std::move(on_complete));
  }
  Future submit_in(const TaskDef& def, const std::vector<DataId>& inputs) {
    std::vector<Param> params;
    params.reserve(inputs.size());
    for (DataId d : inputs) params.push_back(Param{.data = d, .dir = Direction::In});
    return submit(def, params);
  }

  /// Submit a wave of tasks tagged with this study in one engine
  /// round-trip (one coordinator context, one admission pass, one
  /// notification flush). Semantically identical to calling submit() per
  /// item in order; returns the futures in item order. This is the fast
  /// path for HPO generations: admission cost is amortized across the
  /// whole wave of trials.
  std::vector<Future> submit_batch(std::vector<Runtime::BatchItem> items) {
    return runtime_->submit_study_batch(id_, std::move(items));
  }

  /// Data registration is registry-global (studies may share inputs, e.g.
  /// one dataset feeding several studies); forwarded for convenience.
  template <typename T>
  DataId share(T value, std::uint64_t bytes = 64, std::string label = {}) {
    return runtime_->share(std::move(value), bytes, std::move(label));
  }
  template <typename T>
  DataId share_local(T value, std::uint64_t bytes = 64, std::string label = {}) {
    return runtime_->share_local(std::move(value), bytes, std::move(label));
  }

  template <typename T>
  const T& peek(DataId data) {
    return runtime_->peek<T>(data);
  }

  std::any wait_on(const Future& future) { return runtime_->wait_on(future); }
  template <typename T>
  T wait_on_as(const Future& future) {
    return runtime_->wait_on_as<T>(future);
  }
  Future wait_any(std::span<const Future> futures) { return runtime_->wait_any(futures); }
  Future wait_any(const std::vector<Future>& futures) { return runtime_->wait_any(futures); }
  /// Bounded wait: empty Future (producer == kNoTask) on timeout.
  Future wait_any_for(const std::vector<Future>& futures, double seconds) {
    return runtime_->wait_any_for(futures, seconds);
  }

  /// Per-state task counts of this study (service status snapshots).
  StudyProgress progress() const { return runtime_->study_progress(id_); }

  bool cancel(const Future& future) { return runtime_->cancel(future); }

  /// Cancel every non-terminal task of this study (kill / early stop).
  /// Returns how many tasks were newly cancelled; other studies' work is
  /// untouched by construction (the engine filters on the study tag).
  std::size_t cancel_all() { return runtime_->cancel_study_tasks(id_); }

  /// Terminal tasks of this study since the last drain, in completion
  /// order. Opt-in on first call, like Runtime::drain_completions.
  std::vector<TaskId> drain_completions() { return runtime_->drain_study_completions(id_); }

  /// Hold / release this study's ready queue at the engine's fair-share
  /// seam. Pausing never aborts in-flight attempts: they finish and
  /// commit, and their completions are still delivered.
  void pause() { runtime_->set_study_paused(id_, true); }
  void resume() { runtime_->set_study_paused(id_, false); }
  bool paused() const { return runtime_->is_study_paused(id_); }

  /// Block until every task of this study is terminal (per-study barrier;
  /// other studies' pending work does not gate it).
  void barrier() { runtime_->study_barrier(id_); }

  double now() const { return runtime_->now(); }
  bool simulated() const { return runtime_->simulated(); }
  const TaskGraph& graph() const { return runtime_->graph(); }
  const trace::TraceSink& trace() const { return runtime_->trace(); }
  trace::TraceSink& trace() { return runtime_->trace(); }
  std::uint64_t lineage_violations() const { return runtime_->lineage_violations(); }
  const cluster::ClusterSpec& cluster_spec() const { return runtime_->cluster_spec(); }

 private:
  friend class Runtime;
  StudySession(Runtime* runtime, StudyId id) : runtime_(runtime), id_(id) {}

  Runtime* runtime_ = nullptr;
  StudyId id_ = kMainStudy;
};

}  // namespace chpo::rt
