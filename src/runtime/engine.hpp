// Execution engine: the backend-independent half of the runtime.
//
// Owns the task lifecycle state machine (WaitingDeps → Ready → Running →
// Done / Failed / Cancelled), resource accounting, the scheduling policy,
// fault handling, and result commitment. The two backends (threads, DES)
// only decide *when* things happen; every decision about *what* happens is
// here, so both execute identical COMPSs semantics:
//
//  * dependencies from parameter directions are always honoured;
//  * a failed attempt is retried on the same node first, then resubmitted
//    excluding that node (paper §4), up to FaultPolicy::max_attempts;
//  * a permanently failed task cancels its transitive dependents and
//    nothing else ("the failure of a task does not affect the other tasks
//    unless there are some dependencies");
//  * writes of failed attempts are never committed.
//
// Threading contract: all methods except execute_prepared() must be called
// from a single coordinator thread. execute_prepared() may run on any worker
// thread; it only reads committed registry versions (shared lock), the
// internally synchronized FaultInjector, and buffers its writes in the
// TaskContext. The contract is *compile-time checked* under clang's
// -Wthread-safety: every mutating method requires the g_engine_ctx
// capability (see engine_context.hpp), which only the Runtime facade and
// the backend drive loops hold. Read-only queries used inside wait
// predicates (task_terminal, quiescent, next-counter accessors) stay
// unannotated — they are still coordinator-only by contract, but the
// predicate lambdas the backends evaluate cannot carry capabilities.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "runtime/data_registry.hpp"
#include "runtime/engine_context.hpp"
#include "runtime/fault.hpp"
#include "runtime/graph.hpp"
#include "runtime/node_health.hpp"
#include "runtime/resources.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "trace/trace.hpp"

namespace chpo::rt {

/// Outcome of running one task body once.
struct AttemptResult {
  bool success = false;
  std::string error;
  /// The body died reading an input whose replicas were lost with a node
  /// (DataLostError). Not the task's fault: the engine re-queues it behind
  /// lineage recovery without charging the attempt.
  bool data_lost = false;
  std::any return_value;
  std::vector<std::pair<std::size_t, std::any>> writes;  ///< staged ctx writes
};

struct EngineOptions {
  std::string scheduler = "priority";
  FaultPolicy fault_policy;
  SpeculationPolicy speculation;
  NodeHealthPolicy node_health;
  std::uint64_t seed = 42;  ///< base seed for per-attempt task RNGs
};

/// Per-study scheduling policy, applied at the ready-queue seam (before the
/// placement scheduler sees the runnable list). Studies multiplexed onto one
/// engine share resources by weighted fair-share; a paused study's ready
/// tasks are held (its in-flight attempts still finish and commit).
struct StudyPolicy {
  double weight = 1.0;  ///< fair-share weight between ready queues (> 0)
  int max_running = 0;  ///< cap on concurrently running tasks; 0 = unlimited
  bool paused = false;  ///< hold ready tasks; do not start new attempts
};

class Engine {
 public:
  /// Invoked (on the coordinator thread) for every task that reaches a
  /// terminal state — the completion feed the Runtime's wait_any/callback
  /// machinery is built on. The listener may run user code that submits or
  /// cancels tasks, so it is never fired from inside an engine mutation
  /// path (where TaskRecord references are live): mark_terminal only queues
  /// the notification, and callers invoke flush_notifications() at safe
  /// points.
  using TerminalListener = std::function<void(TaskId, TaskState)>;

  Engine(TaskGraph& graph, const cluster::ClusterSpec& spec, EngineOptions options,
         FaultInjector injector, trace::TraceSink& sink);

  void set_terminal_listener(TerminalListener listener) CHPO_REQUIRES(g_engine_ctx) {
    on_terminal_ = std::move(listener);
  }

  /// Notify that `task` was just added to the graph (possibly Ready).
  /// Records the submit event flag at time `now`.
  void on_submitted(TaskId task, double now) CHPO_REQUIRES(g_engine_ctx);

  /// Batch variant: admit N just-inserted tasks in one engine call. The
  /// per-task bookkeeping (counters, trace events, ready insertion) is
  /// byte-identical to N on_submitted calls — batching exists so the
  /// Runtime can amortize the context scope, the notification flush, and
  /// the backend wakeup across a whole wave, never to change semantics
  /// (sim schedules stay bit-identical either way).
  void on_submitted_batch(const std::vector<TaskId>& tasks, double now)
      CHPO_REQUIRES(g_engine_ctx);

  /// Place as many ready tasks as resources allow; marks them Running and
  /// records schedule events. Caller executes them and reports back.
  std::vector<Dispatch> schedule(double now) CHPO_REQUIRES(g_engine_ctx);

  /// Snapshot of everything one attempt's body needs, taken on the
  /// coordinator at launch time. Worker threads execute from the snapshot
  /// and never touch the TaskRecord — the coordinator may mutate it (reap
  /// the attempt at its deadline, dispatch a retry, cancel) while the body
  /// is still running.
  struct BodyJob {
    TaskId task = 0;
    int attempt = 1;
    TaskBody body;  ///< empty: pure-cost task, succeeds immediately
    std::vector<ParamBinding> bindings;
    std::uint64_t seed = 0;
  };

  /// Build the body snapshot for the task's next attempt (coordinator).
  BodyJob prepare_body(TaskId task) const CHPO_REQUIRES(g_engine_ctx);

  /// Run a prepared body (any thread). Applies fault injection; catches
  /// body exceptions and converts them to failed attempts. Touches no
  /// engine state beyond the (internally synchronized) injector.
  AttemptResult execute_prepared(const BodyJob& job, const Placement& placement, bool simulated);

  /// prepare_body + execute_prepared in one step — for the simulation
  /// backend, where bodies run on the coordinator thread anyway.
  AttemptResult execute_body(TaskId task, const Placement& placement, bool simulated)
      CHPO_REQUIRES(g_engine_ctx);

  /// Injection-only attempt outcome for runs that skip bodies
  /// (SimOptions::execute_bodies == false): success unless the injector
  /// fails this attempt.
  AttemptResult injection_result(TaskId task) CHPO_REQUIRES(g_engine_ctx);

  /// Input staging cost for running `task` on `node` under the cluster's
  /// transfer model; 0 when the cluster has a parallel filesystem. Records
  /// Transfer spans starting at `now` and updates data locations.
  double stage_inputs(TaskId task, int node, double now) CHPO_REQUIRES(g_engine_ctx);

  struct Completion {
    std::vector<TaskId> newly_ready;
    /// Set when the retry-same-node policy immediately re-placed the task:
    /// the backend must execute this dispatch (a TaskRetry event was logged).
    std::optional<Dispatch> retry;
  };

  /// Process the end of the in-flight attempt `attempt_id` at [start, end]:
  /// release resources, commit or discard results, apply the retry policy,
  /// wake successors. A completion for an attempt the engine no longer
  /// tracks (reaped on timeout, or raced by a speculative sibling after the
  /// task turned terminal) is a no-op — its resources were already handled.
  Completion complete_attempt(std::uint64_t attempt_id, AttemptResult result, double start,
                              double end) CHPO_REQUIRES(g_engine_ctx);

  /// Time-driven duties, called by the backend whenever the clock reaches a
  /// time next_wakeup() asked for (and harmlessly at any other time): reap
  /// in-flight attempts past their deadline (the attempt is charged as a
  /// failure *now*, even if a worker thread is still inside the body — its
  /// eventual completion is dropped as stale), promote retries whose
  /// backoff delay expired, and launch speculative duplicates for
  /// straggling attempts. Returns dispatches the backend must execute.
  std::vector<Dispatch> on_wakeup(double now) CHPO_REQUIRES(g_engine_ctx);

  /// Earliest future instant at which on_wakeup(now) has work to do:
  /// an attempt deadline, a straggler threshold crossing, or the end of a
  /// backoff delay. nullopt when no timed work is pending.
  std::optional<double> next_wakeup(double now) const;

  /// Timeout for a fresh attempt of `task` (TaskDef timeout, or the
  /// adaptive timeout once enough durations are observed); <= 0 = none.
  /// SimBackend uses this to preempt attempts on the virtual clock.
  double attempt_timeout(TaskId task) const;

  /// Sim-only: the backend preempts timed-out attempts itself on the
  /// virtual clock, so the engine must not also arm reap deadlines (a reap
  /// would race the already-queued preemption event).
  void set_backend_preempts_timeouts(bool value) CHPO_REQUIRES(g_engine_ctx) {
    backend_preempts_timeouts_ = value;
  }

  const SpeculationTracker& speculation() const { return speculation_; }

  /// Install or replace the scheduling policy for `study`. Studies without
  /// an explicit policy behave as weight 1.0, no cap, not paused.
  void set_study_policy(StudyId study, StudyPolicy policy) CHPO_REQUIRES(g_engine_ctx);

  /// Hold (or release) a study's ready queue. Pausing never touches
  /// in-flight attempts: they finish, commit, and notify as usual — only
  /// *new* placements for the study stop.
  void set_study_paused(StudyId study, bool paused) CHPO_REQUIRES(g_engine_ctx);
  bool study_paused(StudyId study) const;

  /// Cancel every non-terminal task carrying `study`'s tag (per-task
  /// cancel() semantics: ready tasks turn Cancelled immediately, running
  /// attempts are abandoned on finish). Tasks of other studies are never
  /// touched — this is the single-study teardown behind kill/early-stop.
  /// Returns the number of tasks newly cancelled.
  std::size_t cancel_study(StudyId study, double now) CHPO_REQUIRES(g_engine_ctx);

  /// Tasks submitted / terminal under `study` (per-study barrier math).
  /// Unannotated: evaluated inside backend wait predicates.
  std::size_t study_task_count(StudyId study) const;
  std::size_t study_terminal_count(StudyId study) const;
  /// Every task of `study` is terminal — the per-study barrier condition.
  bool study_quiescent(StudyId study) const {
    return study_terminal_count(study) == study_task_count(study);
  }

  /// Cooperative cancellation (the completion-driven early-stop path).
  /// A WaitingDeps/Ready task transitions to Cancelled immediately (it
  /// never held resources, so none are released) and dooms its dependents;
  /// a Running task is marked abandon-on-finish — its attempt keeps its
  /// resources until the backend reports completion, at which point the
  /// result is discarded (never committed, never retried) and the task
  /// ends Cancelled. Returns false iff the task was already terminal.
  bool cancel(TaskId task, double now) CHPO_REQUIRES(g_engine_ctx);

  /// Inject a node membership change at `time` (virtual seconds on the
  /// simulation backend, wall-clock seconds on the threaded one). The event
  /// fires from on_wakeup()/schedule() once the clock reaches it — this is
  /// the chaos hook Runtime::kill_node/revive_node use, and the same queue
  /// the injector's scheduled/MTTF-sampled timeline is loaded into at
  /// construction.
  void inject_node_event(std::size_t node, double time, bool up) CHPO_REQUIRES(g_engine_ctx);

  /// After a node death, ready tasks whose constraints no longer fit any
  /// live node must fail rather than wait forever. Returns true if any task
  /// transitioned (progress was made). A no-op while a node rejoin is still
  /// scheduled: capacity that will return is not gone.
  bool reap_infeasible() CHPO_REQUIRES(g_engine_ctx);

  /// Lineage status of (data, version) as seen by wait_on.
  enum class VersionStatus {
    Available,      ///< committed and readable now
    Recovering,     ///< lost or pending; recovery demanded / producer running
    Unrecoverable,  ///< lost and recovery attempts are exhausted
  };
  /// Ask for (data, version), demanding lineage recovery if its replicas
  /// died. Coordinator thread only.
  VersionStatus request_version(DataId data, std::uint32_t version, double now)
      CHPO_REQUIRES(g_engine_ctx);

  /// all_terminal() plus no lineage-recovery work pending or in flight —
  /// the barrier condition: a run is only over once lost data demanded by
  /// someone has been recomputed (or proven unrecoverable).
  bool quiescent() const { return all_terminal() && recovery_.empty(); }

  /// Successful lineage recomputations so far.
  std::size_t lineage_recoveries() const { return recoveries_done_; }
  /// Tasks whose recovery was abandoned (attempt budget exhausted).
  std::size_t unrecoverable_count() const { return unrecoverable_.size(); }
  /// Dispatches that violated the replica-liveness invariant: an In/InOut
  /// input that was neither available everywhere nor resident on a live
  /// node at launch time. Always 0 unless lineage gating has a bug — the
  /// chaos tests assert on it.
  std::uint64_t lineage_violations() const { return lineage_violations_; }

  const NodeHealth& node_health() const { return health_; }

  /// Deliver queued terminal notifications to the listener, in completion
  /// order. Must only be called when no TaskRecord references are held:
  /// the listener may run user callbacks that submit new tasks (growing the
  /// graph and adding successor edges to existing tasks) or cancel others.
  /// Re-entrant calls (a callback submitting/cancelling flushes again) are
  /// no-ops; the outermost flush drains everything queued along the way.
  void flush_notifications() CHPO_REQUIRES(g_engine_ctx);

  bool task_terminal(TaskId task) const;
  bool all_terminal() const;
  std::size_t ready_count() const { return ready_total_; }
  std::size_t running_count() const { return running_; }

  ResourceState& resources() { return resources_; }
  const ResourceState& resources() const { return resources_; }
  const TaskGraph& graph() const { return graph_; }
  trace::TraceSink& sink() { return sink_; }
  const EngineOptions& options() const { return options_; }

 private:
  /// One in-flight attempt (resources held, body running on a backend).
  struct Attempt {
    TaskId task = kNoTask;
    Placement placement;
    double start = 0.0;
    /// Absolute reap time; +inf when the attempt has no timeout or the
    /// backend preempts timeouts itself (sim).
    double deadline = 0.0;
    bool speculative = false;
    /// Lineage re-execution of a Done task: concluded by conclude_recovery
    /// (recommits data, never touches task state).
    bool recovery = false;
  };
  /// A scheduled node membership change, time-ordered.
  struct NodeEvent {
    double time = 0.0;
    std::size_t node = 0;
    bool up = false;
  };
  /// Pending lineage re-execution of one Done task.
  struct RecoveryJob {
    TaskId task = kNoTask;
    int attempts = 0;                 ///< recovery attempts already charged
    std::vector<int> excluded_nodes;  ///< nodes that failed a recovery try
    bool inflight = false;
  };
  /// A failed task waiting out its exponential-backoff delay.
  struct DelayedRetry {
    TaskId task = kNoTask;
    double ready_at = 0.0;
    /// Same-node retry preference: retry here if free when due; -1 = any.
    int pinned_node = -1;
  };

  /// Fair-share interleave over the pre-filtered runnable lists (one per
  /// study, each in submission order; pause/quota membership was already
  /// applied by the ready-shard walk): grant tasks by weighted deficit so
  /// an order-sensitive scheduler (Fifo) sees a fair-share order. Deficits
  /// read the per-shard running counters maintained at attempt
  /// registration and conclusion — only studies whose counter changed
  /// shift the interleave; nothing rescans inflight_. With a single study
  /// the input order is preserved. Consumes the lists (moves out of them).
  /// Order-insensitive schedulers bypass this entirely: their candidates
  /// are collected flat into schedule_scratch_ during the walk.
  std::vector<TaskId> apply_study_policy(std::map<StudyId, std::vector<TaskId>>& runnable)
      CHPO_REQUIRES(g_engine_ctx);
  StudyPolicy policy_for(StudyId study) const;

  void make_ready(TaskId task) CHPO_REQUIRES(g_engine_ctx);
  /// Append `record` to its study's ready shard (stamps a fresh epoch).
  void push_ready(TaskRecord& record) CHPO_REQUIRES(g_engine_ctx);
  /// O(1) lazy removal: clears in_ready and bumps the epoch so the queued
  /// shard entry is recognised as stale and dropped on the next walk.
  void remove_from_ready(TaskRecord& record) CHPO_REQUIRES(g_engine_ctx);
  void cancel_dependents(TaskId task) CHPO_REQUIRES(g_engine_ctx);
  void commit_outputs(TaskRecord& task, AttemptResult& result) CHPO_REQUIRES(g_engine_ctx);
  /// Single funnel for terminal transitions: stamps the completion order
  /// on the record and publishes the notification.
  void mark_terminal(TaskId task) CHPO_REQUIRES(g_engine_ctx);
  /// Track a newly placed attempt; stamps running state and the deadline.
  std::uint64_t register_attempt(TaskId task, const Placement& placement, double now,
                                 bool speculative, bool recovery = false)
      CHPO_REQUIRES(g_engine_ctx);
  /// Shared tail of complete_attempt and timeout reaping.
  Completion conclude_attempt(const Attempt& attempt, AttemptResult result, double start,
                              double end) CHPO_REQUIRES(g_engine_ctx);
  /// Tail for lineage-recovery attempts: recommit the recomputed outputs
  /// (or charge the job and retry elsewhere). Task state is never touched.
  Completion conclude_recovery(const Attempt& attempt, AttemptResult result, double start,
                               double end) CHPO_REQUIRES(g_engine_ctx);
  /// Launch duplicates for straggling attempts (appends to `out`).
  void check_speculation(double now, std::vector<Dispatch>& out) CHPO_REQUIRES(g_engine_ctx);
  std::string speculation_key(const TaskRecord& record) const;

  /// Pop node events whose time has come; down events reap that node's
  /// in-flight attempts (retry dispatches appended to `out`).
  void process_node_events(double now, std::vector<Dispatch>& out) CHPO_REQUIRES(g_engine_ctx);
  void handle_node_down(std::size_t node, double now, std::vector<Dispatch>& out)
      CHPO_REQUIRES(g_engine_ctx);
  void handle_node_up(std::size_t node, double now) CHPO_REQUIRES(g_engine_ctx);
  /// Queue the producer of a lost (data, version) for re-execution,
  /// recursively demanding its own lost inputs. False iff unrecoverable.
  bool demand_recovery(DataId data, std::uint32_t version, double now)
      CHPO_REQUIRES(g_engine_ctx);
  bool enqueue_recovery(TaskId producer, double now) CHPO_REQUIRES(g_engine_ctx);
  /// Place recovery jobs whose inputs are all committed again (appends
  /// dispatches to `out`).
  void dispatch_recoveries(double now, std::vector<Dispatch>& out) CHPO_REQUIRES(g_engine_ctx);
  /// True when every In/InOut input of `record` is readable. Lost inputs
  /// demand recovery; an unrecoverable input sets `doomed`.
  bool inputs_ready(const TaskRecord& record, double now, bool& doomed)
      CHPO_REQUIRES(g_engine_ctx);
  /// Count replica-liveness violations for a dispatch (invariant 5).
  void check_input_liveness(const TaskRecord& record) CHPO_REQUIRES(g_engine_ctx);
  bool node_up_pending() const;

  TaskGraph& graph_;
  ResourceState resources_;
  std::unique_ptr<Scheduler> scheduler_;
  EngineOptions options_;
  FaultInjector injector_;
  trace::TraceSink& sink_;
  SpeculationTracker speculation_;
  NodeHealth health_;
  /// One ready queue per study. `fifo` holds (task, epoch) entries in
  /// submission order; removal is lazy — remove_from_ready clears the
  /// record's in_ready flag and bumps its epoch, and the next schedule()
  /// walk compacts stale entries in place — so dispatch, cancel, and
  /// doomed-task removal are all O(1) instead of an O(ready) erase.
  /// `running` counts the study's non-recovery in-flight attempts so the
  /// fair-share pass reads a counter instead of scanning inflight_.
  struct ReadyShard {
    std::deque<std::pair<TaskId, std::uint32_t>> fifo;
    int running = 0;
  };
  std::map<StudyId, ReadyShard> ready_shards_;
  std::size_t ready_total_ = 0;  ///< live (non-stale) entries across shards
  /// Reused candidate buffer for order-insensitive schedulers: cleared and
  /// refilled by every schedule() walk so a storm doesn't pay a fresh
  /// allocation per scheduling round. Coordinator-confined like the rest.
  std::vector<TaskId> schedule_scratch_;
  /// Studies with an explicit policy (weight / cap / paused). Absent
  /// studies use the defaults, so the map stays empty until sessions ask
  /// for something non-default.
  std::map<StudyId, StudyPolicy> study_policies_;
  /// Per-study submitted/terminal tallies for study_quiescent().
  struct StudyCounters {
    std::size_t submitted = 0;
    std::size_t terminal = 0;
  };
  std::map<StudyId, StudyCounters> study_counts_;
  /// Time-ordered membership changes not yet applied (injector timeline +
  /// chaos hooks). Consumed front to back; kept sorted past the cursor.
  std::vector<NodeEvent> node_events_;
  std::size_t next_node_event_ = 0;
  std::map<TaskId, RecoveryJob> recovery_;  ///< pending lineage re-executions
  std::set<TaskId> unrecoverable_;          ///< recovery budget exhausted
  std::size_t recoveries_done_ = 0;
  std::uint64_t lineage_violations_ = 0;
  /// In-flight attempts by id. Insertion-ordered (ids ascend), so walks
  /// visit older attempts first.
  std::map<std::uint64_t, Attempt> inflight_;
  std::uint64_t next_attempt_id_ = 1;
  std::vector<DelayedRetry> delayed_;
  bool backend_preempts_timeouts_ = false;
  std::size_t running_ = 0;
  std::size_t terminal_ = 0;           ///< Done + Failed + Cancelled
  std::uint64_t terminal_seq_ = 0;     ///< completion-order stamp source
  TerminalListener on_terminal_;
  /// Terminal (task, state) pairs not yet delivered to the listener.
  std::deque<std::pair<TaskId, TaskState>> pending_notifications_;
  bool flushing_ = false;  ///< re-entrancy guard for flush_notifications
};

}  // namespace chpo::rt
