// Execution engine: the backend-independent half of the runtime.
//
// Owns the task lifecycle state machine (WaitingDeps → Ready → Running →
// Done / Failed / Cancelled), resource accounting, the scheduling policy,
// fault handling, and result commitment. The two backends (threads, DES)
// only decide *when* things happen; every decision about *what* happens is
// here, so both execute identical COMPSs semantics:
//
//  * dependencies from parameter directions are always honoured;
//  * a failed attempt is retried on the same node first, then resubmitted
//    excluding that node (paper §4), up to FaultPolicy::max_attempts;
//  * a permanently failed task cancels its transitive dependents and
//    nothing else ("the failure of a task does not affect the other tasks
//    unless there are some dependencies");
//  * writes of failed attempts are never committed.
//
// Threading contract: all methods except execute_body() must be called from
// a single coordinator thread. execute_body() may run on any worker thread;
// it only reads committed registry versions (shared lock) and buffers its
// writes in the TaskContext.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/data_registry.hpp"
#include "runtime/fault.hpp"
#include "runtime/graph.hpp"
#include "runtime/resources.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "trace/trace.hpp"

namespace chpo::rt {

/// Outcome of running one task body once.
struct AttemptResult {
  bool success = false;
  std::string error;
  std::any return_value;
  std::vector<std::pair<std::size_t, std::any>> writes;  ///< staged ctx writes
};

struct EngineOptions {
  std::string scheduler = "priority";
  FaultPolicy fault_policy;
  std::uint64_t seed = 42;  ///< base seed for per-attempt task RNGs
};

class Engine {
 public:
  /// Invoked (on the coordinator thread) for every task that reaches a
  /// terminal state — the completion feed the Runtime's wait_any/callback
  /// machinery is built on. The listener may run user code that submits or
  /// cancels tasks, so it is never fired from inside an engine mutation
  /// path (where TaskRecord references are live): mark_terminal only queues
  /// the notification, and callers invoke flush_notifications() at safe
  /// points.
  using TerminalListener = std::function<void(TaskId, TaskState)>;

  Engine(TaskGraph& graph, const cluster::ClusterSpec& spec, EngineOptions options,
         FaultInjector injector, trace::TraceSink& sink);

  void set_terminal_listener(TerminalListener listener) { on_terminal_ = std::move(listener); }

  /// Notify that `task` was just added to the graph (possibly Ready).
  /// Records the submit event flag at time `now`.
  void on_submitted(TaskId task, double now);

  /// Place as many ready tasks as resources allow; marks them Running and
  /// records schedule events. Caller executes them and reports back.
  std::vector<Dispatch> schedule(double now);

  /// Run the task body once (any thread). Applies fault injection; catches
  /// body exceptions and converts them to failed attempts. Does not touch
  /// engine state.
  AttemptResult execute_body(TaskId task, const Placement& placement, bool simulated);

  /// Injection-only attempt outcome for runs that skip bodies
  /// (SimOptions::execute_bodies == false): success unless the injector
  /// fails this attempt.
  AttemptResult injection_result(TaskId task);

  /// Input staging cost for running `task` on `node` under the cluster's
  /// transfer model; 0 when the cluster has a parallel filesystem. Records
  /// Transfer spans starting at `now` and updates data locations.
  double stage_inputs(TaskId task, int node, double now);

  struct Completion {
    std::vector<TaskId> newly_ready;
    /// Set when the retry-same-node policy immediately re-placed the task:
    /// the backend must execute this dispatch (a TaskRetry event was logged).
    std::optional<Dispatch> retry;
  };

  /// Process the end of an attempt at [start, end]: release resources,
  /// commit or discard results, apply the retry policy, wake successors.
  Completion complete_attempt(TaskId task, const Placement& placement, AttemptResult result,
                              double start, double end);

  /// Cooperative cancellation (the completion-driven early-stop path).
  /// A WaitingDeps/Ready task transitions to Cancelled immediately (it
  /// never held resources, so none are released) and dooms its dependents;
  /// a Running task is marked abandon-on-finish — its attempt keeps its
  /// resources until the backend reports completion, at which point the
  /// result is discarded (never committed, never retried) and the task
  /// ends Cancelled. Returns false iff the task was already terminal.
  bool cancel(TaskId task, double now);

  /// Mark a node as dead at time `now`. The backend must subsequently call
  /// complete_attempt(success=false) for every task it was running there.
  void fail_node(std::size_t node, double now);

  /// After a node death, ready tasks whose constraints no longer fit any
  /// live node must fail rather than wait forever. Returns true if any task
  /// transitioned (progress was made).
  bool reap_infeasible();

  /// Node deaths the injector has scheduled (consumed by SimBackend).
  const std::vector<NodeFailureEvent>& node_failure_events() const {
    return injector_.node_failures();
  }

  /// Deliver queued terminal notifications to the listener, in completion
  /// order. Must only be called when no TaskRecord references are held:
  /// the listener may run user callbacks that submit new tasks (growing the
  /// graph and adding successor edges to existing tasks) or cancel others.
  /// Re-entrant calls (a callback submitting/cancelling flushes again) are
  /// no-ops; the outermost flush drains everything queued along the way.
  void flush_notifications();

  bool task_terminal(TaskId task) const;
  bool all_terminal() const;
  std::size_t ready_count() const { return ready_.size(); }
  std::size_t running_count() const { return running_; }

  ResourceState& resources() { return resources_; }
  const TaskGraph& graph() const { return graph_; }
  trace::TraceSink& sink() { return sink_; }
  const EngineOptions& options() const { return options_; }

 private:
  void make_ready(TaskId task);
  void cancel_dependents(TaskId task);
  void commit_outputs(TaskRecord& task, AttemptResult& result);
  /// Single funnel for terminal transitions: stamps the completion order
  /// on the record and publishes the notification.
  void mark_terminal(TaskId task);

  TaskGraph& graph_;
  ResourceState resources_;
  std::unique_ptr<Scheduler> scheduler_;
  EngineOptions options_;
  FaultInjector injector_;
  trace::TraceSink& sink_;
  std::vector<TaskId> ready_;  ///< submission-ordered ready queue
  std::size_t running_ = 0;
  std::size_t terminal_ = 0;           ///< Done + Failed + Cancelled
  std::uint64_t terminal_seq_ = 0;     ///< completion-order stamp source
  TerminalListener on_terminal_;
  /// Terminal (task, state) pairs not yet delivered to the listener.
  std::deque<std::pair<TaskId, TaskState>> pending_notifications_;
  bool flushing_ = false;  ///< re-entrancy guard for flush_notifications
};

}  // namespace chpo::rt
