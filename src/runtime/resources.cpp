#include "runtime/resources.hpp"

#include <algorithm>
#include <stdexcept>

namespace chpo::rt {

ResourceState::ResourceState(const cluster::ClusterSpec& spec) : spec_(spec) {
  nodes_.resize(spec_.nodes.size());
  for (std::size_t i = 0; i < spec_.nodes.size(); ++i) {
    NodeState& n = nodes_[i];
    n.usable = spec_.node_usable(i);
    n.core_busy.assign(spec_.usable_cpus(i), false);
    n.gpu_busy.assign(spec_.usable_gpus(i), false);
    n.core_offset = spec_.worker_placement == cluster::WorkerPlacement::SharedCores
                        ? spec_.worker_cores
                        : 0;
  }
}

std::optional<Placement> ResourceState::try_allocate(std::size_t node, const Constraint& constraint) {
  if (node >= nodes_.size()) return std::nullopt;
  NodeState& n = nodes_[node];
  if (n.down || !n.usable) return std::nullopt;

  const unsigned want_cpus =
      constraint.node_exclusive ? static_cast<unsigned>(n.core_busy.size()) : constraint.cpus;
  if (want_cpus > n.core_busy.size() || constraint.gpus > n.gpu_busy.size()) return std::nullopt;

  // Collect the lowest free slots; bail if not enough.
  std::vector<unsigned> cores;
  cores.reserve(want_cpus);
  for (unsigned slot = 0; slot < n.core_busy.size() && cores.size() < want_cpus; ++slot)
    if (!n.core_busy[slot]) cores.push_back(slot);
  if (cores.size() < want_cpus) return std::nullopt;

  std::vector<unsigned> gpus;
  gpus.reserve(constraint.gpus);
  for (unsigned slot = 0; slot < n.gpu_busy.size() && gpus.size() < constraint.gpus; ++slot)
    if (!n.gpu_busy[slot]) gpus.push_back(slot);
  if (gpus.size() < constraint.gpus) return std::nullopt;

  Placement placement;
  placement.node = static_cast<int>(node);
  for (unsigned slot : cores) {
    n.core_busy[slot] = true;
    placement.cores.push_back(slot + n.core_offset);  // physical index
  }
  for (unsigned slot : gpus) {
    n.gpu_busy[slot] = true;
    placement.gpus.push_back(slot);
  }
  return placement;
}

std::optional<Placement> ResourceState::try_allocate_multi(const Constraint& constraint,
                                                           const std::vector<int>& excluded) {
  const unsigned wanted = std::max(1u, constraint.nodes);
  Constraint per_node = constraint;
  per_node.nodes = 1;

  std::vector<Placement> slices;
  for (std::size_t node = 0; node < nodes_.size() && slices.size() < wanted; ++node) {
    if (std::find(excluded.begin(), excluded.end(), static_cast<int>(node)) != excluded.end())
      continue;
    if (auto slice = try_allocate(node, per_node)) slices.push_back(std::move(*slice));
  }
  if (slices.size() < wanted) {
    for (const Placement& slice : slices) release(slice);
    return std::nullopt;
  }
  Placement placement = std::move(slices.front());
  for (std::size_t i = 1; i < slices.size(); ++i)
    placement.secondary.push_back(NodeSlice{.node = slices[i].node,
                                            .cores = std::move(slices[i].cores),
                                            .gpus = std::move(slices[i].gpus)});
  return placement;
}

void ResourceState::release(const Placement& placement) {
  const auto release_slice = [this](int node_index, const std::vector<unsigned>& cores,
                                    const std::vector<unsigned>& gpus) {
    if (node_index < 0 || static_cast<std::size_t>(node_index) >= nodes_.size())
      throw std::out_of_range("ResourceState: release on unknown node");
    NodeState& n = nodes_[static_cast<std::size_t>(node_index)];
    for (unsigned physical : cores) {
      const unsigned slot = physical - n.core_offset;
      if (slot >= n.core_busy.size() || !n.core_busy[slot])
        throw std::logic_error("ResourceState: double release of a core slot");
      n.core_busy[slot] = false;
    }
    for (unsigned slot : gpus) {
      if (slot >= n.gpu_busy.size() || !n.gpu_busy[slot])
        throw std::logic_error("ResourceState: double release of a gpu slot");
      n.gpu_busy[slot] = false;
    }
  };
  release_slice(placement.node, placement.cores, placement.gpus);
  for (const NodeSlice& slice : placement.secondary)
    release_slice(slice.node, slice.cores, slice.gpus);
}

bool ResourceState::could_fit(std::size_t node, const Constraint& constraint) const {
  if (node >= nodes_.size()) return false;
  const NodeState& n = nodes_[node];
  if (n.down || !n.usable) return false;
  const unsigned want_cpus =
      constraint.node_exclusive ? static_cast<unsigned>(n.core_busy.size()) : constraint.cpus;
  if (n.core_busy.empty() && want_cpus > 0) return false;
  return want_cpus <= n.core_busy.size() && constraint.gpus <= n.gpu_busy.size();
}

bool ResourceState::feasible(const Constraint& constraint) const {
  unsigned fitting = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (could_fit(i, constraint)) ++fitting;
  return fitting >= std::max(1u, constraint.nodes);
}

std::size_t ResourceState::add_node(const cluster::NodeSpec& node) {
  spec_.nodes.push_back(node);
  const std::size_t index = nodes_.size();
  NodeState state;
  state.usable = spec_.node_usable(index);
  state.core_busy.assign(spec_.usable_cpus(index), false);
  state.gpu_busy.assign(spec_.usable_gpus(index), false);
  state.core_offset = spec_.worker_placement == cluster::WorkerPlacement::SharedCores
                          ? spec_.worker_cores
                          : 0;
  nodes_.push_back(std::move(state));
  return index;
}

void ResourceState::mark_node_down(std::size_t node) {
  if (node >= nodes_.size()) throw std::out_of_range("ResourceState: unknown node");
  nodes_[node].down = true;
}

void ResourceState::mark_node_up(std::size_t node) {
  if (node >= nodes_.size()) throw std::out_of_range("ResourceState: unknown node");
  NodeState& n = nodes_[node];
  n.down = false;
  // Every attempt that held slots here was concluded (and released) when
  // the node went down; a rejoining node starts from a clean slate.
  n.core_busy.assign(n.core_busy.size(), false);
  n.gpu_busy.assign(n.gpu_busy.size(), false);
}

bool ResourceState::node_down(std::size_t node) const {
  if (node >= nodes_.size()) throw std::out_of_range("ResourceState: unknown node");
  return nodes_[node].down;
}

unsigned ResourceState::free_cpus(std::size_t node) const {
  if (node >= nodes_.size()) return 0;
  const NodeState& n = nodes_[node];
  if (n.down || !n.usable) return 0;
  return static_cast<unsigned>(std::count(n.core_busy.begin(), n.core_busy.end(), false));
}

unsigned ResourceState::free_gpus(std::size_t node) const {
  if (node >= nodes_.size()) return 0;
  const NodeState& n = nodes_[node];
  if (n.down || !n.usable) return 0;
  return static_cast<unsigned>(std::count(n.gpu_busy.begin(), n.gpu_busy.end(), false));
}

unsigned ResourceState::busy_cpus(std::size_t node) const {
  if (node >= nodes_.size()) return 0;
  const NodeState& n = nodes_[node];
  return static_cast<unsigned>(std::count(n.core_busy.begin(), n.core_busy.end(), true));
}

}  // namespace chpo::rt
