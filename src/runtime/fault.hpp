// Fault injection and the retry policy.
//
// The paper (§3/§4): "If a task fails for whatever reason, the runtime
// tries to start the same task in the same node; if it fails again, it is
// restarted in another node." FaultPolicy encodes exactly that. The
// injector produces the failures: per-attempt random failures, forced
// failures for specific tasks (deterministic tests), and scheduled node
// deaths (simulation backend only).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/types.hpp"
#include "support/rng.hpp"

namespace chpo::rt {

struct FaultPolicy {
  /// Retries on the *same* node after the first failure (paper: 1).
  int same_node_retries = 1;
  /// Total attempts before the task is declared Failed. Default 3 =
  /// original try + 1 same-node retry + 1 other-node retry.
  int max_attempts = 3;
};

/// A node death scheduled at a virtual time (SimBackend).
struct NodeFailureEvent {
  std::size_t node = 0;
  double time = 0.0;
};

class FaultInjector {
 public:
  FaultInjector() : rng_(0) {}
  explicit FaultInjector(std::uint64_t seed, double task_failure_prob = 0.0)
      : rng_(seed), task_failure_prob_(task_failure_prob) {}

  /// Force the first `n_failures` attempts of `task` to fail (deterministic).
  void force_task_failures(TaskId task, int n_failures) { forced_[task] = n_failures; }

  /// Schedule a node death (consumed by the simulation backend).
  void schedule_node_failure(std::size_t node, double time) {
    node_failures_.push_back(NodeFailureEvent{.node = node, .time = time});
  }

  /// Decide whether this attempt fails by injection. `attempt` is 1-based.
  bool should_fail(TaskId task, int attempt);

  const std::vector<NodeFailureEvent>& node_failures() const { return node_failures_; }
  bool any_injection() const { return task_failure_prob_ > 0.0 || !forced_.empty(); }

 private:
  Rng rng_;
  double task_failure_prob_ = 0.0;
  std::map<TaskId, int> forced_;  ///< task -> remaining forced failures
  std::vector<NodeFailureEvent> node_failures_;
};

}  // namespace chpo::rt
