// Fault injection and the retry policy.
//
// The paper (§3/§4): "If a task fails for whatever reason, the runtime
// tries to start the same task in the same node; if it fails again, it is
// restarted in another node." FaultPolicy encodes exactly that. The
// injector produces the failures: per-attempt random failures, forced
// failures for specific tasks (deterministic tests), and scheduled node
// deaths (simulation backend only).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runtime/types.hpp"
#include "support/rng.hpp"
#include "support/thread_annotations.hpp"

namespace chpo::rt {

struct FaultPolicy {
  /// Retries on the *same* node after the first failure (paper: 1).
  int same_node_retries = 1;
  /// Total attempts before the task is declared Failed. Default 3 =
  /// original try + 1 same-node retry + 1 other-node retry.
  int max_attempts = 3;
  /// Exponential backoff before re-dispatching a failed attempt: attempt
  /// n+1 waits min(backoff_max_seconds, base * multiplier^(n-1)) after the
  /// n-th failure. base <= 0 disables backoff (immediate retries, the
  /// paper's behaviour and the default).
  double backoff_base_seconds = 0.0;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 60.0;

  /// Delay before the retry that follows `failed_attempts` failures
  /// (1-based). Monotone non-decreasing in `failed_attempts` and capped at
  /// backoff_max_seconds; 0 when backoff is disabled.
  double retry_delay(int failed_attempts) const;
};

/// Straggler detection and speculative re-execution (Hippo-style): once
/// enough attempt durations of a task variant have been observed, a running
/// attempt that exceeds `straggler_multiplier` x the `quantile` duration is
/// declared a straggler and a duplicate attempt may be launched on another
/// node. The first attempt to finish wins through the engine's terminal
/// funnel; the loser is abandoned (PR 1's abandon-on-finish path).
struct SpeculationPolicy {
  bool enabled = false;
  /// Duration quantile used as the baseline (0.75 = upper quartile).
  double quantile = 0.75;
  /// Straggler threshold = multiplier x baseline quantile.
  double straggler_multiplier = 2.0;
  /// Observations of a task variant required before its threshold exists.
  /// Clamped to >= 2: a single observation is never a baseline.
  int min_observations = 3;
  /// Speculative duplicates allowed per task (beyond the original attempt).
  int max_duplicates = 1;
  /// When > 0 and the TaskDef declares no timeout, attempts are killed
  /// after multiplier x baseline quantile seconds (adaptive timeout).
  double adaptive_timeout_multiplier = 0.0;
};

/// Per-variant attempt-duration samples feeding SpeculationPolicy decisions.
/// Coordinator-thread only (the engine's threading contract).
class SpeculationTracker {
 public:
  SpeculationTracker() = default;
  explicit SpeculationTracker(SpeculationPolicy policy) : policy_(policy) {}

  /// Record the duration of a *successful* attempt of `key`.
  void record(const std::string& key, double seconds);

  /// Quantile duration, or nullopt with fewer than max(2, min_observations)
  /// samples.
  std::optional<double> baseline(const std::string& key) const;

  /// Elapsed seconds after which a running attempt of `key` counts as a
  /// straggler. Never fires with fewer than two observations.
  std::optional<double> straggler_threshold(const std::string& key) const;

  /// Timeout for a new attempt of `key`: the TaskDef's own timeout when
  /// declared, else the adaptive timeout when enabled and a baseline
  /// exists. Returns <= 0 when the attempt has no deadline.
  double effective_timeout(const std::string& key, double def_timeout) const;

  std::size_t observations(const std::string& key) const;
  const SpeculationPolicy& policy() const { return policy_; }

 private:
  SpeculationPolicy policy_;
  std::map<std::string, std::vector<double>> samples_;  ///< kept sorted
};

/// A node death scheduled at a virtual time (SimBackend).
struct NodeFailureEvent {
  std::size_t node = 0;
  double time = 0.0;
};

/// A node rejoin scheduled at a virtual time. A failure with no later
/// recovery for the same node is permanent; pairing the two makes the
/// outage transient.
struct NodeRecoveryEvent {
  std::size_t node = 0;
  double time = 0.0;
};

/// Probabilistic per-node churn: every node alternates exponentially
/// distributed up intervals (mean mttf_seconds) and outages (mean
/// mttr_seconds), sampled deterministically from the injector seed up to
/// horizon_seconds. mttr_seconds <= 0 makes every sampled failure
/// permanent.
struct NodeChaosPolicy {
  double mttf_seconds = 0.0;  ///< <= 0 disables probabilistic churn
  double mttr_seconds = 0.0;
  double horizon_seconds = 3600.0;
};

class FaultInjector {
 public:
  FaultInjector() : rng_(0) {}
  explicit FaultInjector(std::uint64_t seed, double task_failure_prob = 0.0)
      : rng_(seed), task_failure_prob_(task_failure_prob) {}

  // Copyable despite the mutex (copies happen at configuration time,
  // before any worker thread exists — hence exempt from the analysis,
  // which cannot see that sequencing).
  FaultInjector(const FaultInjector& other) CHPO_NO_THREAD_SAFETY_ANALYSIS
      : rng_(other.rng_),
        task_failure_prob_(other.task_failure_prob_),
        forced_(other.forced_),
        node_failures_(other.node_failures_),
        node_recoveries_(other.node_recoveries_),
        chaos_(other.chaos_) {}
  FaultInjector& operator=(const FaultInjector& other) CHPO_NO_THREAD_SAFETY_ANALYSIS {
    rng_ = other.rng_;
    task_failure_prob_ = other.task_failure_prob_;
    forced_ = other.forced_;
    node_failures_ = other.node_failures_;
    node_recoveries_ = other.node_recoveries_;
    chaos_ = other.chaos_;
    return *this;
  }

  /// Force the first `n_failures` attempts of `task` to fail (deterministic).
  void force_task_failures(TaskId task, int n_failures) { forced_[task] = n_failures; }

  /// Schedule a permanent node death (paired with schedule_node_recovery
  /// for a transient outage). Times are virtual seconds on the simulation
  /// backend and wall-clock seconds on the threaded one.
  void schedule_node_failure(std::size_t node, double time) {
    node_failures_.push_back(NodeFailureEvent{.node = node, .time = time});
  }

  /// Schedule the node's rejoin, turning a scheduled failure transient.
  void schedule_node_recovery(std::size_t node, double time) {
    node_recoveries_.push_back(NodeRecoveryEvent{.node = node, .time = time});
  }

  /// Enable probabilistic per-node MTTF/MTTR churn. The concrete timeline
  /// is sampled by materialize_node_schedule once the cluster size is
  /// known (the engine calls it at construction).
  void set_node_chaos(NodeChaosPolicy chaos) { chaos_ = chaos; }
  const NodeChaosPolicy& node_chaos() const { return chaos_; }
  bool has_node_chaos() const { return chaos_.mttf_seconds > 0.0; }

  /// Sample the MTTF/MTTR timeline for `n_nodes` into the scheduled
  /// failure/recovery lists (deterministic in the injector seed).
  /// Failures that would leave the cluster with no live node are skipped —
  /// chaos should degrade a run, not make it impossible. Idempotent: the
  /// schedule is materialized at most once.
  void materialize_node_schedule(std::size_t n_nodes) CHPO_EXCLUDES(mutex_);

  /// Decide whether this attempt fails by injection. `attempt` is 1-based.
  bool should_fail(TaskId task, int attempt) CHPO_EXCLUDES(mutex_);

  const std::vector<NodeFailureEvent>& node_failures() const { return node_failures_; }
  const std::vector<NodeRecoveryEvent>& node_recoveries() const { return node_recoveries_; }
  bool any_injection() const { return task_failure_prob_ > 0.0 || !forced_.empty(); }

 private:
  /// One inverse-CDF exponential draw from the injector RNG.
  double exp_draw_locked(double mean) CHPO_REQUIRES(mutex_);

  /// should_fail runs inside execute_body, which the threaded backend
  /// calls from concurrent workers: the rng draw and the forced-failure
  /// decrement must be atomic. The node-event lists and policies are
  /// configuration-time state, written before any worker exists and read
  /// by the coordinator only, so they stay unguarded.
  mutable Mutex mutex_{lockdep::kFaultInjector};
  Rng rng_ CHPO_GUARDED_BY(mutex_);
  double task_failure_prob_ = 0.0;
  std::map<TaskId, int> forced_ CHPO_GUARDED_BY(mutex_);  ///< remaining forced failures
  std::vector<NodeFailureEvent> node_failures_;
  std::vector<NodeRecoveryEvent> node_recoveries_;
  NodeChaosPolicy chaos_;
  bool chaos_materialized_ CHPO_GUARDED_BY(mutex_) = false;
};

}  // namespace chpo::rt
