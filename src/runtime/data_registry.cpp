#include "runtime/data_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace chpo::rt {

DataId DataRegistry::register_data(std::any initial_value, std::uint64_t bytes, std::string label,
                                   bool everywhere) {
  const WriterLock lock(mutex_);
  const DataId id = data_.size();
  DatumInfo info;
  info.bytes = bytes;
  info.label = label.empty() ? "d" + std::to_string(id) : std::move(label);
  VersionInfo v0;
  v0.value = std::make_shared<const std::any>(std::move(initial_value));
  v0.committed = true;
  v0.everywhere = everywhere;
  info.versions.push_back(std::move(v0));
  data_.push_back(std::move(info));
  return id;
}

DataRegistry::DatumInfo& DataRegistry::datum(DataId id) {
  if (id >= data_.size()) throw std::out_of_range("DataRegistry: unknown datum " + std::to_string(id));
  return data_[id];
}

const DataRegistry::DatumInfo& DataRegistry::datum(DataId id) const {
  if (id >= data_.size()) throw std::out_of_range("DataRegistry: unknown datum " + std::to_string(id));
  return data_[id];
}

AccessPlan DataRegistry::plan_access(TaskId task, const Param& param) {
  const WriterLock lock(mutex_);
  DatumInfo& d = datum(param.data);
  AccessPlan plan;
  const auto add_dep = [&plan](TaskId t) {
    if (t != kNoTask && std::find(plan.depends_on.begin(), plan.depends_on.end(), t) == plan.depends_on.end())
      plan.depends_on.push_back(t);
  };

  switch (param.dir) {
    case Direction::In:
      plan.read_version = d.current;
      add_dep(d.last_writer);  // RAW
      d.readers_of_current.push_back(task);
      break;
    case Direction::Out:
      // WAW with the previous writer, WAR with readers of the current version.
      add_dep(d.last_writer);
      for (TaskId r : d.readers_of_current) add_dep(r);
      d.versions.push_back(VersionInfo{.producer = task});
      d.current = static_cast<std::uint32_t>(d.versions.size() - 1);
      plan.write_version = d.current;
      d.last_writer = task;
      d.readers_of_current.clear();
      break;
    case Direction::InOut:
      plan.read_version = d.current;
      add_dep(d.last_writer);                            // RAW
      for (TaskId r : d.readers_of_current) add_dep(r);  // WAR
      d.versions.push_back(VersionInfo{.producer = task});
      d.current = static_cast<std::uint32_t>(d.versions.size() - 1);
      plan.write_version = d.current;
      d.last_writer = task;
      d.readers_of_current.clear();
      break;
  }
  return plan;
}

void DataRegistry::commit(DataId data, std::uint32_t version, std::any value, int node) {
  const WriterLock lock(mutex_);
  DatumInfo& d = datum(data);
  if (version >= d.versions.size())
    throw std::out_of_range("DataRegistry: commit of unplanned version");
  VersionInfo& v = d.versions[version];
  // A fresh allocation, never mutation in place: readers that pinned the
  // old bytes (value_ptr) keep them alive through their own pointer.
  v.value = std::make_shared<const std::any>(std::move(value));
  v.committed = true;
  if (v.lost) --lost_count_;
  v.lost = false;  // a recovery recommit resurrects the version
  if (node < 0)
    v.everywhere = true;
  else
    v.locations.insert(node);
}

std::vector<LostVersion> DataRegistry::drop_node_replicas(int node) {
  const WriterLock lock(mutex_);
  std::vector<LostVersion> lost;
  for (DataId id = 0; id < data_.size(); ++id) {
    DatumInfo& d = data_[id];
    for (std::uint32_t ver = 0; ver < d.versions.size(); ++ver) {
      VersionInfo& v = d.versions[ver];
      if (v.locations.erase(node) == 0) continue;
      if (!v.locations.empty() || v.everywhere || !v.committed || v.lost) continue;
      if (v.producer == kNoTask) continue;  // main-program data survives
      v.lost = true;
      ++lost_count_;
      v.committed = false;
      v.value.reset();  // the bytes died with the node
      lost.push_back(LostVersion{.data = id, .version = ver, .producer = v.producer});
    }
  }
  return lost;
}

bool DataRegistry::version_lost(DataId data, std::uint32_t version) const {
  const ReaderLock lock(mutex_);
  const DatumInfo& d = datum(data);
  return version < d.versions.size() && d.versions[version].lost;
}

std::size_t DataRegistry::lost_count() const {
  const ReaderLock lock(mutex_);
  return lost_count_;
}

const std::any& DataRegistry::value(DataId data, std::uint32_t version) const {
  return *value_ptr(data, version);
}

std::shared_ptr<const std::any> DataRegistry::value_ptr(DataId data,
                                                        std::uint32_t version) const {
  const ReaderLock lock(mutex_);
  const DatumInfo& d = datum(data);
  if (version >= d.versions.size() || !d.versions[version].committed) {
    if (version < d.versions.size() && d.versions[version].lost)
      throw DataLostError("DataRegistry: replicas lost for d" + std::to_string(data) + "v" +
                          std::to_string(version) + " (lineage recovery pending)");
    throw std::out_of_range("DataRegistry: value not committed for d" + std::to_string(data) +
                            "v" + std::to_string(version));
  }
  return d.versions[version].value;
}

bool DataRegistry::has_value(DataId data, std::uint32_t version) const {
  const ReaderLock lock(mutex_);
  const DatumInfo& d = datum(data);
  return version < d.versions.size() && d.versions[version].committed;
}

std::uint32_t DataRegistry::current_version(DataId data) const {
  const ReaderLock lock(mutex_);
  return datum(data).current;
}

TaskId DataRegistry::producer(DataId data, std::uint32_t version) const {
  const ReaderLock lock(mutex_);
  const DatumInfo& d = datum(data);
  if (version >= d.versions.size()) throw std::out_of_range("DataRegistry: unknown version");
  return d.versions[version].producer;
}

bool DataRegistry::available_everywhere(DataId data, std::uint32_t version) const {
  const ReaderLock lock(mutex_);
  const DatumInfo& d = datum(data);
  if (version >= d.versions.size()) return false;
  return d.versions[version].everywhere;
}

std::set<int> DataRegistry::locations(DataId data, std::uint32_t version) const {
  const ReaderLock lock(mutex_);
  const DatumInfo& d = datum(data);
  if (version >= d.versions.size()) return {};
  return d.versions[version].locations;
}

void DataRegistry::add_location(DataId data, std::uint32_t version, int node) {
  const WriterLock lock(mutex_);
  DatumInfo& d = datum(data);
  if (version >= d.versions.size()) throw std::out_of_range("DataRegistry: unknown version");
  d.versions[version].locations.insert(node);
}

std::uint64_t DataRegistry::bytes_of(DataId data) const {
  const ReaderLock lock(mutex_);
  return datum(data).bytes;
}

const std::string& DataRegistry::label_of(DataId data) const {
  const ReaderLock lock(mutex_);
  return datum(data).label;
}

std::size_t DataRegistry::datum_count() const {
  const ReaderLock lock(mutex_);
  return data_.size();
}

}  // namespace chpo::rt
