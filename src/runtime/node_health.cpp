#include "runtime/node_health.hpp"

#include <algorithm>

namespace chpo::rt {

bool NodeHealth::record_failure(std::size_t node) {
  if (!policy_.enabled) return false;
  ensure_node(node);
  Entry& e = nodes_[node];
  e.score = policy_.alpha * 1.0 + (1.0 - policy_.alpha) * e.score;
  ++e.observations;
  e.probation_streak = 0;
  if (e.state == HealthState::Healthy && e.observations >= policy_.min_observations &&
      e.score >= policy_.quarantine_threshold) {
    e.state = HealthState::Quarantined;
    return true;
  }
  return false;
}

bool NodeHealth::record_success(std::size_t node) {
  if (!policy_.enabled) return false;
  ensure_node(node);
  Entry& e = nodes_[node];
  e.score = (1.0 - policy_.alpha) * e.score;
  ++e.observations;
  if (e.state == HealthState::Healthy) return false;
  ++e.probation_streak;
  if (e.probation_streak >= std::max(1, policy_.probation_successes) &&
      e.score < policy_.quarantine_threshold) {
    e.state = HealthState::Healthy;
    e.probation_streak = 0;
    return true;
  }
  return false;
}

void NodeHealth::on_node_down(std::size_t node) {
  ensure_node(node);
  nodes_[node].inflight = 0;
}

void NodeHealth::on_node_up(std::size_t node) {
  ensure_node(node);
  Entry& e = nodes_[node];
  // A returning node must re-earn trust: probation caps its concurrency
  // until probation_successes clean runs land.
  e.state = HealthState::Probation;
  e.probation_streak = 0;
  e.inflight = 0;
}

void NodeHealth::on_placement(std::size_t node) {
  ensure_node(node);
  ++nodes_[node].inflight;
}

void NodeHealth::on_conclusion(std::size_t node) {
  ensure_node(node);
  nodes_[node].inflight = std::max(0, nodes_[node].inflight - 1);
}

bool NodeHealth::allow_placement(std::size_t node) const {
  if (!policy_.enabled || node >= nodes_.size()) return true;
  const Entry& e = nodes_[node];
  if (e.state == HealthState::Healthy) return true;
  return e.inflight < std::max(1, policy_.probation_tasks);
}

HealthState NodeHealth::state(std::size_t node) const {
  return node < nodes_.size() ? nodes_[node].state : HealthState::Healthy;
}

double NodeHealth::score(std::size_t node) const {
  return node < nodes_.size() ? nodes_[node].score : 0.0;
}

int NodeHealth::observations(std::size_t node) const {
  return node < nodes_.size() ? nodes_[node].observations : 0;
}

}  // namespace chpo::rt
