// Runtime facade — the PyCOMPSs-equivalent public API.
//
// Mirrors the programming model of the paper's Listing 2:
//
//   rt::RuntimeOptions opts;
//   opts.cluster = cluster::marenostrum4(2);
//   rt::Runtime runtime(opts);
//
//   rt::TaskDef experiment{.name = "experiment",
//                          .constraint = {.cpus = 1, .gpus = 1},
//                          .body = ...};
//   std::vector<rt::Future> results;
//   for (const auto& config : configurations)
//     results.push_back(runtime.submit(experiment, {runtime.share(config)}));
//   for (auto& f : results)
//     auto acc = runtime.wait_on_as<double>(f);     // compss_wait_on
//
// Construction chooses the backend: threads (real execution, wall time) or
// discrete-event simulation (virtual time, cluster-scale). Destruction
// drains outstanding tasks, like the end of a runcompss application.
#pragma once

#include <any>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "runtime/backend.hpp"
#include "runtime/engine.hpp"
#include "runtime/sim_backend.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"

namespace chpo::rt {

/// Thrown by wait_on when the producing task permanently failed (or was
/// cancelled by a failed predecessor).
class TaskFailedError : public std::runtime_error {
 public:
  TaskFailedError(TaskId task, const std::string& reason)
      : std::runtime_error("task " + std::to_string(task) + " failed: " + reason), task_(task) {}
  TaskId task() const { return task_; }

 private:
  TaskId task_;
};

/// Parameters of open_study(): a label for traces/reports plus the study's
/// scheduling policy at the engine's fair-share seam.
struct StudyOptions {
  std::string name;     ///< label carried into trace events and reports
  double weight = 1.0;  ///< fair-share weight between concurrent studies
  int max_running = 0;  ///< cap on concurrently running tasks; 0 = unlimited
};

class StudySession;

/// Point-in-time task census of one study — the progress snapshot behind a
/// service `status` reply. Computed by an O(tasks) graph scan; the graph is
/// append-only so the scan is safe whenever the coordinator is not inside
/// an engine mutation.
struct StudyProgress {
  std::size_t total = 0;  ///< tasks ever submitted under this study
  std::size_t waiting = 0;
  std::size_t ready = 0;
  std::size_t running = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t terminal() const { return done + failed + cancelled; }
};

struct RuntimeOptions {
  cluster::ClusterSpec cluster;
  std::string scheduler = "priority";
  bool tracing = true;    ///< the paper's tracing flag; off = near-zero overhead
  bool simulate = false;  ///< discrete-event backend instead of threads
  SimOptions sim;         ///< used when simulate == true
  FaultPolicy fault_policy;
  SpeculationPolicy speculation;  ///< straggler detection + duplicate attempts
  NodeHealthPolicy node_health;   ///< flaky-node quarantine + probation
  FaultInjector injector;
  std::uint64_t seed = 42;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options);
  /// Drains all outstanding tasks (a final implicit barrier).
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Register a value so tasks can consume it as a parameter. `bytes`
  /// drives the transfer cost model on clusters without a parallel FS.
  template <typename T>
  DataId share(T value, std::uint64_t bytes = 64, std::string label = {}) {
    return graph_.registry().register_data(std::any(std::move(value)), bytes, std::move(label));
  }

  /// Like share(), but the value initially lives only with the main
  /// program: on clusters without a parallel filesystem it is staged to
  /// every node that consumes it (paper §4: "the data required by the task
  /// is copied to the specific node that the task will be executed on").
  template <typename T>
  DataId share_local(T value, std::uint64_t bytes = 64, std::string label = {}) {
    return graph_.registry().register_data(std::any(std::move(value)), bytes, std::move(label),
                                           /*everywhere=*/false);
  }

  /// Invoked on the coordinator thread (inside whichever submit, cancel,
  /// wait or barrier call drives the engine) promptly after the task
  /// reaches a terminal state — at the next safe point of the completion
  /// loop, never from inside an engine mutation path. `state` is Done,
  /// Failed or Cancelled; the Future is valid for the duration of the call
  /// (copy it to keep it). The callback may submit new tasks or cancel
  /// others, but must not wait — it runs in the middle of the completion
  /// loop.
  using CompletionCallback = std::function<void(const Future&, TaskState state)>;

  /// One task of a submit_batch() call: definition, parameters and an
  /// optional completion callback, exactly as the one-at-a-time overloads
  /// take them.
  struct BatchItem {
    TaskDef def;
    std::vector<Param> params;
    CompletionCallback on_complete;
  };

  /// Open a new study session: a tagged submission scope multiplexed onto
  /// this runtime alongside any other open studies. Tasks submitted through
  /// the returned handle carry the study's id, so completions route back to
  /// it and cancelling the study never touches a neighbour's work. The
  /// handle is a lightweight copyable view; the Runtime must outlive it.
  /// (Declared here, defined with the handle in runtime/study_session.hpp.)
  StudySession open_study(StudyOptions study = {});

  /// Handle to the default study (id kMainStudy) that plain submit() feeds.
  StudySession main_study();

  /// Label given to `study` at open_study time ("main" for kMainStudy).
  const std::string& study_name(StudyId study) const;

  /// Per-state task counts for one study (see StudyProgress).
  StudyProgress study_progress(StudyId study) const;

  /// Submit a task over the given parameters; returns the future of the
  /// body's return value. Dependencies are derived from param directions.
  Future submit(const TaskDef& def, const std::vector<Param>& params = {});

  /// Like submit(), with a completion callback fired when the task turns
  /// terminal (the push half of the completion-driven API; wait_any is the
  /// pull half).
  Future submit(const TaskDef& def, const std::vector<Param>& params, CompletionCallback on_complete);

  /// Convenience: submit with IN-only data ids.
  Future submit_in(const TaskDef& def, const std::vector<DataId>& inputs);

  /// Submit a whole wave of tasks in one engine round-trip: one coordinator
  /// context acquisition, one admission pass and one notification flush for
  /// the entire batch instead of per task. Semantically identical to calling
  /// submit() per item in order — the engine admits batch members through
  /// the same per-task path, so simulated schedules are bit-identical either
  /// way. Returns the futures in item order.
  std::vector<Future> submit_batch(std::vector<BatchItem> items) {
    return submit_study_batch(kMainStudy, std::move(items));
  }

  /// Jobs a pool worker took from another worker's queue (thread backend
  /// only; always 0 on the simulator). Monitoring/tests.
  std::uint64_t worker_steals() const { return backend_->steals(); }

  /// COMPSs task groups: submit under a named group, then barrier on just
  /// that group (a partial compss_barrier_group).
  Future submit_in_group(const std::string& group, const TaskDef& def,
                         const std::vector<Param>& params = {});

  /// Block until every task of `group` is terminal. No-op for unknown
  /// groups (nothing was submitted under that name).
  void barrier_group(const std::string& group);

  /// After barrier_group: true iff every task in the group is Done.
  bool group_succeeded(const std::string& group) const;

  /// Elastic growth: add a node to the cluster mid-run. Queued tasks can be
  /// placed on it immediately; the trace gains a resource from this point.
  /// Returns the new node's index.
  std::size_t add_node(const cluster::NodeSpec& node);

  /// Chaos hooks: take a node down / bring it back at the current backend
  /// time. Running attempts on a killed node are reaped and retried; data
  /// whose only replica lived there is recovered through lineage. A revived
  /// node re-enters on probation (see NodeHealthPolicy). Throws
  /// std::out_of_range for an unknown node index.
  void kill_node(std::size_t node) {
    EngineContextScope ctx(g_engine_ctx);
    engine_.inject_node_event(node, backend_->now(), false);
    backend_->poke();  // apply now: reap attempts, drop replicas
  }
  void revive_node(std::size_t node) {
    EngineContextScope ctx(g_engine_ctx);
    engine_.inject_node_event(node, backend_->now(), true);
    backend_->poke();
  }

  /// compss_wait_on: block until the future's producer finished; returns
  /// its value. Throws TaskFailedError if it permanently failed.
  std::any wait_on(const Future& future);

  template <typename T>
  T wait_on_as(const Future& future) {
    return std::any_cast<T>(wait_on(future));
  }

  /// Completion-driven wait: block until at least one of `futures` reaches
  /// a terminal state and return the *first* one to have done so (by
  /// completion order, not submission order). Unlike wait_on it does not
  /// throw on task failure — follow up with wait_on on the returned future
  /// to fetch the value or the error. Throws std::invalid_argument on an
  /// empty span or empty futures.
  Future wait_any(std::span<const Future> futures);
  Future wait_any(const std::vector<Future>& futures) {
    return wait_any(std::span<const Future>(futures));
  }

  /// Bounded wait_any: drive the runtime until one of `futures` turns
  /// terminal or `seconds` (wall or virtual) elapse, whichever is first.
  /// On timeout the returned Future is empty (producer == kNoTask) and no
  /// WaitAny trace event is recorded. This is the service front-end's
  /// building block: it interleaves engine progress with request handling
  /// so a long trial never blocks the control plane.
  Future wait_any_for(std::span<const Future> futures, double seconds);
  Future wait_any_for(const std::vector<Future>& futures, double seconds) {
    return wait_any_for(std::span<const Future>(futures), seconds);
  }

  /// Bounded barrier: drive the runtime for at most `seconds` (wall or
  /// virtual, matching the backend clock). Returns true iff every
  /// submitted task is terminal.
  bool wait_all_for(double seconds);

  /// Cancel the producer of `future`. A task that has not started yet is
  /// cancelled immediately (it never held resources); a running attempt is
  /// marked abandon-on-finish — its resources come back when the attempt
  /// ends and its result is discarded. Dependents are cancelled either
  /// way. Returns false iff the task was already terminal (too late).
  bool cancel(const Future& future);

  /// Tasks that reached a terminal state since the last drain, in
  /// completion order — the runtime-level completion queue both backends
  /// publish into. Recording is opt-in: it starts at the first call (which
  /// therefore returns empty), so callers that never drain don't pay an
  /// ever-growing queue.
  std::vector<TaskId> drain_completions();

  /// compss_barrier: run every submitted task to a terminal state.
  void barrier();

  /// Latest committed value of a datum (after the producing task is done).
  template <typename T>
  const T& peek(DataId data) const {
    const auto& registry = graph_.registry();
    return std::any_cast<const T&>(registry.value(data, registry.current_version(data)));
  }

  /// Current time on the backend clock (wall or virtual seconds).
  double now() const { return backend_->now(); }
  bool simulated() const { return options_.simulate; }

  /// Graphviz DOT of the dependency graph; includes a sync node for every
  /// future passed to wait_on so far (Figure 3 style).
  std::string graph_dot() const { return graph_.to_dot(synced_); }

  const trace::TraceSink& trace() const { return sink_; }
  trace::TraceSink& trace() { return sink_; }
  /// Analysis over the events recorded so far.
  trace::Analysis analyze() const { return trace::Analysis(sink_.events()); }

  const TaskGraph& graph() const { return graph_; }
  const cluster::ClusterSpec& cluster_spec() const { return options_.cluster; }
  std::size_t task_count() const { return graph_.size(); }

  /// Per-node failure-rate tracker driving quarantine/probation decisions.
  const NodeHealth& node_health() const { return engine_.node_health(); }
  /// Lineage recomputations executed so far (recovery attempts that
  /// recommitted lost data).
  std::size_t lineage_recoveries() const { return engine_.lineage_recoveries(); }
  /// Lost versions whose lineage could not be replayed (producer failed
  /// permanently or every node died).
  std::size_t unrecoverable_count() const { return engine_.unrecoverable_count(); }
  /// Invariant violations: dispatches that consumed a datum with no live
  /// replica. Always 0 unless recovery bookkeeping is broken.
  std::uint64_t lineage_violations() const { return engine_.lineage_violations(); }
  const ResourceState& resources() const { return engine_.resources(); }

 private:
  friend class StudySession;

  void on_task_terminal(TaskId task, TaskState state);

  /// Per-study bookkeeping on the Runtime side of the notification funnel.
  struct StudyInfo {
    std::string name;
    /// Terminal tasks of this study not yet drained by its session.
    /// Opt-in like the global queue (see completions_enabled_).
    std::deque<TaskId> completions;
    bool completions_enabled = false;
  };

  /// Session plumbing (called by StudySession; study must be registered).
  Future submit_study(StudyId study, const TaskDef& def, const std::vector<Param>& params,
                      CompletionCallback on_complete);
  /// Batch flavour of submit_study: inserts every item into the graph and
  /// registers its callback first, then admits the whole wave with a single
  /// Engine::on_submitted_batch + flush. See submit_batch() for semantics.
  std::vector<Future> submit_study_batch(StudyId study, std::vector<BatchItem> items);
  std::vector<TaskId> drain_study_completions(StudyId study);
  void set_study_paused(StudyId study, bool paused);
  bool is_study_paused(StudyId study) const;
  /// Tear down one study's in-flight work (kill / early-stop). Returns the
  /// number of tasks newly cancelled; other studies are never touched.
  std::size_t cancel_study_tasks(StudyId study);
  /// Block until every task of `study` is terminal. Throws if the study is
  /// paused with held ready tasks and nothing else can make progress.
  void study_barrier(StudyId study);
  StudyInfo& study_info(StudyId study);
  const StudyInfo& study_info(StudyId study) const;

  RuntimeOptions options_;
  DataRegistry registry_;
  TaskGraph graph_;
  trace::TraceSink sink_;
  Engine engine_;
  std::unique_ptr<Backend> backend_;
  std::vector<Future> synced_;
  std::map<std::string, std::vector<TaskId>> groups_;
  /// Terminal notifications not yet consumed via drain_completions().
  /// Only touched from the coordinator thread (the engine's threading
  /// contract), so it needs no lock. Populated only once a caller has
  /// opted in by draining (completions_enabled_), so non-draining callers
  /// don't accumulate one entry per task forever.
  std::deque<TaskId> completions_;
  bool completions_enabled_ = false;
  std::map<TaskId, CompletionCallback> callbacks_;
  /// Open studies by id; kMainStudy ("main") is registered at construction.
  std::map<StudyId, StudyInfo> studies_;
  StudyId next_study_ = kMainStudy + 1;
};

}  // namespace chpo::rt
