// Sharded work-stealing executor for the threaded backend's dispatch path.
//
// ThreadPool funnels every job through one mutex-guarded deque and a
// std::function allocation per submit; under a task storm that single lock
// and those per-dispatch allocations dominate the hot path. StealPool keeps
// one queue per worker — dispatches shard by placement node, so a node's
// tasks land together — and lets an idle worker steal from the back of any
// other queue. The common case is an uncontended push and pop on distinct
// mutexes, and the job payload is a plain struct moved through a function
// pointer sink: no type-erased callable is allocated per dispatch
// (enforced by chpo_lint's hot-path-std-function rule).
//
// Queue ownership protocol (see DESIGN.md "Scheduling"): the coordinator is
// the only producer; the owning worker consumes its queue front (oldest
// first), thieves take the back (newest first), so the contended ends stay
// apart. Stealing is always legal once a job is queued — by then the engine
// has already registered the attempt and charged the owning study, so *who*
// runs the body never affects fair-share, pause, or quota decisions.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/types.hpp"
#include "support/thread_annotations.hpp"

namespace chpo::rt {

class StealPool {
 public:
  /// One dispatched attempt, snapshotted on the coordinator: everything a
  /// worker needs to run the body without touching engine state.
  struct Job {
    Engine::BodyJob body;
    Placement placement;
    std::uint64_t attempt_id = 0;
    double start = 0.0;
  };

  /// Jobs are handed to `sink(ctx, job)` on a worker thread. A plain
  /// function pointer keeps the per-dispatch path allocation-free.
  using Sink = void (*)(void* ctx, Job&& job);

  StealPool(std::size_t num_workers, Sink sink, void* ctx);
  StealPool(const StealPool&) = delete;
  StealPool& operator=(const StealPool&) = delete;

  /// Lets workers drain every queue, then joins them.
  ~StealPool();

  /// Enqueue a job on the shard owning its placement node (coordinator
  /// only).
  void submit(Job job);

  /// Jobs taken from another worker's queue so far.
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  std::size_t size() const { return workers_.size(); }

 private:
  /// One worker's deque. Heap-allocated so the Mutex address is stable
  /// across the owning vector's growth.
  struct WorkerQueue {
    Mutex mutex{lockdep::kStealShard};
    std::deque<Job> jobs CHPO_GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t self) CHPO_EXCLUDES(park_mutex_);

  Sink sink_;
  void* ctx_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> steals_{0};

  /// Park protocol: a worker snapshots work_epoch_ *before* scanning every
  /// queue, and a submit bumps the epoch *after* pushing. A fruitless scan
  /// only parks while the epoch is unchanged, so a push that lands between
  /// scan and park always prevents (or ends) the wait — no missed wakeup.
  Mutex park_mutex_{lockdep::kStealPark};
  CondVar park_cv_;
  std::uint64_t work_epoch_ CHPO_GUARDED_BY(park_mutex_) = 0;
  bool stopping_ CHPO_GUARDED_BY(park_mutex_) = false;
};

}  // namespace chpo::rt
