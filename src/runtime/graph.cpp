#include "runtime/graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace chpo::rt {

TaskId TaskGraph::add_task(TaskDef def, const std::vector<Param>& params, StudyId study) {
  const TaskId id = tasks_.size();
  TaskRecord record;
  record.id = id;
  record.study = study;
  record.def = std::move(def);

  std::vector<TaskId> deps;
  for (const Param& p : params) {
    AccessPlan plan = registry_.plan_access(id, p);
    record.bindings.push_back(
        ParamBinding{.param = p, .read_version = plan.read_version, .write_version = plan.write_version});
    for (TaskId d : plan.depends_on)
      if (std::find(deps.begin(), deps.end(), d) == deps.end()) deps.push_back(d);
  }

  // Implicit return value: a fresh datum written (Out) by this task.
  const DataId ret = registry_.register_data({}, 64, record.def.name + "#" + std::to_string(id) + ".ret");
  AccessPlan ret_plan = registry_.plan_access(id, Param{.data = ret, .dir = Direction::Out});
  record.bindings.push_back(ParamBinding{.param = Param{.data = ret, .dir = Direction::Out},
                                         .read_version = 0,
                                         .write_version = ret_plan.write_version});
  record.result = Future{.data = ret, .version = ret_plan.write_version, .producer = id};

  record.predecessors = deps;
  // Tasks may be submitted after some predecessors already ran (the
  // paper's plot task is submitted once the experiments are done): only
  // unfinished predecessors still gate this task, and a failed or
  // cancelled predecessor dooms it immediately.
  std::size_t pending = 0;
  bool doomed = false;
  for (TaskId d : deps) {
    if (d >= id)
      throw std::logic_error("TaskGraph: dependency on unknown task " + std::to_string(d) +
                             " (registry accessed outside this graph?)");
    tasks_[d].successors.push_back(id);
    switch (tasks_[d].state) {
      case TaskState::Done: break;
      case TaskState::Failed:
      case TaskState::Cancelled:
        doomed = true;
        record.failure_reason = "predecessor " + std::to_string(d) + " failed";
        break;
      default: ++pending;
    }
  }
  record.deps_remaining = pending;
  record.state = doomed ? TaskState::Cancelled
                        : (pending == 0 ? TaskState::Ready : TaskState::WaitingDeps);

  tasks_.push_back(std::move(record));
  return id;
}

std::vector<TaskId> TaskGraph::tasks_in_state(TaskState state) const {
  std::vector<TaskId> out;
  for (const TaskRecord& t : tasks_)
    if (t.state == state) out.push_back(t.id);
  return out;
}

bool TaskGraph::is_acyclic() const {
  for (const TaskRecord& t : tasks_)
    for (TaskId p : t.predecessors)
      if (p >= t.id) return false;
  return true;
}

std::size_t TaskGraph::critical_path_length() const {
  std::vector<std::size_t> depth(tasks_.size(), 0);
  std::size_t longest = 0;
  for (const TaskRecord& t : tasks_) {
    std::size_t d = 1;
    for (TaskId p : t.predecessors) d = std::max(d, depth[p] + 1);
    depth[t.id] = d;
    longest = std::max(longest, d);
  }
  return longest;
}

std::string TaskGraph::to_dot(const std::vector<Future>& synced) const {
  std::ostringstream out;
  out << "digraph app {\n  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";
  for (const TaskRecord& t : tasks_) {
    out << "  t" << t.id << " [label=\"" << t.id + 1 << "\", tooltip=\"" << t.def.name << "\"";
    if (t.def.priority) out << ", penwidth=2";
    out << "];\n";
  }
  // Data edges: for each In/InOut binding with a producing task, draw
  // producer -> consumer labelled d{datum}v{version} as in Figure 3.
  for (const TaskRecord& t : tasks_) {
    for (const ParamBinding& b : t.bindings) {
      if (b.param.dir == Direction::Out) continue;
      const TaskId producer = registry_.producer(b.param.data, b.read_version);
      if (producer == kNoTask) continue;
      out << "  t" << producer << " -> t" << t.id << " [label=\"d" << b.param.data << "v"
          << b.read_version << "\", fontsize=8];\n";
    }
  }
  // Pure ordering edges (WAR/WAW) that carry no data: draw dashed.
  for (const TaskRecord& t : tasks_) {
    for (TaskId p : t.predecessors) {
      bool has_data_edge = false;
      for (const ParamBinding& b : t.bindings) {
        if (b.param.dir == Direction::Out) continue;
        if (registry_.producer(b.param.data, b.read_version) == p) {
          has_data_edge = true;
          break;
        }
      }
      if (!has_data_edge) out << "  t" << p << " -> t" << t.id << " [style=dashed];\n";
    }
  }
  if (!synced.empty()) {
    out << "  sync [shape=octagon, label=\"sync\"];\n";
    for (const Future& f : synced) {
      if (f.producer == kNoTask) continue;
      out << "  t" << f.producer << " -> sync [label=\"d" << f.data << "v" << f.version
          << "\", fontsize=8];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace chpo::rt
