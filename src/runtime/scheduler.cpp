#include "runtime/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace chpo::rt {

namespace {

bool node_excluded(const TaskRecord& task, std::size_t node) {
  return std::find(task.excluded_nodes.begin(), task.excluded_nodes.end(), static_cast<int>(node)) !=
         task.excluded_nodes.end();
}

bool health_allows(const NodeHealth* health, std::size_t node) {
  return health == nullptr || health->allow_placement(node);
}

/// Ready ids ordered by (priority desc, id asc). The engine hands over
/// per-study submission order (ids ascend within a study) and priority
/// tasks are rare, so the list is almost always sorted already — a linear
/// is_sorted check skips the O(n log n) stable_sort on the hot path (task
/// storms keep thousands of ready ids queued behind a handful of slots).
std::vector<TaskId> priority_order(const std::vector<TaskId>& ready, const TaskGraph& graph) {
  // Bucket, don't comparison-sort: the key is (priority desc, id asc) and
  // ids are unique, so splitting into two id-sorted buckets is equivalent
  // to a stable_sort — at one graph lookup per element instead of two per
  // comparison (the fair-share interleave hands over a study-interleaved
  // list every round of a storm, so this runs constantly).
  std::vector<TaskId> order;
  order.reserve(ready.size());
  std::vector<TaskId> rest;
  for (const TaskId id : ready)
    (graph.task(id).def.priority ? order : rest).push_back(id);
  if (order.empty()) {
    order = std::move(rest);
    if (!std::is_sorted(order.begin(), order.end())) std::sort(order.begin(), order.end());
    return order;
  }
  std::sort(order.begin(), order.end());
  std::sort(rest.begin(), rest.end());
  order.insert(order.end(), rest.begin(), rest.end());
  return order;
}

/// Candidates in (priority desc, id asc) order, consumed lazily.
///
/// The engine hands over a concatenation of per-study ready lists — a few
/// ascending id runs — and a storm round only ever places a handful of
/// tasks before the cluster saturates. Sorting thousands of candidates per
/// round to consume eight of them dominated multi-study profiles, so this
/// stream detects the runs in one linear pass and then yields ids through
/// a k-way head merge: O(runs) per task actually consumed, nothing
/// materialised. Rare shapes (any priority task present, or heavy run
/// churn) fall back to the eager sorted order — identical output, only the
/// evaluation strategy differs. `raw` mode yields the input order
/// untouched (Fifo).
class CandidateStream {
 public:
  CandidateStream(const std::vector<TaskId>& ready, const TaskGraph& graph, bool raw)
      : source_(&ready) {
    if (raw) {
      if (!ready.empty()) runs_.push_back({0, ready.size()});
      return;
    }
    bool any_priority = false;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (graph.task(ready[i]).def.priority) any_priority = true;
      if (i > 0 && ready[i] < ready[i - 1]) {
        runs_.push_back({begin, i});
        begin = i;
      }
    }
    if (!ready.empty()) runs_.push_back({begin, ready.size()});
    if (any_priority || runs_.size() > kMaxRuns) {
      sorted_ = priority_order(ready, graph);
      source_ = &sorted_;
      runs_.clear();
      runs_.push_back({0, sorted_.size()});
    }
  }

  /// Smallest remaining id across run heads (or the next element in eager
  /// / raw mode, where a single run covers the whole source).
  std::optional<TaskId> next() {
    const std::vector<TaskId>& src = *source_;
    std::size_t best = runs_.size();
    for (std::size_t r = 0; r < runs_.size(); ++r) {
      if (runs_[r].head >= runs_[r].end) continue;
      if (best == runs_.size() || src[runs_[r].head] < src[runs_[best].head]) best = r;
    }
    if (best == runs_.size()) return std::nullopt;
    return src[runs_[best].head++];
  }

 private:
  /// Beyond this many ascending runs the min-scan loses to one eager sort.
  static constexpr std::size_t kMaxRuns = 16;
  struct Run {
    std::size_t head;
    std::size_t end;
  };
  const std::vector<TaskId>* source_;
  std::vector<TaskId> sorted_;
  std::vector<Run> runs_;
};

/// No node has a single free cpu or gpu slot: nothing can place (every
/// constraint requests at least one resource), so the per-task × per-node
/// allocation probes can be skipped wholesale. This is the steady state of
/// a saturated storm — thousands of ready tasks, zero open slots.
bool cluster_saturated(const ResourceState& resources) {
  for (std::size_t node = 0; node < resources.node_count(); ++node)
    if (resources.free_cpus(node) > 0 || resources.free_gpus(node) > 0) return false;
  return true;
}

/// Try one implementation of a task. Multinode constraints use the
/// multi-allocation path; locality ranking applies to single-node ones.
std::optional<Placement> place_implementation(const TaskRecord& task, const Constraint& constraint,
                                              const TaskGraph& graph, ResourceState& resources,
                                              bool locality_aware, const NodeHealth* health) {
  if (constraint.nodes > 1) {
    std::vector<int> excluded = task.excluded_nodes;
    if (health)
      for (std::size_t node = 0; node < resources.node_count(); ++node)
        if (!health->allow_placement(node)) excluded.push_back(static_cast<int>(node));
    return resources.try_allocate_multi(constraint, excluded);
  }
  if (locality_aware) {
    // Rank fitting nodes by resident input bytes; first-fit on ties.
    std::uint64_t best_bytes = 0;
    std::size_t best_node = resources.node_count();
    for (std::size_t node = 0; node < resources.node_count(); ++node) {
      if (node_excluded(task, node) || !health_allows(health, node) ||
          !resources.could_fit(node, constraint))
        continue;
      // Probe without committing: count bytes first, allocate later.
      const std::uint64_t bytes = local_input_bytes(task, graph.registry(), static_cast<int>(node));
      if (best_node == resources.node_count() || bytes > best_bytes) {
        // Only consider nodes that can take the task *now*.
        auto probe = resources.try_allocate(node, constraint);
        if (!probe) continue;
        resources.release(*probe);
        best_node = node;
        best_bytes = bytes;
      }
    }
    if (best_node < resources.node_count()) return resources.try_allocate(best_node, constraint);
    return std::nullopt;
  }
  for (std::size_t node = 0; node < resources.node_count(); ++node) {
    if (node_excluded(task, node) || !health_allows(health, node)) continue;
    if (auto placement = resources.try_allocate(node, constraint)) return placement;
  }
  return std::nullopt;
}

std::vector<Dispatch> schedule_in_order(const std::vector<TaskId>& ready, bool raw,
                                        const TaskGraph& graph, ResourceState& resources,
                                        bool locality_aware, const NodeHealth* health) {
  std::vector<Dispatch> out;
  // Saturation check before the stream's linear scan: a fully busy cluster
  // pays O(nodes), not O(ready).
  if (cluster_saturated(resources)) return out;
  CandidateStream order(ready, graph, raw);
  while (const std::optional<TaskId> next = order.next()) {
    const TaskId id = *next;
    const TaskRecord& task = graph.task(id);
    // Primary implementation first, then @implement variants in order.
    const int n_variants = static_cast<int>(task.def.variants.size());
    bool placed = false;
    for (int variant = -1; variant < n_variants; ++variant) {
      auto placement = place_implementation(task, task.implementation_constraint(variant), graph,
                                            resources, locality_aware, health);
      if (placement) {
        out.push_back(
            Dispatch{.task = id, .placement = std::move(*placement), .variant = variant});
        placed = true;
        break;
      }
    }
    // A successful placement may have taken the last open slot; stop
    // probing the (possibly long) tail of ready tasks once it did.
    if (placed && cluster_saturated(resources)) break;
  }
  return out;
}

}  // namespace

std::optional<Placement> place_first_fit(const TaskRecord& task, ResourceState& resources,
                                         const NodeHealth* health) {
  for (std::size_t node = 0; node < resources.node_count(); ++node) {
    if (node_excluded(task, node) || !health_allows(health, node)) continue;
    if (auto placement = resources.try_allocate(node, task.def.constraint)) return placement;
  }
  return std::nullopt;
}

std::optional<Placement> place_duplicate(const TaskRecord& task, const Constraint& constraint,
                                         ResourceState& resources, int avoid_node) {
  for (std::size_t node = 0; node < resources.node_count(); ++node) {
    if (static_cast<int>(node) == avoid_node) continue;
    if (node_excluded(task, node)) continue;
    if (auto placement = resources.try_allocate(node, constraint)) return placement;
  }
  return std::nullopt;
}

std::uint64_t local_input_bytes(const TaskRecord& task, const DataRegistry& registry, int node) {
  std::uint64_t bytes = 0;
  for (const ParamBinding& b : task.bindings) {
    if (b.param.dir == Direction::Out) continue;
    if (registry.available_everywhere(b.param.data, b.read_version) ||
        registry.locations(b.param.data, b.read_version).contains(node))
      bytes += registry.bytes_of(b.param.data);
  }
  return bytes;
}

std::vector<Dispatch> FifoScheduler::schedule(const std::vector<TaskId>& ready, const TaskGraph& graph,
                                              ResourceState& resources) {
  return schedule_in_order(ready, /*raw=*/true, graph, resources, /*locality_aware=*/false,
                           effective_health(resources));
}

std::vector<Dispatch> PriorityScheduler::schedule(const std::vector<TaskId>& ready,
                                                  const TaskGraph& graph, ResourceState& resources) {
  return schedule_in_order(ready, /*raw=*/false, graph, resources,
                           /*locality_aware=*/false, effective_health(resources));
}

std::vector<Dispatch> LocalityScheduler::schedule(const std::vector<TaskId>& ready,
                                                  const TaskGraph& graph, ResourceState& resources) {
  return schedule_in_order(ready, /*raw=*/false, graph, resources,
                           /*locality_aware=*/true, effective_health(resources));
}

namespace {

/// Synthetic placement carrying just the resource counts a cost model needs.
Placement hypothetical_placement(int node, const Constraint& constraint, unsigned node_cores) {
  Placement p;
  p.node = node;
  const unsigned cpus = constraint.node_exclusive ? node_cores : constraint.cpus;
  for (unsigned c = 0; c < cpus; ++c) p.cores.push_back(c);
  for (unsigned g = 0; g < constraint.gpus; ++g) p.gpus.push_back(g);
  for (unsigned extra = 1; extra < std::max(1u, constraint.nodes); ++extra)
    p.secondary.push_back(NodeSlice{.node = node, .cores = p.cores, .gpus = p.gpus});
  return p;
}

double estimated_seconds(const TaskRecord& task, int variant, const Placement& placement,
                         const cluster::NodeSpec& node) {
  const TaskCost& cost = task.implementation_cost(variant);
  if (!cost) return 1.0;  // no model: all options look equal
  return cost(placement, node);
}

}  // namespace

std::vector<Dispatch> CostAwareScheduler::schedule(const std::vector<TaskId>& ready,
                                                   const TaskGraph& graph,
                                                   ResourceState& resources) {
  // A fitting option is taken only if it is within `kSpillFactor` of the
  // task's best achievable duration anywhere on the (live) cluster;
  // otherwise the task waits for better resources to free up. Deferral is
  // safe: on an otherwise-idle cluster the preferred option either fits or
  // can never fit (and is then excluded from the best-achievable bound).
  constexpr double kSpillFactor = 2.0;
  const auto& spec = resources.spec();
  // best_possible below stays ungated: quarantine is transient, so a
  // quarantined node still bounds what the task could achieve later.
  const NodeHealth* health = effective_health(resources);

  std::vector<Dispatch> out;
  for (TaskId id : priority_order(ready, graph)) {
    const TaskRecord& task = graph.task(id);
    const int n_variants = static_cast<int>(task.def.variants.size());

    // Best achievable duration over every feasible (implementation, node).
    double best_possible = std::numeric_limits<double>::infinity();
    for (int variant = -1; variant < n_variants; ++variant) {
      const Constraint& constraint = task.implementation_constraint(variant);
      for (std::size_t node = 0; node < resources.node_count(); ++node) {
        if (node_excluded(task, node) || !resources.could_fit(node, constraint)) continue;
        const Placement hypothetical =
            hypothetical_placement(static_cast<int>(node), constraint, spec.nodes[node].cpus);
        best_possible = std::min(
            best_possible, estimated_seconds(task, variant, hypothetical, spec.nodes[node]));
      }
    }

    // Cheapest option that fits right now.
    double best_fitting = std::numeric_limits<double>::infinity();
    std::optional<Placement> best_placement;
    int best_variant = -1;
    for (int variant = -1; variant < n_variants; ++variant) {
      const Constraint& constraint = task.implementation_constraint(variant);
      if (constraint.nodes > 1) {
        std::vector<int> excluded = task.excluded_nodes;
        if (health)
          for (std::size_t node = 0; node < resources.node_count(); ++node)
            if (!health->allow_placement(node)) excluded.push_back(static_cast<int>(node));
        if (auto probe = resources.try_allocate_multi(constraint, excluded)) {
          const double seconds = estimated_seconds(
              task, variant, *probe, spec.nodes[static_cast<std::size_t>(probe->node)]);
          if (seconds < best_fitting) {
            if (best_placement) resources.release(*best_placement);
            best_fitting = seconds;
            best_placement = std::move(*probe);
            best_variant = variant;
          } else {
            resources.release(*probe);
          }
        }
        continue;
      }
      for (std::size_t node = 0; node < resources.node_count(); ++node) {
        if (node_excluded(task, node) || !health_allows(health, node)) continue;
        auto probe = resources.try_allocate(node, constraint);
        if (!probe) continue;
        const double seconds = estimated_seconds(task, variant, *probe, spec.nodes[node]);
        if (seconds < best_fitting) {
          if (best_placement) resources.release(*best_placement);
          best_fitting = seconds;
          best_placement = std::move(*probe);
          best_variant = variant;
        } else {
          resources.release(*probe);
        }
      }
    }

    if (!best_placement) continue;
    if (best_fitting > kSpillFactor * best_possible) {
      // Too slow compared to what freeing resources will offer: wait.
      resources.release(*best_placement);
      continue;
    }
    out.push_back(
        Dispatch{.task = id, .placement = std::move(*best_placement), .variant = best_variant});
  }
  return out;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoScheduler>();
  if (name == "priority") return std::make_unique<PriorityScheduler>();
  if (name == "locality") return std::make_unique<LocalityScheduler>();
  if (name == "cost-aware") return std::make_unique<CostAwareScheduler>();
  throw std::invalid_argument("unknown scheduler policy: " + name);
}

}  // namespace chpo::rt
