#include "runtime/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace chpo::rt {

namespace {

bool node_excluded(const TaskRecord& task, std::size_t node) {
  return std::find(task.excluded_nodes.begin(), task.excluded_nodes.end(), static_cast<int>(node)) !=
         task.excluded_nodes.end();
}

bool health_allows(const NodeHealth* health, std::size_t node) {
  return health == nullptr || health->allow_placement(node);
}

/// Ready ids ordered by (priority desc, id asc). Stable and cheap: ready
/// sets are small compared to the graph.
std::vector<TaskId> priority_order(const std::vector<TaskId>& ready, const TaskGraph& graph) {
  std::vector<TaskId> order = ready;
  std::stable_sort(order.begin(), order.end(), [&graph](TaskId a, TaskId b) {
    const bool pa = graph.task(a).def.priority;
    const bool pb = graph.task(b).def.priority;
    if (pa != pb) return pa;
    return a < b;
  });
  return order;
}

/// Try one implementation of a task. Multinode constraints use the
/// multi-allocation path; locality ranking applies to single-node ones.
std::optional<Placement> place_implementation(const TaskRecord& task, const Constraint& constraint,
                                              const TaskGraph& graph, ResourceState& resources,
                                              bool locality_aware, const NodeHealth* health) {
  if (constraint.nodes > 1) {
    std::vector<int> excluded = task.excluded_nodes;
    if (health)
      for (std::size_t node = 0; node < resources.node_count(); ++node)
        if (!health->allow_placement(node)) excluded.push_back(static_cast<int>(node));
    return resources.try_allocate_multi(constraint, excluded);
  }
  if (locality_aware) {
    // Rank fitting nodes by resident input bytes; first-fit on ties.
    std::uint64_t best_bytes = 0;
    std::size_t best_node = resources.node_count();
    for (std::size_t node = 0; node < resources.node_count(); ++node) {
      if (node_excluded(task, node) || !health_allows(health, node) ||
          !resources.could_fit(node, constraint))
        continue;
      // Probe without committing: count bytes first, allocate later.
      const std::uint64_t bytes = local_input_bytes(task, graph.registry(), static_cast<int>(node));
      if (best_node == resources.node_count() || bytes > best_bytes) {
        // Only consider nodes that can take the task *now*.
        auto probe = resources.try_allocate(node, constraint);
        if (!probe) continue;
        resources.release(*probe);
        best_node = node;
        best_bytes = bytes;
      }
    }
    if (best_node < resources.node_count()) return resources.try_allocate(best_node, constraint);
    return std::nullopt;
  }
  for (std::size_t node = 0; node < resources.node_count(); ++node) {
    if (node_excluded(task, node) || !health_allows(health, node)) continue;
    if (auto placement = resources.try_allocate(node, constraint)) return placement;
  }
  return std::nullopt;
}

std::vector<Dispatch> schedule_in_order(const std::vector<TaskId>& order, const TaskGraph& graph,
                                        ResourceState& resources, bool locality_aware,
                                        const NodeHealth* health) {
  std::vector<Dispatch> out;
  for (TaskId id : order) {
    const TaskRecord& task = graph.task(id);
    // Primary implementation first, then @implement variants in order.
    const int n_variants = static_cast<int>(task.def.variants.size());
    for (int variant = -1; variant < n_variants; ++variant) {
      auto placement = place_implementation(task, task.implementation_constraint(variant), graph,
                                            resources, locality_aware, health);
      if (placement) {
        out.push_back(
            Dispatch{.task = id, .placement = std::move(*placement), .variant = variant});
        break;
      }
    }
  }
  return out;
}

}  // namespace

std::optional<Placement> place_first_fit(const TaskRecord& task, ResourceState& resources,
                                         const NodeHealth* health) {
  for (std::size_t node = 0; node < resources.node_count(); ++node) {
    if (node_excluded(task, node) || !health_allows(health, node)) continue;
    if (auto placement = resources.try_allocate(node, task.def.constraint)) return placement;
  }
  return std::nullopt;
}

std::optional<Placement> place_duplicate(const TaskRecord& task, const Constraint& constraint,
                                         ResourceState& resources, int avoid_node) {
  for (std::size_t node = 0; node < resources.node_count(); ++node) {
    if (static_cast<int>(node) == avoid_node) continue;
    if (node_excluded(task, node)) continue;
    if (auto placement = resources.try_allocate(node, constraint)) return placement;
  }
  return std::nullopt;
}

std::uint64_t local_input_bytes(const TaskRecord& task, const DataRegistry& registry, int node) {
  std::uint64_t bytes = 0;
  for (const ParamBinding& b : task.bindings) {
    if (b.param.dir == Direction::Out) continue;
    if (registry.available_everywhere(b.param.data, b.read_version) ||
        registry.locations(b.param.data, b.read_version).contains(node))
      bytes += registry.bytes_of(b.param.data);
  }
  return bytes;
}

std::vector<Dispatch> FifoScheduler::schedule(const std::vector<TaskId>& ready, const TaskGraph& graph,
                                              ResourceState& resources) {
  return schedule_in_order(ready, graph, resources, /*locality_aware=*/false,
                           effective_health(resources));
}

std::vector<Dispatch> PriorityScheduler::schedule(const std::vector<TaskId>& ready,
                                                  const TaskGraph& graph, ResourceState& resources) {
  return schedule_in_order(priority_order(ready, graph), graph, resources,
                           /*locality_aware=*/false, effective_health(resources));
}

std::vector<Dispatch> LocalityScheduler::schedule(const std::vector<TaskId>& ready,
                                                  const TaskGraph& graph, ResourceState& resources) {
  return schedule_in_order(priority_order(ready, graph), graph, resources,
                           /*locality_aware=*/true, effective_health(resources));
}

namespace {

/// Synthetic placement carrying just the resource counts a cost model needs.
Placement hypothetical_placement(int node, const Constraint& constraint, unsigned node_cores) {
  Placement p;
  p.node = node;
  const unsigned cpus = constraint.node_exclusive ? node_cores : constraint.cpus;
  for (unsigned c = 0; c < cpus; ++c) p.cores.push_back(c);
  for (unsigned g = 0; g < constraint.gpus; ++g) p.gpus.push_back(g);
  for (unsigned extra = 1; extra < std::max(1u, constraint.nodes); ++extra)
    p.secondary.push_back(NodeSlice{.node = node, .cores = p.cores, .gpus = p.gpus});
  return p;
}

double estimated_seconds(const TaskRecord& task, int variant, const Placement& placement,
                         const cluster::NodeSpec& node) {
  const TaskCost& cost = task.implementation_cost(variant);
  if (!cost) return 1.0;  // no model: all options look equal
  return cost(placement, node);
}

}  // namespace

std::vector<Dispatch> CostAwareScheduler::schedule(const std::vector<TaskId>& ready,
                                                   const TaskGraph& graph,
                                                   ResourceState& resources) {
  // A fitting option is taken only if it is within `kSpillFactor` of the
  // task's best achievable duration anywhere on the (live) cluster;
  // otherwise the task waits for better resources to free up. Deferral is
  // safe: on an otherwise-idle cluster the preferred option either fits or
  // can never fit (and is then excluded from the best-achievable bound).
  constexpr double kSpillFactor = 2.0;
  const auto& spec = resources.spec();
  // best_possible below stays ungated: quarantine is transient, so a
  // quarantined node still bounds what the task could achieve later.
  const NodeHealth* health = effective_health(resources);

  std::vector<Dispatch> out;
  for (TaskId id : priority_order(ready, graph)) {
    const TaskRecord& task = graph.task(id);
    const int n_variants = static_cast<int>(task.def.variants.size());

    // Best achievable duration over every feasible (implementation, node).
    double best_possible = std::numeric_limits<double>::infinity();
    for (int variant = -1; variant < n_variants; ++variant) {
      const Constraint& constraint = task.implementation_constraint(variant);
      for (std::size_t node = 0; node < resources.node_count(); ++node) {
        if (node_excluded(task, node) || !resources.could_fit(node, constraint)) continue;
        const Placement hypothetical =
            hypothetical_placement(static_cast<int>(node), constraint, spec.nodes[node].cpus);
        best_possible = std::min(
            best_possible, estimated_seconds(task, variant, hypothetical, spec.nodes[node]));
      }
    }

    // Cheapest option that fits right now.
    double best_fitting = std::numeric_limits<double>::infinity();
    std::optional<Placement> best_placement;
    int best_variant = -1;
    for (int variant = -1; variant < n_variants; ++variant) {
      const Constraint& constraint = task.implementation_constraint(variant);
      if (constraint.nodes > 1) {
        std::vector<int> excluded = task.excluded_nodes;
        if (health)
          for (std::size_t node = 0; node < resources.node_count(); ++node)
            if (!health->allow_placement(node)) excluded.push_back(static_cast<int>(node));
        if (auto probe = resources.try_allocate_multi(constraint, excluded)) {
          const double seconds = estimated_seconds(
              task, variant, *probe, spec.nodes[static_cast<std::size_t>(probe->node)]);
          if (seconds < best_fitting) {
            if (best_placement) resources.release(*best_placement);
            best_fitting = seconds;
            best_placement = std::move(*probe);
            best_variant = variant;
          } else {
            resources.release(*probe);
          }
        }
        continue;
      }
      for (std::size_t node = 0; node < resources.node_count(); ++node) {
        if (node_excluded(task, node) || !health_allows(health, node)) continue;
        auto probe = resources.try_allocate(node, constraint);
        if (!probe) continue;
        const double seconds = estimated_seconds(task, variant, *probe, spec.nodes[node]);
        if (seconds < best_fitting) {
          if (best_placement) resources.release(*best_placement);
          best_fitting = seconds;
          best_placement = std::move(*probe);
          best_variant = variant;
        } else {
          resources.release(*probe);
        }
      }
    }

    if (!best_placement) continue;
    if (best_fitting > kSpillFactor * best_possible) {
      // Too slow compared to what freeing resources will offer: wait.
      resources.release(*best_placement);
      continue;
    }
    out.push_back(
        Dispatch{.task = id, .placement = std::move(*best_placement), .variant = best_variant});
  }
  return out;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoScheduler>();
  if (name == "priority") return std::make_unique<PriorityScheduler>();
  if (name == "locality") return std::make_unique<LocalityScheduler>();
  if (name == "cost-aware") return std::make_unique<CostAwareScheduler>();
  throw std::invalid_argument("unknown scheduler policy: " + name);
}

}  // namespace chpo::rt
