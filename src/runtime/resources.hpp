// Per-node core/GPU slot accounting — the affinity enforcer.
//
// The paper's first experiment (Figure 4) verifies that a task constrained
// to one core really occupies one core of a 48-core node. ResourceState
// grants tasks *specific* physical core and GPU indices so traces show true
// affinity sets, and it refuses to oversubscribe: a slot is owned by at
// most one task at a time. When the cluster reserves worker cores
// (WorkerPlacement::SharedCores), the low physical indices belong to the
// COMPSs worker and tasks are placed above them.
#pragma once

#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "runtime/types.hpp"

namespace chpo::rt {

class ResourceState {
 public:
  explicit ResourceState(const cluster::ClusterSpec& spec);

  /// Try to allocate resources for `constraint` on `node`. Returns the
  /// placement (with physical core/GPU indices) or nullopt if it does not
  /// fit right now. node_exclusive grabs every usable core of the node.
  /// Ignores constraint.nodes (use try_allocate_multi for @multinode).
  std::optional<Placement> try_allocate(std::size_t node, const Constraint& constraint);

  /// @multinode allocation: grants constraint.{cpus,gpus} on each of
  /// constraint.nodes distinct nodes (skipping `excluded`). The first node
  /// found becomes the primary. nullopt if fewer nodes fit right now.
  std::optional<Placement> try_allocate_multi(const Constraint& constraint,
                                              const std::vector<int>& excluded = {});

  /// Return the slots of a previous allocation (all slices of a
  /// @multinode placement included).
  void release(const Placement& placement);

  /// Whether the per-node share of the constraint could *ever* fit on this
  /// node (ignores current occupancy) — used to reject impossible tasks
  /// early.
  bool could_fit(std::size_t node, const Constraint& constraint) const;
  /// Whether the cluster could ever satisfy the constraint: at least
  /// constraint.nodes live nodes that each fit the per-node share.
  bool feasible(const Constraint& constraint) const;

  /// Elastic growth: register a new node at runtime ("the user just has
  /// to request more nodes", §6.1 — here even mid-run). Returns its index.
  std::size_t add_node(const cluster::NodeSpec& node);

  /// Mark a node as failed; its slots become unallocatable. Throws
  /// std::out_of_range on an unknown node index — node_down and
  /// mark_node_up validate identically, so a bad index surfaces the same
  /// way on every membership path instead of being silently answered.
  void mark_node_down(std::size_t node);
  /// Bring a previously failed node back (elastic rejoin). All of its
  /// slots return free: attempts that were running there were already
  /// concluded as failures when the node went down. Throws
  /// std::out_of_range on an unknown node index.
  void mark_node_up(std::size_t node);
  bool node_down(std::size_t node) const;

  /// Historical alias for mark_node_down.
  void fail_node(std::size_t node) { mark_node_down(node); }

  unsigned free_cpus(std::size_t node) const;
  unsigned free_gpus(std::size_t node) const;
  unsigned busy_cpus(std::size_t node) const;
  std::size_t node_count() const { return nodes_.size(); }

  const cluster::ClusterSpec& spec() const { return spec_; }

 private:
  struct NodeState {
    std::vector<bool> core_busy;  ///< index = usable-core slot
    std::vector<bool> gpu_busy;
    unsigned core_offset = 0;  ///< physical index of usable slot 0
    bool down = false;
    bool usable = true;  ///< false for a dedicated worker node
  };

  cluster::ClusterSpec spec_;
  std::vector<NodeState> nodes_;
};

}  // namespace chpo::rt
