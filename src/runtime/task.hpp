// Task definition and the context a running task body sees.
//
// TaskDef is the C++ analogue of a @task-decorated Python function with an
// optional @constraint on top (paper Listing 2):
//
//   TaskDef def{.name = "experiment",
//               .constraint = {.cpus = 1, .gpus = 1},
//               .body = [](TaskContext& ctx) -> std::any {
//                 auto cfg = ctx.read<Config>(0);
//                 return train(cfg, ctx.thread_budget());
//               }};
//
// The body's return value becomes the value of the task's implicit return
// future (the `returns=int` of the decorator). `cost` feeds the
// discrete-event backend: it predicts how long this task occupies its
// resources, as a function of the placement it was granted.
#pragma once

#include <any>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "runtime/data_registry.hpp"
#include "runtime/types.hpp"
#include "support/rng.hpp"

namespace chpo::rt {

class TaskContext;

/// Task body: consumes declared params through the context, returns the
/// future's value (empty std::any for "void" tasks).
using TaskBody = std::function<std::any(TaskContext&)>;

/// Virtual duration (seconds) of a task given its placement — used only by
/// the simulation backend. Receives the node it landed on so heterogeneous
/// clusters (CPU vs GPU nodes) can be modelled.
using TaskCost = std::function<double(const Placement&, const cluster::NodeSpec&)>;

/// @implement: an alternative implementation of the same task with its own
/// resource constraint — e.g. a GPU kernel next to a CPU fallback. The
/// runtime chooses whichever implementation the available resources can
/// satisfy (paper §3: "this decorator allows the runtime to choose the
/// most appropriate task considering the resources").
struct TaskVariant {
  std::string label = "variant";
  Constraint constraint;
  TaskBody body;  ///< empty: reuse the primary body
  TaskCost cost;  ///< empty: reuse the primary cost model
};

struct TaskDef {
  std::string name = "task";
  Constraint constraint;
  bool priority = false;  ///< @task(priority=True): schedule as soon as possible
  TaskBody body;
  TaskCost cost;  ///< optional; SimBackend uses 1.0s when absent
  /// @task(time_out=...): attempts running longer than this fail and go
  /// through the normal retry policy. The simulator cancels the attempt at
  /// exactly this instant; the threaded backend cannot interrupt a body
  /// mid-flight and detects the overrun when it returns. <=0 disables.
  double timeout_seconds = 0.0;
  /// Alternative implementations; the primary (above) is preferred, then
  /// variants in order.
  std::vector<TaskVariant> variants;
};

/// Handle to a task's future return value (datum written by the task).
struct Future {
  DataId data = 0;
  std::uint32_t version = 0;
  TaskId producer = kNoTask;
};

/// Binding of one declared parameter for a concrete task instance.
struct ParamBinding {
  Param param;
  std::uint32_t read_version = 0;
  std::uint32_t write_version = 0;
};

/// What a task body may touch while running. Reads come straight from the
/// registry (immutable committed versions); writes are buffered locally and
/// committed atomically by the engine when the attempt succeeds — a failed
/// attempt therefore never publishes partial results.
class TaskContext {
 public:
  TaskContext(const DataRegistry& registry, std::vector<ParamBinding> bindings, Placement placement,
              int attempt, bool simulated, std::uint64_t rng_seed)
      : registry_(registry),
        bindings_(std::move(bindings)),
        placement_(std::move(placement)),
        attempt_(attempt),
        simulated_(simulated),
        rng_(rng_seed) {}

  /// Read parameter `index` (must be In or InOut) as type T.
  template <typename T>
  const T& read(std::size_t index) const {
    return std::any_cast<const T&>(read_any(index));
  }

  /// Raw any access (for generic plumbing). Pins the bytes for the
  /// context's lifetime: bodies may run on worker threads while the
  /// coordinator drops a version (node death) or recommits it (lineage
  /// recovery), so a bare registry reference would dangle.
  const std::any& read_any(std::size_t index) const {
    const ParamBinding& b = binding(index);
    pinned_.push_back(registry_.value_ptr(b.param.data, b.read_version));
    return *pinned_.back();
  }

  /// Stage a write for parameter `index` (must be Out or InOut).
  void write(std::size_t index, std::any value) {
    const ParamBinding& b = binding(index);
    if (b.param.dir == Direction::In)
      throw std::logic_error("TaskContext: cannot write an IN parameter");
    pending_writes_.emplace_back(index, std::move(value));
  }

  const Placement& placement() const { return placement_; }
  int node() const { return placement_.node; }
  /// Cores granted == the internal-parallelism budget (TensorFlow analogue).
  unsigned thread_budget() const { return placement_.cpu_count(); }
  unsigned gpu_count() const { return placement_.gpu_count(); }
  int attempt() const { return attempt_; }
  /// True under the discrete-event backend (bodies may scale work down).
  bool simulated() const { return simulated_; }
  /// Per-attempt deterministic RNG.
  Rng& rng() { return rng_; }

  std::size_t param_count() const { return bindings_.size(); }
  const ParamBinding& binding(std::size_t index) const {
    if (index >= bindings_.size()) throw std::out_of_range("TaskContext: bad param index");
    return bindings_[index];
  }

  /// Engine-side: staged writes in call order.
  const std::vector<std::pair<std::size_t, std::any>>& pending_writes() const {
    return pending_writes_;
  }

 private:
  const DataRegistry& registry_;
  std::vector<ParamBinding> bindings_;
  Placement placement_;
  int attempt_;
  bool simulated_;
  Rng rng_;
  std::vector<std::pair<std::size_t, std::any>> pending_writes_;
  /// Inputs read so far, held alive against concurrent drop/recommit.
  mutable std::vector<std::shared_ptr<const std::any>> pinned_;
};

}  // namespace chpo::rt
