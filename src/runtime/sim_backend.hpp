// Discrete-event simulation backend.
//
// Executes the identical scheduling/fault/data semantics as the threaded
// backend, but time is virtual: each dispatched task occupies its resources
// for TaskDef::cost(placement, node) seconds on the simulated clock. This
// is how the paper's cluster-scale experiments (Figures 4-6 and 9: 48-core
// MareNostrum nodes, 28-node runs, GPU nodes) are reproduced on a laptop —
// see DESIGN.md §3 for the substitution argument.
//
// Task bodies still run (synchronously, at dispatch) so results such as
// trained-model accuracies are real; set execute_bodies=false for pure
// scheduling studies where only the timeline matters.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "runtime/backend.hpp"

namespace chpo::rt {

struct SimOptions {
  bool execute_bodies = true;
  /// Virtual duration of a task whose TaskDef has no cost model.
  double default_task_seconds = 1.0;
};

class SimBackend : public Backend {
 public:
  explicit SimBackend(Engine& engine, SimOptions options = {});

  double now() const override { return now_; }
  void run_until(TaskId target) override CHPO_REQUIRES(g_engine_ctx);
  void run_until_any(std::span<const TaskId> targets) override CHPO_REQUIRES(g_engine_ctx);
  bool run_for(double seconds) override CHPO_REQUIRES(g_engine_ctx);
  bool run_until_any_for(std::span<const TaskId> targets, double seconds) override
      CHPO_REQUIRES(g_engine_ctx);
  void run_until_condition(const std::function<bool()>& finished) override
      CHPO_REQUIRES(g_engine_ctx);
  bool simulated() const override { return true; }

 private:
  // Node deaths/rejoins are engine-owned events now: next_wakeup() exposes
  // their times, an EngineWakeup lands the clock there, and on_wakeup
  // applies them. A TaskEnd for an attempt the engine reaped (node death,
  // timeout) completes as a stale no-op.
  enum class EvKind { TaskEnd, EngineWakeup };
  struct Ev {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for equal times
    EvKind kind = EvKind::TaskEnd;
    // TaskEnd payload:
    TaskId task = kNoTask;
    std::uint64_t attempt_id = 0;
    Placement placement;
    AttemptResult result;
    double start = 0.0;  ///< when the body began (after staging)
  };

  void dispatch(const Dispatch& d, bool inputs_already_staged) CHPO_REQUIRES(g_engine_ctx);
  /// Queue an EngineWakeup event at Engine::next_wakeup (straggler
  /// threshold crossings and backoff expiries — timeouts are preempted at
  /// dispatch instead). Spurious extra wakeups are harmless: on_wakeup is
  /// idempotent for times with no due work.
  void arm_wakeup() CHPO_REQUIRES(g_engine_ctx);
  bool done(TaskId target) const;
  double task_duration(const TaskRecord& record, const Placement& placement) const;
  /// Event loop shared by every wait flavour: pop events until `finished()`
  /// holds or the next event lies beyond the virtual `deadline` (<0 =
  /// none), in which case the clock advances to the deadline exactly.
  /// Returns true iff it stopped because `finished()` held.
  bool drive(const std::function<bool()>& finished, double deadline)
      CHPO_REQUIRES(g_engine_ctx);

  Engine& engine_;
  SimOptions options_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::vector<Ev> events_;  ///< min-heap by (time, seq)
  /// Earliest EngineWakeup currently queued; < 0 = none. Avoids flooding
  /// the heap with one wakeup per drive iteration.
  double armed_wakeup_ = -1.0;
};

}  // namespace chpo::rt
