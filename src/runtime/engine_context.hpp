// EngineContext — a fake capability modelling the Engine's single-thread
// confinement.
//
// The Engine is deliberately lock-free: zero mutexes, because every
// mutation happens on the backend coordinator thread (the thread inside a
// Runtime submit/wait/cancel call, which is also the thread running a
// backend drive loop). That convention kept the engine simple, but nothing
// used to stop a future change from calling into the engine off-thread —
// the exact class of bug TSan caught twice (PR 2's TaskRecord read from a
// worker, PR 4's zombie-body registry race).
//
// EngineContext turns the convention into a compile-time contract. It is a
// *capability in name only*: acquiring it takes no lock and costs nothing
// at runtime. Under clang's -Wthread-safety, however, every Engine method
// annotated CHPO_REQUIRES(g_engine_ctx) refuses to compile unless the
// caller statically holds the capability — and the only way to hold it is
// an EngineContextScope, which the Runtime facade opens at each public
// entry point and the backends require through their drive loops. A worker
// thread (or any new code path) calling a mutating Engine method without
// the scope is a hard compile error in the clang CI job, not a data race
// waiting for TSan to sample it.
//
// The capability is process-global because it models a *role* ("I am the
// coordinator"), not a resource; two Runtimes on two threads each have
// their own real coordinator, and since the capability carries no state,
// sharing the tag object is harmless.
#pragma once

#include "support/thread_annotations.hpp"

namespace chpo::rt {

class CHPO_CAPABILITY("engine_context") EngineContext {
 public:
  EngineContext() = default;
  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  /// Purely static bookkeeping — no runtime effect.
  void acquire() CHPO_ACQUIRE() {}
  void release() CHPO_RELEASE() {}
};

/// The process-wide coordinator-role capability every Engine contract
/// names. See the file comment: a tag, not a lock.
inline EngineContext g_engine_ctx;

/// RAII scope asserting "this code runs on the coordinator thread".
/// Opened by Runtime public entry points before touching the engine;
/// required (not re-acquired) by the backend drive loops they call into.
class CHPO_SCOPED_CAPABILITY EngineContextScope {
 public:
  explicit EngineContextScope(EngineContext& ctx) CHPO_ACQUIRE(ctx) : ctx_(ctx) { ctx_.acquire(); }
  EngineContextScope(const EngineContextScope&) = delete;
  EngineContextScope& operator=(const EngineContextScope&) = delete;
  ~EngineContextScope() CHPO_RELEASE() { ctx_.release(); }

 private:
  EngineContext& ctx_;
};

/// Statically assert "this code already runs on the coordinator" inside
/// code the analysis cannot thread the capability through — completion
/// predicates and callbacks that backends invoke from their drive loops
/// (which hold the capability, but behind a std::function boundary).
/// No runtime effect; use only where that invariant is documented.
inline void assert_engine_context() CHPO_ASSERT_CAPABILITY(g_engine_ctx) {}

}  // namespace chpo::rt
