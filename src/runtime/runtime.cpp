#include "runtime/runtime.hpp"

#include "runtime/study_session.hpp"
#include "runtime/thread_backend.hpp"
#include "support/log.hpp"

namespace chpo::rt {

Runtime::Runtime(RuntimeOptions options)
    : options_(std::move(options)),
      graph_(registry_),
      sink_(options_.tracing),
      engine_(graph_, options_.cluster,
              EngineOptions{.scheduler = options_.scheduler,
                            .fault_policy = options_.fault_policy,
                            .speculation = options_.speculation,
                            .node_health = options_.node_health,
                            .seed = options_.seed},
              options_.injector, sink_) {
  if (options_.cluster.nodes.empty())
    throw std::invalid_argument("Runtime: cluster has no nodes");
  // The constructing thread is the coordinator: every public entry point
  // below re-asserts the role with its own scope.
  EngineContextScope ctx(g_engine_ctx);
  engine_.set_terminal_listener(
      [this](TaskId task, TaskState state) { on_task_terminal(task, state); });
  if (options_.simulate)
    backend_ = std::make_unique<SimBackend>(engine_, options_.sim);
  else
    backend_ = std::make_unique<ThreadBackend>(engine_);
  studies_[kMainStudy] = StudyInfo{.name = "main"};
  log_info("runtime", "started: {} nodes, scheduler={}, backend={}", options_.cluster.nodes.size(),
           options_.scheduler, options_.simulate ? "sim" : "threads");
}

Runtime::~Runtime() {
  try {
    // A paused study's held ready tasks would stall the final barrier
    // forever: shutdown drains everything, so release every study first.
    {
      EngineContextScope ctx(g_engine_ctx);
      for (const auto& [id, info] : studies_) engine_.set_study_paused(id, false);
    }
    barrier();
  } catch (const std::exception& e) {
    log_error("runtime", "exception while draining at shutdown: {}", e.what());
  }
}

Future Runtime::submit(const TaskDef& def, const std::vector<Param>& params) {
  return submit_study(kMainStudy, def, params, {});
}

Future Runtime::submit(const TaskDef& def, const std::vector<Param>& params,
                       CompletionCallback on_complete) {
  return submit_study(kMainStudy, def, params, std::move(on_complete));
}

Future Runtime::submit_study(StudyId study, const TaskDef& def, const std::vector<Param>& params,
                             CompletionCallback on_complete) {
  if (studies_.find(study) == studies_.end())
    throw std::invalid_argument("Runtime: submit into unknown study " + std::to_string(study));
  EngineContextScope ctx(g_engine_ctx);
  const TaskId id = graph_.add_task(def, params, study);
  // Register before on_submitted: a task doomed at submission (failed
  // predecessor) or with an unsatisfiable constraint turns terminal inside
  // that call and must still fire its callback.
  if (on_complete) callbacks_[id] = std::move(on_complete);
  engine_.on_submitted(id, backend_->now());
  engine_.flush_notifications();
  return graph_.task(id).result;
}

std::vector<Future> Runtime::submit_study_batch(StudyId study, std::vector<BatchItem> items) {
  if (studies_.find(study) == studies_.end())
    throw std::invalid_argument("Runtime: submit into unknown study " + std::to_string(study));
  EngineContextScope ctx(g_engine_ctx);
  std::vector<TaskId> ids;
  ids.reserve(items.size());
  // Phase 1: graph insertion + callback registration for the whole wave.
  // Callbacks must exist before admission (a task doomed at submission
  // turns terminal inside on_submitted_batch and must still fire), and
  // inserting everything first lets intra-batch dependencies resolve no
  // matter how admission reorders terminal transitions.
  for (BatchItem& item : items) {
    const TaskId id = graph_.add_task(item.def, item.params, study);
    if (item.on_complete) callbacks_[id] = std::move(item.on_complete);
    ids.push_back(id);
  }
  // Phase 2: one admission pass + one notification flush for N tasks.
  engine_.on_submitted_batch(ids, backend_->now());
  engine_.flush_notifications();
  std::vector<Future> futures;
  futures.reserve(ids.size());
  for (const TaskId id : ids) futures.push_back(graph_.task(id).result);
  return futures;
}

StudySession Runtime::open_study(StudyOptions study) {
  const StudyId id = next_study_++;
  if (study.name.empty()) study.name = "study-" + std::to_string(id);
  studies_[id] = StudyInfo{.name = study.name};
  EngineContextScope ctx(g_engine_ctx);
  engine_.set_study_policy(id, StudyPolicy{.weight = study.weight,
                                           .max_running = study.max_running,
                                           .paused = false});
  sink_.record(trace::Event{.kind = trace::EventKind::StudyOpen,
                            .study = id,
                            .task_name = study.name,
                            .t_start = backend_->now(),
                            .t_end = backend_->now()});
  log_info("runtime", "study {} '{}' opened (weight={}, max_running={})", id, study.name,
           study.weight, study.max_running);
  return StudySession(this, id);
}

StudySession Runtime::main_study() { return StudySession(this, kMainStudy); }

const std::string& Runtime::study_name(StudyId study) const { return study_info(study).name; }

Runtime::StudyInfo& Runtime::study_info(StudyId study) {
  const auto it = studies_.find(study);
  if (it == studies_.end())
    throw std::invalid_argument("Runtime: unknown study " + std::to_string(study));
  return it->second;
}

const Runtime::StudyInfo& Runtime::study_info(StudyId study) const {
  const auto it = studies_.find(study);
  if (it == studies_.end())
    throw std::invalid_argument("Runtime: unknown study " + std::to_string(study));
  return it->second;
}

std::vector<TaskId> Runtime::drain_study_completions(StudyId study) {
  StudyInfo& info = study_info(study);
  info.completions_enabled = true;  // opt-in, like the global queue
  std::vector<TaskId> drained(info.completions.begin(), info.completions.end());
  info.completions.clear();
  return drained;
}

void Runtime::set_study_paused(StudyId study, bool paused) {
  study_info(study);  // validate
  EngineContextScope ctx(g_engine_ctx);
  engine_.set_study_paused(study, paused);
  sink_.record(trace::Event{
      .kind = paused ? trace::EventKind::StudyPause : trace::EventKind::StudyResume,
      .study = study,
      .task_name = study_name(study),
      .t_start = backend_->now(),
      .t_end = backend_->now()});
}

bool Runtime::is_study_paused(StudyId study) const { return engine_.study_paused(study); }

std::size_t Runtime::cancel_study_tasks(StudyId study) {
  study_info(study);  // validate
  EngineContextScope ctx(g_engine_ctx);
  const std::size_t cancelled = engine_.cancel_study(study, backend_->now());
  // Pending tasks (and their dependents) turned terminal inside
  // cancel_study; deliver their notifications before returning.
  engine_.flush_notifications();
  return cancelled;
}

void Runtime::study_barrier(StudyId study) {
  study_info(study);  // validate
  EngineContextScope ctx(g_engine_ctx);
  if (engine_.study_quiescent(study)) return;
  backend_->run_until_condition([this, study] {
    assert_engine_context();
    return engine_.study_quiescent(study);
  });
}

void Runtime::on_task_terminal(TaskId task, TaskState state) {
  if (completions_enabled_) completions_.push_back(task);
  // Demultiplex to the owning study's queue: this is where the engine's
  // terminal-notification funnel fans back out to sessions.
  const auto study_it = studies_.find(graph_.task(task).study);
  if (study_it != studies_.end() && study_it->second.completions_enabled)
    study_it->second.completions.push_back(task);
  const auto it = callbacks_.find(task);
  if (it == callbacks_.end()) return;
  CompletionCallback callback = std::move(it->second);
  callbacks_.erase(it);  // erase first: the callback may submit new tasks
  // By value: the callback may submit, and the record the future lives in
  // can move when the graph grows.
  const Future result = graph_.task(task).result;
  callback(result, state);
}

std::vector<TaskId> Runtime::drain_completions() {
  completions_enabled_ = true;  // recording is opt-in from the first call
  std::vector<TaskId> drained(completions_.begin(), completions_.end());
  completions_.clear();
  return drained;
}

Future Runtime::submit_in(const TaskDef& def, const std::vector<DataId>& inputs) {
  std::vector<Param> params;
  params.reserve(inputs.size());
  for (DataId d : inputs) params.push_back(Param{.data = d, .dir = Direction::In});
  return submit(def, params);
}

std::any Runtime::wait_on(const Future& future) {
  if (future.producer == kNoTask) throw std::invalid_argument("wait_on: empty future");
  EngineContextScope ctx(g_engine_ctx);
  backend_->run_until(future.producer);
  synced_.push_back(future);
  sink_.record(trace::Event{.kind = trace::EventKind::Sync,
                            .task_id = future.producer,
                            .t_start = backend_->now(),
                            .t_end = backend_->now()});
  const TaskRecord& record = graph_.task(future.producer);
  if (record.state != TaskState::Done)
    throw TaskFailedError(future.producer, record.failure_reason);
  // The producer is Done, but its output may have been lost with a node
  // since it committed. Demand lineage recovery and drive the backend until
  // the version is recommitted (or proven unrecoverable: the chain reaches
  // a permanently failed producer or every node is gone).
  auto status = engine_.request_version(future.data, future.version, backend_->now());
  if (status == Engine::VersionStatus::Recovering) {
    backend_->run_until_condition([this, &future, &status] {
      // Evaluated from inside the drive loop, which holds the capability
      // behind the std::function boundary.
      assert_engine_context();
      status = engine_.request_version(future.data, future.version, backend_->now());
      return status != Engine::VersionStatus::Recovering;
    });
  }
  if (status == Engine::VersionStatus::Unrecoverable)
    throw TaskFailedError(future.producer, "output lost with node " +
                                               std::to_string(record.last_node) +
                                               " and could not be recovered through lineage");
  return graph_.registry().value(future.data, future.version);
}

Future Runtime::wait_any(std::span<const Future> futures) {
  if (futures.empty()) throw std::invalid_argument("wait_any: no futures");
  EngineContextScope ctx(g_engine_ctx);
  std::vector<TaskId> targets;
  targets.reserve(futures.size());
  for (const Future& f : futures) {
    if (f.producer == kNoTask) throw std::invalid_argument("wait_any: empty future");
    targets.push_back(f.producer);
  }

  // Pick the candidate that turned terminal first; drive the backend only
  // when none has yet.
  auto first_finished = [&]() -> const Future* {
    const Future* winner = nullptr;
    std::uint64_t best_seq = 0;
    for (const Future& f : futures) {
      const std::uint64_t seq = graph_.task(f.producer).terminal_seq;
      if (seq == 0) continue;
      if (winner == nullptr || seq < best_seq) {
        winner = &f;
        best_seq = seq;
      }
    }
    return winner;
  };

  const Future* winner = first_finished();
  if (winner == nullptr) {
    backend_->run_until_any(targets);
    winner = first_finished();
  }
  synced_.push_back(*winner);
  sink_.record(trace::Event{.kind = trace::EventKind::WaitAny,
                            .task_id = winner->producer,
                            .study = graph_.task(winner->producer).study,
                            .t_start = backend_->now(),
                            .t_end = backend_->now()});
  return *winner;
}

Future Runtime::wait_any_for(std::span<const Future> futures, double seconds) {
  if (futures.empty()) throw std::invalid_argument("wait_any_for: no futures");
  EngineContextScope ctx(g_engine_ctx);
  std::vector<TaskId> targets;
  targets.reserve(futures.size());
  for (const Future& f : futures) {
    if (f.producer == kNoTask) throw std::invalid_argument("wait_any_for: empty future");
    targets.push_back(f.producer);
  }

  auto first_finished = [&]() -> const Future* {
    const Future* winner = nullptr;
    std::uint64_t best_seq = 0;
    for (const Future& f : futures) {
      const std::uint64_t seq = graph_.task(f.producer).terminal_seq;
      if (seq == 0) continue;
      if (winner == nullptr || seq < best_seq) {
        winner = &f;
        best_seq = seq;
      }
    }
    return winner;
  };

  const Future* winner = first_finished();
  if (winner == nullptr) {
    backend_->run_until_any_for(targets, seconds);
    winner = first_finished();
  }
  if (winner == nullptr) return Future{};  // timed out; nothing terminal
  synced_.push_back(*winner);
  sink_.record(trace::Event{.kind = trace::EventKind::WaitAny,
                            .task_id = winner->producer,
                            .study = graph_.task(winner->producer).study,
                            .t_start = backend_->now(),
                            .t_end = backend_->now()});
  return *winner;
}

StudyProgress Runtime::study_progress(StudyId study) const {
  StudyProgress progress;
  for (TaskId id = 0; id < graph_.size(); ++id) {
    const TaskRecord& record = graph_.task(id);
    if (record.study != study) continue;
    ++progress.total;
    switch (record.state) {
      case TaskState::WaitingDeps: ++progress.waiting; break;
      case TaskState::Ready: ++progress.ready; break;
      case TaskState::Running: ++progress.running; break;
      case TaskState::Done: ++progress.done; break;
      case TaskState::Failed: ++progress.failed; break;
      case TaskState::Cancelled: ++progress.cancelled; break;
    }
  }
  return progress;
}

bool Runtime::wait_all_for(double seconds) {
  if (graph_.empty()) return true;
  EngineContextScope ctx(g_engine_ctx);
  return backend_->run_for(seconds);
}

bool Runtime::cancel(const Future& future) {
  if (future.producer == kNoTask) throw std::invalid_argument("cancel: empty future");
  EngineContextScope ctx(g_engine_ctx);
  const bool cancelled = engine_.cancel(future.producer, backend_->now());
  // A pending task (and its dependents) turned terminal inside cancel();
  // their callbacks fire before this returns.
  engine_.flush_notifications();
  return cancelled;
}

void Runtime::barrier() {
  if (graph_.empty()) return;
  EngineContextScope ctx(g_engine_ctx);
  backend_->run_until(kNoTask);
}

Future Runtime::submit_in_group(const std::string& group, const TaskDef& def,
                                const std::vector<Param>& params) {
  const Future future = submit(def, params);
  groups_[group].push_back(future.producer);
  return future;
}

void Runtime::barrier_group(const std::string& group) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  EngineContextScope ctx(g_engine_ctx);
  for (TaskId task : it->second) backend_->run_until(task);
  sink_.record(trace::Event{.kind = trace::EventKind::Sync,
                            .t_start = backend_->now(),
                            .t_end = backend_->now()});
}

bool Runtime::group_succeeded(const std::string& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return true;
  for (TaskId task : it->second)
    if (graph_.task(task).state != TaskState::Done) return false;
  return true;
}

std::size_t Runtime::add_node(const cluster::NodeSpec& node) {
  options_.cluster.nodes.push_back(node);
  const std::size_t index = engine_.resources().add_node(node);
  log_info("runtime", "elastic growth: node {} '{}' added ({} cpus, {} gpus)", index, node.name,
           node.cpus, node.gpus);
  return index;
}

}  // namespace chpo::rt
