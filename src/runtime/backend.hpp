// Backend interface: who owns time.
//
// The engine decides *what* happens; a backend decides *when*. The threaded
// backend executes task bodies on real host threads and reads a wall clock;
// the simulation backend advances a virtual clock by per-task cost models.
// Both must drive the engine to the same logical outcome for the same
// submission sequence — the test suite asserts this equivalence.
//
// Every drive entry point requires the g_engine_ctx capability: backends
// never acquire the coordinator role themselves, they inherit it from the
// Runtime call that invoked them (see engine_context.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "runtime/engine.hpp"
#include "runtime/types.hpp"

namespace chpo::rt {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Current time in seconds (wall-clock since construction, or virtual).
  virtual double now() const = 0;

  /// Drive the engine until `target` reaches a terminal state; kNoTask
  /// means "until every submitted task is terminal" (a full barrier).
  virtual void run_until(TaskId target) CHPO_REQUIRES(g_engine_ctx) = 0;

  /// Completion-driven wait: drive the engine until at least one of
  /// `targets` is terminal, in whatever order completions actually land
  /// (no head-of-line blocking on submission order). Already-terminal
  /// targets return immediately.
  virtual void run_until_any(std::span<const TaskId> targets) CHPO_REQUIRES(g_engine_ctx) = 0;

  /// Bounded barrier: drive the engine until every submitted task is
  /// terminal or `seconds` have elapsed (wall or virtual) from the call,
  /// whichever comes first. Returns true iff everything is terminal.
  virtual bool run_for(double seconds) CHPO_REQUIRES(g_engine_ctx) = 0;

  /// Bounded completion-driven wait: like run_until_any, but give up after
  /// `seconds` (wall or virtual) even if no target turned terminal —
  /// the building block for a service front-end that interleaves engine
  /// progress with request handling. Returns true iff at least one target
  /// is terminal on exit.
  virtual bool run_until_any_for(std::span<const TaskId> targets, double seconds)
      CHPO_REQUIRES(g_engine_ctx) = 0;

  /// Drive the engine until an arbitrary predicate over engine state holds
  /// (evaluated on the coordinator between engine steps). wait_on uses this
  /// to ride out the lineage recovery of a result whose replicas died.
  virtual void run_until_condition(const std::function<bool()>& finished)
      CHPO_REQUIRES(g_engine_ctx) = 0;

  /// Run exactly one engine duty round — process due node events, reap
  /// overdue attempts, dispatch ready work — without waiting for anything.
  /// Used by the chaos hooks so an injected membership event applies
  /// immediately rather than at the next blocking wait.
  void poke() CHPO_REQUIRES(g_engine_ctx) {
    int steps = 0;
    run_until_condition([&steps] { return steps++ > 0; });
  }

  /// Worker-side work-stealing counter (jobs a worker took from another
  /// worker's queue). 0 where the concept does not apply — the simulator
  /// runs bodies on the coordinator. Monitoring/tests only; unannotated
  /// because it reads an atomic, not engine state.
  virtual std::uint64_t steals() const { return 0; }

  /// True for the discrete-event simulator.
  virtual bool simulated() const = 0;
};

}  // namespace chpo::rt
