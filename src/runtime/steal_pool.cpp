#include "runtime/steal_pool.hpp"

namespace chpo::rt {

StealPool::StealPool(std::size_t num_workers, Sink sink, void* ctx) : sink_(sink), ctx_(ctx) {
  const std::size_t n = num_workers == 0 ? 1 : num_workers;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

StealPool::~StealPool() {
  {
    MutexLock lock(park_mutex_);
    stopping_ = true;
  }
  park_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void StealPool::submit(Job job) {
  const int node = job.placement.node;
  const std::size_t shard = static_cast<std::size_t>(node < 0 ? 0 : node) % queues_.size();
  {
    MutexLock lock(queues_[shard]->mutex);
    queues_[shard]->jobs.push_back(std::move(job));
  }
  {
    MutexLock lock(park_mutex_);
    ++work_epoch_;
  }
  park_cv_.notify_one();
}

void StealPool::worker_loop(std::size_t self) {
  const std::size_t n = queues_.size();
  while (true) {
    std::uint64_t epoch;
    {
      MutexLock lock(park_mutex_);
      epoch = work_epoch_;
    }
    Job job;
    bool have = false;
    {
      MutexLock lock(queues_[self]->mutex);
      if (!queues_[self]->jobs.empty()) {
        job = std::move(queues_[self]->jobs.front());
        queues_[self]->jobs.pop_front();
        have = true;
      }
    }
    // Own queue empty: steal the newest job from the first non-empty
    // victim. Scanning from self+1 spreads thieves over victims.
    for (std::size_t k = 1; k < n && !have; ++k) {
      const std::size_t victim = (self + k) % n;
      MutexLock lock(queues_[victim]->mutex);
      if (queues_[victim]->jobs.empty()) continue;
      job = std::move(queues_[victim]->jobs.back());
      queues_[victim]->jobs.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      have = true;
    }
    if (have) {
      sink_(ctx_, std::move(job));
      continue;
    }
    MutexLock lock(park_mutex_);
    while (work_epoch_ == epoch && !stopping_) park_cv_.wait(park_mutex_);
    // Stopping with an unchanged epoch: every queue was empty at the scan
    // and nothing arrived since — the shutdown drain is complete. With a
    // changed epoch, loop to rescan (and finish the drain) first.
    if (stopping_ && work_epoch_ == epoch) return;
  }
}

}  // namespace chpo::rt
