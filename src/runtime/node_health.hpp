// Per-node health scoring and quarantine.
//
// Every attempt outcome feeds an exponentially weighted failure score per
// node. A node whose score crosses the quarantine threshold stops
// receiving new placements except for a trickle of probation tasks; enough
// probation successes re-admit it. A node that rejoins after an outage
// (elastic membership) starts on probation rather than fully trusted —
// flaky hardware tends to stay flaky.
//
// Coordinator-thread only: the engine records outcomes and the schedulers
// consult allow_placement from the same drive loop.
#pragma once

#include <cstddef>
#include <vector>

namespace chpo::rt {

struct NodeHealthPolicy {
  bool enabled = true;
  /// EWMA smoothing: score = alpha * outcome + (1 - alpha) * score, where
  /// outcome is 1 for a failure and 0 for a success.
  double alpha = 0.3;
  /// Score at or above which a node is quarantined.
  double quarantine_threshold = 0.6;
  /// Outcomes observed on a node before it can be quarantined — one early
  /// failure must not condemn a node.
  int min_observations = 3;
  /// Concurrent placements allowed on a quarantined/probation node.
  int probation_tasks = 1;
  /// Consecutive probation successes that restore Healthy.
  int probation_successes = 2;
};

enum class HealthState { Healthy, Quarantined, Probation };

class NodeHealth {
 public:
  NodeHealth() = default;
  NodeHealth(NodeHealthPolicy policy, std::size_t n_nodes)
      : policy_(policy), nodes_(n_nodes) {}

  /// Register nodes added after construction (elastic growth).
  void ensure_node(std::size_t node) {
    if (node >= nodes_.size()) nodes_.resize(node + 1);
  }

  /// Record an attempt outcome on `node`. Returns true when the node
  /// *entered* quarantine on this observation (so the caller can trace it).
  bool record_failure(std::size_t node);
  /// Returns true when the node was re-admitted to Healthy on this success.
  bool record_success(std::size_t node);

  /// Membership transitions. A node that comes back up starts on probation
  /// with a neutral score; going down clears its in-flight counter.
  void on_node_down(std::size_t node);
  void on_node_up(std::size_t node);

  /// Placement bookkeeping: the engine reports dispatch/conclusion so the
  /// probation concurrency cap can be enforced.
  void on_placement(std::size_t node);
  void on_conclusion(std::size_t node);

  /// Whether the scheduler may start a new task on `node` right now.
  bool allow_placement(std::size_t node) const;

  HealthState state(std::size_t node) const;
  double score(std::size_t node) const;
  int observations(std::size_t node) const;
  const NodeHealthPolicy& policy() const { return policy_; }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Entry {
    double score = 0.0;
    int observations = 0;
    int probation_streak = 0;  ///< consecutive successes while not Healthy
    int inflight = 0;
    HealthState state = HealthState::Healthy;
  };

  NodeHealthPolicy policy_;
  std::vector<Entry> nodes_;
};

}  // namespace chpo::rt
