// Shared vocabulary types of the task runtime.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace chpo::rt {

using TaskId = std::uint64_t;
using DataId = std::uint64_t;

inline constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

/// Identifies one HPO study (a session of related tasks) multiplexed onto a
/// shared engine. Every task carries the study that submitted it, so the
/// terminal-notification funnel can demultiplex completions to the owning
/// session and `cancel_study` tears down exactly one study's work.
using StudyId = std::uint32_t;

/// Tasks submitted directly through Runtime (no session) land here.
inline constexpr StudyId kMainStudy = 0;

/// Parameter directionality, as in the @task decorator (IN is the default).
enum class Direction : std::uint8_t { In, Out, InOut };

/// One task parameter: which datum it touches and how.
struct Param {
  DataId data = 0;
  Direction dir = Direction::In;
};

/// Resource requirements, as in the @constraint decorator:
/// @constraint(processors=[{CPU, n}, {GPU, m}]).
struct Constraint {
  unsigned cpus = 1;
  unsigned gpus = 0;
  /// Task must own a whole node (the runtime grants it all usable cores).
  bool node_exclusive = false;
  /// @multinode: the task spans this many distinct nodes, receiving
  /// `cpus`/`gpus` (or the whole node, if node_exclusive) on each of them.
  unsigned nodes = 1;
};

/// Resources granted on one node.
struct NodeSlice {
  int node = -1;
  std::vector<unsigned> cores;  ///< physical core indices on the node
  std::vector<unsigned> gpus;   ///< physical GPU indices on the node
};

/// Concrete resources granted to one task attempt. Single-node tasks use
/// only the primary fields; @multinode tasks additionally hold one
/// NodeSlice per extra node.
struct Placement {
  int node = -1;
  std::vector<unsigned> cores;  ///< physical core indices on the primary node
  std::vector<unsigned> gpus;   ///< physical GPU indices on the primary node
  std::vector<NodeSlice> secondary;  ///< extra nodes of a @multinode task

  unsigned cpu_count() const { return static_cast<unsigned>(cores.size()); }
  unsigned gpu_count() const { return static_cast<unsigned>(gpus.size()); }
  unsigned node_count() const { return 1 + static_cast<unsigned>(secondary.size()); }
  unsigned total_cpus() const {
    unsigned total = cpu_count();
    for (const NodeSlice& s : secondary) total += static_cast<unsigned>(s.cores.size());
    return total;
  }
  unsigned total_gpus() const {
    unsigned total = gpu_count();
    for (const NodeSlice& s : secondary) total += static_cast<unsigned>(s.gpus.size());
    return total;
  }
};

/// Lifecycle of a task inside the engine.
enum class TaskState : std::uint8_t {
  WaitingDeps,  ///< has unfinished predecessors
  Ready,        ///< all inputs available, waiting for resources
  Running,      ///< an attempt is executing
  Done,         ///< finished successfully
  Failed,       ///< exhausted all retry attempts
  Cancelled,    ///< a predecessor permanently failed
};

}  // namespace chpo::rt
