// Threaded backend: real execution on host threads.
//
// Each dispatched task body runs on a worker thread from a sharded
// work-stealing pool sized to the cluster's total task concurrency (one
// queue per worker, dispatches sharded by placement node, idle workers
// steal). The coordinator (the caller of run_until) performs all engine
// mutations; workers only execute body snapshots and enqueue completion
// messages, so engine state needs no locking. Completions are drained in
// batches: one coordinator round-trip retires every message queued since
// the last one instead of one message per lock acquisition.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/backend.hpp"
#include "runtime/steal_pool.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_annotations.hpp"

namespace chpo::rt {

class ThreadBackend : public Backend {
 public:
  explicit ThreadBackend(Engine& engine);

  /// Joins the worker pool before the mutex/condvar members are destroyed:
  /// a worker may still be inside cv_.notify_one() when run_until returns,
  /// and default member-order destruction would tear the condvar down
  /// first (caught by TSan).
  ~ThreadBackend() override { pool_.reset(); }

  double now() const override { return clock_.elapsed_seconds(); }
  void run_until(TaskId target) override CHPO_REQUIRES(g_engine_ctx);
  void run_until_any(std::span<const TaskId> targets) override CHPO_REQUIRES(g_engine_ctx);
  bool run_for(double seconds) override CHPO_REQUIRES(g_engine_ctx);
  bool run_until_any_for(std::span<const TaskId> targets, double seconds) override
      CHPO_REQUIRES(g_engine_ctx);
  void run_until_condition(const std::function<bool()>& finished) override
      CHPO_REQUIRES(g_engine_ctx);
  std::uint64_t steals() const override { return pool_ ? pool_->steals() : 0; }
  bool simulated() const override { return false; }

 private:
  struct CompletionMsg {
    std::uint64_t attempt_id;
    TaskId task;
    AttemptResult result;
    double start;
    double end;
  };

  void launch(const Dispatch& dispatch) CHPO_REQUIRES(g_engine_ctx);
  /// StealPool sink: runs one body snapshot on a worker thread and queues
  /// the completion. A static function (not a capturing lambda) so the
  /// per-dispatch path never allocates a type-erased callable.
  static void run_job(void* ctx, StealPool::Job&& job);
  bool done(TaskId target) const;
  /// Core loop shared by every wait flavour: dispatch ready tasks and
  /// process worker completions until `finished()` holds or the wall-clock
  /// `deadline` (seconds on this backend's clock; <0 = none) passes.
  /// Returns true iff it stopped because `finished()` held.
  bool drive(const std::function<bool()>& finished, double deadline)
      CHPO_REQUIRES(g_engine_ctx);

  Engine& engine_;
  Stopwatch clock_;
  std::unique_ptr<StealPool> pool_;
  /// Guards the worker -> coordinator completion queue (the only state
  /// shared across threads on this backend; everything else is engine
  /// state confined to the coordinator via g_engine_ctx).
  Mutex mutex_{lockdep::kBackendCompletions};
  CondVar cv_;
  std::deque<CompletionMsg> completions_ CHPO_GUARDED_BY(mutex_);
};

}  // namespace chpo::rt
