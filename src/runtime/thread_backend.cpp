#include "runtime/thread_backend.hpp"

#include <algorithm>
#include <stdexcept>

namespace chpo::rt {

namespace {

std::size_t pool_size_for(const ResourceState& resources) {
  // Peak concurrency: every task needs >= 1 core or >= 1 GPU slot.
  std::size_t total = 0;
  const auto& spec = resources.spec();
  for (std::size_t i = 0; i < spec.nodes.size(); ++i)
    total += spec.usable_cpus(i) + spec.usable_gpus(i);
  return std::clamp<std::size_t>(total, 1, 256);
}

}  // namespace

ThreadBackend::ThreadBackend(Engine& engine)
    : engine_(engine), pool_(std::make_unique<ThreadPool>(pool_size_for(engine.resources()))) {}

void ThreadBackend::launch(const Dispatch& dispatch) {
  const double start = now();
  const double timeout = engine_.graph().task(dispatch.task).def.timeout_seconds;
  pool_->submit([this, dispatch, start, timeout] {
    AttemptResult result = engine_.execute_body(dispatch.task, dispatch.placement, false);
    const double end = now();
    // Threads cannot be interrupted mid-body; overruns are detected here.
    if (timeout > 0.0 && end - start > timeout && result.success) {
      result = AttemptResult{};
      result.error = "timeout after " + std::to_string(timeout) + "s (detected post-hoc)";
    }
    CompletionMsg msg{.task = dispatch.task,
                      .placement = dispatch.placement,
                      .result = std::move(result),
                      .start = start,
                      .end = end};
    {
      std::scoped_lock lock(mutex_);
      completions_.push_back(std::move(msg));
    }
    cv_.notify_one();
  });
}

bool ThreadBackend::done(TaskId target) const {
  return target == kNoTask ? engine_.all_terminal() : engine_.task_terminal(target);
}

void ThreadBackend::run_until(TaskId target) {
  while (!done(target)) {
    for (const Dispatch& d : engine_.schedule(now())) launch(d);

    if (done(target)) return;

    if (engine_.running_count() == 0) {
      // Nothing is running and nothing could be placed: either constraints
      // became infeasible (node deaths) or this is a genuine deadlock.
      if (engine_.reap_infeasible()) continue;
      if (done(target)) return;
      throw std::runtime_error("ThreadBackend: no runnable tasks but target not finished");
    }

    CompletionMsg msg;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return !completions_.empty(); });
      msg = std::move(completions_.front());
      completions_.pop_front();
    }
    Engine::Completion completion =
        engine_.complete_attempt(msg.task, msg.placement, std::move(msg.result), msg.start, msg.end);
    if (completion.retry) launch(*completion.retry);
  }
}

}  // namespace chpo::rt
