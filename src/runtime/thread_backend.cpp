#include "runtime/thread_backend.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace chpo::rt {

namespace {

std::size_t pool_size_for(const ResourceState& resources) {
  // Peak concurrency: every task needs >= 1 core or >= 1 GPU slot.
  std::size_t total = 0;
  const auto& spec = resources.spec();
  for (std::size_t i = 0; i < spec.nodes.size(); ++i)
    total += spec.usable_cpus(i) + spec.usable_gpus(i);
  return std::clamp<std::size_t>(total, 1, 256);
}

}  // namespace

ThreadBackend::ThreadBackend(Engine& engine)
    : engine_(engine), pool_(std::make_unique<ThreadPool>(pool_size_for(engine.resources()))) {}

void ThreadBackend::launch(const Dispatch& dispatch) {
  const double start = now();
  const double timeout = engine_.graph().task(dispatch.task).def.timeout_seconds;
  pool_->submit([this, dispatch, start, timeout] {
    AttemptResult result = engine_.execute_body(dispatch.task, dispatch.placement, false);
    const double end = now();
    // Threads cannot be interrupted mid-body; overruns are detected here.
    if (timeout > 0.0 && end - start > timeout && result.success) {
      result = AttemptResult{};
      result.error = "timeout after " + std::to_string(timeout) + "s (detected post-hoc)";
    }
    CompletionMsg msg{.task = dispatch.task,
                      .placement = dispatch.placement,
                      .result = std::move(result),
                      .start = start,
                      .end = end};
    {
      std::scoped_lock lock(mutex_);
      completions_.push_back(std::move(msg));
    }
    cv_.notify_one();
  });
}

bool ThreadBackend::done(TaskId target) const {
  return target == kNoTask ? engine_.all_terminal() : engine_.task_terminal(target);
}

bool ThreadBackend::drive(const std::function<bool()>& finished, double deadline) {
  engine_.flush_notifications();
  while (!finished()) {
    if (deadline >= 0.0 && now() >= deadline) return false;

    for (const Dispatch& d : engine_.schedule(now())) launch(d);

    if (finished()) return true;

    if (engine_.running_count() == 0) {
      // Nothing is running and nothing could be placed: either constraints
      // became infeasible (node deaths) or this is a genuine deadlock.
      if (engine_.reap_infeasible()) {
        engine_.flush_notifications();
        continue;
      }
      if (finished()) return true;
      throw std::runtime_error("ThreadBackend: no runnable tasks but target not finished");
    }

    CompletionMsg msg;
    {
      std::unique_lock lock(mutex_);
      if (deadline < 0.0) {
        cv_.wait(lock, [this] { return !completions_.empty(); });
      } else {
        const auto wait = std::chrono::duration<double>(deadline - now());
        if (!cv_.wait_for(lock, wait, [this] { return !completions_.empty(); }))
          return false;  // deadline hit with attempts still in flight
      }
      msg = std::move(completions_.front());
      completions_.pop_front();
    }
    Engine::Completion completion =
        engine_.complete_attempt(msg.task, msg.placement, std::move(msg.result), msg.start, msg.end);
    if (completion.retry) launch(*completion.retry);
    // Safe point: the engine holds no record references here, so queued
    // terminal notifications (and their user callbacks) can fire.
    engine_.flush_notifications();
  }
  return true;
}

void ThreadBackend::run_until(TaskId target) {
  drive([this, target] { return done(target); }, /*deadline=*/-1.0);
}

void ThreadBackend::run_until_any(std::span<const TaskId> targets) {
  drive(
      [this, targets] {
        return std::any_of(targets.begin(), targets.end(),
                           [this](TaskId t) { return engine_.task_terminal(t); });
      },
      /*deadline=*/-1.0);
}

bool ThreadBackend::run_for(double seconds) {
  return drive([this] { return engine_.all_terminal(); }, now() + seconds);
}

}  // namespace chpo::rt
