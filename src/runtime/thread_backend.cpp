#include "runtime/thread_backend.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

namespace chpo::rt {

namespace {

std::size_t pool_size_for(const ResourceState& resources) {
  // Peak concurrency: every task needs >= 1 core or >= 1 GPU slot.
  std::size_t total = 0;
  const auto& spec = resources.spec();
  for (std::size_t i = 0; i < spec.nodes.size(); ++i)
    total += spec.usable_cpus(i) + spec.usable_gpus(i);
  return std::clamp<std::size_t>(total, 1, 256);
}

}  // namespace

ThreadBackend::ThreadBackend(Engine& engine)
    : engine_(engine),
      pool_(std::make_unique<StealPool>(pool_size_for(engine.resources()),
                                        &ThreadBackend::run_job, this)) {}

void ThreadBackend::launch(const Dispatch& dispatch) {
  // Timeouts are enforced by the coordinator: the engine reaps the attempt
  // at its deadline (Engine::on_wakeup) while the body is still running,
  // and this worker's eventual completion is then dropped as stale. The
  // body snapshot is taken here, on the coordinator, so the worker never
  // reads the TaskRecord the coordinator may mutate behind its back.
  StealPool::Job job;
  job.body = engine_.prepare_body(dispatch.task);
  job.placement = dispatch.placement;
  job.attempt_id = dispatch.attempt_id;
  job.start = now();
  pool_->submit(std::move(job));
}

void ThreadBackend::run_job(void* ctx, StealPool::Job&& job) {
  auto* self = static_cast<ThreadBackend*>(ctx);
  AttemptResult result = self->engine_.execute_prepared(job.body, job.placement, false);
  const double end = self->now();
  CompletionMsg msg{.attempt_id = job.attempt_id,
                    .task = job.body.task,
                    .result = std::move(result),
                    .start = job.start,
                    .end = end};
  {
    MutexLock lock(self->mutex_);
    self->completions_.push_back(std::move(msg));
  }
  self->cv_.notify_one();
}

bool ThreadBackend::done(TaskId target) const {
  // A barrier also waits out pending lineage recoveries (quiescent), so
  // data lost to a node death is recomputed before control returns.
  return target == kNoTask ? engine_.quiescent() : engine_.task_terminal(target);
}

bool ThreadBackend::drive(const std::function<bool()>& finished, double deadline) {
  engine_.flush_notifications();
  std::vector<CompletionMsg> batch;  // reused across rounds
  while (!finished()) {
    if (deadline >= 0.0 && now() >= deadline) return false;

    // Timed engine duties first: reap overdue attempts, promote backoff
    // retries, launch speculative duplicates. Reaping can turn tasks
    // terminal, so flush before re-checking the target.
    for (const Dispatch& d : engine_.on_wakeup(now())) launch(d);
    for (const Dispatch& d : engine_.schedule(now())) launch(d);
    engine_.flush_notifications();

    if (finished()) return true;

    const std::optional<double> wake = engine_.next_wakeup(now());

    if (engine_.running_count() == 0) {
      // Nothing is running and nothing could be placed: a pending timed
      // duty (backoff retry), constraints turned infeasible (node deaths),
      // or a genuine deadlock.
      if (engine_.reap_infeasible()) {
        engine_.flush_notifications();
        continue;
      }
      if (finished()) return true;
      if (wake) {
        // Nothing can complete before the wakeup: just sleep up to it.
        double until = *wake;
        const bool deadline_first = deadline >= 0.0 && deadline <= until;
        if (deadline_first) until = deadline;
        const double seconds = until - now();
        if (seconds > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
        if (deadline_first) return false;
        continue;
      }
      throw std::runtime_error("ThreadBackend: no runnable tasks but target not finished");
    }

    batch.clear();
    {
      MutexLock lock(mutex_);
      double limit = std::numeric_limits<double>::infinity();
      if (deadline >= 0.0) limit = deadline;
      if (wake && *wake < limit) limit = *wake;
      // Condition re-checks are written as explicit while loops (not
      // predicate lambdas) so the thread-safety analysis sees every
      // completions_ access under the held MutexLock.
      if (limit == std::numeric_limits<double>::infinity()) {
        while (completions_.empty()) cv_.wait(mutex_);
      } else {
        while (completions_.empty()) {
          // Absolute limit: recompute the remaining budget after every
          // spurious wakeup, give up once it is spent.
          const double seconds = limit - now();
          if (seconds <= 0.0) break;
          if (cv_.wait_for(mutex_, std::chrono::duration<double>(seconds)) ==
              std::cv_status::timeout)
            break;
        }
        if (completions_.empty()) {
          if (deadline >= 0.0 && now() >= deadline)
            return false;  // deadline hit with attempts still in flight
          // else: woke for an engine duty — loop back to on_wakeup.
        }
      }
      // Coalesce: drain *everything* queued so one coordinator round-trip
      // retires the whole wave (one lock hold, one notification flush)
      // instead of one message per lock acquisition.
      while (!completions_.empty()) {
        batch.push_back(std::move(completions_.front()));
        completions_.pop_front();
      }
    }
    if (batch.empty()) continue;
    for (CompletionMsg& msg : batch) {
      Engine::Completion completion =
          engine_.complete_attempt(msg.attempt_id, std::move(msg.result), msg.start, msg.end);
      if (completion.retry) launch(*completion.retry);
    }
    // Safe point: the engine holds no record references here, so queued
    // terminal notifications (and their user callbacks) can fire.
    engine_.flush_notifications();
  }
  return true;
}

void ThreadBackend::run_until(TaskId target) {
  drive([this, target] { return done(target); }, /*deadline=*/-1.0);
}

void ThreadBackend::run_until_any(std::span<const TaskId> targets) {
  drive(
      [this, targets] {
        return std::any_of(targets.begin(), targets.end(),
                           [this](TaskId t) { return engine_.task_terminal(t); });
      },
      /*deadline=*/-1.0);
}

bool ThreadBackend::run_for(double seconds) {
  return drive([this] { return engine_.quiescent(); }, now() + seconds);
}

bool ThreadBackend::run_until_any_for(std::span<const TaskId> targets, double seconds) {
  auto any_done = [this, targets] {
    return std::any_of(targets.begin(), targets.end(),
                       [this](TaskId t) { return engine_.task_terminal(t); });
  };
  drive(any_done, now() + seconds);
  return any_done();
}

void ThreadBackend::run_until_condition(const std::function<bool()>& finished) {
  drive(finished, /*deadline=*/-1.0);
}

}  // namespace chpo::rt
