// Dense float tensor and the kernels the NN layers need.
//
// The TensorFlow substitute's bottom layer: a contiguous row-major float
// buffer with a shape, plus the handful of BLAS-like kernels used by the
// layers. matmul honours a thread budget via parallel_for — this is the
// "internal parallelism" that a task's @constraint caps (paper §3:
// "if a task has built-in parallelism, PyCOMPSs will not interfere").
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace chpo::ml {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, float fill);

  static Tensor zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape), 0.0f); }
  /// Gaussian init with given stddev (He/Glorot handled by callers).
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng, float stddev = 1.0f);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D access (row-major); undefined unless rank()==2.
  float& at2(std::size_t r, std::size_t c) { return data_[r * shape_[1] + c]; }
  float at2(std::size_t r, std::size_t c) const { return data_[r * shape_[1] + c]; }

  void fill(float v);
  /// Reinterpret the buffer with a new shape of identical element count.
  Tensor reshaped(std::vector<std::size_t> shape) const;

  std::string shape_str() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// c = a @ b. a is [m,k], b is [k,n], out [m,n]. Rows are split across up to
/// `threads` workers.
void matmul(const Tensor& a, const Tensor& b, Tensor& out, unsigned threads = 1);

/// c = a @ b^T. a [m,k], b [n,k], out [m,n].
void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out, unsigned threads = 1);

/// c = a^T @ b. a [k,m], b [k,n], out [m,n].
void matmul_at(const Tensor& a, const Tensor& b, Tensor& out, unsigned threads = 1);

/// out[r,:] += bias for every row.
void add_row_bias(Tensor& out, const Tensor& bias);

/// Elementwise y = max(x, 0); dx = dy * (x > 0).
void relu_forward(const Tensor& x, Tensor& y);
void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx);

/// Row-wise softmax of logits [n, classes].
void softmax_rows(const Tensor& logits, Tensor& probs);

/// Mean cross-entropy of probs [n,classes] against integer labels; also
/// writes dlogits = (probs - onehot)/n for the fused softmax+CE backward.
float cross_entropy(const Tensor& probs, const std::vector<int>& labels, Tensor& dlogits);

/// argmax per row.
std::vector<int> argmax_rows(const Tensor& t);

}  // namespace chpo::ml
