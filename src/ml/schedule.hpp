// Learning-rate schedules.
//
// Extends the hyperparameter surface beyond Listing 1: a schedule is a pure
// function epoch -> multiplier applied to the optimizer's base rate. The
// trainer re-scales per epoch; schedules are themselves tunable via the
// HPO layer ("lr_schedule": ["constant", "step", "cosine"]).
#pragma once

#include <functional>
#include <memory>
#include <string>

namespace chpo::ml {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual std::string name() const = 0;
  /// Multiplier for `epoch` (1-based) out of `total_epochs`.
  virtual double multiplier(int epoch, int total_epochs) const = 0;
};

/// multiplier == 1 forever.
class ConstantSchedule : public LrSchedule {
 public:
  std::string name() const override { return "constant"; }
  double multiplier(int, int) const override { return 1.0; }
};

/// Multiply by `factor` every `period` epochs.
class StepDecaySchedule : public LrSchedule {
 public:
  StepDecaySchedule(int period = 10, double factor = 0.5);
  std::string name() const override { return "step"; }
  double multiplier(int epoch, int total_epochs) const override;

 private:
  int period_;
  double factor_;
};

/// Cosine annealing from 1 down to `floor`.
class CosineSchedule : public LrSchedule {
 public:
  explicit CosineSchedule(double floor = 0.01);
  std::string name() const override { return "cosine"; }
  double multiplier(int epoch, int total_epochs) const override;

 private:
  double floor_;
};

/// Factory: "constant" | "step" | "cosine".
std::unique_ptr<LrSchedule> make_schedule(const std::string& name);

}  // namespace chpo::ml
