#include "ml/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/schedule.hpp"

namespace chpo::ml {

double evaluate(Model& model, const Tensor& x, const std::vector<int>& y, unsigned threads) {
  if (y.empty()) return 0.0;
  const Tensor logits = model.forward(x, /*training=*/false, threads);
  const std::vector<int> predicted = argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    if (predicted[i] == y[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(y.size());
}

// ------------------------------------------------------- TrainerSession

TrainerSession::TrainerSession(Model& model, const Dataset& data, const TrainConfig& config)
    : model_(&model), data_(&data), config_(config) {
  init();
}

TrainerSession::TrainerSession(const Dataset& data, const TrainConfig& config)
    : owned_model_(std::make_unique<Model>(make_reference_model(data, config))),
      model_(owned_model_.get()),
      data_(&data),
      config_(config) {
  init();
}

void TrainerSession::init() {
  if (config_.num_epochs <= 0) throw std::invalid_argument("train: num_epochs must be positive");
  if (config_.batch_size <= 0) throw std::invalid_argument("train: batch_size must be positive");
  optimizer_ = make_optimizer(config_.optimizer, config_.learning_rate);
  schedule_ = make_schedule(config_.lr_schedule);
  params_ = model_->params();
  grads_ = model_->grads();
  rng_ = Rng(config_.seed);
  const std::size_t n = data_->train_size();
  batch_ = std::min<std::size_t>(static_cast<std::size_t>(config_.batch_size), n);
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
}

bool TrainerSession::step_epoch() {
  if (finished_) return false;
  const int epoch = epoch_ + 1;
  const std::size_t n = data_->train_size();
  const std::size_t features = data_->sample_features();

  optimizer_->set_lr_scale(static_cast<float>(schedule_->multiplier(epoch, config_.num_epochs)));
  rng_.shuffle(order_);
  double loss_sum = 0.0;
  std::size_t seen = 0, correct = 0, steps = 0;

  if (batch_ > 0) {
    Tensor batch_x({batch_, features});
    std::vector<int> batch_y(batch_);
    Tensor probs, dlogits;
    for (std::size_t begin = 0; begin + batch_ <= n; begin += batch_) {
      for (std::size_t i = 0; i < batch_; ++i) {
        const std::size_t src = order_[begin + i];
        std::copy_n(data_->train_x.data() + src * features, features,
                    batch_x.data() + i * features);
        batch_y[i] = data_->train_y[src];
      }
      const Tensor logits = model_->forward(batch_x, /*training=*/true, config_.threads);
      softmax_rows(logits, probs);
      loss_sum += cross_entropy(probs, batch_y, dlogits);
      ++steps;
      const std::vector<int> predicted = argmax_rows(probs);
      for (std::size_t i = 0; i < batch_; ++i)
        if (predicted[i] == batch_y[i]) ++correct;
      seen += batch_;
      model_->backward(dlogits, config_.threads);
      if (config_.weight_decay > 0.0f) {
        for (std::size_t p = 0; p < params_.size(); ++p)
          for (std::size_t j = 0; j < params_[p]->size(); ++j)
            (*grads_[p])[j] += config_.weight_decay * (*params_[p])[j];
      }
      optimizer_->step(params_, grads_);
    }
  }

  EpochStats stats;
  stats.epoch = epoch;
  stats.train_loss = steps > 0 ? loss_sum / static_cast<double>(steps) : 0.0;
  stats.train_accuracy = seen > 0 ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
  stats.val_accuracy = evaluate(*model_, data_->test_x, data_->test_y, config_.threads);
  result_.history.push_back(stats);
  result_.epochs_run = epoch;
  result_.final_val_accuracy = stats.val_accuracy;
  epoch_ = epoch;

  if (stats.val_accuracy > best_) {
    best_ = stats.val_accuracy;
    epochs_since_best_ = 0;
  } else {
    ++epochs_since_best_;
  }
  result_.best_val_accuracy = best_;

  if ((config_.target_accuracy > 0 && stats.val_accuracy >= config_.target_accuracy) ||
      (config_.patience > 0 && epochs_since_best_ >= config_.patience)) {
    result_.stopped_early = true;
    finished_ = true;
  } else if (epoch_ >= config_.num_epochs) {
    finished_ = true;
  }
  return !finished_;
}

TrainSnapshot TrainerSession::snapshot() const {
  TrainSnapshot snap;
  snap.epochs_done = epoch_;
  snap.finished = finished_;
  snap.best = best_;
  snap.epochs_since_best = epochs_since_best_;
  snap.weights = snapshot_weights(*model_);
  snap.layer_state = model_->snapshot_layer_states();
  snap.optimizer = optimizer_->snapshot_state();
  snap.shuffle_rng = rng_.state();
  snap.order = order_;
  snap.partial = result_;
  return snap;
}

void TrainerSession::restore(const TrainSnapshot& snap) {
  load_weights(*model_, snap.weights);
  model_->restore_layer_states(snap.layer_state);
  optimizer_->restore_state(snap.optimizer);
  rng_.set_state(snap.shuffle_rng);
  if (snap.order.size() != order_.size())
    throw std::invalid_argument("restore: shuffle order size mismatch (different dataset?)");
  order_ = snap.order;
  epoch_ = snap.epochs_done;
  best_ = snap.best;
  epochs_since_best_ = snap.epochs_since_best;
  result_ = snap.partial;
  // A snapshot may come from a chain with a different epoch budget; early
  // stop travels with the result, the budget check uses this config's.
  finished_ = snap.partial.stopped_early || epoch_ >= config_.num_epochs;
}

TrainResult train(Model& model, const Dataset& data, const TrainConfig& config) {
  TrainerSession session(model, data, config);
  while (session.step_epoch()) {
  }
  return session.result();
}

CvResult cross_validate(const Dataset& data, const TrainConfig& config, int folds) {
  if (folds < 2) throw std::invalid_argument("cross_validate: need at least 2 folds");
  const std::size_t n = data.train_size();
  if (static_cast<std::size_t>(folds) > n)
    throw std::invalid_argument("cross_validate: more folds than samples");
  const std::size_t features = data.sample_features();

  CvResult result;
  for (int fold = 0; fold < folds; ++fold) {
    const std::size_t begin = n * static_cast<std::size_t>(fold) / static_cast<std::size_t>(folds);
    const std::size_t end =
        n * static_cast<std::size_t>(fold + 1) / static_cast<std::size_t>(folds);

    Dataset split;
    split.name = data.name + "/fold" + std::to_string(fold);
    split.channels = data.channels;
    split.height = data.height;
    split.width = data.width;
    split.classes = data.classes;
    split.train_x = Tensor({n - (end - begin), features});
    split.test_x = Tensor({end - begin, features});
    std::size_t train_row = 0, test_row = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool held_out = i >= begin && i < end;
      Tensor& target = held_out ? split.test_x : split.train_x;
      std::size_t& row = held_out ? test_row : train_row;
      std::copy_n(data.train_x.data() + i * features, features, target.data() + row * features);
      (held_out ? split.test_y : split.train_y).push_back(data.train_y[i]);
      ++row;
    }

    TrainConfig fold_config = config;
    fold_config.seed = config.seed + static_cast<std::uint64_t>(fold) * 104729ULL;
    const TrainResult fold_result = run_experiment(split, fold_config);
    result.fold_accuracies.push_back(fold_result.final_val_accuracy);
  }

  double sum = 0;
  for (double a : result.fold_accuracies) sum += a;
  result.mean_accuracy = sum / static_cast<double>(folds);
  double var = 0;
  for (double a : result.fold_accuracies) {
    const double d = a - result.mean_accuracy;
    var += d * d;
  }
  result.stddev = std::sqrt(var / static_cast<double>(folds));
  return result;
}

Model make_reference_model(const Dataset& data, const TrainConfig& config) {
  if (config.hidden_layers <= 0 || config.hidden_units <= 0)
    throw std::invalid_argument("run_experiment: architecture dims must be positive");
  Rng init_rng(config.seed ^ 0x5eedf00dULL);
  if (data.channels == 1) {
    std::vector<std::size_t> hidden(static_cast<std::size_t>(config.hidden_layers),
                                    static_cast<std::size_t>(config.hidden_units));
    return make_mlp(data.sample_features(), hidden, data.classes, init_rng,
                    MlpOptions{.batch_norm = config.batch_norm,
                               .dropout = config.dropout,
                               .dropout_seed = config.seed ^ 0xd40u});
  }
  return make_cnn(data.channels, data.height, data.width, data.classes, init_rng);
}

TrainResult run_experiment(const Dataset& data, const TrainConfig& config) {
  Model model = make_reference_model(data, config);
  return train(model, data, config);
}

}  // namespace chpo::ml
