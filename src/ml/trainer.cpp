#include "ml/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/schedule.hpp"

namespace chpo::ml {

double evaluate(Model& model, const Tensor& x, const std::vector<int>& y, unsigned threads) {
  if (y.empty()) return 0.0;
  const Tensor logits = model.forward(x, /*training=*/false, threads);
  const std::vector<int> predicted = argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    if (predicted[i] == y[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(y.size());
}

TrainResult train(Model& model, const Dataset& data, const TrainConfig& config) {
  if (config.num_epochs <= 0) throw std::invalid_argument("train: num_epochs must be positive");
  if (config.batch_size <= 0) throw std::invalid_argument("train: batch_size must be positive");

  auto optimizer = make_optimizer(config.optimizer, config.learning_rate);
  const auto schedule = make_schedule(config.lr_schedule);
  const std::vector<Tensor*> params = model.params();
  const std::vector<Tensor*> grads = model.grads();

  Rng rng(config.seed);
  const std::size_t n = data.train_size();
  const std::size_t features = data.sample_features();
  const std::size_t batch = std::min<std::size_t>(static_cast<std::size_t>(config.batch_size), n);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  double best = 0.0;
  int epochs_since_best = 0;

  Tensor batch_x({batch, features});
  std::vector<int> batch_y(batch);
  Tensor probs, dlogits;

  for (int epoch = 1; epoch <= config.num_epochs; ++epoch) {
    optimizer->set_lr_scale(
        static_cast<float>(schedule->multiplier(epoch, config.num_epochs)));
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t seen = 0, correct = 0, steps = 0;

    for (std::size_t begin = 0; begin + batch <= n; begin += batch) {
      for (std::size_t i = 0; i < batch; ++i) {
        const std::size_t src = order[begin + i];
        std::copy_n(data.train_x.data() + src * features, features, batch_x.data() + i * features);
        batch_y[i] = data.train_y[src];
      }
      const Tensor logits = model.forward(batch_x, /*training=*/true, config.threads);
      softmax_rows(logits, probs);
      loss_sum += cross_entropy(probs, batch_y, dlogits);
      ++steps;
      const std::vector<int> predicted = argmax_rows(probs);
      for (std::size_t i = 0; i < batch; ++i)
        if (predicted[i] == batch_y[i]) ++correct;
      seen += batch;
      model.backward(dlogits, config.threads);
      if (config.weight_decay > 0.0f) {
        for (std::size_t p = 0; p < params.size(); ++p)
          for (std::size_t j = 0; j < params[p]->size(); ++j)
            (*grads[p])[j] += config.weight_decay * (*params[p])[j];
      }
      optimizer->step(params, grads);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = steps > 0 ? loss_sum / static_cast<double>(steps) : 0.0;
    stats.train_accuracy = seen > 0 ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
    stats.val_accuracy = evaluate(model, data.test_x, data.test_y, config.threads);
    result.history.push_back(stats);
    result.epochs_run = epoch;
    result.final_val_accuracy = stats.val_accuracy;

    if (stats.val_accuracy > best) {
      best = stats.val_accuracy;
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
    }

    if (config.target_accuracy > 0 && stats.val_accuracy >= config.target_accuracy) {
      result.stopped_early = true;
      break;
    }
    if (config.patience > 0 && epochs_since_best >= config.patience) {
      result.stopped_early = true;
      break;
    }
  }
  result.best_val_accuracy = best;
  return result;
}

CvResult cross_validate(const Dataset& data, const TrainConfig& config, int folds) {
  if (folds < 2) throw std::invalid_argument("cross_validate: need at least 2 folds");
  const std::size_t n = data.train_size();
  if (static_cast<std::size_t>(folds) > n)
    throw std::invalid_argument("cross_validate: more folds than samples");
  const std::size_t features = data.sample_features();

  CvResult result;
  for (int fold = 0; fold < folds; ++fold) {
    const std::size_t begin = n * static_cast<std::size_t>(fold) / static_cast<std::size_t>(folds);
    const std::size_t end =
        n * static_cast<std::size_t>(fold + 1) / static_cast<std::size_t>(folds);

    Dataset split;
    split.name = data.name + "/fold" + std::to_string(fold);
    split.channels = data.channels;
    split.height = data.height;
    split.width = data.width;
    split.classes = data.classes;
    split.train_x = Tensor({n - (end - begin), features});
    split.test_x = Tensor({end - begin, features});
    std::size_t train_row = 0, test_row = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool held_out = i >= begin && i < end;
      Tensor& target = held_out ? split.test_x : split.train_x;
      std::size_t& row = held_out ? test_row : train_row;
      std::copy_n(data.train_x.data() + i * features, features, target.data() + row * features);
      (held_out ? split.test_y : split.train_y).push_back(data.train_y[i]);
      ++row;
    }

    TrainConfig fold_config = config;
    fold_config.seed = config.seed + static_cast<std::uint64_t>(fold) * 104729ULL;
    const TrainResult fold_result = run_experiment(split, fold_config);
    result.fold_accuracies.push_back(fold_result.final_val_accuracy);
  }

  double sum = 0;
  for (double a : result.fold_accuracies) sum += a;
  result.mean_accuracy = sum / static_cast<double>(folds);
  double var = 0;
  for (double a : result.fold_accuracies) {
    const double d = a - result.mean_accuracy;
    var += d * d;
  }
  result.stddev = std::sqrt(var / static_cast<double>(folds));
  return result;
}

TrainResult run_experiment(const Dataset& data, const TrainConfig& config) {
  if (config.hidden_layers <= 0 || config.hidden_units <= 0)
    throw std::invalid_argument("run_experiment: architecture dims must be positive");
  Rng init_rng(config.seed ^ 0x5eedf00dULL);
  Model model;
  if (data.channels == 1) {
    std::vector<std::size_t> hidden(static_cast<std::size_t>(config.hidden_layers),
                                    static_cast<std::size_t>(config.hidden_units));
    model = make_mlp(data.sample_features(), hidden, data.classes, init_rng,
                     MlpOptions{.batch_norm = config.batch_norm,
                                .dropout = config.dropout,
                                .dropout_seed = config.seed ^ 0xd40u});
  } else {
    model = make_cnn(data.channels, data.height, data.width, data.classes, init_rng);
  }
  return train(model, data, config);
}

}  // namespace chpo::ml
