#include "ml/distributed.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace chpo::ml {

std::vector<Dataset> make_shards(const Dataset& data, unsigned shards) {
  if (shards == 0) throw std::invalid_argument("make_shards: need at least one shard");
  const std::size_t n = data.train_size();
  if (n < shards) throw std::invalid_argument("make_shards: more shards than samples");
  const std::size_t features = data.sample_features();

  std::vector<Dataset> out;
  out.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    const std::size_t begin = n * s / shards;
    const std::size_t end = n * (s + 1) / shards;
    Dataset shard;
    shard.name = data.name + "/shard" + std::to_string(s);
    shard.channels = data.channels;
    shard.height = data.height;
    shard.width = data.width;
    shard.classes = data.classes;
    shard.train_x = Tensor({end - begin, features});
    std::copy_n(data.train_x.data() + begin * features, (end - begin) * features,
                shard.train_x.data());
    shard.train_y.assign(data.train_y.begin() + static_cast<std::ptrdiff_t>(begin),
                         data.train_y.begin() + static_cast<std::ptrdiff_t>(end));
    shard.test_x = data.test_x;  // replicated validation split
    shard.test_y = data.test_y;
    out.push_back(std::move(shard));
  }
  return out;
}

namespace {

Model reference_model(const Dataset& data, std::uint64_t seed, bool batch_norm) {
  Rng rng(seed ^ 0x5eedf00dULL);
  return data.channels == 1
             ? make_mlp(data.sample_features(), {64}, data.classes, rng, batch_norm)
             : make_cnn(data.channels, data.height, data.width, data.classes, rng);
}

}  // namespace

DistributedResult distributed_train(rt::Runtime& runtime, const Dataset& data,
                                    const DistributedOptions& options) {
  if (options.rounds <= 0) throw std::invalid_argument("distributed_train: rounds must be positive");
  if (options.local_epochs <= 0)
    throw std::invalid_argument("distributed_train: local_epochs must be positive");

  // Shards live for the duration of the runtime: share them as task inputs.
  const auto shards = std::make_shared<std::vector<Dataset>>(make_shards(data, options.shards));
  std::vector<rt::DataId> shard_ids;
  for (unsigned s = 0; s < options.shards; ++s) {
    const Dataset& shard = (*shards)[s];
    shard_ids.push_back(runtime.share(s, shard.train_x.size() * sizeof(float),
                                      shard.name));  // id payload: shard index
  }

  // Initial global weights.
  Model init = reference_model(data, options.train.seed, options.train.batch_norm);
  rt::DataId weights = runtime.share(snapshot_weights(init), 64, "weights");

  const TrainConfig base_config = options.train;
  const double default_shard_seconds =
      options.shard_task_seconds > 0
          ? options.shard_task_seconds
          : 1e-3 * static_cast<double>((*shards)[0].train_size()) * options.local_epochs;

  DistributedResult result;
  for (int round = 0; round < options.rounds; ++round) {
    std::vector<rt::Future> locals;
    for (unsigned s = 0; s < options.shards; ++s) {
      rt::TaskDef local;
      local.name = "local_train";
      local.constraint = options.shard_constraint;
      local.cost = [default_shard_seconds](const rt::Placement&, const cluster::NodeSpec& node) {
        return default_shard_seconds / node.core_rate;
      };
      const int local_epochs = options.local_epochs;
      local.body = [shards, base_config, round, s, local_epochs](rt::TaskContext& ctx) -> std::any {
        const Dataset& shard = (*shards)[ctx.read<unsigned>(0)];
        TrainConfig config = base_config;
        config.num_epochs = local_epochs;  // per-round budget
        config.threads = ctx.thread_budget();
        config.seed = base_config.seed + static_cast<std::uint64_t>(round) * 7919ULL + s;
        Model model = reference_model(shard, base_config.seed, base_config.batch_norm);
        load_weights(model, ctx.read<std::vector<Tensor>>(1));
        train(model, shard, config);
        return snapshot_weights(model);
      };
      locals.push_back(runtime.submit(
          local, {{shard_ids[s], rt::Direction::In}, {weights, rt::Direction::In}}));
    }

    rt::TaskDef average;
    average.name = "average";
    average.cost = [](const rt::Placement&, const cluster::NodeSpec&) { return 1.0; };
    average.body = [](rt::TaskContext& ctx) -> std::any {
      std::vector<std::vector<Tensor>> snapshots;
      for (std::size_t i = 0; i < ctx.param_count() - 1; ++i)
        snapshots.push_back(ctx.read<std::vector<Tensor>>(i));
      return average_weights(snapshots);
    };
    std::vector<rt::Param> average_params;
    for (const rt::Future& f : locals) average_params.push_back({f.data, rt::Direction::In});
    const rt::Future averaged = runtime.submit(average, average_params);

    // The averaged weights become the next round's global weights datum.
    const std::vector<Tensor> merged =
        runtime.wait_on_as<std::vector<Tensor>>(averaged);
    weights = runtime.share(merged, 64, "weights.r" + std::to_string(round + 1));

    Model probe = reference_model(data, options.train.seed, options.train.batch_norm);
    load_weights(probe, merged);
    result.round_val_accuracy.push_back(
        evaluate(probe, data.test_x, data.test_y, /*threads=*/1));
    result.weights = merged;
  }
  result.final_val_accuracy =
      result.round_val_accuracy.empty() ? 0.0 : result.round_val_accuracy.back();
  return result;
}

}  // namespace chpo::ml
