// Training loop — the body of the paper's `experiment(config)` task.
//
// Consumes exactly the hyperparameters of Listing 1 (optimizer, num_epochs,
// batch_size) plus a few extras; returns the validation-accuracy history
// that Figures 7-8 plot. Supports early stopping on a target accuracy
// (paper §6.2: "it makes no sense to continue ... after one has achieved
// the desired accuracy") and a thread budget so the runtime's @constraint
// caps internal parallelism.
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"

namespace chpo::ml {

struct TrainConfig {
  std::string optimizer = "Adam";  ///< "SGD" | "Adam" | "RMSprop"
  int num_epochs = 20;
  int batch_size = 32;
  float learning_rate = -1.0f;      ///< <=0: optimizer default
  std::string lr_schedule = "constant";  ///< "constant" | "step" | "cosine"
  float weight_decay = 0.0f;        ///< L2 penalty added to gradients
  bool batch_norm = false;          ///< insert BatchNorm into the MLP
  int hidden_layers = 1;            ///< MLP depth ("number of layers", §1)
  int hidden_units = 64;            ///< width of each hidden layer
  float dropout = 0.0f;             ///< dropout rate after hidden layers
  unsigned threads = 1;             ///< internal-parallelism budget
  std::uint64_t seed = 7;

  /// Early stopping: stop once validation accuracy reaches `target_accuracy`
  /// (<=0 disables), or after `patience` epochs without improvement
  /// (<=0 disables).
  double target_accuracy = -1.0;
  int patience = -1;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_val_accuracy = 0.0;
  double best_val_accuracy = 0.0;
  int epochs_run = 0;
  bool stopped_early = false;
};

/// Evaluate accuracy of `model` on (x, y) without touching its state.
double evaluate(Model& model, const Tensor& x, const std::vector<int>& y, unsigned threads = 1);

/// Train `model` on the dataset's train split, validating on its test
/// split each epoch.
TrainResult train(Model& model, const Dataset& data, const TrainConfig& config);

/// The full experiment task: builds the reference model for the dataset
/// shape (MLP for single-channel, CNN otherwise) and trains it.
TrainResult run_experiment(const Dataset& data, const TrainConfig& config);

/// k-fold cross-validation (scikit-learn's evaluation mode, paper §2.2):
/// splits the training set into `folds` contiguous folds, trains `folds`
/// fresh models on the complement and validates on the held-out fold.
struct CvResult {
  std::vector<double> fold_accuracies;
  double mean_accuracy = 0.0;
  double stddev = 0.0;
};
CvResult cross_validate(const Dataset& data, const TrainConfig& config, int folds);

}  // namespace chpo::ml
