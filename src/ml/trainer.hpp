// Training loop — the body of the paper's `experiment(config)` task.
//
// Consumes exactly the hyperparameters of Listing 1 (optimizer, num_epochs,
// batch_size) plus a few extras; returns the validation-accuracy history
// that Figures 7-8 plot. Supports early stopping on a target accuracy
// (paper §6.2: "it makes no sense to continue ... after one has achieved
// the desired accuracy") and a thread budget so the runtime's @constraint
// caps internal parallelism.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"
#include "ml/schedule.hpp"
#include "support/rng.hpp"

namespace chpo::ml {

struct TrainConfig {
  std::string optimizer = "Adam";  ///< "SGD" | "Adam" | "RMSprop"
  int num_epochs = 20;
  int batch_size = 32;
  float learning_rate = -1.0f;      ///< <=0: optimizer default
  std::string lr_schedule = "constant";  ///< "constant" | "step" | "cosine"
  float weight_decay = 0.0f;        ///< L2 penalty added to gradients
  bool batch_norm = false;          ///< insert BatchNorm into the MLP
  int hidden_layers = 1;            ///< MLP depth ("number of layers", §1)
  int hidden_units = 64;            ///< width of each hidden layer
  float dropout = 0.0f;             ///< dropout rate after hidden layers
  unsigned threads = 1;             ///< internal-parallelism budget
  std::uint64_t seed = 7;

  /// Early stopping: stop once validation accuracy reaches `target_accuracy`
  /// (<=0 disables), or after `patience` epochs without improvement
  /// (<=0 disables).
  double target_accuracy = -1.0;
  int patience = -1;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_val_accuracy = 0.0;
  double best_val_accuracy = 0.0;
  int epochs_run = 0;
  bool stopped_early = false;
};

/// Evaluate accuracy of `model` on (x, y) without touching its state.
double evaluate(Model& model, const Tensor& x, const std::vector<int>& y, unsigned threads = 1);

/// Complete training-loop state at an epoch boundary. Restoring a snapshot
/// into a fresh TrainerSession (same dataset + config) and continuing yields
/// bit-identical results to an uninterrupted run — the contract the reuse
/// subsystem's stage cache depends on.
struct TrainSnapshot {
  int epochs_done = 0;
  bool finished = false;  ///< early-stop condition already triggered
  double best = 0.0;
  int epochs_since_best = 0;
  std::vector<Tensor> weights;
  std::vector<LayerState> layer_state;
  OptimizerState optimizer;
  RngState shuffle_rng;
  /// Sample permutation after the last shuffle. Fisher-Yates permutes in
  /// place each epoch, so resuming needs the permutation itself, not just
  /// the RNG state.
  std::vector<std::size_t> order;
  TrainResult partial;  ///< result as of epochs_done
};

/// Epoch-stepping training driver. train() and run_experiment() are thin
/// wrappers over this class, so stepping N epochs here is bit-identical to
/// a monolithic N-epoch train() call.
class TrainerSession {
 public:
  /// Train a caller-owned model.
  TrainerSession(Model& model, const Dataset& data, const TrainConfig& config);
  /// Build and own the reference model for the dataset shape (what
  /// run_experiment does).
  TrainerSession(const Dataset& data, const TrainConfig& config);

  /// Run one epoch (no-op when finished). Returns true while more epochs
  /// remain, so `while (session.step_epoch()) {}` completes a full run.
  bool step_epoch();

  bool finished() const { return finished_; }
  int epochs_done() const { return epoch_; }

  /// Result accumulated so far; the final TrainResult once finished().
  const TrainResult& result() const { return result_; }

  /// Capture / restore complete loop state at the current epoch boundary.
  TrainSnapshot snapshot() const;
  void restore(const TrainSnapshot& snap);

 private:
  void init();

  std::unique_ptr<Model> owned_model_;
  Model* model_;
  const Dataset* data_;
  TrainConfig config_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<LrSchedule> schedule_;
  std::vector<Tensor*> params_, grads_;
  Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t batch_ = 0;
  int epoch_ = 0;
  bool finished_ = false;
  double best_ = 0.0;
  int epochs_since_best_ = 0;
  TrainResult result_;
};

/// Build the reference model for the dataset shape: MLP for single-channel
/// inputs, CNN otherwise. Deterministic in (data shape, config).
Model make_reference_model(const Dataset& data, const TrainConfig& config);

/// Train `model` on the dataset's train split, validating on its test
/// split each epoch.
TrainResult train(Model& model, const Dataset& data, const TrainConfig& config);

/// The full experiment task: builds the reference model for the dataset
/// shape (MLP for single-channel, CNN otherwise) and trains it.
TrainResult run_experiment(const Dataset& data, const TrainConfig& config);

/// k-fold cross-validation (scikit-learn's evaluation mode, paper §2.2):
/// splits the training set into `folds` contiguous folds, trains `folds`
/// fresh models on the complement and validates on the held-out fold.
struct CvResult {
  std::vector<double> fold_accuracies;
  double mean_accuracy = 0.0;
  double stddev = 0.0;
};
CvResult cross_validate(const Dataset& data, const TrainConfig& config, int folds);

}  // namespace chpo::ml
