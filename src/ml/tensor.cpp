#include "ml/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "support/parallel_for.hpp"

namespace chpo::ml {

namespace {

std::size_t element_count(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(element_count(shape_), fill) {}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.next_gaussian(0.0, stddev));
  return t;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  if (element_count(shape) != data_.size())
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

std::string Tensor::shape_str() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) out << (i ? "," : "") << shape_[i];
  out << "]";
  return out.str();
}

namespace {

void check2(const Tensor& t, const char* name) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(name) + ": rank-2 tensor required");
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& out, unsigned threads) {
  check2(a, "matmul a");
  check2(b, "matmul b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dimension mismatch");
  if (out.rank() != 2 || out.dim(0) != m || out.dim(1) != n) out = Tensor({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  parallel_for(m, threads, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      float* ci = pc + i * n;
      std::fill(ci, ci + n, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float aip = pa[i * k + p];
        const float* bp = pb + p * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  });
}

void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out, unsigned threads) {
  check2(a, "matmul_bt a");
  check2(b, "matmul_bt b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_bt: inner dimension mismatch");
  if (out.rank() != 2 || out.dim(0) != m || out.dim(1) != n) out = Tensor({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  parallel_for(m, threads, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const float* ai = pa + i * k;
        const float* bj = pb + j * k;
        float sum = 0.0f;
        for (std::size_t p = 0; p < k; ++p) sum += ai[p] * bj[p];
        pc[i * n + j] = sum;
      }
    }
  });
}

void matmul_at(const Tensor& a, const Tensor& b, Tensor& out, unsigned threads) {
  check2(a, "matmul_at a");
  check2(b, "matmul_at b");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_at: inner dimension mismatch");
  if (out.rank() != 2 || out.dim(0) != m || out.dim(1) != n) out = Tensor({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  parallel_for(m, threads, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      float* ci = pc + i * n;
      std::fill(ci, ci + n, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float api = pa[p * m + i];
        const float* bp = pb + p * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
      }
    }
  });
}

void add_row_bias(Tensor& out, const Tensor& bias) {
  check2(out, "add_row_bias out");
  const std::size_t n = out.dim(1);
  if (bias.size() != n) throw std::invalid_argument("add_row_bias: bias size mismatch");
  for (std::size_t r = 0; r < out.dim(0); ++r) {
    float* row = out.data() + r * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += bias[j];
  }
}

void relu_forward(const Tensor& x, Tensor& y) {
  if (y.size() != x.size()) y = Tensor(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx) {
  if (x.size() != dy.size()) throw std::invalid_argument("relu_backward: size mismatch");
  if (dx.size() != x.size()) dx = Tensor(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  check2(logits, "softmax_rows");
  if (probs.size() != logits.size()) probs = Tensor(logits.shape());
  const std::size_t n = logits.dim(1);
  for (std::size_t r = 0; r < logits.dim(0); ++r) {
    const float* in = logits.data() + r * n;
    float* out = probs.data() + r * n;
    float max_v = in[0];
    for (std::size_t j = 1; j < n; ++j) max_v = std::max(max_v, in[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      out[j] = std::exp(in[j] - max_v);
      sum += out[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < n; ++j) out[j] *= inv;
  }
}

float cross_entropy(const Tensor& probs, const std::vector<int>& labels, Tensor& dlogits) {
  check2(probs, "cross_entropy");
  const std::size_t n = probs.dim(0), classes = probs.dim(1);
  if (labels.size() != n) throw std::invalid_argument("cross_entropy: label count mismatch");
  if (dlogits.size() != probs.size()) dlogits = Tensor(probs.shape());
  float loss = 0.0f;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const int label = labels[r];
    if (label < 0 || static_cast<std::size_t>(label) >= classes)
      throw std::out_of_range("cross_entropy: label out of range");
    const float* p = probs.data() + r * classes;
    float* d = dlogits.data() + r * classes;
    loss -= std::log(std::max(p[static_cast<std::size_t>(label)], 1e-12f));
    for (std::size_t j = 0; j < classes; ++j)
      d[j] = (p[j] - (static_cast<int>(j) == label ? 1.0f : 0.0f)) * inv_n;
  }
  return loss * inv_n;
}

std::vector<int> argmax_rows(const Tensor& t) {
  std::vector<int> out;
  if (t.rank() != 2) throw std::invalid_argument("argmax_rows: rank-2 tensor required");
  const std::size_t n = t.dim(1);
  out.reserve(t.dim(0));
  for (std::size_t r = 0; r < t.dim(0); ++r) {
    const float* row = t.data() + r * n;
    std::size_t best = 0;
    for (std::size_t j = 1; j < n; ++j)
      if (row[j] > row[best]) best = j;
    out.push_back(static_cast<int>(best));
  }
  return out;
}

}  // namespace chpo::ml
