// Sequential model container and the two reference architectures the
// experiments use: an MLP for MNIST-scale inputs and a small CNN for
// CIFAR-scale inputs (the paper's create_model(config)).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/layers.hpp"
#include "ml/tensor.hpp"

namespace chpo::ml {

class Model {
 public:
  Model() = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  std::size_t layer_count() const { return layers_.size(); }

  /// Forward through every layer.
  Tensor forward(const Tensor& x, bool training, unsigned threads = 1);

  /// Backward from dLoss/dLogits; fills every layer's gradients.
  void backward(const Tensor& dlogits, unsigned threads = 1);

  /// Flattened parameter / gradient lists across layers.
  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();

  std::size_t parameter_count();
  /// Approximate MACs per sample for one forward pass.
  std::size_t flops_per_sample() const;

  /// Non-parameter layer state (BatchNorm running stats, Dropout RNG),
  /// one LayerState per layer. Restore requires the same architecture.
  std::vector<LayerState> snapshot_layer_states() const;
  void restore_layer_states(const std::vector<LayerState>& states);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// input -> Dense(hidden) [-> BatchNorm] -> ReLU [-> Dropout] -> ... ->
/// Dense(classes)
struct MlpOptions {
  bool batch_norm = false;
  double dropout = 0.0;  ///< rate after each hidden activation; 0 = none
  std::uint64_t dropout_seed = 11;
};
Model make_mlp(std::size_t input, const std::vector<std::size_t>& hidden, std::size_t classes,
               Rng& rng, bool batch_norm = false);
Model make_mlp(std::size_t input, const std::vector<std::size_t>& hidden, std::size_t classes,
               Rng& rng, const MlpOptions& options);

/// Conv(k3,c8) -> ReLU -> MaxPool -> Conv(k3,c16) -> ReLU -> MaxPool ->
/// Dense(classes). Input rows are c*h*w planes.
Model make_cnn(std::size_t c, std::size_t h, std::size_t w, std::size_t classes, Rng& rng);

/// Copy all trainable parameters out of / into a model. Snapshots travel
/// through the task runtime's data registry for distributed training.
std::vector<Tensor> snapshot_weights(Model& model);
void load_weights(Model& model, const std::vector<Tensor>& weights);

/// Element-wise average of parameter snapshots (all same shapes).
std::vector<Tensor> average_weights(const std::vector<std::vector<Tensor>>& snapshots);

}  // namespace chpo::ml
