// Synthetic image-classification datasets.
//
// Offline substitutes for MNIST and CIFAR-10 (DESIGN.md §3): each class has
// a random smooth prototype image; samples are the prototype plus Gaussian
// pixel noise and a small random translation. `difficulty` controls noise
// and inter-class overlap, tuned so that the qualitative results of
// Figures 7-8 hold — MNIST-like is easy (most configs > 90% accuracy after
// a few epochs); CIFAR-like is harder and spreads configurations out.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/tensor.hpp"
#include "support/rng.hpp"

namespace chpo::ml {

struct Dataset {
  std::string name;
  std::size_t channels = 1, height = 0, width = 0, classes = 10;
  Tensor train_x;  ///< [n_train, c*h*w]
  std::vector<int> train_y;
  Tensor test_x;  ///< [n_test, c*h*w]
  std::vector<int> test_y;

  std::size_t train_size() const { return train_y.size(); }
  std::size_t test_size() const { return test_y.size(); }
  std::size_t sample_features() const { return channels * height * width; }
};

struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t channels = 1, height = 28, width = 28, classes = 10;
  std::size_t n_train = 2000, n_test = 500;
  /// 0 = trivially separable; ~1 = heavy noise/overlap.
  double difficulty = 0.35;
  std::uint64_t seed = 1234;
};

/// Generate class-prototype data per the spec.
Dataset make_synthetic(const SyntheticSpec& spec);

/// 28x28x1, 10 classes, easy — the MNIST stand-in.
Dataset make_mnist_like(std::size_t n_train = 2000, std::size_t n_test = 500,
                        std::uint64_t seed = 1234);

/// 32x32x3, 10 classes, hard — the CIFAR-10 stand-in.
Dataset make_cifar_like(std::size_t n_train = 2000, std::size_t n_test = 500,
                        std::uint64_t seed = 4321);

}  // namespace chpo::ml
