#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chpo::ml {

namespace {

/// Smooth random prototype: sum of a few random 2-D Gaussian blobs, values
/// roughly in [0, 1]. Smoothness makes translations mild perturbations,
/// like stroke jitter in handwritten digits.
std::vector<float> make_prototype(std::size_t c, std::size_t h, std::size_t w, Rng& rng) {
  std::vector<float> img(c * h * w, 0.0f);
  const int blobs = 3 + static_cast<int>(rng.next_index(3));
  for (int b = 0; b < blobs; ++b) {
    const double cy = rng.next_uniform(0.2, 0.8) * static_cast<double>(h);
    const double cx = rng.next_uniform(0.2, 0.8) * static_cast<double>(w);
    const double sigma = rng.next_uniform(0.08, 0.22) * static_cast<double>(std::min(h, w));
    const double amp = rng.next_uniform(0.5, 1.0);
    // Each channel gets its own weighting so colour carries class signal.
    std::vector<double> channel_weight(c);
    for (auto& cw : channel_weight) cw = rng.next_uniform(0.3, 1.0);
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          const double dy = (static_cast<double>(y) - cy) / sigma;
          const double dx = (static_cast<double>(x) - cx) / sigma;
          img[ch * h * w + y * w + x] +=
              static_cast<float>(amp * channel_weight[ch] * std::exp(-0.5 * (dy * dy + dx * dx)));
        }
      }
    }
  }
  float max_v = 1e-6f;
  for (float v : img) max_v = std::max(max_v, v);
  for (float& v : img) v /= max_v;
  return img;
}

void render_sample(float* out, const std::vector<float>& proto, std::size_t c, std::size_t h,
                   std::size_t w, double difficulty, Rng& rng,
                   const std::vector<float>* confuser) {
  const int max_shift = 1 + static_cast<int>(std::lround(difficulty * 2.0));
  const int sy = static_cast<int>(rng.next_int(-max_shift, max_shift));
  const int sx = static_cast<int>(rng.next_int(-max_shift, max_shift));
  const float noise = static_cast<float>(0.08 + 0.5 * difficulty);
  // Hard datasets mix in a second class's prototype (CIFAR-like ambiguity).
  const float mix = confuser ? static_cast<float>(rng.next_uniform(0.0, 0.45 * difficulty)) : 0.0f;
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        const long yy = static_cast<long>(y) + sy;
        const long xx = static_cast<long>(x) + sx;
        float v = 0.0f;
        if (yy >= 0 && yy < static_cast<long>(h) && xx >= 0 && xx < static_cast<long>(w)) {
          const std::size_t src = ch * h * w + static_cast<std::size_t>(yy) * w +
                                  static_cast<std::size_t>(xx);
          v = proto[src] * (1.0f - mix);
          if (confuser) v += (*confuser)[src] * mix;
        }
        v += static_cast<float>(rng.next_gaussian(0.0, noise));
        out[ch * h * w + y * w + x] = std::clamp(v, -1.0f, 2.0f);
      }
    }
  }
}

}  // namespace

Dataset make_synthetic(const SyntheticSpec& spec) {
  if (spec.classes == 0) throw std::invalid_argument("make_synthetic: classes must be > 0");
  Rng rng(spec.seed);
  const std::size_t features = spec.channels * spec.height * spec.width;

  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(spec.classes);
  for (std::size_t k = 0; k < spec.classes; ++k)
    prototypes.push_back(make_prototype(spec.channels, spec.height, spec.width, rng));

  Dataset ds;
  ds.name = spec.name;
  ds.channels = spec.channels;
  ds.height = spec.height;
  ds.width = spec.width;
  ds.classes = spec.classes;
  ds.train_x = Tensor({spec.n_train, features});
  ds.test_x = Tensor({spec.n_test, features});
  ds.train_y.resize(spec.n_train);
  ds.test_y.resize(spec.n_test);

  const bool hard = spec.difficulty > 0.5;
  const auto fill = [&](Tensor& x, std::vector<int>& y) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      const std::size_t label = i % spec.classes;  // balanced classes
      y[i] = static_cast<int>(label);
      const std::vector<float>* confuser = nullptr;
      if (hard) {
        std::size_t other = rng.next_index(spec.classes);
        if (other == label) other = (other + 1) % spec.classes;
        confuser = &prototypes[other];
      }
      render_sample(x.data() + i * features, prototypes[label], spec.channels, spec.height,
                    spec.width, spec.difficulty, rng, confuser);
    }
  };
  fill(ds.train_x, ds.train_y);
  fill(ds.test_x, ds.test_y);
  return ds;
}

Dataset make_mnist_like(std::size_t n_train, std::size_t n_test, std::uint64_t seed) {
  return make_synthetic(SyntheticSpec{.name = "mnist-like",
                                      .channels = 1,
                                      .height = 28,
                                      .width = 28,
                                      .classes = 10,
                                      .n_train = n_train,
                                      .n_test = n_test,
                                      .difficulty = 0.35,
                                      .seed = seed});
}

Dataset make_cifar_like(std::size_t n_train, std::size_t n_test, std::uint64_t seed) {
  return make_synthetic(SyntheticSpec{.name = "cifar-like",
                                      .channels = 3,
                                      .height = 32,
                                      .width = 32,
                                      .classes = 10,
                                      .n_train = n_train,
                                      .n_test = n_test,
                                      .difficulty = 0.8,
                                      .seed = seed});
}

}  // namespace chpo::ml
