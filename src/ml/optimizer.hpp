// Optimizers — the "optimizer" hyperparameter of the paper's Listing 1
// config file: {"optimizer": ["Adam", "SGD", "RMSprop"]}.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/tensor.hpp"

namespace chpo::ml {

/// Opaque optimizer state (momentum / moment slots plus the step counter)
/// for checkpoint/resume: capture with snapshot_state(), feed back through
/// restore_state() and the update sequence continues bit-exactly.
struct OptimizerState {
  std::vector<Tensor> slots;
  long steps = 0;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;

  /// Apply one update step: params[i] -= f(grads[i]). The param/grad lists
  /// must be identical (same tensors, same order) on every call.
  virtual void step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) = 0;

  virtual OptimizerState snapshot_state() const { return {}; }
  virtual void restore_state(OptimizerState state) { (void)state; }

  /// Multiplier applied to the base learning rate (LR schedules).
  void set_lr_scale(float scale) { lr_scale_ = scale; }
  float lr_scale() const { return lr_scale_; }

 protected:
  float lr_scale_ = 1.0f;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr = 0.01f, float momentum = 0.9f) : lr_(lr), momentum_(momentum) {}
  std::string name() const override { return "SGD"; }
  void step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) override;
  OptimizerState snapshot_state() const override { return {velocity_, 0}; }
  void restore_state(OptimizerState state) override { velocity_ = std::move(state.slots); }

 private:
  float lr_, momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(float lr = 0.001f, float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  std::string name() const override { return "Adam"; }
  void step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) override;
  OptimizerState snapshot_state() const override;
  void restore_state(OptimizerState state) override;

 private:
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Tensor> m_, v_;
};

class RmsProp : public Optimizer {
 public:
  explicit RmsProp(float lr = 0.001f, float decay = 0.9f, float eps = 1e-8f)
      : lr_(lr), decay_(decay), eps_(eps) {}
  std::string name() const override { return "RMSprop"; }
  void step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) override;
  OptimizerState snapshot_state() const override { return {cache_, 0}; }
  void restore_state(OptimizerState state) override { cache_ = std::move(state.slots); }

 private:
  float lr_, decay_, eps_;
  std::vector<Tensor> cache_;
};

/// Factory for config strings "SGD" | "Adam" | "RMSprop" (case-sensitive,
/// matching the paper's JSON). lr <= 0 selects each optimizer's default.
std::unique_ptr<Optimizer> make_optimizer(const std::string& name, float lr = -1.0f);

}  // namespace chpo::ml
