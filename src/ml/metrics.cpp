#include "ml/metrics.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace chpo::ml {

ConfusionMatrix::ConfusionMatrix(std::size_t classes)
    : classes_(classes), counts_(classes * classes, 0) {
  if (classes_ == 0) throw std::invalid_argument("ConfusionMatrix: zero classes");
}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || predicted < 0 || static_cast<std::size_t>(truth) >= classes_ ||
      static_cast<std::size_t>(predicted) >= classes_)
    throw std::out_of_range("ConfusionMatrix: label out of range");
  ++counts_[static_cast<std::size_t>(truth) * classes_ + static_cast<std::size_t>(predicted)];
  ++total_;
}

void ConfusionMatrix::add_all(const std::vector<int>& truth, const std::vector<int>& predicted) {
  if (truth.size() != predicted.size())
    throw std::invalid_argument("ConfusionMatrix: size mismatch");
  for (std::size_t i = 0; i < truth.size(); ++i) add(truth[i], predicted[i]);
}

std::size_t ConfusionMatrix::count(std::size_t truth, std::size_t predicted) const {
  if (truth >= classes_ || predicted >= classes_)
    throw std::out_of_range("ConfusionMatrix: index out of range");
  return counts_[truth * classes_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t k = 0; k < classes_; ++k) correct += counts_[k * classes_ + k];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

ClassMetrics ConfusionMatrix::class_metrics(std::size_t klass) const {
  if (klass >= classes_) throw std::out_of_range("ConfusionMatrix: class out of range");
  const std::size_t tp = counts_[klass * classes_ + klass];
  std::size_t truths = 0, predictions = 0;
  for (std::size_t j = 0; j < classes_; ++j) {
    truths += counts_[klass * classes_ + j];
    predictions += counts_[j * classes_ + klass];
  }
  ClassMetrics metrics;
  metrics.support = truths;
  metrics.precision = predictions ? static_cast<double>(tp) / static_cast<double>(predictions) : 0.0;
  metrics.recall = truths ? static_cast<double>(tp) / static_cast<double>(truths) : 0.0;
  metrics.f1 = (metrics.precision + metrics.recall) > 0
                   ? 2.0 * metrics.precision * metrics.recall / (metrics.precision + metrics.recall)
                   : 0.0;
  return metrics;
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::size_t k = 0; k < classes_; ++k) sum += class_metrics(k).f1;
  return sum / static_cast<double>(classes_);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream out;
  out << "truth\\pred";
  for (std::size_t p = 0; p < classes_; ++p) out << "\t" << p;
  out << "\n";
  for (std::size_t t = 0; t < classes_; ++t) {
    out << t;
    for (std::size_t p = 0; p < classes_; ++p) out << "\t" << count(t, p);
    out << "\n";
  }
  char acc[32];
  std::snprintf(acc, sizeof acc, "%.3f", accuracy());
  out << "accuracy " << acc << ", macro-F1 ";
  std::snprintf(acc, sizeof acc, "%.3f", macro_f1());
  out << acc << "\n";
  return out.str();
}

ConfusionMatrix evaluate_confusion(Model& model, const Tensor& x, const std::vector<int>& y,
                                   std::size_t classes, unsigned threads) {
  ConfusionMatrix matrix(classes);
  if (y.empty()) return matrix;
  const Tensor logits = model.forward(x, /*training=*/false, threads);
  matrix.add_all(y, argmax_rows(logits));
  return matrix;
}

}  // namespace chpo::ml
