#include "ml/schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace chpo::ml {

StepDecaySchedule::StepDecaySchedule(int period, double factor)
    : period_(period), factor_(factor) {
  if (period_ <= 0) throw std::invalid_argument("StepDecaySchedule: period must be positive");
  if (factor_ <= 0 || factor_ > 1)
    throw std::invalid_argument("StepDecaySchedule: factor must be in (0,1]");
}

double StepDecaySchedule::multiplier(int epoch, int /*total_epochs*/) const {
  const int steps = (epoch - 1) / period_;
  return std::pow(factor_, steps);
}

CosineSchedule::CosineSchedule(double floor) : floor_(floor) {
  if (floor_ < 0 || floor_ >= 1)
    throw std::invalid_argument("CosineSchedule: floor must be in [0,1)");
}

double CosineSchedule::multiplier(int epoch, int total_epochs) const {
  if (total_epochs <= 1) return 1.0;
  const double progress = static_cast<double>(epoch - 1) / static_cast<double>(total_epochs - 1);
  return floor_ + (1.0 - floor_) * 0.5 * (1.0 + std::cos(progress * 3.14159265358979323846));
}

std::unique_ptr<LrSchedule> make_schedule(const std::string& name) {
  if (name == "constant") return std::make_unique<ConstantSchedule>();
  if (name == "step") return std::make_unique<StepDecaySchedule>();
  if (name == "cosine") return std::make_unique<CosineSchedule>();
  throw std::invalid_argument("unknown lr schedule: " + name);
}

}  // namespace chpo::ml
