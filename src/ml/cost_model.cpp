#include "ml/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace chpo::ml {

WorkloadModel mnist_paper_model() {
  // Anchors: epoch_work(B) = 60000*(sample_cost + step_overhead/B).
  // With step_overhead = 64*sample_cost the 100-epoch/B=32 task is
  // 100 * 3 * 60000 * sample_cost = 207 min  =>  sample_cost = 6.9e-4 s.
  // A 20-epoch/B=64 task then lands at ~27.6 min (Fig 4's ~29 min).
  return WorkloadModel{.name = "mnist",
                       .n_train = 60000,
                       .sample_cost = 6.9e-4,
                       .step_overhead = 4.42e-2,
                       .preprocess_cost = 1.2e-4,
                       .gpu_sample_cost = 6.0e-5,
                       .serial_fraction = 0.04};
}

WorkloadModel cifar_paper_model() {
  // CNN on 32x32x3: ~7x the per-sample CPU compute of the MNIST MLP.
  // gpu_sample_cost makes the full 27-task grid on 4 V100s ≈ 53 min
  // ("less than an hour", Fig 9); preprocess_cost makes the 1-core-per-
  // task run CPU-bound and slower than the CPU-node MNIST experiment.
  return WorkloadModel{.name = "cifar10",
                       .n_train = 50000,
                       .sample_cost = 5.0e-3,
                       .step_overhead = 1.0e-1,
                       .preprocess_cost = 5.0e-4,
                       .gpu_sample_cost = 2.2e-4,
                       .serial_fraction = 0.04};
}

double amdahl_speedup(unsigned cpus, double serial_fraction) {
  if (cpus == 0) throw std::invalid_argument("amdahl_speedup: zero cpus");
  const double s = std::clamp(serial_fraction, 0.0, 1.0);
  return 1.0 / (s + (1.0 - s) / static_cast<double>(cpus));
}

namespace {

double epoch_work_seconds(const WorkloadModel& w, int batch) {
  if (batch <= 0) throw std::invalid_argument("cost model: batch must be positive");
  const double n = static_cast<double>(w.n_train);
  const double steps = n / static_cast<double>(batch);
  return n * w.sample_cost + steps * w.step_overhead;
}

}  // namespace

double cpu_task_seconds(const WorkloadModel& w, int epochs, int batch, unsigned cpus,
                        const cluster::NodeSpec& node) {
  if (epochs <= 0) throw std::invalid_argument("cost model: epochs must be positive");
  if (cpus == 0) throw std::invalid_argument("cost model: cpu task needs >= 1 core");
  const double work = static_cast<double>(epochs) * epoch_work_seconds(w, batch);
  return work / (node.core_rate * amdahl_speedup(cpus, w.serial_fraction));
}

double gpu_task_seconds(const WorkloadModel& w, int epochs, int batch, unsigned cpus,
                        unsigned gpus, const cluster::NodeSpec& node) {
  if (epochs <= 0) throw std::invalid_argument("cost model: epochs must be positive");
  if (batch <= 0) throw std::invalid_argument("cost model: batch must be positive");
  if (gpus == 0) throw std::invalid_argument("cost model: gpu task needs >= 1 gpu");
  if (node.gpu_rate <= 0) throw std::invalid_argument("cost model: node has no GPU rate");
  const double n = static_cast<double>(w.n_train);
  const double steps = n / static_cast<double>(batch);
  // Data-parallel across GPUs; preprocessing pipelined on the CPU cores.
  const double gpu_step = static_cast<double>(batch) * w.gpu_sample_cost * (30.0 / node.gpu_rate) /
                          static_cast<double>(gpus);
  const double cpu_cores = std::max(1u, cpus);
  const double cpu_step = static_cast<double>(batch) * w.preprocess_cost /
                          (static_cast<double>(cpu_cores) * node.core_rate);
  return static_cast<double>(epochs) * steps * std::max(gpu_step, cpu_step);
}

double experiment_seconds(const WorkloadModel& w, const std::string& optimizer, int epochs,
                          int batch, unsigned cpus, unsigned gpus,
                          const cluster::NodeSpec& node) {
  double factor = 1.0;
  if (optimizer == "Adam")
    factor = 1.06;
  else if (optimizer == "RMSprop")
    factor = 1.03;
  const double base = gpus > 0 ? gpu_task_seconds(w, epochs, batch, cpus, gpus, node)
                               : cpu_task_seconds(w, epochs, batch, std::max(1u, cpus), node);
  return base * factor;
}

}  // namespace chpo::ml
