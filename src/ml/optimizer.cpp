#include "ml/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace chpo::ml {

namespace {

void check_and_init(std::vector<Tensor>& state, const std::vector<Tensor*>& params) {
  if (state.empty()) {
    state.reserve(params.size());
    for (const Tensor* p : params) state.push_back(Tensor::zeros(p->shape()));
  } else if (state.size() != params.size()) {
    throw std::invalid_argument("Optimizer: parameter list changed between steps");
  }
}

}  // namespace

void Sgd::step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) {
  check_and_init(velocity_, params);
  const float lr = lr_ * lr_scale_;
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    Tensor& vel = velocity_[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      vel[j] = momentum_ * vel[j] - lr * g[j];
      p[j] += vel[j];
    }
  }
}

void Adam::step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) {
  check_and_init(m_, params);
  check_and_init(v_, params);
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      p[j] -= lr_ * lr_scale_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

OptimizerState Adam::snapshot_state() const {
  // Both moment vectors travel in one slot list: m slots first, then v.
  OptimizerState state;
  state.slots.reserve(m_.size() + v_.size());
  for (const Tensor& t : m_) state.slots.push_back(t);
  for (const Tensor& t : v_) state.slots.push_back(t);
  state.steps = t_;
  return state;
}

void Adam::restore_state(OptimizerState state) {
  if (state.slots.size() % 2 != 0)
    throw std::invalid_argument("Adam::restore_state: odd slot count");
  const std::size_t half = state.slots.size() / 2;
  m_.assign(state.slots.begin(), state.slots.begin() + static_cast<std::ptrdiff_t>(half));
  v_.assign(state.slots.begin() + static_cast<std::ptrdiff_t>(half), state.slots.end());
  t_ = state.steps;
}

void RmsProp::step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) {
  check_and_init(cache_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    Tensor& c = cache_[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      c[j] = decay_ * c[j] + (1.0f - decay_) * g[j] * g[j];
      p[j] -= lr_ * lr_scale_ * g[j] / (std::sqrt(c[j]) + eps_);
    }
  }
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name, float lr) {
  if (name == "SGD") return std::make_unique<Sgd>(lr > 0 ? lr : 0.01f);
  if (name == "Adam") return std::make_unique<Adam>(lr > 0 ? lr : 0.001f);
  if (name == "RMSprop") return std::make_unique<RmsProp>(lr > 0 ? lr : 0.001f);
  throw std::invalid_argument("unknown optimizer: " + name);
}

}  // namespace chpo::ml
