// Analytic training-time model for the discrete-event backend.
//
// Predicts how long one `experiment(config)` task occupies its resources on
// a given node type. Calibrated against the paper's reported wall-clock
// anchors (see DESIGN.md §3):
//   * one MNIST task constrained to 1 MareNostrum4 core ≈ 29 min (Fig 4);
//   * the 27-task MNIST grid on 24 usable cores ≈ 207 min, dominated by the
//     100-epoch/batch-32 configuration (Fig 5 / §6.1);
//   * the CIFAR grid on a 4xV100 POWER9 node with ample CPU cores per task
//     finishes in under an hour, but with a single core per task the GPU
//     starves on CPU-side preprocessing and the run is slower than the CPU
//     node (Fig 9 / §6.1).
//
// Model:
//   epoch_work  = n_train * sample_cost + (n_train / batch) * step_overhead
//   cpu_time    = epochs * epoch_work / (core_rate * amdahl(cpus))
//   gpu_step    = max(batch * gpu_sample_cost * 30/gpu_rate,
//                     batch * preprocess_cost / (cpus * core_rate))
//   gpu_time    = epochs * (n_train / batch) * gpu_step
// where amdahl(p) = 1 / (serial_fraction + (1-serial_fraction)/p).
#pragma once

#include <string>

#include "cluster/cluster.hpp"

namespace chpo::ml {

struct WorkloadModel {
  std::string name;
  std::size_t n_train = 60000;
  double sample_cost = 6.9e-4;       ///< s/sample/epoch on one MN4 core
  double step_overhead = 4.42e-2;    ///< s/optimizer-step on one MN4 core
  double preprocess_cost = 2e-4;     ///< s/sample CPU-side preprocessing (GPU path)
  double gpu_sample_cost = 2.65e-4;  ///< s/sample on a reference (rate-30) GPU
  double serial_fraction = 0.04;     ///< Amdahl limit of intra-task threading
};

/// MNIST on MareNostrum4 — calibrated to Figures 4, 5, 9 (CPU series).
WorkloadModel mnist_paper_model();

/// CIFAR-10 — calibrated to Figure 6 (CPU multi-node) and Figure 9 (GPU
/// series): heavier per-sample compute and preprocessing.
WorkloadModel cifar_paper_model();

/// Amdahl speedup of `cpus` cores with the given serial fraction.
double amdahl_speedup(unsigned cpus, double serial_fraction);

/// Training seconds on CPU cores only.
double cpu_task_seconds(const WorkloadModel& w, int epochs, int batch, unsigned cpus,
                        const cluster::NodeSpec& node);

/// Training seconds with `gpus` GPUs fed by `cpus` preprocessing cores.
double gpu_task_seconds(const WorkloadModel& w, int epochs, int batch, unsigned cpus,
                        unsigned gpus, const cluster::NodeSpec& node);

/// Dispatch on gpus > 0. Small per-optimizer factor ("Adam" slightly
/// heavier than "SGD") keeps equal-epoch configs from being identical.
double experiment_seconds(const WorkloadModel& w, const std::string& optimizer, int epochs,
                          int batch, unsigned cpus, unsigned gpus,
                          const cluster::NodeSpec& node);

}  // namespace chpo::ml
