// Distributed data-parallel training on the task runtime.
//
// The paper's group followed this work with dislib, a distributed ML
// library on PyCOMPSs; this module is that idea at our scale. Training is
// local-SGD / federated averaging expressed as a task graph:
//
//   round k:   shard_0 ... shard_{S-1}     each an independent `local_train`
//                 \    |    /              task: loads the global weights,
//                  average                 runs E local epochs on its shard,
//                     |                    returns its weights
//                 (round k+1)              `average` merges them -> new
//                                          global weights (IN x S, returns)
//
// Every dependency is real dataflow through the registry, so the Figure-3
// DOT export of this app shows the S-wide fan-in per round, and the
// scheduler/fault machinery (retries, node death) applies to training
// itself, not just to HPO.
#pragma once

#include "ml/dataset.hpp"
#include "ml/trainer.hpp"
#include "runtime/runtime.hpp"

namespace chpo::ml {

struct DistributedOptions {
  unsigned shards = 4;            ///< data-parallel workers per round
  int rounds = 4;                 ///< synchronisation rounds
  int local_epochs = 1;           ///< epochs per shard between averages
  TrainConfig train;              ///< optimizer / batch / lr per local run
  rt::Constraint shard_constraint{.cpus = 1};
  /// Virtual seconds per local-train task for the DES backend; <=0 derives
  /// a duration from shard size (1 ms per sample-epoch).
  double shard_task_seconds = -1.0;
};

struct DistributedResult {
  std::vector<double> round_val_accuracy;  ///< after each averaging round
  double final_val_accuracy = 0.0;
  std::vector<Tensor> weights;  ///< final averaged parameters
};

/// Train an MLP on `data` with `options.shards`-way data parallelism over
/// `runtime`. The dataset must outlive the runtime (tasks read it).
DistributedResult distributed_train(rt::Runtime& runtime, const Dataset& data,
                                    const DistributedOptions& options);

/// Split a dataset's training rows into `shards` contiguous shard datasets
/// (test split replicated for local validation).
std::vector<Dataset> make_shards(const Dataset& data, unsigned shards);

}  // namespace chpo::ml
