#include "ml/layers.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "support/parallel_for.hpp"

namespace chpo::ml {

// ---------------------------------------------------------------- Dense

Dense::Dense(std::size_t in, std::size_t out, Rng& rng)
    : in_(in),
      out_(out),
      w_(Tensor::randn({in, out}, rng, std::sqrt(2.0f / static_cast<float>(in)))),  // He init
      b_(Tensor::zeros({out})),
      dw_(Tensor::zeros({in, out})),
      db_(Tensor::zeros({out})) {}

Tensor Dense::forward(const Tensor& x, bool /*training*/, unsigned threads) {
  x_cache_ = x;
  Tensor y;
  matmul(x, w_, y, threads);
  add_row_bias(y, b_);
  return y;
}

Tensor Dense::backward(const Tensor& dy, unsigned threads) {
  // dW = x^T dy ; db = colsum(dy) ; dx = dy W^T
  matmul_at(x_cache_, dy, dw_, threads);
  db_.fill(0.0f);
  for (std::size_t r = 0; r < dy.dim(0); ++r)
    for (std::size_t j = 0; j < out_; ++j) db_[j] += dy.at2(r, j);
  Tensor dx;
  matmul_bt(dy, w_, dx, threads);
  return dx;
}

// ---------------------------------------------------------------- ReLU

Tensor ReLU::forward(const Tensor& x, bool /*training*/, unsigned /*threads*/) {
  x_cache_ = x;
  Tensor y;
  relu_forward(x, y);
  return y;
}

Tensor ReLU::backward(const Tensor& dy, unsigned /*threads*/) {
  Tensor dx;
  relu_backward(x_cache_, dy, dx);
  return dx;
}

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(std::size_t in_c, std::size_t h, std::size_t w, std::size_t out_c, std::size_t ksize,
               Rng& rng)
    : in_c_(in_c), h_(h), w_(w), out_c_(out_c), k_(ksize) {
  if (h_ < k_ || w_ < k_) throw std::invalid_argument("Conv2D: kernel larger than input");
  out_h_ = h_ - k_ + 1;
  out_w_ = w_ - k_ + 1;
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_c_ * k_ * k_));
  weights_ = Tensor::randn({out_c_, in_c_ * k_ * k_}, rng, stddev);
  bias_ = Tensor::zeros({out_c_});
  dweights_ = Tensor::zeros({out_c_, in_c_ * k_ * k_});
  dbias_ = Tensor::zeros({out_c_});
}

Tensor Conv2D::forward(const Tensor& x, bool /*training*/, unsigned threads) {
  if (x.dim(1) != in_c_ * h_ * w_) throw std::invalid_argument("Conv2D: input plane size mismatch");
  x_cache_ = x;
  const std::size_t n = x.dim(0);
  Tensor y({n, out_c_ * out_h_ * out_w_});
  parallel_for(n, threads, [&](std::size_t s0, std::size_t s1) {
    for (std::size_t s = s0; s < s1; ++s) {
      const float* xs = x.data() + s * in_c_ * h_ * w_;
      float* ys = y.data() + s * out_c_ * out_h_ * out_w_;
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* wk = weights_.data() + oc * in_c_ * k_ * k_;
        for (std::size_t oy = 0; oy < out_h_; ++oy) {
          for (std::size_t ox = 0; ox < out_w_; ++ox) {
            float sum = bias_[oc];
            for (std::size_t ic = 0; ic < in_c_; ++ic) {
              const float* plane = xs + ic * h_ * w_;
              const float* wik = wk + ic * k_ * k_;
              for (std::size_t ky = 0; ky < k_; ++ky) {
                const float* row = plane + (oy + ky) * w_ + ox;
                const float* wrow = wik + ky * k_;
                for (std::size_t kx = 0; kx < k_; ++kx) sum += row[kx] * wrow[kx];
              }
            }
            ys[oc * out_h_ * out_w_ + oy * out_w_ + ox] = sum;
          }
        }
      }
    }
  });
  return y;
}

Tensor Conv2D::backward(const Tensor& dy, unsigned threads) {
  const std::size_t n = dy.dim(0);
  dweights_.fill(0.0f);
  dbias_.fill(0.0f);
  Tensor dx({n, in_c_ * h_ * w_});
  // Parameter gradients are accumulated serially (shared across samples);
  // dx is sample-independent and parallelises cleanly.
  for (std::size_t s = 0; s < n; ++s) {
    const float* xs = x_cache_.data() + s * in_c_ * h_ * w_;
    const float* dys = dy.data() + s * out_c_ * out_h_ * out_w_;
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      float* dwk = dweights_.data() + oc * in_c_ * k_ * k_;
      for (std::size_t oy = 0; oy < out_h_; ++oy) {
        for (std::size_t ox = 0; ox < out_w_; ++ox) {
          const float g = dys[oc * out_h_ * out_w_ + oy * out_w_ + ox];
          dbias_[oc] += g;
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            const float* plane = xs + ic * h_ * w_;
            float* dwik = dwk + ic * k_ * k_;
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const float* row = plane + (oy + ky) * w_ + ox;
              float* dwrow = dwik + ky * k_;
              for (std::size_t kx = 0; kx < k_; ++kx) dwrow[kx] += g * row[kx];
            }
          }
        }
      }
    }
  }
  parallel_for(n, threads, [&](std::size_t s0, std::size_t s1) {
    for (std::size_t s = s0; s < s1; ++s) {
      const float* dys = dy.data() + s * out_c_ * out_h_ * out_w_;
      float* dxs = dx.data() + s * in_c_ * h_ * w_;
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* wk = weights_.data() + oc * in_c_ * k_ * k_;
        for (std::size_t oy = 0; oy < out_h_; ++oy) {
          for (std::size_t ox = 0; ox < out_w_; ++ox) {
            const float g = dys[oc * out_h_ * out_w_ + oy * out_w_ + ox];
            for (std::size_t ic = 0; ic < in_c_; ++ic) {
              float* plane = dxs + ic * h_ * w_;
              const float* wik = wk + ic * k_ * k_;
              for (std::size_t ky = 0; ky < k_; ++ky) {
                float* row = plane + (oy + ky) * w_ + ox;
                const float* wrow = wik + ky * k_;
                for (std::size_t kx = 0; kx < k_; ++kx) row[kx] += g * wrow[kx];
              }
            }
          }
        }
      }
    }
  });
  return dx;
}

// ------------------------------------------------------------- MaxPool2D

MaxPool2D::MaxPool2D(std::size_t c, std::size_t h, std::size_t w)
    : c_(c), h_(h), w_(w), out_h_(h / 2), out_w_(w / 2) {
  if (out_h_ == 0 || out_w_ == 0) throw std::invalid_argument("MaxPool2D: input too small");
}

Tensor MaxPool2D::forward(const Tensor& x, bool /*training*/, unsigned threads) {
  if (x.dim(1) != c_ * h_ * w_) throw std::invalid_argument("MaxPool2D: input plane size mismatch");
  const std::size_t n = x.dim(0);
  in_shape_ = x.shape();
  Tensor y({n, c_ * out_h_ * out_w_});
  argmax_.assign(y.size(), 0);
  parallel_for(n, threads, [&](std::size_t s0, std::size_t s1) {
    for (std::size_t s = s0; s < s1; ++s) {
      const float* xs = x.data() + s * c_ * h_ * w_;
      float* ys = y.data() + s * c_ * out_h_ * out_w_;
      std::size_t* am = argmax_.data() + s * c_ * out_h_ * out_w_;
      for (std::size_t ch = 0; ch < c_; ++ch) {
        const float* plane = xs + ch * h_ * w_;
        for (std::size_t oy = 0; oy < out_h_; ++oy) {
          for (std::size_t ox = 0; ox < out_w_; ++ox) {
            std::size_t best_index = (2 * oy) * w_ + 2 * ox;
            float best = plane[best_index];
            for (std::size_t dy2 = 0; dy2 < 2; ++dy2) {
              for (std::size_t dx2 = 0; dx2 < 2; ++dx2) {
                const std::size_t index = (2 * oy + dy2) * w_ + (2 * ox + dx2);
                if (plane[index] > best) {
                  best = plane[index];
                  best_index = index;
                }
              }
            }
            const std::size_t out_index = ch * out_h_ * out_w_ + oy * out_w_ + ox;
            ys[out_index] = best;
            am[out_index] = ch * h_ * w_ + best_index;
          }
        }
      }
    }
  });
  return y;
}

Tensor MaxPool2D::backward(const Tensor& dy, unsigned /*threads*/) {
  Tensor dx(in_shape_);
  const std::size_t out_plane = c_ * out_h_ * out_w_;
  for (std::size_t s = 0; s < dy.dim(0); ++s) {
    const float* dys = dy.data() + s * out_plane;
    float* dxs = dx.data() + s * c_ * h_ * w_;
    const std::size_t* am = argmax_.data() + s * out_plane;
    for (std::size_t i = 0; i < out_plane; ++i) dxs[am[i]] += dys[i];
  }
  return dx;
}

// ------------------------------------------------------------- BatchNorm

BatchNorm::BatchNorm(std::size_t features, float momentum, float eps)
    : features_(features),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor({features}, 1.0f)),
      beta_(Tensor::zeros({features})),
      dgamma_(Tensor::zeros({features})),
      dbeta_(Tensor::zeros({features})),
      running_mean_(Tensor::zeros({features})),
      running_var_(Tensor({features}, 1.0f)) {
  if (features_ == 0) throw std::invalid_argument("BatchNorm: zero features");
}

Tensor BatchNorm::forward(const Tensor& x, bool training, unsigned /*threads*/) {
  if (x.rank() != 2 || x.dim(1) != features_)
    throw std::invalid_argument("BatchNorm: expected [batch, " + std::to_string(features_) + "]");
  const std::size_t n = x.dim(0);
  Tensor y(x.shape());

  if (training) {
    batch_mean_ = Tensor::zeros({features_});
    Tensor batch_var = Tensor::zeros({features_});
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t f = 0; f < features_; ++f) batch_mean_[f] += x.at2(r, f);
    for (std::size_t f = 0; f < features_; ++f) batch_mean_[f] /= static_cast<float>(n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t f = 0; f < features_; ++f) {
        const float d = x.at2(r, f) - batch_mean_[f];
        batch_var[f] += d * d;
      }
    for (std::size_t f = 0; f < features_; ++f) batch_var[f] /= static_cast<float>(n);

    batch_inv_std_ = Tensor({features_});
    for (std::size_t f = 0; f < features_; ++f)
      batch_inv_std_[f] = 1.0f / std::sqrt(batch_var[f] + eps_);

    x_hat_ = Tensor(x.shape());
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t f = 0; f < features_; ++f) {
        x_hat_.at2(r, f) = (x.at2(r, f) - batch_mean_[f]) * batch_inv_std_[f];
        y.at2(r, f) = gamma_[f] * x_hat_.at2(r, f) + beta_[f];
      }
    for (std::size_t f = 0; f < features_; ++f) {
      running_mean_[f] = momentum_ * running_mean_[f] + (1.0f - momentum_) * batch_mean_[f];
      running_var_[f] = momentum_ * running_var_[f] + (1.0f - momentum_) * batch_var[f];
    }
  } else {
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t f = 0; f < features_; ++f) {
        const float inv = 1.0f / std::sqrt(running_var_[f] + eps_);
        y.at2(r, f) = gamma_[f] * (x.at2(r, f) - running_mean_[f]) * inv + beta_[f];
      }
  }
  return y;
}

Tensor BatchNorm::backward(const Tensor& dy, unsigned /*threads*/) {
  const std::size_t n = dy.dim(0);
  if (x_hat_.size() != dy.size())
    throw std::logic_error("BatchNorm: backward without a training forward");
  dgamma_.fill(0.0f);
  dbeta_.fill(0.0f);
  // Standard batch-norm backward in terms of x_hat:
  // dx = (gamma * inv_std / n) * (n*dy - sum(dy) - x_hat * sum(dy*x_hat))
  Tensor sum_dy = Tensor::zeros({features_});
  Tensor sum_dy_xhat = Tensor::zeros({features_});
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t f = 0; f < features_; ++f) {
      const float g = dy.at2(r, f);
      sum_dy[f] += g;
      sum_dy_xhat[f] += g * x_hat_.at2(r, f);
      dgamma_[f] += g * x_hat_.at2(r, f);
      dbeta_[f] += g;
    }
  Tensor dx(dy.shape());
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t f = 0; f < features_; ++f) {
      dx.at2(r, f) = gamma_[f] * batch_inv_std_[f] * inv_n *
                     (static_cast<float>(n) * dy.at2(r, f) - sum_dy[f] -
                      x_hat_.at2(r, f) * sum_dy_xhat[f]);
    }
  return dx;
}

void BatchNorm::restore_state(const LayerState& state) {
  if (state.tensors.size() != 2 || state.tensors[0].size() != features_ ||
      state.tensors[1].size() != features_)
    throw std::invalid_argument("BatchNorm::restore_state: shape mismatch");
  running_mean_ = state.tensors[0];
  running_var_ = state.tensors[1];
}

// --------------------------------------------------------------- Dropout

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate_ < 0.0 || rate_ >= 1.0) throw std::invalid_argument("Dropout: rate must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& x, bool training, unsigned /*threads*/) {
  if (!training || rate_ == 0.0) {
    mask_.clear();
    return x;
  }
  Tensor y(x.shape());
  mask_.resize(x.size());
  const float scale = 1.0f / static_cast<float>(1.0 - rate_);
  for (std::size_t i = 0; i < x.size(); ++i) {
    mask_[i] = rng_.next_bool(rate_) ? 0.0f : scale;
    y[i] = x[i] * mask_[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& dy, unsigned /*threads*/) {
  if (mask_.empty()) return dy;
  Tensor dx(dy.shape());
  for (std::size_t i = 0; i < dy.size(); ++i) dx[i] = dy[i] * mask_[i];
  return dx;
}

LayerState Dropout::snapshot_state() const {
  const RngState rng = rng_.state();
  LayerState state;
  state.words = {rng.s[0], rng.s[1], rng.s[2], rng.s[3],
                 std::bit_cast<std::uint64_t>(rng.spare_gaussian),
                 rng.has_spare ? 1ULL : 0ULL};
  return state;
}

void Dropout::restore_state(const LayerState& state) {
  if (state.words.size() != 6)
    throw std::invalid_argument("Dropout::restore_state: expected 6 state words");
  RngState rng;
  for (std::size_t i = 0; i < 4; ++i) rng.s[i] = state.words[i];
  rng.spare_gaussian = std::bit_cast<double>(state.words[4]);
  rng.has_spare = state.words[5] != 0;
  rng_.set_state(rng);
}

}  // namespace chpo::ml
