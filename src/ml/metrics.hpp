// Classification evaluation metrics beyond plain accuracy: confusion
// matrix, per-class precision/recall/F1, macro averages — what an HPO
// report needs when "best accuracy" alone hides class imbalance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/model.hpp"
#include "ml/tensor.hpp"

namespace chpo::ml {

struct ClassMetrics {
  std::size_t support = 0;  ///< true instances of this class
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes);

  /// Count one (true, predicted) pair. Throws on out-of-range labels.
  void add(int truth, int predicted);
  void add_all(const std::vector<int>& truth, const std::vector<int>& predicted);

  std::size_t classes() const { return classes_; }
  std::size_t total() const { return total_; }
  /// counts[t * classes + p]
  std::size_t count(std::size_t truth, std::size_t predicted) const;

  double accuracy() const;
  ClassMetrics class_metrics(std::size_t klass) const;
  double macro_f1() const;

  /// Fixed-width text rendering (rows = truth, columns = prediction).
  std::string to_string() const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;
};

/// Evaluate a model on a labelled set and build its confusion matrix.
ConfusionMatrix evaluate_confusion(Model& model, const Tensor& x, const std::vector<int>& y,
                                   std::size_t classes, unsigned threads = 1);

}  // namespace chpo::ml
