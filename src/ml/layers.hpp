// Neural-network layers with forward/backward passes.
//
// Activations flow as rank-2 tensors [batch, features]; convolutional
// layers interpret the feature axis as C*H*W planes. Each layer caches what
// its backward pass needs, so a Layer instance serves one training stream
// at a time (each HPO experiment builds its own model — exactly the paper's
// create_model(config) per task).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/tensor.hpp"
#include "support/rng.hpp"

namespace chpo::ml {

/// Non-trainable per-layer state that a checkpoint must carry beyond the
/// params() tensors: BatchNorm running statistics, Dropout's RNG stream.
/// `tensors` and `words` are layer-defined; layers without such state leave
/// both empty.
struct LayerState {
  std::vector<Tensor> tensors;
  std::vector<std::uint64_t> words;
};

class Layer {
 public:
  virtual ~Layer() = default;
  virtual std::string name() const = 0;

  /// y = f(x). `threads` caps internal parallelism (the task's CPU budget).
  virtual Tensor forward(const Tensor& x, bool training, unsigned threads) = 0;

  /// dx = df/dx(dy); accumulates parameter gradients internally.
  virtual Tensor backward(const Tensor& dy, unsigned threads) = 0;

  /// Trainable parameters and their gradients, index-aligned.
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  /// Checkpointable non-parameter state (see LayerState). Restore expects
  /// exactly what snapshot produced for the same architecture.
  virtual LayerState snapshot_state() const { return {}; }
  virtual void restore_state(const LayerState& state) { (void)state; }

  /// Approximate multiply-accumulate count per sample (for cost reporting).
  virtual std::size_t flops_per_sample() const { return 0; }
};

/// Fully connected: y = x W + b. W is [in, out].
class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, Rng& rng);
  std::string name() const override { return "dense"; }
  Tensor forward(const Tensor& x, bool training, unsigned threads) override;
  Tensor backward(const Tensor& dy, unsigned threads) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }
  std::size_t flops_per_sample() const override { return in_ * out_; }

 private:
  std::size_t in_, out_;
  Tensor w_, b_, dw_, db_;
  Tensor x_cache_;
};

class ReLU : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Tensor forward(const Tensor& x, bool training, unsigned threads) override;
  Tensor backward(const Tensor& dy, unsigned threads) override;

 private:
  Tensor x_cache_;
};

/// 2-D convolution, stride 1, valid padding. Input rows are C*H*W planes.
class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_c, std::size_t h, std::size_t w, std::size_t out_c, std::size_t ksize,
         Rng& rng);
  std::string name() const override { return "conv2d"; }
  Tensor forward(const Tensor& x, bool training, unsigned threads) override;
  Tensor backward(const Tensor& dy, unsigned threads) override;
  std::vector<Tensor*> params() override { return {&weights_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&dweights_, &dbias_}; }
  std::size_t flops_per_sample() const override {
    return out_c_ * out_h_ * out_w_ * in_c_ * k_ * k_;
  }

  std::size_t out_channels() const { return out_c_; }
  std::size_t out_height() const { return out_h_; }
  std::size_t out_width() const { return out_w_; }

 private:
  std::size_t in_c_, h_, w_, out_c_, k_, out_h_, out_w_;
  Tensor weights_;  ///< [out_c, in_c*k*k]
  Tensor bias_;     ///< [out_c]
  Tensor dweights_, dbias_;
  Tensor x_cache_;
};

/// 2x2 max pooling, stride 2. Input rows are C*H*W planes.
class MaxPool2D : public Layer {
 public:
  MaxPool2D(std::size_t c, std::size_t h, std::size_t w);
  std::string name() const override { return "maxpool2d"; }
  Tensor forward(const Tensor& x, bool training, unsigned threads) override;
  Tensor backward(const Tensor& dy, unsigned threads) override;

  std::size_t out_height() const { return out_h_; }
  std::size_t out_width() const { return out_w_; }

 private:
  std::size_t c_, h_, w_, out_h_, out_w_;
  std::vector<std::size_t> argmax_;  ///< winning input index per output
  std::vector<std::size_t> in_shape_;
};

/// Batch normalisation over the feature axis of [batch, features]
/// activations: training uses batch statistics and updates running
/// estimates; evaluation uses the running estimates. Learnable per-feature
/// scale (gamma) and shift (beta).
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(std::size_t features, float momentum = 0.9f, float eps = 1e-5f);
  std::string name() const override { return "batchnorm"; }
  Tensor forward(const Tensor& x, bool training, unsigned threads) override;
  Tensor backward(const Tensor& dy, unsigned threads) override;
  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&dgamma_, &dbeta_}; }
  LayerState snapshot_state() const override { return {{running_mean_, running_var_}, {}}; }
  void restore_state(const LayerState& state) override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::size_t features_;
  float momentum_, eps_;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  Tensor running_mean_, running_var_;
  // Backward-pass caches (training batches only).
  Tensor x_hat_;         ///< normalised activations
  Tensor batch_mean_, batch_inv_std_;
};

/// Inverted dropout; identity at evaluation time.
class Dropout : public Layer {
 public:
  Dropout(double rate, std::uint64_t seed);
  std::string name() const override { return "dropout"; }
  Tensor forward(const Tensor& x, bool training, unsigned threads) override;
  Tensor backward(const Tensor& dy, unsigned threads) override;
  LayerState snapshot_state() const override;
  void restore_state(const LayerState& state) override;

 private:
  double rate_;
  Rng rng_;
  std::vector<float> mask_;
};

}  // namespace chpo::ml
