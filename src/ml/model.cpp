#include "ml/model.hpp"

#include <stdexcept>

namespace chpo::ml {

Tensor Model::forward(const Tensor& x, bool training, unsigned threads) {
  Tensor out = x;
  for (auto& layer : layers_) out = layer->forward(out, training, threads);
  return out;
}

void Model::backward(const Tensor& dlogits, unsigned threads) {
  Tensor grad = dlogits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = (*it)->backward(grad, threads);
}

std::vector<Tensor*> Model::params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (Tensor* p : layer->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Model::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (Tensor* g : layer->grads()) out.push_back(g);
  return out;
}

std::size_t Model::parameter_count() {
  std::size_t n = 0;
  for (Tensor* p : params()) n += p->size();
  return n;
}

std::size_t Model::flops_per_sample() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer->flops_per_sample();
  return n;
}

std::vector<LayerState> Model::snapshot_layer_states() const {
  std::vector<LayerState> out;
  out.reserve(layers_.size());
  for (const auto& layer : layers_) out.push_back(layer->snapshot_state());
  return out;
}

void Model::restore_layer_states(const std::vector<LayerState>& states) {
  if (states.size() != layers_.size())
    throw std::invalid_argument("restore_layer_states: layer count mismatch");
  for (std::size_t i = 0; i < layers_.size(); ++i) layers_[i]->restore_state(states[i]);
}

Model make_mlp(std::size_t input, const std::vector<std::size_t>& hidden, std::size_t classes,
               Rng& rng, bool batch_norm) {
  return make_mlp(input, hidden, classes, rng, MlpOptions{.batch_norm = batch_norm});
}

Model make_mlp(std::size_t input, const std::vector<std::size_t>& hidden, std::size_t classes,
               Rng& rng, const MlpOptions& options) {
  Model model;
  std::size_t prev = input;
  std::uint64_t dropout_seed = options.dropout_seed;
  for (std::size_t h : hidden) {
    model.add(std::make_unique<Dense>(prev, h, rng));
    if (options.batch_norm) model.add(std::make_unique<BatchNorm>(h));
    model.add(std::make_unique<ReLU>());
    if (options.dropout > 0.0) model.add(std::make_unique<Dropout>(options.dropout, dropout_seed++));
    prev = h;
  }
  model.add(std::make_unique<Dense>(prev, classes, rng));
  return model;
}

std::vector<Tensor> snapshot_weights(Model& model) {
  std::vector<Tensor> out;
  for (Tensor* p : model.params()) out.push_back(*p);
  return out;
}

void load_weights(Model& model, const std::vector<Tensor>& weights) {
  const std::vector<Tensor*> params = model.params();
  if (params.size() != weights.size())
    throw std::invalid_argument("load_weights: parameter count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i]->size() != weights[i].size())
      throw std::invalid_argument("load_weights: tensor shape mismatch");
    *params[i] = weights[i];
  }
}

std::vector<Tensor> average_weights(const std::vector<std::vector<Tensor>>& snapshots) {
  if (snapshots.empty()) throw std::invalid_argument("average_weights: no snapshots");
  std::vector<Tensor> out = snapshots.front();
  for (std::size_t s = 1; s < snapshots.size(); ++s) {
    if (snapshots[s].size() != out.size())
      throw std::invalid_argument("average_weights: snapshot arity mismatch");
    for (std::size_t t = 0; t < out.size(); ++t) {
      if (snapshots[s][t].size() != out[t].size())
        throw std::invalid_argument("average_weights: tensor shape mismatch");
      for (std::size_t j = 0; j < out[t].size(); ++j) out[t][j] += snapshots[s][t][j];
    }
  }
  const float inv = 1.0f / static_cast<float>(snapshots.size());
  for (Tensor& t : out)
    for (std::size_t j = 0; j < t.size(); ++j) t[j] *= inv;
  return out;
}

Model make_cnn(std::size_t c, std::size_t h, std::size_t w, std::size_t classes, Rng& rng) {
  Model model;
  auto conv1 = std::make_unique<Conv2D>(c, h, w, 8, 3, rng);
  const std::size_t h1 = conv1->out_height(), w1 = conv1->out_width();
  model.add(std::move(conv1));
  model.add(std::make_unique<ReLU>());
  auto pool1 = std::make_unique<MaxPool2D>(8, h1, w1);
  const std::size_t h2 = pool1->out_height(), w2 = pool1->out_width();
  model.add(std::move(pool1));

  auto conv2 = std::make_unique<Conv2D>(8, h2, w2, 16, 3, rng);
  const std::size_t h3 = conv2->out_height(), w3 = conv2->out_width();
  model.add(std::move(conv2));
  model.add(std::make_unique<ReLU>());
  auto pool2 = std::make_unique<MaxPool2D>(16, h3, w3);
  const std::size_t h4 = pool2->out_height(), w4 = pool2->out_width();
  model.add(std::move(pool2));

  model.add(std::make_unique<Dense>(16 * h4 * w4, classes, rng));
  return model;
}

}  // namespace chpo::ml
