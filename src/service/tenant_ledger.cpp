#include "service/tenant_ledger.hpp"

namespace chpo::service {

bool TenantLedger::admit_study(const std::string& tenant) {
  TenantStats& stats = stats_[tenant];
  const TenantQuota q = quota(tenant);
  if (q.max_active_studies > 0 && stats.studies_active >= q.max_active_studies) {
    ++stats.submits_rejected;
    return false;
  }
  return true;
}

void TenantLedger::on_submitted(const std::string& tenant) {
  TenantStats& stats = stats_[tenant];
  ++stats.studies_submitted;
  ++stats.studies_active;
}

void TenantLedger::on_trial(const std::string& tenant, const hpo::Trial* trial) {
  TenantStats& stats = stats_[tenant];
  ++stats.trials_completed;
  if (trial == nullptr) return;
  if (trial->attempts > 0)
    stats.task_attempts += static_cast<std::size_t>(trial->attempts);
  else
    ++stats.replayed_trials;  // served without ever dispatching a task
}

void TenantLedger::on_study_closed(const std::string& tenant, const hpo::HpoOutcome& outcome,
                                   std::size_t trials_already_counted, bool killed) {
  TenantStats& stats = stats_[tenant];
  if (stats.studies_active > 0) --stats.studies_active;
  if (killed)
    ++stats.studies_killed;
  else
    ++stats.studies_finished;
  stats.engine_seconds += outcome.elapsed_seconds;
  if (outcome.reuse) stats.cache_hits += outcome.reuse->cache.hits;
  // Trials that never produced a completion event (checkpoint replays
  // recorded inline at start) are reconciled here, so the tenant total
  // always equals the sum of its per-study reports.
  const std::size_t total = outcome.trials.size();
  if (total > trials_already_counted) {
    const std::size_t extra = total - trials_already_counted;
    stats.trials_completed += extra;
    stats.replayed_trials += extra;
  }
}

std::vector<std::string> TenantLedger::tenants() const {
  std::vector<std::string> names;
  names.reserve(stats_.size());
  for (const auto& [name, _] : stats_) names.push_back(name);
  return names;
}

}  // namespace chpo::service
