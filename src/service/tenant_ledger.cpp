#include "service/tenant_ledger.hpp"

#include <algorithm>

namespace chpo::service {

StudyCloseTotals study_close_totals(const hpo::HpoOutcome& outcome, bool killed) {
  StudyCloseTotals totals;
  totals.trials = outcome.trials.size();
  for (const hpo::Trial& trial : outcome.trials) {
    if (trial.attempts > 0)
      totals.task_attempts += static_cast<std::size_t>(trial.attempts);
    else
      ++totals.replayed_trials;
  }
  if (outcome.reuse) totals.cache_hits = outcome.reuse->cache.hits;
  totals.engine_seconds = outcome.elapsed_seconds;
  totals.killed = killed;
  return totals;
}

bool TenantLedger::admit_study(const std::string& tenant) {
  TenantStats& stats = stats_[tenant];
  const TenantQuota q = quota(tenant);
  if (q.max_active_studies > 0 && stats.studies_active >= q.max_active_studies) {
    ++stats.submits_rejected;
    return false;
  }
  return true;
}

void TenantLedger::note_rejected(const std::string& tenant) {
  ++stats_[tenant].submits_rejected;
}

void TenantLedger::on_submitted(const std::string& tenant) {
  TenantStats& stats = stats_[tenant];
  ++stats.studies_submitted;
  ++stats.studies_active;
}

TrialDelta TenantLedger::on_trial(const std::string& tenant, const hpo::Trial* trial) {
  TenantStats& stats = stats_[tenant];
  ++stats.trials_completed;
  TrialDelta delta;
  if (trial == nullptr) return delta;
  if (trial->attempts > 0)
    delta.task_attempts = static_cast<std::size_t>(trial->attempts);
  else
    delta.replayed_trials = 1;  // served without ever dispatching a task
  stats.task_attempts += delta.task_attempts;
  stats.replayed_trials += delta.replayed_trials;
  return delta;
}

void TenantLedger::on_study_closed(const std::string& tenant, const hpo::HpoOutcome& outcome,
                                   std::size_t trials_already_counted, bool killed) {
  // Convenience wrapper for callers that only mirror the trial count: the
  // uncounted remainder is assumed to be checkpoint replays (0 attempts),
  // so every task attempt was applied live and the live-applied replays
  // are whatever replays the remainder does not account for. Callers that
  // mirror full per-study deltas (the daemon) use apply_closed directly.
  const StudyCloseTotals totals = study_close_totals(outcome, killed);
  const std::size_t uncounted =
      totals.trials > trials_already_counted ? totals.trials - trials_already_counted : 0;
  TrialDelta counted_delta;
  counted_delta.task_attempts = totals.task_attempts;
  counted_delta.replayed_trials =
      totals.replayed_trials >= uncounted ? totals.replayed_trials - uncounted : 0;
  apply_closed(tenant, totals, trials_already_counted, counted_delta);
}

void TenantLedger::apply_closed(const std::string& tenant, const StudyCloseTotals& totals,
                                std::size_t counted, const TrialDelta& counted_delta) {
  TenantStats& stats = stats_[tenant];
  if (stats.studies_active > 0) --stats.studies_active;
  if (totals.killed)
    ++stats.studies_killed;
  else
    ++stats.studies_finished;
  stats.engine_seconds += totals.engine_seconds;
  stats.cache_hits += totals.cache_hits;
  // Exactly-once reconciliation: the study's absolute totals minus what
  // the live per-trial path already folded in. Trials that never produced
  // a completion event (checkpoint replays recorded inline at start, or
  // every trial after a crash-recovery resubmit) land here.
  if (totals.trials > counted) stats.trials_completed += totals.trials - counted;
  if (totals.task_attempts > counted_delta.task_attempts)
    stats.task_attempts += totals.task_attempts - counted_delta.task_attempts;
  if (totals.replayed_trials > counted_delta.replayed_trials)
    stats.replayed_trials += totals.replayed_trials - counted_delta.replayed_trials;
}

void TenantLedger::withdraw_live(const std::string& tenant, std::size_t trials_counted,
                                 const TrialDelta& counted_delta) {
  TenantStats& s = stats_[tenant];
  if (s.studies_submitted > 0) --s.studies_submitted;
  if (s.studies_active > 0) --s.studies_active;
  s.trials_completed -= std::min(trials_counted, s.trials_completed);
  s.task_attempts -= std::min(counted_delta.task_attempts, s.task_attempts);
  s.replayed_trials -= std::min(counted_delta.replayed_trials, s.replayed_trials);
}

std::vector<std::string> TenantLedger::tenants() const {
  std::vector<std::string> names;
  names.reserve(stats_.size() + quotas_.size());
  for (const auto& [name, _] : stats_) names.push_back(name);
  for (const auto& [name, _] : quotas_)
    if (stats_.find(name) == stats_.end()) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

json::Value TenantLedger::tenant_to_json(const std::string& tenant) const {
  const TenantStats s = stats(tenant);
  const TenantQuota q = quota(tenant);
  json::Value entry;
  entry.set("tenant", json::Value(tenant));
  entry.set("studies_submitted", json::Value(static_cast<std::int64_t>(s.studies_submitted)));
  entry.set("studies_active", json::Value(static_cast<std::int64_t>(s.studies_active)));
  entry.set("studies_finished", json::Value(static_cast<std::int64_t>(s.studies_finished)));
  entry.set("studies_killed", json::Value(static_cast<std::int64_t>(s.studies_killed)));
  entry.set("submits_rejected", json::Value(static_cast<std::int64_t>(s.submits_rejected)));
  entry.set("trials_completed", json::Value(static_cast<std::int64_t>(s.trials_completed)));
  entry.set("task_attempts", json::Value(static_cast<std::int64_t>(s.task_attempts)));
  entry.set("replayed_trials", json::Value(static_cast<std::int64_t>(s.replayed_trials)));
  entry.set("cache_hits", json::Value(static_cast<std::int64_t>(s.cache_hits)));
  entry.set("engine_seconds", json::Value(s.engine_seconds));
  entry.set("weight", json::Value(q.weight));
  entry.set("max_active_studies", json::Value(static_cast<std::int64_t>(q.max_active_studies)));
  return entry;
}

namespace {
std::size_t size_field(const json::Value& entry, std::string_view key) {
  const json::Value* v = entry.find(key);
  return v != nullptr && v->is_int() && v->as_int() > 0 ? static_cast<std::size_t>(v->as_int())
                                                        : 0;
}
}  // namespace

void TenantLedger::restore_tenant(const json::Value& entry) {
  const json::Value* name = entry.find("tenant");
  if (name == nullptr || !name->is_string()) return;
  TenantStats s;
  s.studies_submitted = size_field(entry, "studies_submitted");
  s.studies_active = size_field(entry, "studies_active");
  s.studies_finished = size_field(entry, "studies_finished");
  s.studies_killed = size_field(entry, "studies_killed");
  s.submits_rejected = size_field(entry, "submits_rejected");
  s.trials_completed = size_field(entry, "trials_completed");
  s.task_attempts = size_field(entry, "task_attempts");
  s.replayed_trials = size_field(entry, "replayed_trials");
  s.cache_hits = size_field(entry, "cache_hits");
  if (const json::Value* v = entry.find("engine_seconds"); v != nullptr && v->is_number())
    s.engine_seconds = v->as_double();
  TenantQuota q;
  if (const json::Value* v = entry.find("weight"); v != nullptr && v->is_number())
    q.weight = v->as_double();
  q.max_active_studies = size_field(entry, "max_active_studies");
  stats_[name->as_string()] = s;
  quotas_[name->as_string()] = q;
}

}  // namespace chpo::service
