#include "service/study_spec.hpp"

#include <algorithm>
#include <array>

namespace chpo::service {

namespace {

const std::array<const char*, 6> kAlgorithms = {"grid", "random", "gp",
                                                "tpe",  "halving", "hyperband"};

const std::array<const char*, 13> kKnownKeys = {
    "name",   "algorithm",   "space",          "budget",        "seed",
    "weight", "max_running", "checkpoint",     "stop_on_accuracy",
    "epoch_divisor",         "epoch_cap",      "parallel_suggestions",
    "paused"};

std::int64_t require_int(const json::Value& v, const char* key) {
  if (!v.is_int()) throw SpecError(std::string("spec field '") + key + "' must be an integer");
  return v.as_int();
}

double require_number(const json::Value& v, const char* key) {
  if (!v.is_number()) throw SpecError(std::string("spec field '") + key + "' must be a number");
  return v.as_double();
}

std::string require_string(const json::Value& v, const char* key) {
  if (!v.is_string()) throw SpecError(std::string("spec field '") + key + "' must be a string");
  return v.as_string();
}

}  // namespace

StudySpec study_spec_from_json(const json::Value& spec_json, const StudySpecDefaults& defaults) {
  if (!spec_json.is_object()) throw SpecError("study spec must be a JSON object");
  for (const auto& [key, _] : spec_json.as_object())
    if (std::find_if(kKnownKeys.begin(), kKnownKeys.end(),
                     [&](const char* k) { return key == k; }) == kKnownKeys.end())
      throw SpecError("unknown spec field '" + key + "'");

  StudySpec spec;
  spec.driver = defaults.driver;
  spec.budget = defaults.budget;

  if (const json::Value* v = spec_json.find("algorithm")) {
    spec.algorithm = require_string(*v, "algorithm");
    if (std::find_if(kAlgorithms.begin(), kAlgorithms.end(), [&](const char* a) {
          return spec.algorithm == a;
        }) == kAlgorithms.end())
      throw SpecError("unknown algorithm '" + spec.algorithm +
                      "' (grid | random | gp | tpe | halving | hyperband)");
  }

  const json::Value* space = spec_json.find("space");
  if (space == nullptr) throw SpecError("study spec is missing 'space'");
  try {
    spec.space = hpo::SearchSpace::from_json(*space);
  } catch (const std::exception& e) {
    throw SpecError(std::string("invalid search space: ") + e.what());
  }

  if (const json::Value* v = spec_json.find("name")) spec.name = require_string(*v, "name");
  if (spec.name.empty()) spec.name = spec.algorithm;

  if (const json::Value* v = spec_json.find("budget")) {
    const std::int64_t budget = require_int(*v, "budget");
    if (budget < 1) throw SpecError("spec field 'budget' must be >= 1");
    spec.budget = static_cast<std::size_t>(budget);
  }
  if (const json::Value* v = spec_json.find("seed"))
    spec.driver.seed = static_cast<std::uint64_t>(require_int(*v, "seed"));
  if (const json::Value* v = spec_json.find("weight")) {
    spec.weight = require_number(*v, "weight");
    if (spec.weight <= 0.0) throw SpecError("spec field 'weight' must be > 0");
  }
  if (const json::Value* v = spec_json.find("max_running"))
    spec.max_running = static_cast<int>(require_int(*v, "max_running"));
  if (const json::Value* v = spec_json.find("checkpoint"))
    spec.driver.checkpoint_path = require_string(*v, "checkpoint");
  if (const json::Value* v = spec_json.find("stop_on_accuracy"))
    spec.driver.stop_on_accuracy = require_number(*v, "stop_on_accuracy");
  if (const json::Value* v = spec_json.find("epoch_divisor"))
    spec.driver.epoch_divisor = static_cast<int>(require_int(*v, "epoch_divisor"));
  if (const json::Value* v = spec_json.find("epoch_cap"))
    spec.driver.epoch_cap = static_cast<int>(require_int(*v, "epoch_cap"));
  if (const json::Value* v = spec_json.find("parallel_suggestions"))
    spec.driver.parallel_suggestions = static_cast<int>(require_int(*v, "parallel_suggestions"));
  if (const json::Value* v = spec_json.find("paused"))
    if (!v->is_bool()) throw SpecError("spec field 'paused' must be a boolean");

  // Multi-fidelity pumps copy the (possibly overridden) driver and size
  // their first rung from the trial budget.
  spec.halving.driver = spec.driver;
  spec.halving.initial_configs = spec.budget;
  spec.hyperband.driver = spec.driver;
  return spec;
}

}  // namespace chpo::service
