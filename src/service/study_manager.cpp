#include "service/study_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/log.hpp"

namespace chpo::service {

const char* study_state_name(StudyState state) {
  switch (state) {
    case StudyState::Queued: return "queued";
    case StudyState::Running: return "running";
    case StudyState::Paused: return "paused";
    case StudyState::Finished: return "finished";
    case StudyState::Killed: return "killed";
  }
  return "?";
}

StudyManager::StudyManager(ManagerOptions options, const ml::Dataset& dataset)
    : options_(std::move(options)), dataset_(dataset), runtime_(std::move(options_.runtime)) {}

StudyManager::~StudyManager() {
  // Abandoned/paused pumps may still have in-flight attempts; the
  // Runtime's destructor drains them (unpausing every study first), so
  // nothing special is needed here — records just have to outlive nothing.
}

rt::StudyId StudyManager::submit(StudySpec spec) {
  rt::StudyOptions study_options;
  study_options.name = spec.name;
  study_options.weight = spec.weight;
  study_options.max_running = spec.max_running;
  const rt::StudySession session = runtime_.open_study(std::move(study_options));

  Record record;
  record.spec = std::move(spec);
  record.session = session;
  const rt::StudyId id = session.id();
  records_.emplace(id, std::move(record));
  order_.push_back(id);
  return id;
}

std::size_t StudyManager::active_count() const {
  std::size_t n = 0;
  for (const auto& [_, record] : records_)
    if (record.state == StudyState::Running || record.state == StudyState::Paused) ++n;
  return n;
}

void StudyManager::emit(StudyEvent::Kind kind, rt::StudyId id, const Record& record,
                        const hpo::Trial* trial) {
  if (!tap_) return;
  StudyEvent event;
  event.kind = kind;
  event.study = id;
  event.state = record.state;
  event.trial = trial;
  if (record.state == StudyState::Running || record.state == StudyState::Paused)
    event.trials_done = record.pump ? record.pump->trials_done() : 0;
  else
    event.trials_done = record.outcome.trials.size();
  tap_(event);
}

void StudyManager::start(Record& record) {
  const StudySpec& spec = record.spec;
  if (spec.algorithm == "halving") {
    hpo::HalvingOptions options = spec.halving;
    options.driver = spec.driver;
    record.pump = std::make_unique<hpo::HalvingRun>(record.session, dataset_, spec.space, options);
  } else if (spec.algorithm == "hyperband") {
    hpo::HyperbandOptions options = spec.hyperband;
    options.driver = spec.driver;
    record.pump =
        std::make_unique<hpo::HyperbandRun>(record.session, dataset_, spec.space, options);
  } else {
    // Point search: the algorithm object holds a reference into
    // record.spec.space, which lives exactly as long as the record.
    record.algorithm = hpo::make_search_algorithm(spec.algorithm, record.spec.space, spec.budget,
                                                  spec.driver.seed);
    record.pump =
        std::make_unique<hpo::StudyRun>(record.session, dataset_, spec.driver, *record.algorithm);
  }
  record.state = StudyState::Running;
  if (record.start_paused) {
    // pause() landed while Queued: admit with refills held and the ready
    // queue paused, so no trial dispatches until resume().
    record.pump->set_refill_paused(true);
    record.session.pause();
    record.state = StudyState::Paused;
  }
  record.pump->start();
  log_info("service", "study {} '{}' admitted ({}, {} in flight{})", record.session.id(),
           record.session.name(), spec.algorithm, record.pump->inflight().size(),
           record.start_paused ? ", paused" : "");
  emit(StudyEvent::Kind::Admitted, record.session.id(), record);
  if (record.state == StudyState::Running && !record.pump->active())
    finish(record);  // e.g. fully replayed from checkpoint
}

void StudyManager::finish(Record& record) {
  record.outcome = record.pump->finish();
  record.state = StudyState::Finished;
  log_info("service", "study {} '{}' finished: {} trials, best {:.3f}", record.session.id(),
           record.session.name(), record.outcome.trials.size(),
           record.outcome.best() ? record.outcome.best()->result.final_val_accuracy : 0.0);
  emit(StudyEvent::Kind::StateChanged, record.session.id(), record);
}

void StudyManager::admit() {
  if (admission_paused_) return;
  for (const rt::StudyId id : order_) {
    if (options_.max_active > 0 && active_count() >= options_.max_active) break;
    Record& record = records_.at(id);
    if (record.state == StudyState::Queued) start(record);
  }
}

std::vector<rt::Future> StudyManager::collect_inflight() const {
  // Every in-flight trial of every active study. Paused studies still get
  // their in-flight completions consumed — an attempt that was already
  // running when the pause landed finishes and commits (pause holds the
  // *ready* queue, it never aborts work).
  std::vector<rt::Future> futures;
  for (const auto& [_, record] : records_)
    if (record.state == StudyState::Running || record.state == StudyState::Paused)
      for (const rt::Future& f : record.pump->inflight()) futures.push_back(f);
  return futures;
}

void StudyManager::route(const rt::Future& finished) {
  // Route by the study tag the task carried through the engine.
  const rt::StudyId owner = runtime_.graph().task(finished.producer).study;
  const auto it = records_.find(owner);
  if (it == records_.end() || !it->second.pump || !it->second.pump->owns(finished)) {
    // A completion surfaced for a study that does not recognise it: a
    // cross-study leak. Count it (CI asserts zero) and drop it.
    ++leaked_;
    log_warn("service", "leaked completion: task {} tagged study {}", finished.producer, owner);
    return;
  }
  Record& record = it->second;
  record.pump->on_trial_complete(finished);
  ++routed_;
  emit(StudyEvent::Kind::TrialComplete, owner, record, record.pump->last_trial());
  if (record.state == StudyState::Running && !record.pump->active()) finish(record);
}

bool StudyManager::step() {
  admit();

  const std::vector<rt::Future> futures = collect_inflight();
  if (futures.empty()) {
    // Nothing in flight anywhere. Running studies with no futures are
    // drained state machines that never went inactive — a pump bug.
    for (auto& [_, record] : records_)
      if (record.state == StudyState::Running && !record.pump->active()) finish(record);
    bool queued = false;
    for (const auto& [_, record] : records_)
      if (record.state == StudyState::Queued) queued = true;
    return queued;  // paused-only fleets park here; resume() + step() continues
  }

  route(runtime_.wait_any(futures));
  return true;
}

StudyManager::StepOutcome StudyManager::step_for(double seconds) {
  admit();

  const std::vector<rt::Future> futures = collect_inflight();
  if (futures.empty()) {
    bool progressed = false;
    for (auto& [_, record] : records_)
      if (record.state == StudyState::Running && !record.pump->active()) {
        finish(record);
        progressed = true;
      }
    if (progressed) return StepOutcome::Progress;
    for (const auto& [_, record] : records_)
      if (record.state == StudyState::Queued || record.state == StudyState::Running ||
          record.state == StudyState::Paused)
        return StepOutcome::Idle;  // parked: paused fleet, or admission gated
    return StepOutcome::Drained;
  }

  const rt::Future finished = runtime_.wait_any_for(futures, seconds);
  if (finished.producer == rt::kNoTask) return StepOutcome::Idle;  // bound expired
  route(finished);
  return StepOutcome::Progress;
}

void StudyManager::run_all() {
  while (true) {
    bool any_runnable = false;
    for (const auto& [_, record] : records_)
      if (record.state == StudyState::Queued || record.state == StudyState::Running ||
          (record.state == StudyState::Paused && !record.pump->inflight().empty()))
        any_runnable = true;
    if (!any_runnable) return;
    step();
  }
}

void StudyManager::pause(rt::StudyId id) {
  Record& record = records_.at(id);
  if (record.state == StudyState::Queued) {
    record.start_paused = true;  // admit() starts the study paused
    return;
  }
  if (record.state != StudyState::Running) return;
  record.pump->set_refill_paused(true);
  record.session.pause();
  record.state = StudyState::Paused;
  emit(StudyEvent::Kind::StateChanged, id, record);
}

void StudyManager::resume(rt::StudyId id) {
  Record& record = records_.at(id);
  if (record.state == StudyState::Queued) {
    record.start_paused = false;
    return;
  }
  if (record.state != StudyState::Paused) return;
  record.session.resume();
  record.state = StudyState::Running;
  record.start_paused = false;
  record.pump->set_refill_paused(false);
  emit(StudyEvent::Kind::StateChanged, id, record);
  if (!record.pump->active()) finish(record);
}

void StudyManager::kill(rt::StudyId id) {
  Record& record = records_.at(id);
  if (record.state == StudyState::Finished || record.state == StudyState::Killed) return;
  if (record.state == StudyState::Paused) record.session.resume();
  if (record.state == StudyState::Queued) {
    record.state = StudyState::Killed;
    emit(StudyEvent::Kind::StateChanged, id, record);
    return;
  }
  record.pump->abandon();
  // Sweep the whole study: abandon() cancels the trials the pump knows
  // about; cancel_all() also catches study-tagged helpers (visualisation
  // tasks, stage chains) the pump only holds indirectly.
  const std::size_t swept = record.session.cancel_all();
  record.outcome = record.pump->finish();
  record.state = StudyState::Killed;
  log_info("service", "study {} '{}' killed ({} tasks cancelled, {} trials kept)", id,
           record.session.name(), swept, record.outcome.trials.size());
  emit(StudyEvent::Kind::StateChanged, id, record);
}

StudyState StudyManager::state(rt::StudyId id) const { return records_.at(id).state; }

StudyStatus StudyManager::status(rt::StudyId id) const {
  const Record& record = records_.at(id);
  StudyStatus s;
  s.id = id;
  s.name = record.session.name();
  s.algorithm = record.spec.algorithm;
  s.state = record.state;
  // Live count from the pump while it owns the trials; final count from
  // the flattened outcome afterwards.
  if ((record.state == StudyState::Running || record.state == StudyState::Paused) && record.pump)
    s.trials_done = record.pump->trials_done();
  else
    s.trials_done = record.outcome.trials.size();
  return s;
}

ManagerStats StudyManager::stats() const {
  ManagerStats stats;
  stats.total_studies = records_.size();
  for (const auto& [_, record] : records_) {
    switch (record.state) {
      case StudyState::Queued: ++stats.queued; break;
      case StudyState::Running: ++stats.running; break;
      case StudyState::Paused: ++stats.paused; break;
      case StudyState::Finished: ++stats.finished; break;
      case StudyState::Killed: ++stats.killed; break;
    }
    if ((record.state == StudyState::Running || record.state == StudyState::Paused) &&
        record.pump) {
      stats.trials_done += record.pump->trials_done();
      stats.inflight += record.pump->inflight().size();
    } else {
      stats.trials_done += record.outcome.trials.size();
    }
  }
  stats.completions_routed = routed_;
  stats.leaked_completions = leaked_;
  return stats;
}

std::vector<rt::StudyId> StudyManager::studies() const { return order_; }

const hpo::HpoOutcome& StudyManager::outcome(rt::StudyId id) const {
  const Record& record = records_.at(id);
  if (record.state != StudyState::Finished && record.state != StudyState::Killed)
    throw std::logic_error("StudyManager::outcome: study " + std::to_string(id) +
                           " is still " + study_state_name(record.state));
  return record.outcome;
}

}  // namespace chpo::service
