// TenantLedger — per-tenant accounting and quota for the service daemon.
//
// Every daemon submission names a tenant; the ledger is the meter that
// makes N tenants sharing one engine auditable: cumulative trial counts,
// task attempts, engine seconds and cache hits per tenant, plus the two
// admission-time policies a service needs (a cap on concurrently active
// studies per tenant, and a fair-share weight multiplied into each of the
// tenant's studies). It is plain coordinator-thread state — the engine's
// single-thread confinement means no lock is needed, exactly like
// StudyManager itself.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hpo/driver.hpp"

namespace chpo::service {

/// Admission policy for one tenant (defaults: no cap, neutral weight).
struct TenantQuota {
  /// Fair-share multiplier applied to every study the tenant submits
  /// (composes with the per-spec weight at the engine seam).
  double weight = 1.0;
  /// Concurrently active (queued/running/paused) studies; 0 = unlimited.
  std::size_t max_active_studies = 0;
};

/// Cumulative meter for one tenant. Monotonic except `studies_active`.
struct TenantStats {
  std::size_t studies_submitted = 0;
  std::size_t studies_active = 0;  ///< queued + running + paused right now
  std::size_t studies_finished = 0;
  std::size_t studies_killed = 0;
  std::size_t submits_rejected = 0;  ///< quota denials
  std::size_t trials_completed = 0;  ///< includes checkpoint replays
  std::size_t task_attempts = 0;     ///< engine attempts behind those trials
  std::size_t replayed_trials = 0;   ///< served from checkpoint/cache, no task
  std::uint64_t cache_hits = 0;      ///< reuse-cache hits (reuse studies only)
  double engine_seconds = 0.0;       ///< sum of finished studies' elapsed time
};

class TenantLedger {
 public:
  /// True iff `tenant` may start another study under its quota. A denial
  /// is counted in submits_rejected (callers reject the submission).
  bool admit_study(const std::string& tenant);

  /// Record a successful submission (after admit_study said yes).
  void on_submitted(const std::string& tenant);

  /// Fold one completed trial into the meter as it lands (streamed from
  /// the StudyManager event tap, so `accounting` is live, not post-hoc).
  void on_trial(const std::string& tenant, const hpo::Trial* trial);

  /// Fold a study's final outcome in when it leaves the fleet
  /// (Finished or Killed). `trials_already_counted` is how many of the
  /// outcome's trials were metered live via on_trial — the remainder
  /// (e.g. checkpoint replays, which produce no completion event) is
  /// reconciled here so totals always match the per-study report.
  void on_study_closed(const std::string& tenant, const hpo::HpoOutcome& outcome,
                       std::size_t trials_already_counted, bool killed);

  void set_quota(const std::string& tenant, TenantQuota quota) {
    quotas_[tenant] = quota;
  }
  TenantQuota quota(const std::string& tenant) const {
    const auto it = quotas_.find(tenant);
    return it == quotas_.end() ? TenantQuota{} : it->second;
  }

  /// Meter for one tenant (zeroes for a tenant never seen).
  TenantStats stats(const std::string& tenant) const {
    const auto it = stats_.find(tenant);
    return it == stats_.end() ? TenantStats{} : it->second;
  }

  /// Tenants with any recorded activity, in name order.
  std::vector<std::string> tenants() const;

 private:
  std::map<std::string, TenantStats> stats_;
  std::map<std::string, TenantQuota> quotas_;
};

}  // namespace chpo::service
