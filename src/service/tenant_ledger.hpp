// TenantLedger — per-tenant accounting and quota for the service daemon.
//
// Every daemon submission names a tenant; the ledger is the meter that
// makes N tenants sharing one engine auditable: cumulative trial counts,
// task attempts, engine seconds and cache hits per tenant, plus the two
// admission-time policies a service needs (a cap on concurrently active
// studies per tenant, and a fair-share weight multiplied into each of the
// tenant's studies). It is plain coordinator-thread state — the engine's
// single-thread confinement means no lock is needed, exactly like
// StudyManager itself.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hpo/driver.hpp"
#include "jsonlite/json.hpp"

namespace chpo::service {

/// Admission policy for one tenant (defaults: no cap, neutral weight).
struct TenantQuota {
  /// Fair-share multiplier applied to every study the tenant submits
  /// (composes with the per-spec weight at the engine seam).
  double weight = 1.0;
  /// Concurrently active (queued/running/paused) studies; 0 = unlimited.
  std::size_t max_active_studies = 0;
};

/// Cumulative meter for one tenant. Monotonic except `studies_active`.
struct TenantStats {
  std::size_t studies_submitted = 0;
  std::size_t studies_active = 0;  ///< queued + running + paused right now
  std::size_t studies_finished = 0;
  std::size_t studies_killed = 0;
  std::size_t submits_rejected = 0;  ///< quota denials
  std::size_t trials_completed = 0;  ///< includes checkpoint replays
  std::size_t task_attempts = 0;     ///< engine attempts behind those trials
  std::size_t replayed_trials = 0;   ///< served from checkpoint/cache, no task
  std::uint64_t cache_hits = 0;      ///< reuse-cache hits (reuse studies only)
  double engine_seconds = 0.0;       ///< sum of finished studies' elapsed time
};

/// What one live trial completion added to the meter — mirrored by the
/// caller per study, so a snapshot can subtract live (not-yet-closed)
/// contributions and a crash-replay can re-apply a close exactly once.
struct TrialDelta {
  std::size_t task_attempts = 0;
  std::size_t replayed_trials = 0;
};

/// A study's final, absolute contribution to its tenant's meter —
/// everything on_study_closed folds in, flattened into plain numbers so
/// the daemon can journal it and replay it verbatim after a crash.
struct StudyCloseTotals {
  std::size_t trials = 0;
  std::size_t task_attempts = 0;
  std::size_t replayed_trials = 0;
  std::uint64_t cache_hits = 0;
  double engine_seconds = 0.0;
  bool killed = false;
};

/// Flatten an outcome into the totals a close applies.
StudyCloseTotals study_close_totals(const hpo::HpoOutcome& outcome, bool killed);

class TenantLedger {
 public:
  /// True iff `tenant` may start another study under its quota. A denial
  /// is counted in submits_rejected (callers reject the submission).
  bool admit_study(const std::string& tenant);

  /// Record a quota denial without re-running admission — the crash
  /// recovery path replays journalled rejections through this.
  void note_rejected(const std::string& tenant);

  /// Record a successful submission (after admit_study said yes).
  void on_submitted(const std::string& tenant);

  /// Fold one completed trial into the meter as it lands (streamed from
  /// the StudyManager event tap, so `accounting` is live, not post-hoc).
  /// Returns what was added beyond the trial count itself.
  TrialDelta on_trial(const std::string& tenant, const hpo::Trial* trial);

  /// Fold a study's final outcome in when it leaves the fleet
  /// (Finished or Killed). `trials_already_counted` is how many of the
  /// outcome's trials were metered live via on_trial — the remainder
  /// (e.g. checkpoint replays, which produce no completion event) is
  /// reconciled here so totals always match the per-study report.
  void on_study_closed(const std::string& tenant, const hpo::HpoOutcome& outcome,
                       std::size_t trials_already_counted, bool killed);

  /// The general close: apply `totals` minus what was already metered
  /// live (`counted` trials / `counted_delta` attempt meters). Normal
  /// operation passes the live meters; crash-replay passes zeros (the
  /// recovered ledger holds no live contribution for the study), so a
  /// study's trials and engine-seconds land exactly once either way.
  void apply_closed(const std::string& tenant, const StudyCloseTotals& totals,
                    std::size_t counted, const TrialDelta& counted_delta);

  /// Remove one live (not-yet-closed) study's contribution from the meter:
  /// its submission, its active slot, and whatever on_trial folded in so
  /// far. Used on a snapshot COPY of the ledger — the persisted meter must
  /// exclude what the restart's resubmission and eventual close re-apply.
  void withdraw_live(const std::string& tenant, std::size_t trials_counted,
                     const TrialDelta& counted_delta);

  void set_quota(const std::string& tenant, TenantQuota quota) {
    quotas_[tenant] = quota;
  }
  TenantQuota quota(const std::string& tenant) const {
    const auto it = quotas_.find(tenant);
    return it == quotas_.end() ? TenantQuota{} : it->second;
  }

  /// Meter for one tenant (zeroes for a tenant never seen).
  TenantStats stats(const std::string& tenant) const {
    const auto it = stats_.find(tenant);
    return it == stats_.end() ? TenantStats{} : it->second;
  }

  /// Tenants with any recorded activity or an explicit quota, in name
  /// order (quota-only tenants must survive a snapshot round-trip).
  std::vector<std::string> tenants() const;

  /// Serialize one tenant's meter + quota (the daemon's snapshot writes
  /// one entry per tenant). restore_tenant is its inverse: it REPLACES
  /// the tenant's stats and quota wholesale (recovery-time use only).
  json::Value tenant_to_json(const std::string& tenant) const;
  void restore_tenant(const json::Value& entry);

 private:
  std::map<std::string, TenantStats> stats_;
  std::map<std::string, TenantQuota> quotas_;
};

}  // namespace chpo::service
