// StudyManager — admission and lifecycle for N concurrent HPO studies on
// one Runtime.
//
// The engine is single-thread confined, so concurrency between studies is
// cooperative: the manager owns one Runtime, opens one StudySession per
// admitted study, builds the matching TrialPump (StudyRun / HalvingRun /
// HyperbandRun), and multiplexes all pumps from its own step() loop — one
// wait_any over every active study's in-flight futures, each winner routed
// to the pump whose study tag it carries. The study tag travels with the
// task through the engine, so routing is a graph lookup, not a guess; a
// completion whose owning pump does not recognise it is counted in
// leaked_completions() (asserted zero by the CI multi-study smoke).
//
// Lifecycle: submit() queues, admission starts up to max_active studies
// (fair-share weight and per-study quota handed to the engine); pause()
// holds the study's ready queue at the engine seam AND stops the pump
// refilling (in-flight attempts finish and commit — their completions are
// consumed while paused); kill() abandons the pump and cancels every
// non-terminal task of that study, leaving the rest of the fleet
// untouched. Crash-safe resume is inherited from the driver layer: give a
// study a DriverOptions::checkpoint_path and a fresh manager replays the
// completed trials from disk before submitting anything.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hpo/algorithms.hpp"
#include "hpo/hyperband.hpp"
#include "hpo/search_space.hpp"
#include "hpo/study_run.hpp"
#include "ml/dataset.hpp"
#include "runtime/runtime.hpp"
#include "runtime/study_session.hpp"

namespace chpo::service {

/// Everything needed to run one study: the search, its budget, and its
/// share of the cluster. The spec is stored by value for the study's whole
/// life — algorithms hold references into `space`, so it must live here.
struct StudySpec {
  std::string name;
  /// "grid" | "random" | "gp" | "tpe" (point search via StudyRun) or
  /// "halving" | "hyperband" (multi-fidelity pumps).
  std::string algorithm = "random";
  hpo::SearchSpace space;
  /// Trial budget for random/gp/tpe (grid enumerates the space).
  std::size_t budget = 16;
  /// Shared trial options (constraint, seeds, checkpoint_path, reuse...).
  /// For halving/hyperband this is copied into the bracket options below.
  hpo::DriverOptions driver;
  hpo::HalvingOptions halving;      ///< knobs when algorithm == "halving"
  hpo::HyperbandOptions hyperband;  ///< knobs when algorithm == "hyperband"
  /// Engine fair-share weight and concurrent-task quota (see StudyPolicy).
  double weight = 1.0;
  int max_running = 0;
};

enum class StudyState {
  Queued,    ///< submitted, not yet admitted
  Running,   ///< pump active, completions being consumed
  Paused,    ///< ready queue held + refills stopped; in-flight finishing
  Finished,  ///< pump drained; outcome() available
  Killed,    ///< kill()ed; partial outcome() available
};

const char* study_state_name(StudyState state);

struct ManagerOptions {
  rt::RuntimeOptions runtime;
  /// Studies admitted concurrently; 0 = all submitted studies run at once.
  std::size_t max_active = 0;
};

/// Snapshot of one study for reports / chpo_run / daemon status replies.
struct StudyStatus {
  rt::StudyId id = rt::kMainStudy;
  std::string name;
  std::string algorithm;
  StudyState state = StudyState::Queued;
  /// Trials recorded so far: live (pump-side) while Running/Paused, final
  /// (outcome-side) once Finished/Killed.
  std::size_t trials_done = 0;
};

/// Structured lifecycle counters across the whole fleet — the daemon's
/// `stats` reply and its drain condition (inflight == 0), instead of
/// callers re-deriving them from per-study getters.
struct ManagerStats {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t paused = 0;
  std::size_t finished = 0;
  std::size_t killed = 0;
  std::size_t total_studies = 0;
  std::size_t trials_done = 0;  ///< across all studies, live + final
  std::size_t inflight = 0;     ///< trial futures currently in flight
  std::uint64_t completions_routed = 0;
  std::size_t leaked_completions = 0;
};

/// One manager lifecycle transition, pushed to the registered event tap as
/// it happens (same coordinator thread; the tap must not call back into
/// the manager). `trial` is only set for TrialComplete and is invalidated
/// when the tap returns — consume, never store.
struct StudyEvent {
  enum class Kind { Admitted, TrialComplete, StateChanged };
  Kind kind = Kind::StateChanged;
  rt::StudyId study = rt::kMainStudy;
  StudyState state = StudyState::Queued;
  const hpo::Trial* trial = nullptr;
  std::size_t trials_done = 0;
};

class StudyManager {
 public:
  /// `dataset` is shared by every study (the paper's setting: one dataset,
  /// many searches) and must outlive the manager.
  StudyManager(ManagerOptions options, const ml::Dataset& dataset);
  ~StudyManager();

  StudyManager(const StudyManager&) = delete;
  StudyManager& operator=(const StudyManager&) = delete;

  /// Queue a study; admission happens inside step()/run_all(). Returns the
  /// engine-level StudyId (also the key for state/outcome/pause/...).
  rt::StudyId submit(StudySpec spec);

  /// Admit queued studies, wait for ONE completion across every active
  /// study, route it to its owner. Returns true while any study is queued,
  /// running, or paused-with-work — i.e. while there is anything left to
  /// drive. Paused studies' in-flight completions are still consumed.
  bool step();

  /// What one bounded step accomplished.
  enum class StepOutcome {
    Progress,  ///< routed a completion or finished/admitted a study
    Idle,      ///< nothing landed within the bound, but work remains
    Drained,   ///< no queued, running, or in-flight work anywhere
  };

  /// Bounded step: like step(), but give up after `seconds` (wall or
  /// virtual) if no completion lands. The service daemon interleaves this
  /// with socket request handling, so a minutes-long trial never blocks
  /// submit/pause/status requests.
  StepOutcome step_for(double seconds);

  /// Drive until every study is Finished or Killed (paused studies with no
  /// in-flight work park the loop: run_all returns early if only paused
  /// studies remain, so a caller can resume() and run_all() again).
  void run_all();

  /// Pause a study. Running: hold its ready queue + stop pump refills
  /// (in-flight attempts finish and their completions are consumed while
  /// paused). Queued: the study is admitted in the paused state — its pump
  /// starts with refills held, so no trial ever dispatches until resume().
  void pause(rt::StudyId id);
  void resume(rt::StudyId id);
  /// Abandon the pump and cancel every non-terminal task of this study.
  /// The partial outcome (trials consumed so far) is kept.
  void kill(rt::StudyId id);

  StudyState state(rt::StudyId id) const;
  StudyStatus status(rt::StudyId id) const;
  std::vector<rt::StudyId> studies() const;
  bool known(rt::StudyId id) const { return records_.count(id) != 0; }

  /// Fleet-wide lifecycle counters (see ManagerStats).
  ManagerStats stats() const;

  /// Per-state task counts of one study from the engine's graph — the
  /// daemon `status` reply pairs this with the pump-side trial count.
  rt::StudyProgress progress(rt::StudyId id) const {
    return runtime_.study_progress(records_.at(id).session.id());
  }

  /// Register (or clear, with nullptr) the lifecycle event tap. Fired on
  /// the coordinator thread from inside submit/step/pause/resume/kill; the
  /// tap must not call back into the manager.
  using EventTap = std::function<void(const StudyEvent&)>;
  void set_event_tap(EventTap tap) { tap_ = std::move(tap); }

  /// Gate admission of queued studies (shutdown draining: stop starting
  /// new studies while in-flight ones run down; queued specs stay Queued
  /// for the shutdown manifest).
  void set_admission_paused(bool paused) { admission_paused_ = paused; }
  bool admission_paused() const { return admission_paused_; }

  /// Final (or partial, if Killed) outcome; throws unless the study is
  /// Finished or Killed.
  const hpo::HpoOutcome& outcome(rt::StudyId id) const;

  /// Completions that arrived tagged with a study whose pump did not
  /// recognise them — cross-study leaks; always 0 unless routing is broken.
  std::size_t leaked_completions() const { return leaked_; }

  // Runtime forwarders (the manager owns the Runtime; nothing else should
  // reach for it — chpo_lint bans rt::Runtime& parameters in this layer).
  double now() const { return runtime_.now(); }
  bool simulated() const { return runtime_.simulated(); }
  const trace::TraceSink& trace() const { return runtime_.trace(); }
  std::uint64_t lineage_violations() const { return runtime_.lineage_violations(); }
  std::size_t lineage_recoveries() const { return runtime_.lineage_recoveries(); }

 private:
  struct Record {
    StudySpec spec;
    rt::StudySession session;
    std::unique_ptr<hpo::SearchAlgorithm> algorithm;  ///< null for halving/hyperband
    std::unique_ptr<hpo::TrialPump> pump;
    StudyState state = StudyState::Queued;
    hpo::HpoOutcome outcome;
    /// pause() landed while Queued: admit in the paused state.
    bool start_paused = false;
  };

  void admit();
  void start(Record& record);
  void finish(Record& record);
  std::size_t active_count() const;
  /// Route one wait_any winner to its owning pump (or count a leak).
  void route(const rt::Future& finished);
  std::vector<rt::Future> collect_inflight() const;
  void emit(StudyEvent::Kind kind, rt::StudyId id, const Record& record,
            const hpo::Trial* trial = nullptr);

  ManagerOptions options_;
  const ml::Dataset& dataset_;
  rt::Runtime runtime_;
  std::map<rt::StudyId, Record> records_;
  std::vector<rt::StudyId> order_;  ///< submission order (admission + reports)
  std::size_t leaked_ = 0;
  std::uint64_t routed_ = 0;
  bool admission_paused_ = false;
  EventTap tap_;
};

}  // namespace chpo::service
