// StudySpec construction from JSON — the one code path shared by every
// front-end that submits to a StudyManager.
//
// chpo_run --studies builds one spec object per study from its flags; the
// service daemon receives the same object verbatim in a `submit` request.
// Both funnel through study_spec_from_json(), so a spec that runs from the
// CLI is bit-for-bit the spec the daemon admits — there is no second
// flag-to-spec translation to drift.
#pragma once

#include <stdexcept>
#include <string>

#include "jsonlite/json.hpp"
#include "service/study_manager.hpp"

namespace chpo::service {

/// Thrown on an invalid spec (unknown algorithm, missing space, unknown
/// key, wrong type). The message is safe to echo to a remote client.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

/// Deployment-level defaults a spec starts from: the driver options the
/// host configured (constraint, workload model, reuse, ...) and the
/// default trial budget. Per-spec JSON fields override on top.
struct StudySpecDefaults {
  hpo::DriverOptions driver;
  std::size_t budget = 16;
};

/// Parse one study spec:
///
///   { "name": "alice-tpe", "algorithm": "tpe",
///     "space": { ... search-space JSON ... },
///     "budget": 8, "seed": 7, "checkpoint": "st.json",
///     "weight": 2.0, "max_running": 4,
///     "stop_on_accuracy": 0.95, "epoch_divisor": 10, "epoch_cap": 3,
///     "parallel_suggestions": 1, "paused": true }
///
/// `algorithm` and `space` drive the pump choice; everything else is
/// optional and falls back to `defaults`. "paused" is validated but not
/// stored — it is a submission-time instruction the caller (the daemon)
/// acts on, not a property of the study. Unknown keys are rejected so a
/// typo ("bugdet") fails loudly instead of silently using the default.
StudySpec study_spec_from_json(const json::Value& spec_json, const StudySpecDefaults& defaults);

}  // namespace chpo::service
