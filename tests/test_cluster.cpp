// Unit tests for the cluster/resource model and its paper presets.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace chpo::cluster {
namespace {

TEST(NodePresets, MatchPaperHardware) {
  EXPECT_EQ(marenostrum4_node().cpus, 48u);  // 2x 24-core Xeon Platinum
  EXPECT_EQ(marenostrum4_node().gpus, 0u);
  EXPECT_EQ(minotauro_node().gpus, 2u);   // 2x K80
  EXPECT_EQ(power9_node().gpus, 4u);      // 4x V100
  EXPECT_EQ(power9_node().cpus, 160u);    // 160 hardware threads
}

TEST(Homogeneous, NamesAreUnique) {
  const ClusterSpec spec = marenostrum4(3);
  ASSERT_EQ(spec.nodes.size(), 3u);
  EXPECT_NE(spec.nodes[0].name, spec.nodes[1].name);
}

TEST(WorkerPlacement, NoneUsesEverything) {
  ClusterSpec spec = marenostrum4(2);
  EXPECT_EQ(spec.usable_cpus(0), 48u);
  EXPECT_EQ(spec.total_usable_cpus(), 96u);
  EXPECT_TRUE(spec.node_usable(0));
}

TEST(WorkerPlacement, SharedCoresReservesPerNode) {
  // The paper's single-node experiment: the worker takes half of 48 cores.
  ClusterSpec spec = marenostrum4(1);
  spec.worker_placement = WorkerPlacement::SharedCores;
  spec.worker_cores = 24;
  EXPECT_EQ(spec.usable_cpus(0), 24u);
}

TEST(WorkerPlacement, SharedCoresCanConsumeWholeNode) {
  ClusterSpec spec = marenostrum4(1);
  spec.worker_placement = WorkerPlacement::SharedCores;
  spec.worker_cores = 48;
  EXPECT_EQ(spec.usable_cpus(0), 0u);
  spec.worker_cores = 60;  // more than the node has
  EXPECT_EQ(spec.usable_cpus(0), 0u);
}

TEST(WorkerPlacement, DedicatedNodeExcludesNodeZero) {
  // The paper's multi-node experiment: 28 nodes requested, node 0 runs the
  // worker, 27 nodes execute tasks.
  ClusterSpec spec = marenostrum4(28);
  spec.worker_placement = WorkerPlacement::DedicatedNode;
  EXPECT_FALSE(spec.node_usable(0));
  EXPECT_EQ(spec.usable_cpus(0), 0u);
  EXPECT_TRUE(spec.node_usable(1));
  EXPECT_EQ(spec.total_usable_cpus(), 27u * 48u);
}

TEST(ClusterSpec, GpuAccounting) {
  ClusterSpec spec = power9(2);
  EXPECT_EQ(spec.total_usable_gpus(), 8u);
  spec.worker_placement = WorkerPlacement::DedicatedNode;
  EXPECT_EQ(spec.total_usable_gpus(), 4u);
}

TEST(ClusterSpec, OutOfRangeNodeIsUnusable) {
  const ClusterSpec spec = marenostrum4(1);
  EXPECT_FALSE(spec.node_usable(5));
  EXPECT_EQ(spec.usable_cpus(5), 0u);
  EXPECT_EQ(spec.usable_gpus(5), 0u);
}

TEST(TransferModel, ScalesWithBytes) {
  TransferModel tm;
  const double small = tm.transfer_seconds(1024);
  const double large = tm.transfer_seconds(1024ull * 1024 * 1024);
  EXPECT_GT(large, small);
  // 1 GiB over 12.5 GB/s is roughly 86 ms.
  EXPECT_NEAR(large, 1024.0 * 1024 * 1024 / 12.5e9, 1e-3);
}

TEST(TransferModel, LatencyFloorForTinyMessages) {
  TransferModel tm;
  tm.latency_s = 1e-3;
  EXPECT_GE(tm.transfer_seconds(1), 1e-3);
}

}  // namespace
}  // namespace chpo::cluster
