// Extension-library tests: successive halving and the baselines.
#include <gtest/gtest.h>

#include "hpo/baseline.hpp"
#include "hpo/hyperband.hpp"

namespace chpo::hpo {
namespace {

SearchSpace tiny_space() {
  return SearchSpace::from_json_text(R"({
    "optimizer": ["Adam", "SGD"],
    "batch_size": [16, 32]
  })");
}

rt::RuntimeOptions thread_cluster(unsigned cpus = 4) {
  rt::RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "t";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(1, node);
  return opts;
}

TEST(SuccessiveHalving, RungsShrinkAndBudgetsGrow) {
  const ml::Dataset dataset = ml::make_mnist_like(100, 40, 1);
  rt::Runtime runtime(thread_cluster());
  HalvingOptions options;
  options.initial_configs = 9;
  options.initial_epochs = 1;
  options.eta = 3.0;
  options.max_epochs = 9;
  const SearchSpace space = tiny_space();
  const HalvingOutcome outcome = successive_halving(runtime.main_study(), dataset, space, options);

  ASSERT_GE(outcome.rungs.size(), 2u);
  EXPECT_EQ(outcome.rungs[0].trials.size(), 9u);
  EXPECT_EQ(outcome.rungs[1].trials.size(), 3u);
  EXPECT_EQ(outcome.rungs[0].epochs, 1);
  EXPECT_EQ(outcome.rungs[1].epochs, 3);
  EXPECT_GT(outcome.best_accuracy, 0.0);
  EXPECT_TRUE(outcome.best_config.is_object());
}

TEST(SuccessiveHalving, SurvivorsAreTopOfPreviousRung) {
  const ml::Dataset dataset = ml::make_mnist_like(100, 40, 2);
  rt::Runtime runtime(thread_cluster());
  HalvingOptions options;
  options.initial_configs = 6;
  options.initial_epochs = 1;
  options.eta = 2.0;
  options.max_epochs = 4;
  const SearchSpace space = tiny_space();
  const HalvingOutcome outcome = successive_halving(runtime.main_study(), dataset, space, options);
  ASSERT_GE(outcome.rungs.size(), 2u);
  // Worst accuracy advancing to rung 1 >= best accuracy eliminated at rung 0.
  double worst_advanced = 1.0;
  for (const Trial& t : outcome.rungs[0].trials) {
    // Find whether this config advanced.
    bool advanced = false;
    for (const Trial& next : outcome.rungs[1].trials) {
      Config stripped_next = next.config;
      stripped_next.set("num_epochs", t.config.at("num_epochs"));
      if (json::serialize(stripped_next) == json::serialize(t.config)) advanced = true;
    }
    if (advanced) worst_advanced = std::min(worst_advanced, t.result.final_val_accuracy);
  }
  EXPECT_GT(worst_advanced, 0.0);
}

TEST(SuccessiveHalving, RespectsMaxEpochsCeiling) {
  const ml::Dataset dataset = ml::make_mnist_like(60, 20, 3);
  rt::Runtime runtime(thread_cluster());
  HalvingOptions options;
  options.initial_configs = 8;
  options.initial_epochs = 2;
  options.eta = 2.0;
  options.max_epochs = 4;
  const SearchSpace space = tiny_space();
  const HalvingOutcome outcome = successive_halving(runtime.main_study(), dataset, space, options);
  for (const RungResult& rung : outcome.rungs) EXPECT_LE(rung.epochs, 4);
}

TEST(SuccessiveHalving, InvalidOptionsThrow) {
  const ml::Dataset dataset = ml::make_mnist_like(20, 10, 4);
  rt::Runtime runtime(thread_cluster());
  const SearchSpace space = tiny_space();
  HalvingOptions bad;
  bad.initial_configs = 0;
  EXPECT_THROW(successive_halving(runtime.main_study(), dataset, space, bad), std::invalid_argument);
  bad.initial_configs = 4;
  bad.eta = 1.0;
  EXPECT_THROW(successive_halving(runtime.main_study(), dataset, space, bad), std::invalid_argument);
  bad.eta = 2.0;
  bad.initial_epochs = 0;
  EXPECT_THROW(successive_halving(runtime.main_study(), dataset, space, bad), std::invalid_argument);
}

TEST(Hyperband, RunsAllBracketsAndFindsGoodConfig) {
  const ml::Dataset dataset = ml::make_mnist_like(100, 40, 7);
  rt::Runtime runtime(thread_cluster());
  const SearchSpace space = tiny_space();
  HyperbandOptions options;
  options.max_epochs = 9;
  options.eta = 3.0;
  const HyperbandOutcome outcome = hyperband(runtime.main_study(), dataset, space, options);
  // s_max = floor(log3(9)) = 2 -> 3 brackets.
  EXPECT_EQ(outcome.brackets.size(), 3u);
  EXPECT_GT(outcome.total_trials, 9u);
  EXPECT_GT(outcome.best_accuracy, 0.0);
  EXPECT_TRUE(outcome.best_config.is_object());
  // The most exploratory bracket starts with the most configs.
  EXPECT_GE(outcome.brackets[0].rungs[0].trials.size(),
            outcome.brackets[2].rungs[0].trials.size());
  // The last bracket runs configs straight at full budget.
  EXPECT_EQ(outcome.brackets[2].rungs[0].epochs, 9);
}

TEST(Hyperband, InvalidOptionsThrow) {
  const ml::Dataset dataset = ml::make_mnist_like(20, 10, 8);
  rt::Runtime runtime(thread_cluster());
  const SearchSpace space = tiny_space();
  HyperbandOptions bad;
  bad.max_epochs = 0;
  EXPECT_THROW(hyperband(runtime.main_study(), dataset, space, bad), std::invalid_argument);
  bad.max_epochs = 9;
  bad.eta = 1.0;
  EXPECT_THROW(hyperband(runtime.main_study(), dataset, space, bad), std::invalid_argument);
}

TEST(VisualisePipeline, PlotTaskCollectsAllTrials) {
  // The paper's Figure 2 structure: experiment -> visualisation -> plot.
  const ml::Dataset dataset = ml::make_mnist_like(80, 30, 9);
  rt::Runtime runtime(thread_cluster());
  DriverOptions options;
  options.epoch_cap = 2;
  options.visualise = true;
  HpoDriver driver(runtime.main_study(), dataset, options);
  const SearchSpace space = tiny_space();
  GridSearch grid(space);
  const HpoOutcome outcome = driver.run(grid);
  ASSERT_EQ(outcome.trials.size(), 4u);
  EXPECT_FALSE(outcome.report.empty());
  // One report line per trial plus the header.
  EXPECT_EQ(std::count(outcome.report.begin(), outcome.report.end(), '\n'), 5);
  EXPECT_NE(outcome.report.find("optimizer"), std::string::npos);
  // The graph contains experiment, visualisation and plot tasks:
  // 4 + 4 + 1 = 9.
  EXPECT_EQ(runtime.task_count(), 9u);
  EXPECT_EQ(runtime.graph().critical_path_length(), 3u);
}

TEST(VisualisePipeline, FailedTrialExcludedFromPlot) {
  const ml::Dataset dataset = ml::make_mnist_like(60, 20, 10);
  rt::RuntimeOptions rt_options = thread_cluster();
  rt_options.fault_policy.max_attempts = 1;
  rt_options.injector.force_task_failures(0, 1);  // first experiment dies
  rt::Runtime runtime(std::move(rt_options));
  DriverOptions options;
  options.epoch_cap = 1;
  options.visualise = true;
  HpoDriver driver(runtime.main_study(), dataset, options);
  const SearchSpace space = tiny_space();
  GridSearch grid(space);
  const HpoOutcome outcome = driver.run(grid);
  EXPECT_TRUE(outcome.trials[0].failed);
  EXPECT_FALSE(outcome.report.empty());
  // Plot holds the three surviving trials only.
  EXPECT_EQ(std::count(outcome.report.begin(), outcome.report.end(), '\n'), 4);
}

TEST(Baseline, SequentialMatchesDriverResults) {
  // The runtime must produce the same result as a plain serial loop — the
  // paper's "same result as if executed sequentially" guarantee.
  const ml::Dataset dataset = ml::make_mnist_like(100, 40, 5);
  const SearchSpace space = tiny_space();
  const auto configs = space.enumerate_grid();

  DriverOptions options;
  options.epoch_cap = 2;
  options.seed = 17;
  const HpoOutcome serial = sequential_hpo(dataset, configs, options);

  rt::Runtime runtime(thread_cluster());
  HpoDriver driver(runtime.main_study(), dataset, options);
  GridSearch grid(space);
  const HpoOutcome parallel = driver.run(grid);

  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.trials[i].result.final_val_accuracy,
                     parallel.trials[i].result.final_val_accuracy)
        << "trial " << i;
  }
  EXPECT_EQ(serial.best_index, parallel.best_index);
}

TEST(Baseline, SequentialEarlyStop) {
  const ml::Dataset dataset = ml::make_mnist_like(200, 60, 6);
  const SearchSpace space = tiny_space();
  DriverOptions options;
  options.epoch_cap = 2;
  options.stop_on_accuracy = 0.2;
  const HpoOutcome outcome = sequential_hpo(dataset, space.enumerate_grid(), options);
  EXPECT_TRUE(outcome.stopped_early);
  EXPECT_LT(outcome.trials.size(), 4u);
}

TEST(Baseline, AnalyticMakespans) {
  const SearchSpace space = SearchSpace::from_json_text(R"({
    "optimizer": ["SGD"],
    "num_epochs": [20, 50, 100],
    "batch_size": [32]
  })");
  const auto configs = space.enumerate_grid();
  const ml::WorkloadModel w = ml::mnist_paper_model();
  const auto node = cluster::marenostrum4_node();

  const double serial = sequential_makespan_seconds(configs, w, 1, node);
  const double split2 = static_partition_seconds(configs, w, 2, 1, node);
  const double split3 = static_partition_seconds(configs, w, 3, 1, node);
  EXPECT_GT(serial, split2);
  EXPECT_GE(split2, split3);
  // 3 nodes, one task each: makespan = the longest task.
  EXPECT_DOUBLE_EQ(split3, ml::experiment_seconds(w, "SGD", 100, 32, 1, 0, node));
  // Contiguous blocks on 3 nodes also end at the longest task here, and can
  // never beat round-robin by more than the block imbalance allows.
  const double blocks3 = static_partition_contiguous_seconds(configs, w, 3, 1, node);
  EXPECT_DOUBLE_EQ(blocks3, split3);
}

TEST(Baseline, StaticPartitionNeverBeatsPerfectBalance) {
  const SearchSpace space = SearchSpace::from_json_text(R"({
    "optimizer": ["SGD", "Adam"],
    "num_epochs": [20, 50, 100],
    "batch_size": [32, 128]
  })");
  const auto configs = space.enumerate_grid();
  const ml::WorkloadModel w = ml::mnist_paper_model();
  const auto node = cluster::marenostrum4_node();
  const double serial = sequential_makespan_seconds(configs, w, 1, node);
  const double split4 = static_partition_seconds(configs, w, 4, 1, node);
  EXPECT_GE(split4, serial / 4.0);  // can't beat the work bound
  EXPECT_LE(split4, serial);
}

}  // namespace
}  // namespace chpo::hpo
