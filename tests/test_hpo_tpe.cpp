// Tests for the Tree-structured Parzen Estimator (paper §2's Hyperopt
// algorithm).
#include <gtest/gtest.h>

#include <cmath>

#include "hpo/tpe.hpp"

namespace chpo::hpo {
namespace {

SearchSpace mixed_space() {
  SearchSpace space;
  space.add_categorical("optimizer",
                        {json::Value("Adam"), json::Value("SGD"), json::Value("RMSprop")});
  space.add_float("lr", 1e-4, 1e-1, /*log=*/true);
  space.add_int("batch_exp", 4, 8);
  return space;
}

TEST(Tpe, RespectsBudgetAndIsSequential) {
  const SearchSpace space = mixed_space();
  TpeSearch tpe(space, {.max_evals = 10, .n_init = 3, .seed = 1});
  EXPECT_TRUE(tpe.sequential());
  int issued = 0;
  while (auto c = tpe.next()) {
    tpe.tell(*c, 0.5);
    ++issued;
  }
  EXPECT_EQ(issued, 10);
  EXPECT_EQ(tpe.observations(), 10u);
}

TEST(Tpe, SamplesStayInDomains) {
  const SearchSpace space = mixed_space();
  TpeSearch tpe(space, {.max_evals = 40, .n_init = 5, .seed = 2});
  Rng score_rng(3);
  while (auto c = tpe.next()) {
    const double lr = config_double(*c, "lr");
    EXPECT_GE(lr, 1e-4);
    EXPECT_LE(lr, 1e-1);
    const auto batch_exp = config_int(*c, "batch_exp");
    EXPECT_GE(batch_exp, 4);
    EXPECT_LE(batch_exp, 8);
    const std::string opt = config_string(*c, "optimizer");
    EXPECT_TRUE(opt == "Adam" || opt == "SGD" || opt == "RMSprop");
    tpe.tell(*c, score_rng.next_double());
  }
}

TEST(Tpe, FindsOptimumOfSmooth1D) {
  SearchSpace space;
  space.add_float("x", 0.0, 1.0);
  const auto objective = [](double x) { return -(x - 0.6) * (x - 0.6); };
  TpeSearch tpe(space, {.max_evals = 30, .n_init = 6, .seed = 4});
  double best = -1e9;
  while (auto c = tpe.next()) {
    const double y = objective(config_double(*c, "x"));
    best = std::max(best, y);
    tpe.tell(*c, y);
  }
  EXPECT_GT(best, -0.01);  // within |x-0.6| < 0.1
}

TEST(Tpe, ExploitsGoodCategory) {
  // Only SGD scores; after warm-up TPE should propose SGD most of the time.
  SearchSpace space;
  space.add_categorical("optimizer",
                        {json::Value("Adam"), json::Value("SGD"), json::Value("RMSprop")});
  TpeSearch tpe(space, {.max_evals = 40, .n_init = 6, .seed = 5});
  int sgd_after_warmup = 0, total_after_warmup = 0, i = 0;
  while (auto c = tpe.next()) {
    const bool is_sgd = config_string(*c, "optimizer") == "SGD";
    if (i >= 6) {
      ++total_after_warmup;
      if (is_sgd) ++sgd_after_warmup;
    }
    tpe.tell(*c, is_sgd ? 0.9 : 0.1);
    ++i;
  }
  EXPECT_GT(sgd_after_warmup * 2, total_after_warmup);  // majority SGD
}

TEST(Tpe, ModelPhaseBeatsUniformOnNeedle) {
  // Narrow optimum in log-space: TPE should concentrate samples near it.
  SearchSpace space;
  space.add_float("lr", 1e-4, 1e-1, /*log=*/true);
  const auto objective = [](double lr) {
    const double d = std::log10(lr) - std::log10(3e-3);
    return std::exp(-d * d * 4.0);
  };
  TpeSearch tpe(space, {.max_evals = 40, .n_init = 8, .seed = 6});
  double best = 0;
  int near_optimum = 0, model_samples = 0, i = 0;
  while (auto c = tpe.next()) {
    const double lr = config_double(*c, "lr");
    const double y = objective(lr);
    best = std::max(best, y);
    if (i >= 8) {
      ++model_samples;
      if (std::abs(std::log10(lr) - std::log10(3e-3)) < 0.5) ++near_optimum;
    }
    tpe.tell(*c, y);
    ++i;
  }
  EXPECT_GT(best, 0.8);
  // Uniform log sampling hits the +-0.5 decade window ~1/3 of the time.
  EXPECT_GT(near_optimum * 2, model_samples);
}

TEST(Tpe, HandlesConditionalDimensions) {
  SearchSpace space;
  space.add_categorical("optimizer", {json::Value("Adam"), json::Value("SGD")});
  space.add_float("momentum", 0.0, 0.99);
  space.make_conditional("optimizer", json::Value("SGD"));
  TpeSearch tpe(space, {.max_evals = 30, .n_init = 5, .seed = 8});
  while (auto c = tpe.next()) {
    if (config_string(*c, "optimizer") == "SGD") {
      ASSERT_TRUE(c->contains("momentum"));
      const double m = config_double(*c, "momentum");
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 0.99);
      tpe.tell(*c, 0.5 + m / 10.0);  // prefer SGD with high momentum
    } else {
      EXPECT_FALSE(c->contains("momentum"));
      tpe.tell(*c, 0.2);
    }
  }
  EXPECT_EQ(tpe.observations(), 30u);
}

TEST(Tpe, InvalidOptionsThrow) {
  const SearchSpace space = mixed_space();
  EXPECT_THROW(TpeSearch(space, {.max_evals = 0}), std::invalid_argument);
  EXPECT_THROW(TpeSearch(space, {.max_evals = 5, .gamma = 0.0}), std::invalid_argument);
  EXPECT_THROW(TpeSearch(space, {.max_evals = 5, .gamma = 1.0}), std::invalid_argument);
}

TEST(Tpe, TellRejectsForeignValues) {
  SearchSpace space;
  space.add_categorical("optimizer", {json::Value("Adam")});
  TpeSearch tpe(space, {.max_evals = 3, .n_init = 1, .seed = 7});
  Config bad;
  bad.set("optimizer", json::Value("NotAnOptimizer"));
  EXPECT_THROW(tpe.tell(bad, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace chpo::hpo
