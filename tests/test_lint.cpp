// Unit tests for chpo_lint: each rule is fed a synthetic tree containing a
// violation (proving detection) and a clean variant (proving no false
// positive). The real repo is checked by the `chpo_lint` ctest itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace chpo::lint {
namespace {

namespace fs = std::filesystem;

std::vector<Finding> of_rule(const std::vector<Finding>& findings, const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings)
    if (f.rule == rule) out.push_back(f);
  return out;
}

// ---------------------------------------------------------------------------
// Masking
// ---------------------------------------------------------------------------

TEST(Masking, StripsCommentsAndLiteralsButKeepsLines) {
  const std::string in =
      "int a; // trailing .lock()\n"
      "/* block\n spanning .unlock() */ int b;\n"
      "const char* s = \".lock()\";\n"
      "char c = '\\'';\n";
  const std::string out = mask_comments_and_literals(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), std::count(in.begin(), in.end(), '\n'));
  EXPECT_EQ(out.find("lock"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
  EXPECT_NE(out.find("const char* s ="), std::string::npos);
}

TEST(Masking, HandlesSimpleRawStrings) {
  const std::string out = mask_comments_and_literals("auto s = R\"(.lock() inside)\"; int x;");
  EXPECT_EQ(out.find("lock"), std::string::npos);
  EXPECT_NE(out.find("int x;"), std::string::npos);
}

TEST(Masking, BlockCommentsSpanningManyLinesStayMasked) {
  const std::string in =
      "int before;\n"
      "/*\n"
      " * mutex_.lock();\n"
      " * server_.step(0.1);\n"
      " */\n"
      "int after;\n";
  const std::string out = mask_comments_and_literals(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), std::count(in.begin(), in.end(), '\n'));
  EXPECT_EQ(out.find("lock"), std::string::npos);
  EXPECT_EQ(out.find("step"), std::string::npos);
  EXPECT_NE(out.find("int before;"), std::string::npos);
  EXPECT_NE(out.find("int after;"), std::string::npos);
}

TEST(Masking, CustomDelimiterRawStringsSpanningLines) {
  // The regression: with a custom delimiter, an interior `)"` is NOT the
  // terminator — the old masker dropped back to code there and leaked the
  // rest of the literal into rule matching.
  const std::string in =
      "auto s = R\"x(\n"
      "  not closed by )\" this\n"
      "  mutex_.lock();\n"
      ")x\";\n"
      "int tail;\n";
  const std::string out = mask_comments_and_literals(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), std::count(in.begin(), in.end(), '\n'));
  EXPECT_EQ(out.find("lock"), std::string::npos);
  EXPECT_NE(out.find("int tail;"), std::string::npos);
}

TEST(Masking, RawStringEncodingPrefixes) {
  for (const std::string prefix : {"u8", "u", "U", "L"}) {
    const std::string in = "auto s = " + prefix + "R\"(.lock())\"; int k;";
    const std::string out = mask_comments_and_literals(in);
    EXPECT_EQ(out.find("lock"), std::string::npos) << prefix;
    EXPECT_NE(out.find("int k;"), std::string::npos) << prefix;
  }
  // An identifier merely ending in R does not open a raw string.
  const std::string out = mask_comments_and_literals("call(VAR\"text\", x); int m;");
  EXPECT_NE(out.find("int m;"), std::string::npos);
}

TEST(Masking, BackslashContinuedLineComments) {
  // A `//` comment ending in a backslash continues onto the next line; the
  // old masker dropped back to code at the newline and leaked it.
  const std::string in =
      "int a; // comment continues \\\n"
      "mutex_.lock();\n"
      "int b;\n";
  const std::string out = mask_comments_and_literals(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), std::count(in.begin(), in.end(), '\n'));
  EXPECT_EQ(out.find("lock"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// raw-lock-call
// ---------------------------------------------------------------------------

TEST(RawLockCall, FlagsManualLockAndUnlock) {
  const auto findings = lint_files({{"src/foo/bar.cpp",
                                     "void f() {\n"
                                     "  mutex_.lock();\n"
                                     "  ptr->unlock();\n"
                                     "  mu.lock_shared();\n"
                                     "}\n"}});
  const auto hits = of_rule(findings, "raw-lock-call");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_EQ(hits[1].line, 3);
  EXPECT_EQ(hits[2].line, 4);
}

TEST(RawLockCall, AllowsTheAnnotatedWrappersThemselves) {
  const auto findings = lint_files(
      {{"src/support/thread_annotations.hpp", "void lock() { m_.lock(); }\n"}});
  EXPECT_TRUE(of_rule(findings, "raw-lock-call").empty());
}

TEST(RawLockCall, IgnoresCommentsStringsAndNonMemberCalls) {
  const auto findings = lint_files({{"src/foo/bar.cpp",
                                     "// call .lock() manually\n"
                                     "const char* s = \".unlock()\";\n"
                                     "lock();  // free function, not a member call\n"}});
  EXPECT_TRUE(of_rule(findings, "raw-lock-call").empty());
}

// ---------------------------------------------------------------------------
// raw-std-mutex
// ---------------------------------------------------------------------------

TEST(RawStdMutex, FlagsStdSyncPrimitivesInSrc) {
  const auto findings = lint_files({{"src/foo/bar.hpp",
                                     "std::mutex m_;\n"
                                     "std::shared_mutex rw_;\n"
                                     "std::condition_variable cv_;\n"
                                     "std::condition_variable_any cva_;\n"}});
  EXPECT_EQ(of_rule(findings, "raw-std-mutex").size(), 4u);
}

TEST(RawStdMutex, AllowsWrapperHeaderAndNonSrcTrees) {
  EXPECT_TRUE(of_rule(lint_files({{"src/support/thread_annotations.hpp", "std::mutex m_;\n"}}),
                      "raw-std-mutex")
                  .empty());
  EXPECT_TRUE(
      of_rule(lint_files({{"tools/x.cpp", "std::mutex m_;\n"}}), "raw-std-mutex").empty());
}

// ---------------------------------------------------------------------------
// nondeterministic-rng
// ---------------------------------------------------------------------------

TEST(NondeterministicRng, FlagsEntropySourcesInRuntimeAndReuse) {
  const auto findings = lint_files({{"src/runtime/sched.cpp", "std::random_device rd;\n"},
                                    {"src/reuse/cache.cpp", "int r = rand();\n"},
                                    {"src/runtime/fault.cpp", "srand(42);\n"}});
  EXPECT_EQ(of_rule(findings, "nondeterministic-rng").size(), 3u);
}

TEST(NondeterministicRng, IgnoresOtherPathsAndLongerIdentifiers) {
  const auto findings = lint_files({{"src/hpo/tpe.cpp", "int r = rand();\n"},
                                    {"src/runtime/x.cpp",
                                     "int operand(int x);\n"
                                     "int y = my_rand(3);\n"}});
  EXPECT_TRUE(of_rule(findings, "nondeterministic-rng").empty());
}

// ---------------------------------------------------------------------------
// raw-runtime-ref
// ---------------------------------------------------------------------------

TEST(RawRuntimeRef, FlagsRuntimeReferencesInHpoAndService) {
  const auto findings = lint_files(
      {{"src/hpo/driver.hpp", "HpoDriver(rt::Runtime& runtime, const Dataset& d);\n"},
       {"src/service/manager.cpp", "void drive(rt::Runtime & runtime) {}\n"},
       {"src/hpo/hyperband.cpp", "Outcome halve(Runtime& runtime, int n);\n"}});
  EXPECT_EQ(of_rule(findings, "raw-runtime-ref").size(), 3u);
}

TEST(RawRuntimeRef, AllowsSessionsValuesAndOtherLayers) {
  const auto findings = lint_files(
      // Sessions, by-value Runtime construction and RuntimeOptions are the
      // sanctioned spellings; other layers (runtime itself, ml) may still
      // take Runtime&.
      {{"src/hpo/optimize.cpp",
        "rt::RuntimeOptions runtime_options;\n"
        "rt::Runtime runtime(std::move(runtime_options));\n"
        "HpoDriver driver(runtime.main_study(), dataset, options);\n"},
       {"src/hpo/driver.hpp", "HpoDriver(rt::StudySession session, const Dataset& d);\n"},
       {"src/runtime/study_session.hpp", "StudySession(Runtime* runtime, StudyId id);\n"},
       {"src/ml/distributed.hpp", "Result distributed_train(rt::Runtime& runtime);\n"}});
  EXPECT_TRUE(of_rule(findings, "raw-runtime-ref").empty());
}

// ---------------------------------------------------------------------------
// callback-in-engine-mutation
// ---------------------------------------------------------------------------

TEST(CallbackInEngineMutation, FlagsTerminalListenerOutsideFlush) {
  const auto findings = lint_files({{"src/runtime/engine.cpp",
                                     "void Engine::complete_attempt(int id) {\n"
                                     "  on_terminal_(id);\n"
                                     "}\n"
                                     "void Engine::flush_notifications() {\n"
                                     "  on_terminal_(0);\n"
                                     "}\n"}});
  const auto hits = of_rule(findings, "callback-in-engine-mutation");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("complete_attempt"), std::string::npos);
}

TEST(CallbackInEngineMutation, AllowsNullChecksAndOtherFiles) {
  // `if (on_terminal_)` is a test, not an invocation; other files may hold
  // callbacks of the same name.
  const auto findings =
      lint_files({{"src/runtime/engine.cpp",
                   "void Engine::mark_terminal(int id) {\n"
                   "  if (on_terminal_) pending_.push_back(id);\n"
                   "}\n"},
                  {"src/runtime/runtime.cpp", "void f() { on_terminal_(3); }\n"}});
  EXPECT_TRUE(of_rule(findings, "callback-in-engine-mutation").empty());
}

// ---------------------------------------------------------------------------
// hot-path-std-function
// ---------------------------------------------------------------------------

TEST(HotPathStdFunction, FlagsAllocationInPerDispatchMethods) {
  const auto findings = lint_files(
      {{"src/runtime/engine.cpp",
        "std::vector<Dispatch> Engine::schedule(double now) {\n"
        "  std::function<void()> hook = [&] { retire(); };\n"
        "  hook();\n"
        "}\n"
        "Engine::Completion Engine::complete_attempt(std::uint64_t id) {\n"
        "  callbacks_.push_back(std::function<void(TaskId)>(notify));\n"
        "}\n"},
       {"src/runtime/thread_backend.cpp",
        "void ThreadBackend::run_job(void* ctx, StealPool::Job&& job) {\n"
        "  std::function<void()> deferred = std::move(job.work);\n"
        "}\n"}});
  const auto hits = of_rule(findings, "hot-path-std-function");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_NE(hits[0].message.find("Engine::schedule"), std::string::npos);
  EXPECT_NE(hits[1].message.find("Engine::complete_attempt"), std::string::npos);
  EXPECT_NE(hits[2].message.find("ThreadBackend::run_job"), std::string::npos);
}

TEST(HotPathStdFunction, AllowsColdMethodsAndOtherFiles) {
  // drive() takes a std::function once per wait (its own definition line —
  // the method tracker must attribute it to drive, not the previous hot
  // method); cold Engine methods and other files are out of scope.
  const auto findings = lint_files(
      {{"src/runtime/thread_backend.cpp",
        "void ThreadBackend::launch(const Dispatch& dispatch) {\n"
        "  pool_.push(dispatch);\n"
        "}\n"
        "bool ThreadBackend::drive(const std::function<bool()>& finished) {\n"
        "  while (!finished()) pump();\n"
        "}\n"},
       {"src/runtime/engine.cpp",
        "void Engine::set_terminal_listener(std::function<void(TaskId)> listener) {\n"
        "  on_terminal_ = std::move(listener);\n"
        "}\n"},
       {"src/runtime/runtime.cpp",
        "void Runtime::submit() { std::function<void()> cb; }\n"}});
  EXPECT_TRUE(of_rule(findings, "hot-path-std-function").empty());
}

// ---------------------------------------------------------------------------
// registry-lock-blocking-call
// ---------------------------------------------------------------------------

TEST(RegistryLockBlockingCall, FlagsManagerCallsUnderConnectionLock) {
  // The synthetic violation: draining the command queue AND dispatching
  // into the server inside the same MutexLock scope, so a slow engine step
  // holds the queue lock against the I/O thread.
  const auto findings = lint_files({{"src/daemon/socket_daemon.cpp",
                                     "void SocketDaemon::run() {\n"
                                     "  {\n"
                                     "    MutexLock lock(queue_mutex_);\n"
                                     "    for (Command& cmd : commands_) {\n"
                                     "      server_.handle(cmd.client, cmd.frame);\n"
                                     "    }\n"
                                     "    server_.step(0.05);\n"
                                     "    manager_->step_for(0.05);\n"
                                     "  }\n"
                                     "  server_.step(0.05);\n"
                                     "}\n"}});
  const auto hits = of_rule(findings, "registry-lock-blocking-call");
  ASSERT_EQ(hits.size(), 3u);  // handle + step under the lock; step_for too
  EXPECT_EQ(hits[0].line, 5);
  EXPECT_EQ(hits[1].line, 7);
  EXPECT_EQ(hits[2].line, 8);  // the post-unlock step() on line 10 is fine
}

TEST(RegistryLockBlockingCall, AllowsDataMovesCondVarWaitsAndOtherLayers) {
  const auto findings = lint_files(
      {{"src/daemon/socket_daemon.cpp",
        // The sanctioned shape: lock to move data (plus a CondVar wait,
        // which releases the mutex while blocked), unlock, then act.
        "void SocketDaemon::run() {\n"
        "  std::vector<Command> batch;\n"
        "  {\n"
        "    MutexLock lock(queue_mutex_);\n"
        "    if (commands_.empty()) queue_cv_.wait_for(queue_mutex_, kIdle);\n"
        "    while (!commands_.empty()) {\n"
        "      batch.push_back(std::move(commands_.front()));\n"
        "      commands_.pop_front();\n"
        "    }\n"
        "  }\n"
        "  for (Command& cmd : batch) server_.handle(cmd.client, cmd.frame);\n"
        "  if (server_.busy()) server_.step(0.05);\n"
        "}\n"},
       // Same text outside src/daemon/ is out of the rule's scope.
       {"src/service/study_manager.cpp",
        "void f() {\n  MutexLock lock(m_);\n  manager_.step_for(0.1);\n}\n"}});
  EXPECT_TRUE(of_rule(findings, "registry-lock-blocking-call").empty());
}

TEST(RegistryLockBlockingCall, FollowsCallsOneHopIntoHelpers) {
  // The helper-hidden violation: run() holds the queue lock and calls a
  // file-local helper whose body makes the blocking server call. A line
  // scanner cannot see this; the one-hop call graph can.
  const auto findings = lint_files({{"src/daemon/socket_daemon.cpp",
                                     "void SocketDaemon::pump_locked() {\n"
                                     "  server_.step(0.05);\n"
                                     "}\n"
                                     "void SocketDaemon::run() {\n"
                                     "  MutexLock lock(queue_mutex_);\n"
                                     "  pump_locked();\n"
                                     "}\n"}});
  const auto hits = of_rule(findings, "registry-lock-blocking-call");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 6);  // the call site under the lock, not the helper body
  EXPECT_NE(hits[0].message.find("pump_locked"), std::string::npos);
  EXPECT_NE(hits[0].message.find(".step"), std::string::npos);
}

TEST(RegistryLockBlockingCall, HelperWithoutBlockingCallsAndUnlockedHelperAreFine) {
  const auto findings = lint_files({{"src/daemon/socket_daemon.cpp",
                                     // poke() only writes the self-pipe; and the
                                     // blocking helper is called after the scope ends.
                                     "void SocketDaemon::poke() {\n"
                                     "  write(wake_write_, buf, 1);\n"
                                     "}\n"
                                     "void SocketDaemon::pump() {\n"
                                     "  server_.step(0.05);\n"
                                     "}\n"
                                     "void SocketDaemon::run() {\n"
                                     "  {\n"
                                     "    MutexLock lock(out_mutex_);\n"
                                     "    poke();\n"
                                     "  }\n"
                                     "  pump();\n"
                                     "}\n"}});
  EXPECT_TRUE(of_rule(findings, "registry-lock-blocking-call").empty());
}

TEST(RegistryLockBlockingCall, FlagsJournalSyncAndFsyncUnderLock) {
  const auto findings = lint_files({{"src/daemon/server.cpp",
                                     "void Server::ack() {\n"
                                     "  MutexLock lock(registry_mutex_);\n"
                                     "  journal_.sync();\n"
                                     "  fsync(fd_);\n"
                                     "}\n"}});
  const auto hits = of_rule(findings, "registry-lock-blocking-call");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_EQ(hits[1].line, 4);
}

TEST(RegistryLockBlockingCall, JournalImplementationIsExempt) {
  // The journal's lock class IS the append/fsync barrier: holding its
  // mutex across fsync is the documented design, not a violation.
  const auto findings = lint_files({{"src/daemon/journal.cpp",
                                     "void StateJournal::sync() {\n"
                                     "  MutexLock lock(mutex_);\n"
                                     "  fsync(fd_);\n"
                                     "}\n"}});
  EXPECT_TRUE(of_rule(findings, "registry-lock-blocking-call").empty());
}

TEST(RegistryLockBlockingCall, GuardSurvivesNestedBlocks) {
  const auto findings = lint_files({{"src/daemon/server_loop.cpp",
                                     "void loop() {\n"
                                     "  MutexLock lock(conn_registry_mutex_);\n"
                                     "  if (ready) {\n"
                                     "    flush();\n"
                                     "  }\n"
                                     "  server_.run_all();\n"
                                     "}\n"}});
  const auto hits = of_rule(findings, "registry-lock-blocking-call");
  ASSERT_EQ(hits.size(), 1u);  // still under the lock after the nested block
  EXPECT_EQ(hits[0].line, 6);
}

// ---------------------------------------------------------------------------
// lock-rank-order
// ---------------------------------------------------------------------------

SourceFile rank_table() {
  return {"src/support/lockdep.hpp",
          "inline constexpr LockClass kOuter{\"daemon.queue\", 10};\n"
          "inline constexpr LockClass kInner{\"support.log_sink\", 120};\n"};
}

SourceFile rank_members() {
  // Members declared in the .hpp; the .cpp sibling shares them.
  return {"src/foo/thing.hpp",
          "class Thing {\n"
          "  mutable Mutex inner_{lockdep::kInner};\n"
          "  chpo::Mutex outer_{chpo::lockdep::kOuter};\n"
          "};\n"};
}

TEST(LockRankOrder, FlagsInvertedDirectNesting) {
  const auto findings = lint_files({rank_table(), rank_members(),
                                    {"src/foo/thing.cpp",
                                     "void Thing::bad() {\n"
                                     "  MutexLock a(inner_);\n"
                                     "  MutexLock b(outer_);\n"
                                     "}\n"}});
  const auto hits = of_rule(findings, "lock-rank-order");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("kOuter"), std::string::npos);
  EXPECT_NE(hits[0].message.find("kInner"), std::string::npos);
}

TEST(LockRankOrder, FollowsCallsOneHopIntoHelpers) {
  const auto findings = lint_files({rank_table(), rank_members(),
                                    {"src/foo/thing.cpp",
                                     "void Thing::helper() {\n"
                                     "  MutexLock g(outer_);\n"
                                     "}\n"
                                     "void Thing::bad() {\n"
                                     "  MutexLock a(inner_);\n"
                                     "  helper();\n"
                                     "}\n"}});
  const auto hits = of_rule(findings, "lock-rank-order");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 6);  // the call site, attributed with both classes
  EXPECT_NE(hits[0].message.find("helper"), std::string::npos);
}

TEST(LockRankOrder, AllowsBlessedOrderScopedGuardsAndUnrankedLocks) {
  const auto findings = lint_files(
      {rank_table(), rank_members(),
       {"src/foo/thing.cpp",
        // Low-to-high nesting is the blessed order; a guard whose scope
        // closed no longer constrains; unranked members are exempt.
        "void Thing::fine() {\n"
        "  MutexLock a(outer_);\n"
        "  MutexLock b(inner_);\n"
        "}\n"
        "void Thing::sequential() {\n"
        "  {\n"
        "    MutexLock a(inner_);\n"
        "  }\n"
        "  MutexLock b(outer_);\n"
        "}\n"
        "void Thing::unranked() {\n"
        "  MutexLock a(inner_);\n"
        "  MutexLock b(scratch_mutex_);\n"
        "}\n"}});
  EXPECT_TRUE(of_rule(findings, "lock-rank-order").empty());
}

TEST(LockRankOrder, TreesWithoutARankTableAreOutOfScope) {
  const auto findings = lint_files({rank_members(),
                                    {"src/foo/thing.cpp",
                                     "void Thing::bad() {\n"
                                     "  MutexLock a(inner_);\n"
                                     "  MutexLock b(outer_);\n"
                                     "}\n"}});
  EXPECT_TRUE(of_rule(findings, "lock-rank-order").empty());
}

// ---------------------------------------------------------------------------
// trace-kind-coverage
// ---------------------------------------------------------------------------

SourceFile trace_hpp(const std::string& last, const std::string& count_member) {
  return {"src/trace/trace.hpp",
          "enum class EventKind : std::uint8_t {\n"
          "  TaskRun,\n"
          "  Transfer,\n"
          "  " + last + ",\n"
          "};\n"
          "inline constexpr int kEventKindCount = static_cast<int>(EventKind::" +
              count_member + ") + 1;\n"};
}

SourceFile trace_cpp(const std::vector<std::string>& cases) {
  std::string body = "const char* kind_name(EventKind kind) {\n  switch (kind) {\n";
  for (const std::string& c : cases) body += "    case EventKind::" + c + ": return \"x\";\n";
  body += "  }\n  return \"unknown\";\n}\n";
  return {"src/trace/trace.cpp", body};
}

SourceFile prv_cpp(bool uses_count) {
  return {"src/trace/prv_writer.cpp",
          uses_count ? std::string("for (int k = 0; k < kEventKindCount; ++k) emit(k);\n")
                     : std::string("emit_all_labels_by_hand();\n")};
}

TEST(TraceKindCoverage, CleanTreePasses) {
  const auto findings = lint_files(
      {trace_hpp("Sync", "Sync"), trace_cpp({"TaskRun", "Transfer", "Sync"}), prv_cpp(true)});
  EXPECT_TRUE(of_rule(findings, "trace-kind-coverage").empty());
}

TEST(TraceKindCoverage, FlagsMissingKindNameCase) {
  const auto findings =
      lint_files({trace_hpp("Sync", "Sync"), trace_cpp({"TaskRun", "Sync"}), prv_cpp(true)});
  const auto hits = of_rule(findings, "trace-kind-coverage");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("Transfer"), std::string::npos);
}

TEST(TraceKindCoverage, FlagsStaleKindCount) {
  // kEventKindCount still names Transfer after Sync was appended.
  const auto findings = lint_files(
      {trace_hpp("Sync", "Transfer"), trace_cpp({"TaskRun", "Transfer", "Sync"}), prv_cpp(true)});
  const auto hits = of_rule(findings, "trace-kind-coverage");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("last EventKind member"), std::string::npos);
}

TEST(TraceKindCoverage, FlagsHandRolledPcfLabels) {
  const auto findings = lint_files(
      {trace_hpp("Sync", "Sync"), trace_cpp({"TaskRun", "Transfer", "Sync"}), prv_cpp(false)});
  const auto hits = of_rule(findings, "trace-kind-coverage");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("kEventKindCount"), std::string::npos);
}

TEST(TraceKindCoverage, PrefixMemberNamesDoNotSatisfyEachOther) {
  // A case for TaskRunEnd must not count as covering TaskRun.
  const auto findings = lint_files({{"src/trace/trace.hpp",
                                     "enum class EventKind {\n"
                                     "  TaskRun,\n"
                                     "  TaskRunEnd,\n"
                                     "};\n"
                                     "inline constexpr int kEventKindCount = "
                                     "static_cast<int>(EventKind::TaskRunEnd) + 1;\n"},
                                    trace_cpp({"TaskRunEnd"})});
  const auto hits = of_rule(findings, "trace-kind-coverage");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("EventKind::TaskRun "), std::string::npos);
}

// ---------------------------------------------------------------------------
// lint_tree (directory walking)
// ---------------------------------------------------------------------------

TEST(LintTree, WalksSrcAndReportsRelativePaths) {
  const fs::path root = fs::path(testing::TempDir()) / "chpo_lint_tree_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "runtime");
  {
    std::ofstream out(root / "src" / "runtime" / "bad.cpp");
    out << "std::random_device rd;\n";
  }
  const auto findings = lint_tree(root.string());
  const auto hits = of_rule(findings, "nondeterministic-rng");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/runtime/bad.cpp");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_FALSE(format_findings(findings).empty());
  fs::remove_all(root);
}

TEST(LintTree, MissingSubtreesAreNotAnError) {
  const fs::path root = fs::path(testing::TempDir()) / "chpo_lint_empty_test";
  fs::remove_all(root);
  fs::create_directories(root);
  EXPECT_TRUE(lint_tree(root.string()).empty());
  fs::remove_all(root);
}

// ---------------------------------------------------------------------------
// scan_tree (the CLI's view: I/O failures are errors, not empty results)
// ---------------------------------------------------------------------------

TEST(ScanTree, MissingRootIsAnError) {
  const TreeScan scan =
      scan_tree((fs::path(testing::TempDir()) / "chpo_lint_no_such_root").string());
  EXPECT_EQ(scan.files_scanned, 0u);
  ASSERT_FALSE(scan.errors.empty());
  EXPECT_NE(scan.errors.front().find("not a directory"), std::string::npos);
}

TEST(ScanTree, TreeWithNoSourcesIsAnError) {
  // An existing root with nothing to scan must not read as "clean": CI
  // pointing chpo_lint at the wrong directory has to fail loudly.
  const fs::path root = fs::path(testing::TempDir()) / "chpo_lint_no_sources";
  fs::remove_all(root);
  fs::create_directories(root / "src");
  const TreeScan scan = scan_tree(root.string());
  EXPECT_EQ(scan.files_scanned, 0u);
  ASSERT_FALSE(scan.errors.empty());
  EXPECT_NE(scan.errors.front().find("no C++ sources"), std::string::npos);
  fs::remove_all(root);
}

TEST(ScanTree, CountsScannedFilesAndReportsFindings) {
  const fs::path root = fs::path(testing::TempDir()) / "chpo_lint_scan_count";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "runtime");
  {
    std::ofstream out(root / "src" / "runtime" / "ok.cpp");
    out << "int x;\n";
  }
  {
    std::ofstream out(root / "src" / "runtime" / "bad.cpp");
    out << "std::random_device rd;\n";
  }
  const TreeScan scan = scan_tree(root.string());
  EXPECT_TRUE(scan.errors.empty());
  EXPECT_EQ(scan.files_scanned, 2u);
  EXPECT_EQ(of_rule(scan.findings, "nondeterministic-rng").size(), 1u);
  fs::remove_all(root);
}

}  // namespace
}  // namespace chpo::lint
