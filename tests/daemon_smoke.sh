#!/usr/bin/env bash
# End-to-end daemon smoke: one live chpo_serve session exercised purely
# through chpo_ctl — two tenants, watch streaming, pause/resume over the
# protocol, per-tenant accounting reconciled against per-study reports,
# graceful shutdown (manifest + checkpoints), then a restart that resumes
# the surviving study and drains cleanly. Fails on any leaked completion.
#
# Usage: daemon_smoke.sh [build_dir]
set -euo pipefail

BUILD="${1:-build}"
SERVE="$BUILD/tools/chpo_serve"
CTL="$BUILD/tools/chpo_ctl"
WORK="$(mktemp -d)"
SOCK="$WORK/chpo.sock"
STATE="$WORK/state"
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

cat > "$WORK/space.json" <<'EOF'
{
  "learning_rate": [0.01, 0.05, 0.1],
  "num_epochs": [1, 2],
  "batch_size": [16, 32]
}
EOF

start_daemon() {
  "$SERVE" --socket "$SOCK" --state-dir "$STATE" --simulate \
    --train-samples 120 --test-samples 60 --seed 7 >> "$WORK/serve.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 100); do
    "$CTL" ping --socket "$SOCK" --timeout 2 >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "daemon did not come up"; cat "$WORK/serve.log"; exit 1
}

# value_of <line-grep> <key> <file>: key=value extractor for one output line.
value_of() {
  grep "$1" "$3" | head -1 | tr ' ' '\n' | grep "^$2=" | cut -d= -f2
}

C() { "$CTL" "$@" --socket "$SOCK" --timeout 60; }

echo "=== phase 1: fresh daemon, two tenants ==="
start_daemon

# Both studies are admitted paused so the watch streams can subscribe
# before the first trial completes (zero work happens until resume).
C submit "$WORK/space.json" --tenant alice --set algorithm=random --set budget=4 --paused \
  | tee "$WORK/submit_alice.out" | grep -q 'state='
C submit "$WORK/space.json" --tenant bob --set algorithm=tpe --set budget=6 --paused \
  | tee "$WORK/submit_bob.out"
ALICE_STUDY="$(value_of 'name=alice-random' study "$WORK/submit_alice.out")"
BOB_STUDY="$(value_of 'name=bob-tpe' study "$WORK/submit_bob.out")"

# Paused at admission: zero trials until resumed.
C status --study "$BOB_STUDY" | grep -q 'state=paused'
C status --study "$BOB_STUDY" | grep -q 'trials_done=0'

C watch --study "$ALICE_STUDY" --until finished > "$WORK/watch_alice.out" &
ALICE_WATCH=$!
C watch --study "$BOB_STUDY" --until finished > "$WORK/watch_bob.out" &
BOB_WATCH=$!
sleep 0.5  # let both subscriptions land while the studies are still paused

C resume --study "$ALICE_STUDY" | grep -q 'state='
C resume --study "$BOB_STUDY" | grep -q 'state='
wait "$ALICE_WATCH"
wait "$BOB_WATCH"
grep -q 'event=trial' "$WORK/watch_alice.out" || { echo "no trial events for alice"; exit 1; }
grep -q 'event=trial' "$WORK/watch_bob.out" || { echo "no trial events for bob"; exit 1; }
grep -q 'state=finished' "$WORK/watch_bob.out"

# A third study rides into the shutdown queued (admitted paused).
C submit "$WORK/space.json" --tenant alice --set algorithm=tpe --set budget=5 --paused >/dev/null

echo "=== accounting reconciles against per-study reports ==="
C list > "$WORK/list.out"
C accounting > "$WORK/accounting.out"
cat "$WORK/accounting.out"
grep -q 'tenant=alice' "$WORK/accounting.out"
grep -q 'tenant=bob' "$WORK/accounting.out"
for tenant in alice bob; do
  reported="$(grep "tenant=$tenant" "$WORK/list.out" \
    | sed 's/.*trials_done=\([0-9]*\).*/\1/' | awk '{s+=$1} END {print s+0}')"
  accounted="$(value_of "tenant=$tenant" trials_completed "$WORK/accounting.out")"
  if [ "$reported" != "$accounted" ]; then
    echo "tenant $tenant: accounting $accounted != per-study sum $reported"; exit 1
  fi
done
C stats | tee "$WORK/stats.out" | grep -q 'leaked_completions=0'
grep -q 'lineage_violations=0' "$WORK/stats.out"

echo "=== graceful shutdown writes the manifest ==="
C shutdown | grep -q 'drained=true'
wait "$SERVE_PID"; SERVE_PID=""
test -f "$STATE/manifest.json"
grep -q 'alice-tpe' "$STATE/manifest.json"

echo "=== phase 2: restart resumes the interrupted study ==="
start_daemon
C list > "$WORK/list2.out"
grep -q 'alice-tpe' "$WORK/list2.out"
RESUMED="$(value_of 'alice-tpe' study "$WORK/list2.out")"
C watch --study "$RESUMED" --until finished > "$WORK/watch_resumed.out"
grep -q 'state=finished' "$WORK/watch_resumed.out"
# The ledger survives the restart (snapshot + journal): phase 1's finished
# study plus the resumed one — the meter is cumulative across lifetimes.
C accounting | grep 'tenant=alice' | grep -q 'studies_finished=2'
C stats | grep -q 'leaked_completions=0'
C shutdown | grep -q 'drained=true'
wait "$SERVE_PID"; SERVE_PID=""

grep -q 'drain complete' "$WORK/serve.log"
echo "daemon smoke OK"
