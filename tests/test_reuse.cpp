// Cross-trial reuse subsystem: stage keys, snapshot IO, the result cache,
// the stage-tree planner, and end-to-end merged-vs-unmerged bit-identity
// through the HPO driver on both backends.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hpo/checkpoint.hpp"
#include "hpo/driver.hpp"
#include "hpo/hyperband.hpp"
#include "ml/dataset.hpp"
#include "ml/trainer.hpp"
#include "reuse/planner.hpp"
#include "reuse/result_cache.hpp"
#include "reuse/snapshot_io.hpp"
#include "reuse/stage_key.hpp"

namespace chpo::reuse {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory removed at scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("chpo_reuse_" + tag + "_" + std::to_string(::getpid()) + "_" + std::to_string(counter++));
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

ml::TrainConfig base_config() {
  ml::TrainConfig tc;
  tc.optimizer = "Adam";
  tc.num_epochs = 4;
  tc.batch_size = 16;
  tc.learning_rate = 0.01f;
  tc.seed = 11;
  return tc;
}

// ------------------------------------------------------------ stage keys

TEST(StageKey, IdenticalConfigsHashIdentically) {
  const ml::TrainConfig a = base_config();
  const ml::TrainConfig b = base_config();
  EXPECT_EQ(train_content_hash(a), train_content_hash(b));
  const ml::Dataset data = ml::make_mnist_like(40, 16, 1);
  const StageKey dk = dataset_key(data);
  EXPECT_EQ(chain_key(dk, a), chain_key(dk, b));
  EXPECT_EQ(snapshot_key(chain_key(dk, a), 3), snapshot_key(chain_key(dk, b), 3));
}

TEST(StageKey, RelevantFieldChangesTheKey) {
  const ml::TrainConfig a = base_config();
  ml::TrainConfig lr = a;
  lr.learning_rate = 0.02f;
  ml::TrainConfig opt = a;
  opt.optimizer = "SGD";
  ml::TrainConfig width = a;
  width.hidden_units = 32;
  ml::TrainConfig wd = a;
  wd.weight_decay = 0.001f;
  EXPECT_NE(train_content_hash(a), train_content_hash(lr));
  EXPECT_NE(train_content_hash(a), train_content_hash(opt));
  EXPECT_NE(train_content_hash(a), train_content_hash(width));
  EXPECT_NE(train_content_hash(a), train_content_hash(wd));
}

TEST(StageKey, IrrelevantFieldsDoNotChangeTheKey) {
  const ml::TrainConfig a = base_config();
  ml::TrainConfig threads = a;
  threads.threads = 8;  // execution detail, not training content
  ml::TrainConfig budget = a;
  budget.num_epochs = 20;  // budget lives in the snapshot/result key, not the chain
  EXPECT_EQ(train_content_hash(a), train_content_hash(threads));
  EXPECT_EQ(train_content_hash(a), train_content_hash(budget));

  const ml::Dataset data = ml::make_mnist_like(40, 16, 1);
  const StageKey dk = dataset_key(data);
  EXPECT_EQ(chain_key(dk, a), chain_key(dk, budget));
}

TEST(StageKey, NonConstantScheduleSplitsBudgets) {
  // multiplier(epoch, total) depends on the total budget, so different
  // budgets are different trajectories and must not share a chain.
  ml::TrainConfig a = base_config();
  a.lr_schedule = "cosine";
  ml::TrainConfig b = a;
  b.num_epochs = 8;
  const ml::Dataset data = ml::make_mnist_like(40, 16, 1);
  const StageKey dk = dataset_key(data);
  EXPECT_NE(chain_key(dk, a), chain_key(dk, b));
}

TEST(StageKey, DerivedSeedSharedAcrossEpochVariants) {
  const ml::TrainConfig a = base_config();
  ml::TrainConfig b = a;
  b.num_epochs = 16;
  EXPECT_EQ(derive_seed(42, a), derive_seed(42, b));
  EXPECT_NE(derive_seed(42, a), derive_seed(43, a));
}

TEST(StageKey, DatasetIdentityMatters) {
  const ml::Dataset d1 = ml::make_mnist_like(40, 16, 1);
  const ml::Dataset d2 = ml::make_mnist_like(40, 16, 2);  // different seed
  EXPECT_EQ(dataset_key(d1), dataset_key(ml::make_mnist_like(40, 16, 1)));
  EXPECT_NE(dataset_key(d1), dataset_key(d2));
}

// -------------------------------------------------------- snapshot round trip

ml::TrainSnapshot make_snapshot(const ml::Dataset& data, const ml::TrainConfig& tc, int epochs) {
  ml::TrainerSession session(data, tc);
  for (int i = 0; i < epochs; ++i) session.step_epoch();
  return session.snapshot();
}

void expect_snapshot_eq(const ml::TrainSnapshot& a, const ml::TrainSnapshot& b) {
  EXPECT_EQ(a.epochs_done, b.epochs_done);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.epochs_since_best, b.epochs_since_best);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t i = 0; i < a.weights.size(); ++i) {
    ASSERT_EQ(a.weights[i].size(), b.weights[i].size());
    for (std::size_t j = 0; j < a.weights[i].size(); ++j)
      EXPECT_EQ(a.weights[i][j], b.weights[i][j]);
  }
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.shuffle_rng.s, b.shuffle_rng.s);
  ASSERT_EQ(a.partial.history.size(), b.partial.history.size());
  for (std::size_t i = 0; i < a.partial.history.size(); ++i) {
    EXPECT_EQ(a.partial.history[i].train_loss, b.partial.history[i].train_loss);
    EXPECT_EQ(a.partial.history[i].val_accuracy, b.partial.history[i].val_accuracy);
  }
  EXPECT_EQ(a.partial.final_val_accuracy, b.partial.final_val_accuracy);
  EXPECT_EQ(a.partial.stopped_early, b.partial.stopped_early);
}

TEST(SnapshotIo, BinaryRoundTripIsBitExact) {
  const ml::Dataset data = ml::make_mnist_like(60, 20, 3);
  ml::TrainConfig tc = base_config();
  tc.dropout = 0.1f;
  tc.batch_norm = true;
  const ml::TrainSnapshot snap = make_snapshot(data, tc, 2);
  const std::string bytes = serialize_snapshot(snap);
  const ml::TrainSnapshot back = deserialize_snapshot(bytes);
  expect_snapshot_eq(snap, back);
}

TEST(SnapshotIo, TruncationAtEveryPrefixThrowsNeverCrashes) {
  const ml::Dataset data = ml::make_mnist_like(40, 16, 4);
  const std::string bytes = serialize_snapshot(make_snapshot(data, base_config(), 1));
  // Every strict prefix must throw (strictly bounds-checked reader).
  for (std::size_t cut : {std::size_t{0}, std::size_t{7}, std::size_t{8}, std::size_t{41},
                          bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(deserialize_snapshot(bytes.substr(0, cut)), std::runtime_error) << cut;
  }
  // Flipping the magic fails fast.
  std::string flipped = bytes;
  flipped[0] = static_cast<char>(flipped[0] ^ 0x5a);
  EXPECT_THROW(deserialize_snapshot(flipped), std::runtime_error);
  // Trailing garbage is rejected too.
  EXPECT_THROW(deserialize_snapshot(bytes + "x"), std::runtime_error);
}

// ------------------------------------------------------------ result cache

TEST(ResultCacheTest, HitMissAndFirstWriteWins) {
  ReusePolicy policy;
  policy.enabled = true;
  ResultCache cache(policy);
  const StageKey key{1, 2};

  EXPECT_EQ(cache.get_snapshot(key), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  const ml::Dataset data = ml::make_mnist_like(40, 16, 5);
  auto snap = std::make_shared<const ml::TrainSnapshot>(make_snapshot(data, base_config(), 1));
  EXPECT_TRUE(cache.put_snapshot(key, snap));
  // Speculative twin commits the same key: dropped, counted, not an error.
  EXPECT_FALSE(cache.put_snapshot(key, snap));
  EXPECT_EQ(cache.stats().duplicate_puts, 1u);

  EXPECT_NE(cache.get_snapshot(key), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Probes are silent: no hit/miss accounting.
  EXPECT_EQ(cache.probe_snapshot(StageKey{9, 9}), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  ml::TrainResult result;
  result.final_val_accuracy = 0.5;
  result.epochs_run = 4;
  EXPECT_TRUE(cache.put_result(StageKey{3, 4}, result));
  EXPECT_FALSE(cache.put_result(StageKey{3, 4}, result));
  const auto got = cache.get_result(StageKey{3, 4});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->final_val_accuracy, 0.5);
}

TEST(ResultCacheTest, MemoryLruEvictsOldestFirst) {
  const ml::Dataset data = ml::make_mnist_like(40, 16, 6);
  auto snap = std::make_shared<const ml::TrainSnapshot>(make_snapshot(data, base_config(), 1));
  const std::size_t one = snapshot_bytes(*snap);

  ReusePolicy policy;
  policy.enabled = true;
  policy.max_memory_bytes = one * 2 + one / 2;  // room for two entries
  ResultCache cache(policy);
  cache.put_snapshot(StageKey{1, 0}, snap);
  cache.put_snapshot(StageKey{2, 0}, snap);
  EXPECT_EQ(cache.stats().evictions, 0u);
  // Touch {1,0} so {2,0} is the least recently used.
  EXPECT_NE(cache.probe_snapshot(StageKey{1, 0}), nullptr);
  cache.put_snapshot(StageKey{3, 0}, snap);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_NE(cache.probe_snapshot(StageKey{1, 0}), nullptr);  // survived
  EXPECT_EQ(cache.probe_snapshot(StageKey{2, 0}), nullptr);  // evicted
}

TEST(ResultCacheTest, PersistsAcrossInstances) {
  TempDir dir("persist");
  const ml::Dataset data = ml::make_mnist_like(40, 16, 7);
  const ml::TrainSnapshot snap = make_snapshot(data, base_config(), 2);
  {
    ReusePolicy policy;
    policy.enabled = true;
    policy.cache_dir = dir.str();
    ResultCache cache(policy);
    cache.put_snapshot(StageKey{5, 6}, std::make_shared<const ml::TrainSnapshot>(snap));
    ml::TrainResult r;
    r.final_val_accuracy = 0.75;
    cache.put_result(StageKey{7, 8}, r);
    EXPECT_GT(cache.stats().bytes_written, 0u);
  }
  ReusePolicy policy;
  policy.enabled = true;
  policy.cache_dir = dir.str();
  ResultCache warm(policy);
  const auto loaded = warm.get_snapshot(StageKey{5, 6});
  ASSERT_NE(loaded, nullptr);
  expect_snapshot_eq(snap, *loaded);
  EXPECT_EQ(warm.stats().disk_hits, 1u);
  const auto result = warm.get_result(StageKey{7, 8});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->final_val_accuracy, 0.75);
}

TEST(ResultCacheTest, TruncatedDiskEntryIsAWarnedMissNotACrash) {
  TempDir dir("truncate");
  const ml::Dataset data = ml::make_mnist_like(40, 16, 8);
  ReusePolicy policy;
  policy.enabled = true;
  policy.cache_dir = dir.str();
  {
    ResultCache cache(policy);
    cache.put_snapshot(StageKey{11, 12},
                       std::make_shared<const ml::TrainSnapshot>(make_snapshot(data, base_config(), 1)));
  }
  // Truncate the .snap file mid-byte (simulates a crash mid-write that
  // somehow survived the atomic rename, or disk corruption).
  fs::path snap_file;
  for (const auto& e : fs::directory_iterator(dir.path))
    if (e.path().extension() == ".snap") snap_file = e.path();
  ASSERT_FALSE(snap_file.empty());
  const auto size = fs::file_size(snap_file);
  fs::resize_file(snap_file, size / 2 + 1);

  ResultCache reopened(policy);
  EXPECT_EQ(reopened.get_snapshot(StageKey{11, 12}), nullptr);  // warned miss
  EXPECT_EQ(reopened.stats().corrupt, 1u);
  EXPECT_EQ(reopened.stats().misses, 1u);
  EXPECT_FALSE(fs::exists(snap_file));  // dropped, will be recomputed
}

TEST(ResultCacheTest, GarbageResultJsonIsDropped) {
  TempDir dir("garbage");
  ReusePolicy policy;
  policy.enabled = true;
  policy.cache_dir = dir.str();
  {
    ResultCache cache(policy);
    ml::TrainResult r;
    r.final_val_accuracy = 0.9;
    cache.put_result(StageKey{20, 21}, r);
  }
  for (const auto& e : fs::directory_iterator(dir.path)) {
    std::ofstream out(e.path(), std::ios::trunc);
    out << "{not json";
  }
  ResultCache reopened(policy);
  EXPECT_FALSE(reopened.get_result(StageKey{20, 21}).has_value());
  EXPECT_EQ(reopened.stats().corrupt, 1u);
}

// --------------------------------------------------------- checkpoint file

TEST(CheckpointRobustness, CorruptCheckpointStartsFreshInsteadOfThrowing) {
  TempDir dir("ckpt");
  fs::create_directories(dir.path);
  const fs::path path = dir.path / "checkpoint.json";
  {
    std::ofstream out(path);
    out << "{\"format\": \"chpo-checkpoint-v1\", \"trials\": [{\"ind";  // truncated
  }
  EXPECT_TRUE(hpo::load_checkpoint(path.string()).empty());
  {
    std::ofstream out(path, std::ios::trunc);
    out << "total garbage";
  }
  EXPECT_TRUE(hpo::load_checkpoint(path.string()).empty());
}

hpo::Trial make_checkpoint_trial(int index) {
  hpo::Trial t;
  t.index = index;
  json::Value config;
  config.set("learning_rate", json::Value(0.01));
  config.set("num_epochs", json::Value(static_cast<std::int64_t>(4)));
  t.config = config;
  t.result.final_val_accuracy = 0.5 + 0.1 * index;
  t.result.best_val_accuracy = t.result.final_val_accuracy;
  t.result.epochs_run = 4;
  return t;
}

TEST(CheckpointRobustness, TruncationAtEveryPrefixNeverThrows) {
  // Mirror of SnapshotIo.TruncationAtEveryPrefixThrowsNeverCrashes for the
  // checkpoint file: a crash can leave any prefix of the JSON on disk, and
  // every one of them must load as a warned empty-or-partial result, never
  // an exception or a crash.
  TempDir dir("ckpt_prefix");
  fs::create_directories(dir.path);
  const fs::path path = dir.path / "checkpoint.json";
  const std::vector<hpo::Trial> trials = {make_checkpoint_trial(0), make_checkpoint_trial(1),
                                          make_checkpoint_trial(2)};
  hpo::save_checkpoint(path.string(), trials);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(hpo::load_checkpoint(path.string()).size(), trials.size());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    {
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out << bytes.substr(0, cut);
    }
    std::vector<hpo::Trial> loaded;
    EXPECT_NO_THROW(loaded = hpo::load_checkpoint(path.string())) << "prefix " << cut;
    EXPECT_LE(loaded.size(), trials.size()) << "prefix " << cut;
  }
}

TEST(CheckpointRobustness, DamagedTrialEntryIsSkippedIntactOnesSalvaged) {
  // Parseable file, one rotten entry: the other trials must replay (the
  // ResultCache policy — salvage what is intact, retrain the rest).
  TempDir dir("ckpt_salvage");
  fs::create_directories(dir.path);
  const fs::path path = dir.path / "checkpoint.json";
  {
    std::ofstream out(path);
    out << "{\"format\": \"chpo-checkpoint-v1\", \"trials\": ["
        << json::serialize(hpo::trial_to_json(make_checkpoint_trial(0))) << ", "
        << "{\"index\": \"rotten\"}, "
        << json::serialize(hpo::trial_to_json(make_checkpoint_trial(2))) << "]}";
  }
  const std::vector<hpo::Trial> loaded = hpo::load_checkpoint(path.string());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].index, 0);
  EXPECT_EQ(loaded[1].index, 2);
  EXPECT_DOUBLE_EQ(loaded[1].result.final_val_accuracy, 0.7);
}

// ----------------------------------------------------- session bit identity

TEST(TrainerSessionReuse, SnapshotRestoreMatchesUninterruptedRun) {
  const ml::Dataset data = ml::make_mnist_like(120, 40, 9);
  ml::TrainConfig tc = base_config();
  tc.num_epochs = 5;
  tc.dropout = 0.2f;
  tc.batch_norm = true;

  ml::TrainerSession straight(data, tc);
  while (straight.step_epoch()) {
  }

  // Same run, interrupted at epoch 2 and resumed in a fresh session via a
  // serialized snapshot (the exact path a stage task takes).
  ml::TrainerSession first(data, tc);
  first.step_epoch();
  first.step_epoch();
  const std::string bytes = serialize_snapshot(first.snapshot());
  ml::TrainerSession resumed(data, tc);
  resumed.restore(deserialize_snapshot(bytes));
  while (resumed.step_epoch()) {
  }

  const ml::TrainResult& a = straight.result();
  const ml::TrainResult& b = resumed.result();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].train_loss, b.history[i].train_loss) << "epoch " << i;
    EXPECT_EQ(a.history[i].train_accuracy, b.history[i].train_accuracy) << "epoch " << i;
    EXPECT_EQ(a.history[i].val_accuracy, b.history[i].val_accuracy) << "epoch " << i;
  }
  EXPECT_EQ(a.final_val_accuracy, b.final_val_accuracy);
  EXPECT_EQ(a.best_val_accuracy, b.best_val_accuracy);
}

TEST(TrainerSessionReuse, SnapshotCrossesEpochBudgets) {
  // A rung promotion: snapshot taken under a 2-epoch budget, resumed under
  // a 6-epoch budget. Must equal a straight 6-epoch run (constant lr).
  const ml::Dataset data = ml::make_mnist_like(80, 30, 10);
  ml::TrainConfig small = base_config();
  small.num_epochs = 2;
  ml::TrainConfig big = small;
  big.num_epochs = 6;

  ml::TrainerSession rung1(data, small);
  while (rung1.step_epoch()) {
  }
  EXPECT_TRUE(rung1.finished());

  ml::TrainerSession rung2(data, big);
  rung2.restore(rung1.snapshot());
  EXPECT_FALSE(rung2.finished());  // bigger budget reopens the run
  while (rung2.step_epoch()) {
  }

  ml::TrainerSession straight(data, big);
  while (straight.step_epoch()) {
  }
  ASSERT_EQ(rung2.result().history.size(), straight.result().history.size());
  for (std::size_t i = 0; i < straight.result().history.size(); ++i)
    EXPECT_EQ(rung2.result().history[i].val_accuracy, straight.result().history[i].val_accuracy);
}

// ------------------------------------------------------------- planner

TEST(Planner, MergesSharedPrefixesAndSplitsAtBudgets) {
  ml::TrainConfig tc = base_config();
  std::vector<TrialRequest> trials;
  for (const int budget : {2, 4, 8}) {
    ml::TrainConfig c = tc;
    c.num_epochs = budget;
    trials.push_back({static_cast<int>(trials.size()), c});
  }
  ml::TrainConfig other = tc;
  other.learning_rate = 0.05f;
  other.num_epochs = 4;
  trials.push_back({3, other});

  const StageKey dk{1, 1};
  const auto chains = plan_chains(dk, trials, /*merge=*/true);
  ASSERT_EQ(chains.size(), 2u);

  const PlannedChain* shared = nullptr;
  for (const PlannedChain& c : chains)
    if (c.trials.size() == 3) shared = &c;
  ASSERT_NE(shared, nullptr);
  ASSERT_EQ(shared->segments.size(), 3u);
  EXPECT_EQ(shared->segments[0].begin_epoch, 0);
  EXPECT_EQ(shared->segments[0].end_epoch, 2);
  EXPECT_EQ(shared->segments[0].shared_by, 3u);
  EXPECT_EQ(shared->segments[1].end_epoch, 4);
  EXPECT_EQ(shared->segments[1].shared_by, 2u);
  EXPECT_EQ(shared->segments[2].end_epoch, 8);
  EXPECT_EQ(shared->segments[2].shared_by, 1u);
  EXPECT_EQ(shared->config.num_epochs, 8);

  // Unmerged: one chain per trial, nothing shared.
  const auto solo = plan_chains(dk, trials, /*merge=*/false);
  ASSERT_EQ(solo.size(), 4u);
  for (const PlannedChain& c : solo) {
    ASSERT_EQ(c.segments.size(), 1u);
    EXPECT_EQ(c.segments[0].shared_by, 1u);
  }
}

// ------------------------------------------- end-to-end driver bit identity

hpo::SearchSpace reuse_space() {
  return hpo::SearchSpace::from_json_text(R"({
    "learning_rate": [0.01, 0.05],
    "num_epochs": [2, 4],
    "batch_size": [16]
  })");
}

rt::RuntimeOptions thread_cluster(unsigned cpus = 4) {
  rt::RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "t";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(1, node);
  return opts;
}

hpo::HpoOutcome run_grid(const ml::Dataset& dataset, bool merge, const std::string& cache_dir) {
  rt::Runtime runtime(thread_cluster());
  hpo::DriverOptions options;
  options.epoch_divisor = 1;
  options.seed = 21;
  options.reuse.enabled = true;
  options.reuse.merge = merge;
  options.reuse.cache_dir = cache_dir;
  hpo::HpoDriver driver(runtime.main_study(), dataset, options);
  hpo::GridSearch grid(reuse_space());
  return driver.run(grid);
}

void expect_trials_bit_identical(const std::vector<hpo::Trial>& a,
                                 const std::vector<hpo::Trial>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    SCOPED_TRACE("trial " + std::to_string(t));
    ASSERT_EQ(a[t].failed, b[t].failed);
    const ml::TrainResult& ra = a[t].result;
    const ml::TrainResult& rb = b[t].result;
    ASSERT_EQ(ra.history.size(), rb.history.size());
    for (std::size_t e = 0; e < ra.history.size(); ++e) {
      EXPECT_EQ(ra.history[e].train_loss, rb.history[e].train_loss);
      EXPECT_EQ(ra.history[e].train_accuracy, rb.history[e].train_accuracy);
      EXPECT_EQ(ra.history[e].val_accuracy, rb.history[e].val_accuracy);
    }
    EXPECT_EQ(ra.final_val_accuracy, rb.final_val_accuracy);
    EXPECT_EQ(ra.best_val_accuracy, rb.best_val_accuracy);
    EXPECT_EQ(ra.epochs_run, rb.epochs_run);
    EXPECT_EQ(ra.stopped_early, rb.stopped_early);
  }
}

TEST(DriverReuse, MergedGridBitIdenticalToUnmergedOnThreadBackend) {
  const ml::Dataset dataset = ml::make_mnist_like(120, 40, 12);
  const hpo::HpoOutcome unmerged = run_grid(dataset, /*merge=*/false, "");
  const hpo::HpoOutcome merged = run_grid(dataset, /*merge=*/true, "");
  ASSERT_EQ(unmerged.trials.size(), 4u);
  expect_trials_bit_identical(unmerged.trials, merged.trials);

  ASSERT_TRUE(merged.reuse.has_value());
  EXPECT_EQ(merged.reuse->chains, 2u);
  EXPECT_EQ(merged.reuse->shared_stages, 2u);
  EXPECT_LT(merged.reuse->planned_epochs, merged.reuse->naive_epochs);
  ASSERT_TRUE(unmerged.reuse.has_value());
  EXPECT_EQ(unmerged.reuse->shared_stages, 0u);
  EXPECT_EQ(unmerged.reuse->planned_epochs, unmerged.reuse->naive_epochs);
}

TEST(DriverReuse, WarmCacheReplaysEverythingWithoutTasks) {
  TempDir dir("warm");
  const ml::Dataset dataset = ml::make_mnist_like(120, 40, 13);
  const hpo::HpoOutcome cold = run_grid(dataset, true, dir.str());
  ASSERT_TRUE(cold.reuse.has_value());
  EXPECT_EQ(cold.reuse->replayed_trials, 0u);
  EXPECT_GT(cold.reuse->cache.bytes_written, 0u);

  const hpo::HpoOutcome warm = run_grid(dataset, true, dir.str());
  ASSERT_TRUE(warm.reuse.has_value());
  EXPECT_EQ(warm.reuse->replayed_trials, warm.trials.size());
  EXPECT_EQ(warm.reuse->stages, 0u);  // zero tasks submitted
  EXPECT_GE(warm.reuse->cache.hits, warm.trials.size());
  expect_trials_bit_identical(cold.trials, warm.trials);
  // Replayed trials consumed no runtime attempts.
  for (const hpo::Trial& t : warm.trials) EXPECT_EQ(t.attempts, 0);
}

TEST(DriverReuse, SimBackendPlansMergedGraph) {
  // Cost-only simulation: bodies never run, but the merged task graph and
  // its virtual makespan must reflect the stage tree.
  auto run_sim = [](bool merge) {
    const ml::Dataset dataset = ml::make_mnist_like(60, 20, 14);
    // One 4-core node + 4-cpu trials: tasks serialize, so the virtual
    // makespan tracks total planned work, not just the critical path.
    rt::RuntimeOptions opts = thread_cluster(4);
    opts.simulate = true;
    rt::Runtime runtime(std::move(opts));
    hpo::DriverOptions options;
    options.epoch_divisor = 1;
    options.workload = ml::mnist_paper_model();
    options.trial_constraint = {.cpus = 4};
    options.reuse.enabled = true;
    options.reuse.merge = merge;
    hpo::HpoDriver driver(runtime.main_study(), dataset, options);
    hpo::GridSearch grid(reuse_space());
    const hpo::HpoOutcome outcome = driver.run(grid);
    return std::make_pair(outcome.reuse->planned_epochs, runtime.analyze().makespan());
  };
  const auto [unmerged_epochs, unmerged_makespan] = run_sim(false);
  const auto [merged_epochs, merged_makespan] = run_sim(true);
  EXPECT_EQ(unmerged_epochs, 12);
  EXPECT_EQ(merged_epochs, 8);
  EXPECT_LT(merged_makespan, unmerged_makespan);
}

TEST(DriverReuse, HyperbandRungPromotionsResumeFromCache) {
  const ml::Dataset dataset = ml::make_mnist_like(100, 30, 15);
  rt::Runtime runtime(thread_cluster());
  hpo::HalvingOptions options;
  options.initial_configs = 4;
  options.initial_epochs = 2;
  options.max_epochs = 6;
  options.driver.epoch_divisor = 1;
  options.driver.seed = 33;
  options.driver.reuse.enabled = true;
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(R"({
    "learning_rate": [0.005, 0.01, 0.02, 0.05],
    "batch_size": [16]
  })");
  const hpo::HalvingOutcome outcome = successive_halving(runtime.main_study(), dataset, space, options);
  ASSERT_GE(outcome.rungs.size(), 2u);
  ASSERT_TRUE(outcome.reuse.has_value());
  EXPECT_GT(outcome.reuse->stages, 0u);
  EXPECT_GT(outcome.best_accuracy, 0.0);

  // The promoted rung-2 config must match a straight 6-epoch train: the
  // resume-from-rung-1-checkpoint path may not change the numbers.
  const hpo::RungResult& rung2 = outcome.rungs[1];
  ASSERT_FALSE(rung2.trials.empty());
  const hpo::Trial& promoted = rung2.trials.front();
  ml::TrainConfig tc = hpo::experiment_train_config(promoted.config, options.driver, /*unused*/ 0);
  ml::TrainerSession straight(dataset, tc);
  while (straight.step_epoch()) {
  }
  ASSERT_EQ(promoted.result.history.size(), straight.result().history.size());
  for (std::size_t e = 0; e < straight.result().history.size(); ++e)
    EXPECT_EQ(promoted.result.history[e].val_accuracy, straight.result().history[e].val_accuracy);
}

}  // namespace
}  // namespace chpo::reuse
