// Search-algorithm tests: grid exhaustion, random reproducibility, GP-EI
// optimisation behaviour on a known objective.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hpo/algorithms.hpp"

namespace chpo::hpo {
namespace {

SearchSpace listing1_space() {
  return SearchSpace::from_json_text(R"({
    "optimizer": ["Adam", "SGD", "RMSprop"],
    "num_epochs": [20, 50, 100],
    "batch_size": [32, 64, 128]
  })");
}

TEST(Grid, DrainsExactlyTheCrossProduct) {
  const SearchSpace space = listing1_space();
  GridSearch grid(space);
  EXPECT_EQ(grid.total(), 27u);
  std::set<std::string> seen;
  while (auto c = grid.next()) seen.insert(json::serialize(*c));
  EXPECT_EQ(seen.size(), 27u);
  EXPECT_FALSE(grid.next().has_value());  // stays exhausted
  EXPECT_FALSE(grid.sequential());
}

TEST(Random, ProducesRequestedCount) {
  const SearchSpace space = listing1_space();
  RandomSearch random(space, 10, 42);
  int count = 0;
  while (random.next()) ++count;
  EXPECT_EQ(count, 10);
}

TEST(Random, SeedReproducible) {
  const SearchSpace space = listing1_space();
  RandomSearch a(space, 5, 7), b(space, 5, 7), c(space, 5, 8);
  bool all_same = true, any_diff_seed = false;
  for (int i = 0; i < 5; ++i) {
    const auto ca = a.next(), cb = b.next(), cc = c.next();
    all_same = all_same && (json::serialize(*ca) == json::serialize(*cb));
    any_diff_seed = any_diff_seed || (json::serialize(*ca) != json::serialize(*cc));
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff_seed);
}

TEST(Random, ZeroBudgetRejected) {
  const SearchSpace space = listing1_space();
  EXPECT_THROW(RandomSearch(space, 0, 1), std::invalid_argument);
}

TEST(GpEi, RespectsEvaluationBudget) {
  const SearchSpace space = listing1_space();
  GpBayesOpt bo(space, {.max_evals = 8, .n_init = 3, .seed = 1});
  int issued = 0;
  while (auto c = bo.next()) {
    bo.tell(*c, 0.5);
    ++issued;
  }
  EXPECT_EQ(issued, 8);
  EXPECT_TRUE(bo.sequential());
}

TEST(GpEi, FindsOptimumOfSmoothObjective) {
  // Maximise -(lr - 0.3)^2 over a 1-D continuous space: GP-EI should get
  // much closer to 0.3 than plain random with the same tiny budget.
  SearchSpace space;
  space.add_float("lr", 0.0, 1.0);
  const auto objective = [](const Config& c) {
    const double lr = config_double(c, "lr");
    return -(lr - 0.3) * (lr - 0.3);
  };

  GpBayesOpt::Options options;
  options.max_evals = 20;
  options.n_init = 5;
  options.seed = 11;
  GpBayesOpt bo(space, options);
  double best_bo = -1e9;
  while (auto c = bo.next()) {
    const double y = objective(*c);
    best_bo = std::max(best_bo, y);
    bo.tell(*c, y);
  }
  EXPECT_GT(best_bo, -0.003);  // |lr - 0.3| < ~0.055
}

TEST(GpEi, ModelPhaseReachesTheOptimumRegion) {
  SearchSpace space;
  space.add_float("x", 0.0, 1.0);
  const auto objective = [](double x) { return -(x - 0.7) * (x - 0.7); };

  GpBayesOpt bo(space, {.max_evals = 25, .n_init = 5, .seed = 3});
  double best = -1e9;
  while (auto c = bo.next()) {
    const double y = objective(config_double(*c, "x"));
    best = std::max(best, y);
    bo.tell(*c, y);
  }
  // 25 evaluations must land within |x - 0.7| < 0.1 of the optimum.
  EXPECT_GT(best, -0.01);
}

TEST(GpEi, WorksOnMixedCategoricalSpace) {
  const SearchSpace space = listing1_space();
  GpBayesOpt bo(space, {.max_evals = 12, .n_init = 4, .seed = 5});
  // Objective favours SGD with many epochs.
  int issued = 0;
  while (auto c = bo.next()) {
    double y = config_string(*c, "optimizer") == "SGD" ? 0.5 : 0.1;
    y += static_cast<double>(config_int(*c, "num_epochs")) / 1000.0;
    bo.tell(*c, y);
    ++issued;
  }
  EXPECT_EQ(issued, 12);
  EXPECT_EQ(bo.observations(), 12u);
}

TEST(GpEi, ZeroBudgetRejected) {
  const SearchSpace space = listing1_space();
  EXPECT_THROW(GpBayesOpt(space, {.max_evals = 0}), std::invalid_argument);
}

}  // namespace
}  // namespace chpo::hpo
